"""Shared fixtures: device specs, small programs, canned profiles."""

from __future__ import annotations

import pytest

from repro.arch import get_gpu
from repro.isa import AccessKind, LaunchConfig, ProgramBuilder
from repro.sim import SimConfig


@pytest.fixture(scope="session")
def turing():
    return get_gpu("NVIDIA Quadro RTX 4000")


@pytest.fixture(scope="session")
def pascal():
    return get_gpu("NVIDIA GTX 1070")


@pytest.fixture()
def sim_config():
    return SimConfig(seed=7)


@pytest.fixture()
def small_launch():
    return LaunchConfig(blocks=8, threads_per_block=128)


def build_stream_kernel(
    name: str = "stream",
    *,
    iterations: int = 8,
    working_set: int = 1 << 20,
    alu: int = 2,
):
    """A tiny streaming kernel: 2 loads, ALU work, 1 store."""
    b = ProgramBuilder(name)
    b.pattern("x", AccessKind.STREAM, working_set_bytes=working_set)
    b.pattern("y", AccessKind.STREAM, working_set_bytes=working_set)
    r0 = b.ldg("x")
    r1 = b.ldg("y")
    acc = b.ffma(r0, r1)
    for _ in range(alu - 1):
        acc = b.ffma(acc, r0)
    b.stg("y", acc)
    return b.build(iterations=iterations)


def build_compute_kernel(name: str = "compute", *, iterations: int = 6):
    """An ALU-dominated kernel: mixed fp32/int, high ILP, so it can
    exploit both issue pipes of a sub-partition."""
    b = ProgramBuilder(name)
    b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
    regs = [b.ldg("x") for _ in range(8)]
    for i in range(48):
        src_a = regs[i % 8]
        src_b = regs[(i + 3) % 8]
        regs[i % 8] = b.ffma(src_a, src_b) if i % 2 else b.imad(src_a, src_b)
    b.stg("x", regs[0])
    return b.build(iterations=iterations)


@pytest.fixture()
def stream_kernel():
    return build_stream_kernel()


@pytest.fixture()
def compute_kernel():
    return build_compute_kernel()
