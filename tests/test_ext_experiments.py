"""Tests for the extension experiment modules and remaining simulator
corner paths (texture, nanosleep, time-series rendering)."""

import pytest

from repro.core import Node, timeseries_chart
from repro.experiments import ext_cross_arch, ext_sampling, ext_suites
from repro.isa import AccessKind, Instruction, LaunchConfig, Opcode, ProgramBuilder
from repro.sim import SimConfig, WarpState, simulate_kernel


class TestExtSampling:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_sampling.run(invocations=24)

    def test_full_policy_first(self, result):
        assert result.outcomes[0].policy == "full"
        assert result.outcomes[0].sampling_rate == 1.0
        assert result.outcomes[0].max_error == 0.0

    def test_sampling_cheaper_than_full(self, result):
        full = result.outcomes[0]
        for outcome in result.outcomes[1:]:
            assert outcome.overhead < full.overhead

    def test_periodic_policies_accurate(self, result):
        by_name = {o.policy: o for o in result.outcomes}
        assert by_name["every_4th"].max_error < 0.05

    def test_render(self, result):
        text = ext_sampling.render(result)
        assert "Overhead" in text and "every_4th" in text


class TestExtCrossArch:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_cross_arch.run()

    def test_all_gpus_analyzed(self, result):
        assert set(result.averages) == set(ext_cross_arch.GPUS)

    def test_comparisons_against_pascal(self, result):
        assert set(result.versus_pascal) == set(ext_cross_arch.GPUS[1:])

    def test_turing_frontend_improvement(self, result):
        cmp = result.versus_pascal["NVIDIA Quadro RTX 4000"]
        assert cmp.delta(Node.FRONTEND) < 0

    def test_render(self, result):
        text = ext_cross_arch.render(result)
        assert "NVIDIA A100" in text and "retire" in text


class TestExtSuites:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_suites.run()

    def test_three_generations(self, result):
        assert set(result.runs) == {"shoc", "parboil", "rodinia",
                                    "altis"}

    def test_constant_evolution(self, result):
        assert result.constant_share("shoc") < \
            result.constant_share("rodinia") < \
            result.constant_share("altis")

    def test_render(self, result):
        text = ext_suites.render(result)
        assert "shoc" in text and "Constant" in text


class TestTimeseriesChart:
    def test_renders_rows(self):
        chart = timeseries_chart({
            Node.RETIRE: [0.1, 0.5, 0.9],
            Node.BACKEND: [0.9, 0.5, 0.1],
        }, width=3)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("Retire")
        assert "|" in lines[0]

    def test_empty_series_skipped(self):
        assert timeseries_chart({Node.RETIRE: []}) == ""

    def test_values_clamped(self):
        chart = timeseries_chart({Node.RETIRE: [-1.0, 2.0]}, width=2)
        assert "|" in chart  # no crash on out-of-range values


class TestRemainingSimPaths:
    def test_texture_path(self, turing):
        b = ProgramBuilder("tex")
        b.pattern("img", AccessKind.RANDOM, working_set_bytes=1 << 21)
        r = b.tex("img")
        r2 = b.ffma(r, r)
        b.pattern("o", AccessKind.STREAM, working_set_bytes=1 << 16)
        b.stg("o", r2)
        prog = b.build(iterations=8)
        c = simulate_kernel(
            turing, prog, LaunchConfig(blocks=36, threads_per_block=256),
            SimConfig(seed=1),
        ).counters
        from repro.isa.opcodes import OpClass

        assert c.inst_by_class[OpClass.MEM_TEXTURE] > 0
        # texture loads wake consumers via the long scoreboard
        assert c.state_cycles[WarpState.LONG_SCOREBOARD] > 0

    def test_nanosleep_path(self, turing):
        b = ProgramBuilder("sleepy")
        b.pattern("o", AccessKind.STREAM, working_set_bytes=4096)
        b.emit(Instruction(Opcode.NANOSLEEP))
        r = b.iadd()
        b.stg("o", r)
        prog = b.build(iterations=4)
        c = simulate_kernel(
            turing, prog, LaunchConfig(blocks=4, threads_per_block=64),
            SimConfig(seed=1),
        ).counters
        assert c.state_cycles[WarpState.SLEEPING] > 0

    def test_lg_throttle_under_load_burst(self, turing):
        """Many back-to-back uncoalesced loads saturate the LG queue."""
        b = ProgramBuilder("burst")
        b.pattern("x", AccessKind.STRIDED, working_set_bytes=1 << 22,
                  stride_elements=32)
        regs = [b.ldg("x") for _ in range(8)]
        b.stg("x", regs[0])
        prog = b.build(iterations=6)
        c = simulate_kernel(
            turing, prog, LaunchConfig(blocks=36, threads_per_block=256),
            SimConfig(seed=1),
        ).counters
        assert c.state_cycles[WarpState.LG_THROTTLE] > 0


class TestParboil:
    def test_roster(self):
        from repro.workloads import parboil

        names = parboil().names
        for app in ("spmv", "sgemm", "stencil", "histo", "lbm",
                    "mri-q", "cutcp", "sad"):
            assert app in names

    def test_sad_uses_texture_path(self, turing):
        from repro.core import Node
        from repro.experiments.runner import profile_application
        from repro.workloads import parboil
        from repro.isa.opcodes import Opcode

        app = parboil().get("sad")
        assert any(
            i.opcode is Opcode.TEX
            for inv in app for i in inv.program.body
        )
        _, result = profile_application(turing, app)
        result.check_conservation()

    def test_mri_q_constant_and_sfu_bound(self, turing):
        from repro.core import Node
        from repro.experiments.runner import profile_application
        from repro.workloads import parboil

        _, result = profile_application(turing, parboil().get("mri-q"))
        assert result.fraction(Node.L3_CONSTANT_MEMORY) > 0.05
        assert result.fraction(Node.RETIRE) > 0.4

    def test_lbm_bandwidth_bound(self, turing):
        from repro.core import Node
        from repro.experiments.runner import profile_application
        from repro.workloads import parboil

        _, result = profile_application(turing, parboil().get("lbm"))
        assert result.fraction(Node.MEMORY) > 0.5


class TestGenerateAll:
    def test_bundle_written(self, tmp_path):
        """A reduced artifact bundle: every expected file materializes
        with plausible contents."""
        from repro.experiments.generate_all import generate_all

        written = generate_all(tmp_path / "arts", srad_invocations=12)
        names = {p.name for p in written}
        for expected in ("table9.txt", "tables_1_to_8.txt",
                         "fig03_hierarchy.txt", "fig04.csv",
                         "fig05_pascal.csv", "fig05_turing.csv",
                         "fig11_12.csv", "fig13.csv", "MANIFEST.txt"):
            assert expected in names
        fig4 = (tmp_path / "arts" / "fig04.csv").read_text()
        assert fig4.startswith("application,retire")
        assert "tile32" in fig4
        manifest = (tmp_path / "arts" / "MANIFEST.txt").read_text()
        assert "fig13.csv" in manifest
