"""Tests for the optimization-journey sample variants: each
optimization step must move the Top-Down breakdown the way the
tutorials say it does."""

import pytest

from repro.core import Node
from repro.errors import WorkloadError
from repro.experiments.runner import profile_application
from repro.workloads.cuda_samples import (
    MATMUL_VARIANTS,
    TRANSPOSE_VARIANTS,
    matmul_variant,
    transpose_variant,
)

GPU = "NVIDIA Quadro RTX 4000"


@pytest.fixture(scope="module")
def transpose_results():
    return {
        v: profile_application(GPU, transpose_variant(v))[1]
        for v in TRANSPOSE_VARIANTS
    }


@pytest.fixture(scope="module")
def matmul_results():
    return {
        v: profile_application(GPU, matmul_variant(v))[1]
        for v in MATMUL_VARIANTS
    }


class TestTransposeJourney:
    def test_each_step_improves_retire(self, transpose_results):
        retires = [
            transpose_results[v].fraction(Node.RETIRE)
            for v in TRANSPOSE_VARIANTS
        ]
        assert retires == sorted(retires)

    def test_naive_is_memory_wall(self, transpose_results):
        naive = transpose_results["naive"]
        assert naive.fraction(Node.MEMORY) > 0.6
        assert naive.ipc(Node.MEMORY) > naive.ipc(Node.CORE)

    def test_coalesced_trades_for_bank_conflicts(self, transpose_results):
        naive = transpose_results["naive"]
        coalesced = transpose_results["coalesced"]
        # shared staging cuts the global-memory wall...
        assert coalesced.fraction(Node.MEMORY) < \
            naive.fraction(Node.MEMORY)
        # ...but introduces bank-conflict replays
        assert coalesced.fraction(Node.REPLAY) > \
            3 * naive.fraction(Node.REPLAY)

    def test_padding_removes_replays(self, transpose_results):
        coalesced = transpose_results["coalesced"]
        padded = transpose_results["coalesced_padded"]
        assert padded.fraction(Node.REPLAY) < \
            0.2 * coalesced.fraction(Node.REPLAY)

    def test_unknown_variant_rejected(self):
        with pytest.raises(WorkloadError):
            transpose_variant("magic")


class TestMatmulJourney:
    def test_tiling_improves_retire(self, matmul_results):
        assert matmul_results["tiled"].fraction(Node.RETIRE) > \
            matmul_results["naive"].fraction(Node.RETIRE)

    def test_tiling_cuts_memory_share(self, matmul_results):
        assert matmul_results["tiled"].fraction(Node.MEMORY) < \
            matmul_results["naive"].fraction(Node.MEMORY)

    def test_tiled_version_more_core_bound(self, matmul_results):
        """With the memory wall down, compute shows through."""
        assert matmul_results["tiled"].fraction(Node.CORE) > \
            matmul_results["naive"].fraction(Node.CORE)

    def test_unknown_variant_rejected(self):
        with pytest.raises(WorkloadError):
            matmul_variant("quantum")
