"""Tests for the optimization advisor."""


from repro.core import Node, TopDownResult, advice_report, advise


def _result(**node_fracs):
    ipc_max = 2.0
    values = {n: 0.0 for n in Node}
    retire = node_fracs.pop("retire", 0.2)
    values[Node.RETIRE] = retire * ipc_max
    rest = (1.0 - retire - sum(node_fracs.values()))
    values[Node.UNATTRIBUTED] = max(0.0, rest) * ipc_max
    for name, frac in node_fracs.items():
        values[Node(name)] = frac * ipc_max
    # keep conservation plausible for the nodes the advisor reads
    values[Node.MEMORY] = (
        values[Node.L3_L1_DEPENDENCY] + values[Node.L3_CONSTANT_MEMORY]
        + values[Node.L3_MIO_THROTTLE] + values[Node.L3_DRAIN]
    )
    values[Node.CORE] = (
        values[Node.L3_MATH_PIPE] + values[Node.L3_EXEC_DEPENDENCY]
    )
    values[Node.BACKEND] = values[Node.MEMORY] + values[Node.CORE]
    values[Node.FETCH] = values[Node.L3_INSTRUCTION_FETCH]
    values[Node.FRONTEND] = values[Node.FETCH] + values[Node.DECODE]
    values[Node.DIVERGENCE] = values[Node.BRANCH] + values[Node.REPLAY]
    # fix conservation by dumping the remainder into unattributed
    lvl1 = (values[Node.RETIRE] + values[Node.DIVERGENCE]
            + values[Node.FRONTEND] + values[Node.BACKEND])
    values[Node.UNATTRIBUTED] = max(0.0, ipc_max - lvl1)
    return TopDownResult(name="t", device="d", ipc_max=ipc_max,
                         values=values)


class TestAdvise:
    def test_ranked_by_cost(self):
        r = _result(l1_dependency=0.4, constant_memory=0.1,
                    math_pipe=0.05)
        items = advise(r)
        costs = [a.cost for a in items]
        assert costs == sorted(costs, reverse=True)
        assert items[0].node is Node.L3_L1_DEPENDENCY

    def test_threshold_filters(self):
        r = _result(l1_dependency=0.4, math_pipe=0.01)
        items = advise(r, threshold=0.03)
        assert all(a.cost >= 0.03 for a in items)
        assert Node.L3_MATH_PIPE not in {a.node for a in items}

    def test_limit(self):
        r = _result(l1_dependency=0.2, constant_memory=0.15,
                    math_pipe=0.1, exec_dependency=0.1,
                    instruction_fetch=0.08, branch=0.06)
        assert len(advise(r, limit=3)) == 3

    def test_divergence_advice(self):
        r = _result(branch=0.3)
        items = advise(r)
        assert any(a.node is Node.BRANCH for a in items)
        assert "diverg" in next(
            a for a in items if a.node is Node.BRANCH
        ).text.lower()

    def test_report_for_clean_kernel(self):
        r = _result(retire=0.95)
        text = advice_report(r)
        assert "no hierarchy node above threshold" in text

    def test_report_lists_items(self):
        r = _result(l1_dependency=0.5)
        text = advice_report(r)
        assert "1." in text and "L1 Data" in text
