"""The determinism self-lint (tools/check_determinism.py) — the tree
must be clean, and each banned idiom must be caught."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "check_determinism", REPO / "tools" / "check_determinism.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


cd = _load_tool()


_scan_count = 0


def _scan(tmp_path: Path, source: str, rel: str = "repro/sim/k.py"):
    global _scan_count
    _scan_count += 1
    root = tmp_path / f"scan{_scan_count}"
    target = root / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return [f.code for f in cd.check_tree(root)]


def test_src_tree_is_clean():
    assert cd.check_tree(REPO / "src") == []


def test_builtin_hash_is_flagged(tmp_path):
    assert _scan(tmp_path, "x = hash('key')\n") == ["DET-HASH"]


def test_global_rng_is_flagged(tmp_path):
    src = "import random\nx = random.random()\n"
    assert _scan(tmp_path, src) == ["DET-GLOBAL-RNG"]
    src = "from random import choice\nx = choice([1, 2])\n"
    assert _scan(tmp_path, src) == ["DET-GLOBAL-RNG"]


def test_seeded_rng_instance_is_fine(tmp_path):
    src = "import random\nrng = random.Random(7)\nx = rng.random()\n"
    assert _scan(tmp_path, src) == []


def test_wall_clock_banned_only_in_sim_paths(tmp_path):
    src = "import time\nt = time.time()\n"
    assert _scan(tmp_path, src, "repro/sim/clock.py") == ["DET-WALL-CLOCK"]
    assert _scan(tmp_path, src, "repro/obs/clock.py") == []


def test_set_iteration_is_flagged(tmp_path):
    assert _scan(tmp_path, "for v in set([1]):\n    print(v)\n") \
        == ["DET-SET-ORDER"]
    assert _scan(tmp_path, "out = [v for v in {1, 2}]\n") \
        == ["DET-SET-ORDER"]


def test_sorted_set_iteration_is_fine(tmp_path):
    assert _scan(tmp_path, "for v in sorted(set([1])):\n    pass\n") == []


def test_allow_marker_suppresses(tmp_path):
    assert _scan(tmp_path, "x = hash('k')  # det: allow\n") == []


def test_cli_exit_codes(tmp_path, capsys):
    assert cd.main([str(REPO / "src")]) == 0
    bad = tmp_path / "bad.py"
    bad.write_text("x = hash('k')\n")
    assert cd.main([str(tmp_path)]) == 1
    assert "DET-HASH" in capsys.readouterr().err
    assert cd.main([str(tmp_path / "missing")]) == 2
