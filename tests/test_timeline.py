"""Tests for the ``repro.timeline`` analyses and the ``gpu-topdown
timeline`` CLI over the committed golden fixture."""

import json
import os

import pytest

from repro.cli import main
from repro.io.nsys_sqlite import read_trace
from repro.timeline import (
    BUBBLE_KINDS,
    bubble_stats,
    detect_iterations,
    diff_payload,
    diff_traces,
    find_bubbles,
    kernel_fingerprint,
    payload_to_json,
    rank_hotspots,
    stream_occupancy,
    timeline_payload,
    timeline_report,
)
from repro.timeline.fixture import FixtureSpec, write_fixture

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "golden_nsys_trace.sqlite")


@pytest.fixture(scope="module")
def trace():
    return read_trace(GOLDEN)


class TestBubbles:
    def test_all_three_kinds_present(self, trace):
        bubbles = find_bubbles(trace)
        kinds = {b.kind for b in bubbles}
        assert kinds == set(BUBBLE_KINDS)

    def test_host_stall_detected(self, trace):
        """The fixture plants one ~2 ms host stall per device after the
        warm-up kernel."""
        hosts = [b for b in find_bubbles(trace) if b.kind == "host"]
        assert len(hosts) == 2
        assert all(b.duration_ns > 1_500_000 for b in hosts)
        assert all("setup_rng" in b.after for b in hosts)

    def test_sync_gaps_follow_dtoh(self, trace):
        """Inter-iteration gaps follow the DtoH copy → 'sync'."""
        syncs = [b for b in find_bubbles(trace) if b.kind == "sync"]
        # 3 inter-iteration gaps x 2 devices.
        assert len(syncs) == 6
        assert all(b.after == "memcpy DtoH" for b in syncs)

    def test_launch_gaps_are_short(self, trace):
        launches = [b for b in find_bubbles(trace)
                    if b.kind == "launch"]
        assert launches
        assert all(b.duration_ns <= 10_000 for b in launches)

    def test_min_gap_filter(self, trace):
        few = find_bubbles(trace, min_gap_us=50.0)
        assert len(few) < len(find_bubbles(trace))
        assert all(b.duration_ns >= 50_000 for b in few)

    def test_device_filter(self, trace):
        only0 = find_bubbles(trace, device=0)
        assert only0
        assert {b.device_id for b in only0} == {0}

    def test_stats_partition_totals(self, trace):
        bubbles = find_bubbles(trace)
        stats = bubble_stats(bubbles, trace)
        assert stats.count == len(bubbles)
        assert sum(stats.by_kind_ns.values()) == stats.total_ns
        assert sum(stats.by_kind_count.values()) == stats.count
        assert 0.0 < stats.idle_fraction < 1.0


class TestIterations:
    def test_family_and_variance(self, trace):
        report = detect_iterations(trace)
        assert report is not None
        assert report.label == "iter"
        assert report.count == 4
        # iteration 2 is built ~1.6x slower.
        assert report.slowest_index == 2
        assert report.max_ns > 1.3 * report.min_ns
        assert report.cv > 0.1
        assert report.gap_total_ns > 0

    def test_busy_fraction_sane(self, trace):
        report = detect_iterations(trace)
        assert all(0.5 < s.busy_fraction <= 1.0
                   for s in report.iterations)

    def test_no_nvtx_returns_none(self, tmp_path):
        path = str(tmp_path / "no_nvtx.sqlite")
        write_fixture(path, spec=FixtureSpec(nvtx=False))
        assert detect_iterations(read_trace(path)) is None


class TestHotspots:
    def test_ranked_by_total_time(self, trace):
        hotspots = rank_hotspots(trace)
        totals = [h.total_ns for h in hotspots]
        assert totals == sorted(totals, reverse=True)
        assert hotspots[0].name.startswith("void gemm_tile")

    def test_shares_sum_to_one(self, trace):
        shares = sum(h.share for h in rank_hotspots(trace, top=100))
        assert shares == pytest.approx(1.0)

    def test_top_limits(self, trace):
        assert len(rank_hotspots(trace, top=2)) == 2


class TestOccupancy:
    def test_rows_per_stream_plus_union(self, trace):
        rows = stream_occupancy(trace)
        # 3 streams + 1 union row, per device.
        assert len(rows) == 8
        for device in (0, 1):
            union = [r for r in rows
                     if r.device_id == device and r.stream_id is None]
            assert len(union) == 1
            lanes = [r for r in rows if r.device_id == device
                     and r.stream_id is not None]
            # overlap means union busy <= sum of lanes, >= any lane.
            assert union[0].busy_ns <= sum(r.busy_ns for r in lanes)
            assert union[0].busy_ns >= max(r.busy_ns for r in lanes)

    def test_comm_imbalance_visible(self, trace):
        """Device 1's comm stream (14) is busier — the fixture's
        communication-imbalance plant."""
        rows = {(r.device_id, r.stream_id): r
                for r in stream_occupancy(trace)}
        assert rows[(1, 14)].busy_ns > 2 * rows[(0, 14)].busy_ns


class TestDiff:
    def test_same_trace_diffs_to_zero(self, trace):
        diff = diff_traces(trace, trace)
        assert diff.span_delta_ns == 0
        assert all(d.delta_ns == 0 for d in diff.kernels)
        assert diff.only_a == () and diff.only_b == ()

    def test_seeded_variant_pairs_all_kernels(self, trace, tmp_path):
        other = str(tmp_path / "b.sqlite")
        write_fixture(other, spec=FixtureSpec(seed=7))
        diff = diff_traces(trace, read_trace(other))
        assert len(diff.kernels) == 5
        assert diff.only_a == () and diff.only_b == ()
        payload = diff_payload(diff)
        json.dumps(payload)  # serializable
        assert payload["schema"] == "repro/timeline-diff@1"

    def test_fingerprint(self):
        assert kernel_fingerprint(
            "void ns::gemm_tile<float, 128>(float const*)"
        ) == "gemm_tile"
        assert kernel_fingerprint("bpnn_layerforward") == \
            kernel_fingerprint(
                "void bpnn_layerforward(float*, float*, int)")


class TestDeterminism:
    def test_payload_bit_identical_across_loads(self):
        a = payload_to_json(timeline_payload(read_trace(GOLDEN)))
        b = payload_to_json(timeline_payload(read_trace(GOLDEN)))
        assert a == b

    def test_report_stable(self, trace):
        assert timeline_report(trace) == timeline_report(trace)

    def test_regenerated_fixture_analyzes_identically(self, tmp_path):
        regen = str(tmp_path / "regen.sqlite")
        write_fixture(regen, spec=FixtureSpec(seed=0))
        a = timeline_payload(read_trace(GOLDEN))
        b = timeline_payload(read_trace(regen))
        a["source"] = b["source"] = "x"
        assert payload_to_json(a) == payload_to_json(b)


class TestCli:
    def test_text_report(self, capsys):
        assert main(["timeline", GOLDEN]) == 0
        out = capsys.readouterr().out
        assert "bubbles:" in out
        assert "gemm_tile" in out
        assert "iterations ('iter'): 4" in out

    def test_json_round_trip(self, capsys):
        assert main(["timeline", GOLDEN, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro/timeline-report@1"
        assert payload["bubbles"]["count"] > 0
        assert payload["iterations"]["slowest_index"] == 2
        assert len(payload["occupancy"]) == 8

    def test_json_bit_identical(self, capsys):
        main(["timeline", GOLDEN, "--json"])
        first = capsys.readouterr().out
        main(["timeline", GOLDEN, "--json"])
        assert capsys.readouterr().out == first

    def test_gpu_and_stream_filters(self, capsys):
        assert main(["timeline", GOLDEN, "--gpu", "1",
                     "--stream", "14", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["filters"] == {"device": 1, "stream": 14}
        assert all(r["device"] == 1 for r in payload["occupancy"])

    def test_iters_table(self, capsys):
        assert main(["timeline", GOLDEN, "--iters"]) == 0
        out = capsys.readouterr().out
        assert "iter 2" in out
        assert "Gap after" in out

    def test_diff_mode(self, tmp_path, capsys):
        other = str(tmp_path / "b.sqlite")
        write_fixture(other, spec=FixtureSpec(seed=7))
        assert main(["timeline", GOLDEN, "--diff", other]) == 0
        out = capsys.readouterr().out
        assert "timeline diff:" in out
        assert "B/A" in out

    def test_diff_json(self, tmp_path, capsys):
        other = str(tmp_path / "b.sqlite")
        write_fixture(other, spec=FixtureSpec(seed=7))
        assert main(["timeline", GOLDEN, "--diff", other,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro/timeline-diff@1"

    def test_topdown_join(self, tmp_path, capsys):
        results = str(tmp_path / "kernels.json")
        assert main(["analyze", "--gpu", "rtx4000", "--suite",
                     "rodinia", "--app", "backprop",
                     "--json-kernels", results]) == 0
        capsys.readouterr()
        assert main(["timeline", GOLDEN, "--topdown", results]) == 0
        out = capsys.readouterr().out
        assert "Top-Down" in out
        assert "memory-latency bound" in out

    def test_corrupt_trace_exit_code(self, tmp_path, capsys):
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"not a database" * 64)
        assert main(["timeline", str(path)]) == 14
        assert "error:" in capsys.readouterr().err

    def test_metrics_out_deterministic_counters(self, tmp_path):
        out1 = str(tmp_path / "m1.json")
        out2 = str(tmp_path / "m2.json")
        main(["timeline", GOLDEN, "--metrics-out", out1])
        main(["timeline", GOLDEN, "--metrics-out", out2])
        c1 = json.load(open(out1))["counters"]
        c2 = json.load(open(out2))["counters"]
        assert c1 == c2
        assert c1["timeline.traces_read"] == 1
        assert c1["timeline.bubbles_found"] > 0


class TestPartialSchemas:
    def test_payload_degrades_without_nvtx(self, tmp_path, capsys):
        path = str(tmp_path / "partial.sqlite")
        write_fixture(path, spec=FixtureSpec(nvtx=False,
                                             gpu_info=False))
        assert main(["timeline", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["iterations"] is None
        assert payload["capabilities"]["nvtx"] is False
        assert payload["capabilities"]["devices"] is False

    def test_report_warns_about_missing_tables(self, tmp_path, capsys):
        path = str(tmp_path / "partial.sqlite")
        write_fixture(path, spec=FixtureSpec(nvtx=False))
        assert main(["timeline", path]) == 0
        assert "partial export - missing: nvtx" in \
            capsys.readouterr().out
