"""Failure-injection tests: corrupted inputs must fail loudly and
partial data must degrade gracefully, never silently misreport."""

import pytest

from repro.arch import ComputeCapability
from repro.core import DeviceModel, Node, TopDownAnalyzer
from repro.errors import AnalysisError, ProfilerError
from repro.pmu import ncu_stall_metric_name
from repro.profilers import (
    KernelProfile,
    parse_ncu_csv,
    parse_nvprof_csv,
)
from repro.sim import WarpState

NCU_HEADER = (
    '"ID","Process ID","Process Name","Host Name","Kernel Name",'
    '"Context","Stream","Section Name","Metric Name",'
    '"Metric Unit","Metric Value"\n'
)


def _row(ident, metric, value):
    return (f'"{ident}","1","app","host","k","1","7","s",'
            f'"{metric}","u","{value}"\n')


class TestCorruptedNcuCsv:
    def test_truncated_line_skipped(self):
        text = (
            NCU_HEADER
            + _row(0, "smsp__inst_executed.avg.per_cycle_active", "0.5")
            + '"1","1","app"\n'  # truncated row
        )
        profile = parse_ncu_csv(text)
        assert len(profile.kernels) == 1

    def test_non_numeric_values_skipped(self):
        text = (
            NCU_HEADER
            + _row(0, "smsp__inst_executed.avg.per_cycle_active", "n/a")
            + _row(0, "smsp__inst_issued.avg.per_cycle_active", "0.5")
        )
        profile = parse_ncu_csv(text)
        assert "smsp__inst_executed.avg.per_cycle_active" not in \
            profile.kernels[0].metrics
        assert profile.kernels[0].metrics[
            "smsp__inst_issued.avg.per_cycle_active"
        ] == 0.5

    def test_kernel_names_with_commas_survive(self):
        text = (
            NCU_HEADER
            + '"0","1","app","host","kern<float, 4>(float*, int)","1",'
              '"7","s","smsp__inst_executed.avg.per_cycle_active","u",'
              '"0.4"\n'
        )
        profile = parse_ncu_csv(text)
        assert profile.kernels[0].kernel_name == \
            "kern<float, 4>(float*, int)"

    def test_all_rows_bad_raises(self):
        text = NCU_HEADER + _row(0, "m", "not-a-number")
        with pytest.raises(ProfilerError, match="no metric rows"):
            parse_ncu_csv(text)


class TestCorruptedNvprofCsv:
    def test_banner_noise_tolerated(self):
        text = (
            "==1== NVPROF is profiling process 1\n"
            "==1== Warning: some counters could not be collected\n"
            '"Device","Kernel","Invocations","Metric Name",'
            '"Metric Description","Min","Max","Avg"\n'
            '"GPU (0)","k","1","ipc","desc","1.0","1.0","1.0"\n'
            "==1== Generated result file\n"
        )
        profile = parse_nvprof_csv(text)
        assert profile.kernels[0].metrics["ipc"] == 1.0

    def test_missing_avg_column_row_skipped(self):
        text = (
            '"Device","Kernel","Invocations","Metric Name",'
            '"Metric Description","Min","Max","Avg"\n'
            '"GPU (0)","k","1","ipc","desc","1.0","1.0","1.5"\n'
            '"GPU (0)","k","1","bad","desc","1.0","1.0","<err>"\n'
        )
        profile = parse_nvprof_csv(text)
        assert "bad" not in profile.kernels[0].metrics
        assert profile.kernels[0].metrics["ipc"] == 1.5


class TestInjectedCsvFaults:
    """The ``profiler.csv`` fault site drives the parsers' tolerance."""

    def _text(self, rows=6):
        body = "".join(
            _row(i, "smsp__inst_executed.avg.per_cycle_active",
                 f"0.{i + 1}")
            for i in range(rows)
        )
        return NCU_HEADER + body

    @staticmethod
    def _mangling_plan(text, key, rate=0.5):
        """First seed whose corruption actually changes ``text``."""
        from repro.resilience import FaultInjector, FaultPlan

        for seed in range(500):
            plan = FaultPlan.parse(f"seed={seed},profiler.csv@{rate}")
            if FaultInjector(plan).corrupt_text(key, text) != text:
                return plan
        raise AssertionError("no mangling seed found in 0..499")

    def test_partial_corruption_parses_remaining_rows(self):
        from repro.resilience import install_faults

        text = self._text()
        plan = self._mangling_plan(text, "ncu/unknown")
        with install_faults(plan):
            profile = parse_ncu_csv(text)
        # header survives (guaranteed by the injector); mangled rows
        # are skipped, intact ones still parse.
        assert 0 < len(profile.kernels) < 6

    def test_corruption_is_deterministic(self):
        from repro.resilience import install_faults

        text = self._text()
        plan = self._mangling_plan(text, "ncu/unknown")
        with install_faults(plan):
            first = parse_ncu_csv(text)
        with install_faults(plan):
            second = parse_ncu_csv(text)
        assert [k.metrics for k in first.kernels] == \
            [k.metrics for k in second.kernels]

    def test_rate_one_fires_for_every_key(self):
        from repro.resilience import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan.parse("seed=2,profiler.csv"))
        assert all(
            injector.decide("profiler.csv", f"ncu/app{i}")
            for i in range(32)
        )

    def test_nvprof_parser_shares_the_site(self):
        from repro.resilience import install_faults

        text = (
            '"Device","Kernel","Invocations","Metric Name",'
            '"Metric Description","Min","Max","Avg"\n'
            + "".join(
                f'"GPU (0)","k{i}","1","ipc","desc","1.0","1.0","1.0"\n'
                for i in range(6)
            )
        )
        plan = self._mangling_plan(text, "nvprof/unknown")
        with install_faults(plan):
            profile = parse_nvprof_csv(text)
        assert 0 < len(profile.kernels) < 6


class TestAnalyzerUnderBadData:
    def _device(self):
        return DeviceModel(
            name="T", compute_capability=ComputeCapability(7, 5),
            ipc_max=2.0, subpartitions=2,
        )

    def test_nan_metric_rejected_via_conservation(self):
        analyzer = TopDownAnalyzer(self._device())
        profile = KernelProfile("k", 0, {
            "smsp__inst_executed.avg.per_cycle_active": float("nan"),
            "smsp__thread_inst_executed_per_inst_executed.ratio": 32.0,
            "smsp__inst_issued.avg.per_cycle_active": 0.5,
            ncu_stall_metric_name(WarpState.LONG_SCOREBOARD): 50.0,
        })
        with pytest.raises(AnalysisError):
            analyzer.analyze_kernel(profile)

    def test_inf_metric_clamped_or_rejected(self):
        analyzer = TopDownAnalyzer(self._device())
        profile = KernelProfile("k", 0, {
            "smsp__inst_executed.avg.per_cycle_active": float("inf"),
            "smsp__thread_inst_executed_per_inst_executed.ratio": 32.0,
            "smsp__inst_issued.avg.per_cycle_active": float("inf"),
            ncu_stall_metric_name(WarpState.LONG_SCOREBOARD): 50.0,
        })
        try:
            result = analyzer.analyze_kernel(profile)
        except AnalysisError:
            return  # rejection is acceptable
        result.check_conservation()  # if accepted, must stay consistent

    def test_wildly_overreported_stalls_still_conserve(self):
        analyzer = TopDownAnalyzer(self._device(),
                                   normalize_stalls=False)
        profile = KernelProfile("k", 0, {
            "smsp__inst_executed.avg.per_cycle_active": 0.3,
            "smsp__thread_inst_executed_per_inst_executed.ratio": 32.0,
            "smsp__inst_issued.avg.per_cycle_active": 0.3,
            ncu_stall_metric_name(WarpState.LONG_SCOREBOARD): 900.0,
            ncu_stall_metric_name(WarpState.NO_INSTRUCTION): 450.0,
        })
        result = analyzer.analyze_kernel(profile)
        result.check_conservation()
        # proportions of the corrupt inputs are at least preserved
        assert result.ipc(Node.MEMORY) == pytest.approx(
            2 * result.ipc(Node.FETCH)
        )
