"""Depth tests for the remaining under-covered paths: metric helper
formulas, nvprof CSV aggregation, runner helpers, session edge cases,
simulator error paths, and the tune CLI."""

import pytest

from repro.cli import main
from repro.errors import SimulationError
from repro.isa import AccessKind, LaunchConfig, ProgramBuilder
from repro.pmu import CuptiSession
from repro.pmu.metrics import MetricContext, pct_of, pct_of_sum, ratio
from repro.profilers import NvprofTool, parse_nvprof_csv
from repro.sim import SimConfig
from repro.workloads import KernelBehavior, materialize
from repro.workloads.base import Application, KernelInvocation

from tests.conftest import build_stream_kernel


class TestMetricHelpers:
    def _ctx(self, turing):
        return MetricContext(spec=turing)

    def test_ratio(self, turing):
        assert ratio("a", "b")({"a": 6.0, "b": 3.0}, self._ctx(turing)) \
            == 2.0

    def test_ratio_zero_denominator(self, turing):
        assert ratio("a", "b")({"a": 6.0, "b": 0.0}, self._ctx(turing)) \
            == 0.0

    def test_pct_of(self, turing):
        assert pct_of("a", "b")({"a": 1.0, "b": 4.0}, self._ctx(turing)) \
            == 25.0

    def test_pct_of_sum(self, turing):
        fn = pct_of_sum(["a", "b"], ["a", "b", "c"])
        events = {"a": 1.0, "b": 1.0, "c": 2.0}
        assert fn(events, self._ctx(turing)) == 50.0

    def test_pct_of_sum_zero(self, turing):
        fn = pct_of_sum(["a"], ["b"])
        assert fn({"a": 1.0, "b": 0.0}, self._ctx(turing)) == 0.0


class TestNvprofAggregation:
    def test_min_max_avg_over_differing_invocations(self, pascal):
        """Two invocations of the same kernel name with different work
        produce a real Min/Max spread in the CSV."""
        small = materialize(KernelBehavior(
            name="k", loads_per_iter=1, iterations=2, blocks=15,
        ))
        big = materialize(KernelBehavior(
            name="k", loads_per_iter=1, iterations=8, blocks=15,
        ))
        app = Application("vary", "t", (
            KernelInvocation(*small), KernelInvocation(*big),
        ))
        tool = NvprofTool(pascal, SimConfig(seed=2))
        profile = tool.profile_application(app, ["ipc"])
        csv_text = tool.to_csv(profile)
        row = next(l for l in csv_text.splitlines() if '"ipc"' in l)
        cells = [c.strip('"') for c in row.split('","')]
        low, high, avg = map(float, cells[-3:])
        assert low <= avg <= high
        # round-trip keeps the Avg
        parsed = parse_nvprof_csv(csv_text, application="vary")
        assert parsed.kernels[0].metrics["ipc"] == pytest.approx(
            avg, abs=1e-4
        )


class TestRunnerHelpers:
    def test_suite_run_means(self, turing):
        from repro.core import Node
        from repro.experiments.runner import profile_suite
        from repro.workloads.base import Suite
        from repro.workloads import rodinia

        mini = Suite("mini", tuple(rodinia().applications[:2]))
        run = profile_suite(turing, mini)
        assert len(run.app_names) == 2
        assert 0.0 < run.mean_fraction(Node.BACKEND) < 1.0
        assert 0.0 <= run.mean_degradation_share(Node.MEMORY) <= 1.0

    def test_empty_run_means_zero(self, turing):
        from repro.core import Node
        from repro.experiments.runner import SuiteRun

        run = SuiteRun(spec=turing, suite_name="x")
        assert run.mean_fraction(Node.RETIRE) == 0.0
        assert run.mean_degradation_share(Node.MEMORY) == 0.0


class TestSessionEdgeCases:
    def test_empty_metric_list_baseline_only(self, turing):
        session = CuptiSession(turing, SimConfig(seed=1))
        prog = build_stream_kernel(iterations=2)
        collected = session.collect(
            prog, LaunchConfig(blocks=4, threads_per_block=64), []
        )
        assert collected.metrics == {}
        assert collected.plan.num_passes == 1  # baseline pass only
        assert collected.native_cycles > 0

    def test_overhead_property_with_zero_native(self):
        from repro.pmu.cupti import CollectedKernel
        from repro.pmu.passes import PassPlan

        ck = CollectedKernel(
            kernel_name="k", metrics={}, events={},
            plan=PassPlan((), (), ()), native_cycles=0,
            profiled_cycles=100, sim_result=None,
        )
        assert ck.overhead == 1.0


class TestSimulatorErrorPaths:
    def test_fast_forward_respects_cycle_budget(self, turing):
        """A kernel sleeping past max_cycles dies in the fast-forward
        path, not by spinning."""
        b = ProgramBuilder("sleep_forever")
        b.pattern("o", AccessKind.STREAM, working_set_bytes=4096)
        from repro.isa import Instruction, Opcode

        for _ in range(200):
            b.emit(Instruction(Opcode.NANOSLEEP))
        r = b.iadd()
        b.stg("o", r)
        prog = b.build(iterations=100)
        from repro.sim import simulate_kernel

        with pytest.raises(SimulationError, match="exceeded"):
            simulate_kernel(
                turing, prog, LaunchConfig(blocks=1, threads_per_block=32),
                SimConfig(seed=1, max_cycles=3000),
            )

    def test_error_message_names_kernel(self, turing):
        prog = build_stream_kernel("who_am_i", iterations=64)
        from repro.sim import simulate_kernel

        with pytest.raises(SimulationError, match="who_am_i"):
            simulate_kernel(
                turing, prog,
                LaunchConfig(blocks=72, threads_per_block=256),
                SimConfig(seed=1, max_cycles=100),
            )


class TestTuneCli:
    def test_tune_subcommand(self, capsys):
        rc = main(["tune", "--app", "nn", "--threads", "8192"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best" in out and "speedup" in out
