"""Parallel execution must be bit-identical to serial execution.

These tests drive real process pools (small worker counts, tiny
kernels) and compare against serial ground truth: the engine merges
worker results in deterministic order, so every counter, metric and
Top-Down fraction must match exactly — not approximately.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import TopDownAnalyzer
from repro.core.tables import metric_names_for_level
from repro.experiments.runner import PAPER_GPUS, profile_suite
from repro.isa import LaunchConfig
from repro.lint import bundled_suites
from repro.pmu.cupti import CuptiSession
from repro.profilers import tool_for
from repro.sim import GPUSimulator, SimConfig, engine_context
from repro.sim.engine import ExecutionEngine, current_engine, resolve_jobs

from tests.conftest import build_compute_kernel, build_stream_kernel

LAUNCH = LaunchConfig(blocks=12, threads_per_block=128)


class TestEnginePlumbing:
    def test_default_engine_is_serial_passthrough(self):
        engine = current_engine()
        assert not engine.parallel
        assert engine.cache is None

    def test_engine_context_installs_and_restores(self):
        with engine_context(jobs=2) as engine:
            assert current_engine() is engine
            assert engine.parallel
        assert not current_engine().parallel

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)
        with pytest.raises(ValueError):
            ExecutionEngine(jobs=0)


class TestBatchDeterminism:
    def test_batch_matches_serial_and_dedupes(self, turing):
        config = SimConfig(seed=0)
        stream = build_stream_kernel()
        compute = build_compute_kernel()
        items = [
            (turing, stream, LAUNCH, config),
            (turing, compute, LAUNCH, config),
            (turing, build_stream_kernel(), LAUNCH, config),  # content dup
        ]
        serial = [
            GPUSimulator(turing, config).launch(p, l)
            for _, p, l, _ in items
        ]
        with engine_context(jobs=2) as engine:
            batch = engine.simulate_batch(items)
            assert engine.stats.sim_calls == 2  # dup simulated once
        for got, want in zip(batch, serial):
            assert got.per_sm == want.per_sm
            assert got.duration_cycles == want.duration_cycles
        assert batch[0].per_sm == batch[2].per_sm

    def test_multi_sm_fanout_bit_identical(self, pascal):
        config = SimConfig(seed=5, simulated_sms=3)
        prog = build_stream_kernel()
        serial = GPUSimulator(pascal, config).launch(prog, LAUNCH)
        with engine_context(jobs=3) as engine:
            parallel = GPUSimulator(pascal, config).launch(prog, LAUNCH)
            assert engine.stats.sm_tasks == 3
        assert parallel.per_sm == serial.per_sm
        assert parallel.duration_cycles == serial.duration_cycles

    def test_share_l2_falls_back_to_serial(self, pascal):
        """share_l2 SMs mutate one shared SectorCache, so the engine
        must refuse the cross-SM fan-out and the results must equal the
        (sequential) serial path exactly."""
        config = SimConfig(seed=5, simulated_sms=3, share_l2=True)
        prog = build_stream_kernel()
        serial = GPUSimulator(pascal, config).launch(prog, LAUNCH)
        with engine_context(jobs=3) as engine:
            parallel = GPUSimulator(pascal, config).launch(prog, LAUNCH)
            assert engine.stats.sm_tasks == 0  # fan-out refused
        assert parallel.per_sm == serial.per_sm

    def test_execute_replay_mode_parallel(self, turing):
        """Genuine replay passes fan out but still re-simulate."""
        prog = build_stream_kernel()
        metrics = metric_names_for_level(turing.compute_capability, 3)
        serial_session = CuptiSession(turing, SimConfig(seed=0),
                                      replay="execute")
        serial = serial_session.collect(prog, LAUNCH, metrics)
        with engine_context(jobs=2) as engine:
            session = CuptiSession(turing, SimConfig(seed=0),
                                   replay="execute")
            parallel = session.collect(prog, LAUNCH, metrics)
            # every replay pass truly re-ran (nothing memoized away).
            assert engine.stats.sim_calls >= parallel.plan.num_passes
        assert parallel.metrics == serial.metrics
        assert parallel.events == serial.events


class TestCrossProcessDeterminism:
    """Simulation must not depend on ``PYTHONHASHSEED``.

    The seed repository derived the per-pattern address stream from
    builtin ``hash(pattern.name)``, which CPython randomizes per
    process — so RANDOM-pattern kernels simulated to *different*
    counters on every run.  A persistent cache makes that fatal: an
    entry stored by one process would disagree with what any other
    process re-simulates.  ``stable_str_hash`` fixed it; this pins the
    fix by simulating the same kernel under two forced hash seeds.
    """

    SCRIPT = (
        "from repro.arch import get_gpu\n"
        "from repro.isa import AccessKind, LaunchConfig, ProgramBuilder\n"
        "from repro.sim import GPUSimulator, SimConfig\n"
        "b = ProgramBuilder('gather')\n"
        "b.pattern('x', AccessKind.RANDOM, working_set_bytes=1 << 20)\n"
        "b.stg('x', b.ffma(b.ldg('x'), b.ldg('x')))\n"
        "prog = b.build(iterations=4)\n"
        "res = GPUSimulator(get_gpu('NVIDIA Quadro RTX 4000'),"
        " SimConfig(seed=0)).launch("
        "prog, LaunchConfig(blocks=4, threads_per_block=128))\n"
        "print(sorted(vars(res.counters).items()))\n"
    )

    def test_simulation_ignores_pythonhashseed(self):
        import os
        import subprocess
        import sys

        outputs = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            proc = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]

    def test_stable_str_hash_is_pinned(self):
        """FNV-1a 64 reference values — any drift silently retires
        every persistent cache, so changing them must be deliberate."""
        from repro.sim.rng import stable_str_hash

        assert stable_str_hash("") == 0xCBF29CE484222325
        assert stable_str_hash("a") == 0xAF63DC4C8601EC8C
        assert stable_str_hash("gather") == stable_str_hash("gather")
        assert stable_str_hash("gather") != stable_str_hash("stream")


class TestSuiteDeterminism:
    """The ISSUE acceptance bar: one suite, both paper GPUs, ``-j 4``
    vs serial, bit-identical profiles and Top-Down results."""

    @pytest.mark.parametrize("gpu", PAPER_GPUS)
    def test_suite_parallel_equals_serial(self, gpu):
        suite = bundled_suites()["synth"]
        serial = profile_suite(gpu, suite, seed=0)
        with engine_context(jobs=4):
            parallel = profile_suite(gpu, suite, seed=0)
        assert serial.app_names == parallel.app_names
        for name in serial.app_names:
            sp, pp = serial.profiles[name], parallel.profiles[name]
            assert sp == pp  # exact: every metric of every kernel
            sr, pr = serial.results[name], parallel.results[name]
            assert sr.values == pr.values

    def test_application_profile_parallel_equals_serial(self, turing):
        """Many invocations of one app fan out via profile_application."""
        from repro.workloads import srad_application

        app = srad_application(12)
        metrics = metric_names_for_level(turing.compute_capability, 3)
        analyzer = TopDownAnalyzer(turing)

        def run():
            tool = tool_for(turing, config=SimConfig(seed=0))
            return tool.profile_application(app, metrics)

        serial = run()
        with engine_context(jobs=4) as engine:
            parallel = run()
            assert engine.stats.batch_tasks > 0
        assert serial == parallel
        assert analyzer.analyze_application(serial).values == \
            analyzer.analyze_application(parallel).values

    def test_warm_cache_parallel_equals_serial(self, turing, tmp_path):
        """jobs + persistent cache together: cold parallel run, then a
        warm run that simulates nothing — all three bit-identical."""
        suite = bundled_suites()["synth"]
        serial = profile_suite(turing, suite, seed=0)
        with engine_context(jobs=2, cache_dir=tmp_path):
            cold = profile_suite(turing, suite, seed=0)
        with engine_context(jobs=2, cache_dir=tmp_path) as engine:
            warm = profile_suite(turing, suite, seed=0)
            assert engine.stats.sim_calls == 0
            assert engine.cache.stats.hits > 0
        for name in serial.app_names:
            assert serial.profiles[name] == cold.profiles[name]
            assert serial.profiles[name] == warm.profiles[name]
            assert serial.results[name].values == warm.results[name].values
