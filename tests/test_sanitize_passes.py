"""Hazard-seeded corpus for the sanitizer passes.

Every program here carries exactly one *injected* defect at a known
instruction index; the corresponding pass must flag exactly that site
— and nothing else may fire.  A clean negative control and a sweep of
all 152 bundled app/GPU cells pin the zero-false-positive guarantee,
and hypothesis injectors vary the surrounding code to show the report
pc tracks the defect, not the program shape.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import get_gpu
from repro.isa import (
    AccessKind,
    Instruction,
    LaunchConfig,
    Opcode,
    ProgramBuilder,
)
from repro.lint import Severity, bundled_suites
from repro.sanitize import (
    RaceCandidate,
    divergent_barrier_candidates,
    race_candidates,
    sanitize_application,
    sanitize_program,
)

SPEC = get_gpu("rtx4000")
#: two warps per block so inter-warp candidates are live.
MULTI_WARP = LaunchConfig(blocks=2, threads_per_block=64,
                          shared_bytes_per_block=1 << 14)
ONE_WARP = LaunchConfig(blocks=2, threads_per_block=32,
                        shared_bytes_per_block=1 << 14)


def _findings(program, launch=MULTI_WARP):
    """(rule, instruction, severity) triples of a static sanitize run."""
    report = sanitize_program(program, launch, SPEC)
    return sorted(
        (d.rule, d.location.instruction, d.severity)
        for d in report.diagnostics
    )


def _shared_builder(name):
    b = ProgramBuilder(name)
    b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
    b.pattern("tile", AccessKind.STREAM, working_set_bytes=1 << 12)
    return b


# ----------------------------------------------------------------------
# racecheck
# ----------------------------------------------------------------------
class TestRacecheckCorpus:
    def test_raw_race_store_then_load(self):
        b = _shared_builder("race_raw")
        r = b.ldg("x")       # pc 0
        b.sts("tile", r)     # pc 1
        t = b.lds("tile")    # pc 2: RAW against pc 1, no BAR between
        b.stg("x", t)        # pc 3
        prog = b.build()
        cands = race_candidates(prog, MULTI_WARP)
        assert [(c.hazard, c.report_pc, c.kind) for c in cands] == [
            ("WAW", 1, "inter-warp"),   # two warps at the same STS
            ("RAW", 2, "inter-warp"),
        ]
        assert _findings(prog) == [
            ("SAN-RACE", 1, Severity.WARNING),
            ("SAN-RACE", 2, Severity.WARNING),
        ]

    def test_war_race_load_then_store(self):
        b = _shared_builder("race_war")
        r = b.ldg("x")       # pc 0
        t = b.lds("tile")    # pc 1
        b.sts("tile", r)     # pc 2: WAR against pc 1
        b.stg("x", t)        # pc 3
        prog = b.build()
        hazards = {(c.hazard, c.report_pc) for c in
                   race_candidates(prog, MULTI_WARP)}
        assert hazards == {("WAR", 2), ("WAW", 2)}

    def test_intra_warp_sibling_arm_race_is_error(self):
        b = _shared_builder("race_sibling")
        r = b.ldg("x")                                       # pc 0
        b.branch(if_length=1, else_length=1,
                 taken_fraction=0.5, src=r)                  # pc 1
        b.sts("tile", r)                                     # pc 2 (if)
        b.lds("tile")                                        # pc 3 (else)
        b.stg("x", r)                                        # pc 4
        prog = b.build()
        cands = race_candidates(prog, ONE_WARP)
        assert [(c.kind, c.hazard, c.report_pc) for c in cands] == [
            ("intra-warp", "RAW", 3),
        ]
        assert _findings(prog, ONE_WARP) == [
            ("SAN-RACE", 3, Severity.ERROR),
        ]

    def test_same_pc_store_loop_is_waw(self):
        b = _shared_builder("race_loop_waw")
        r = b.ldg("x")       # pc 0
        b.sts("tile", r)     # pc 1
        b.stg("x", r)        # pc 2
        prog = b.build(iterations=4)
        cands = race_candidates(prog, MULTI_WARP)
        assert [(c.hazard, c.store_pc, c.other_pc) for c in cands] == [
            ("WAW", 1, 1),
        ]

    def test_barrier_separates_single_warp_clean(self):
        b = _shared_builder("race_fenced")
        r = b.ldg("x")       # pc 0
        b.sts("tile", r)     # pc 1
        b.barrier()          # pc 2
        t = b.lds("tile")    # pc 3
        b.stg("x", t)        # pc 4
        prog = b.build()
        assert race_candidates(prog, ONE_WARP) == []
        assert _findings(prog, ONE_WARP) == []

    def test_divergent_barrier_does_not_separate(self):
        # the only BAR on the path sits inside a divergent arm — it
        # must not count as a fence, so the RAW candidate survives.
        b = _shared_builder("race_bad_fence")
        r = b.ldg("x")                                       # pc 0
        b.sts("tile", r)                                     # pc 1
        b.branch(if_length=1, taken_fraction=0.5, src=r)     # pc 2
        b.barrier()                                          # pc 3 (arm!)
        t = b.lds("tile")                                    # pc 4
        b.stg("x", t)                                        # pc 5
        prog = b.build()
        hazards = {(c.hazard, c.report_pc)
                   for c in race_candidates(prog, MULTI_WARP)}
        assert ("RAW", 4) in hazards


# ----------------------------------------------------------------------
# synccheck
# ----------------------------------------------------------------------
class TestSynccheckCorpus:
    def test_divergent_barrier_flagged_per_arm(self):
        b = _shared_builder("sync_divergent")
        r = b.ldg("x")                                       # pc 0
        b.branch(if_length=1, else_length=1,
                 taken_fraction=0.5, src=r)                  # pc 1
        b.barrier()                                          # pc 2 (if)
        b.barrier()                                          # pc 3 (else)
        b.stg("x", r)                                        # pc 4
        prog = b.build()
        assert divergent_barrier_candidates(prog) == [2, 3]
        assert _findings(prog, ONE_WARP) == [
            ("SAN-SYNC-DIVERGENT", 2, Severity.ERROR),
            ("SAN-SYNC-DIVERGENT", 3, Severity.ERROR),
        ]

    def test_unbalanced_arm_barriers(self):
        b = _shared_builder("sync_mismatch")
        r = b.ldg("x")                                       # pc 0
        b.branch(if_length=2, else_length=1,
                 taken_fraction=0.5, src=r)                  # pc 1
        b.iadd(r)                                            # pc 2 (if)
        b.barrier()                                          # pc 3 (if)
        b.fadd(r)                                            # pc 4 (else)
        b.stg("x", r)                                        # pc 5
        prog = b.build()
        got = _findings(prog, ONE_WARP)
        assert ("SAN-SYNC-MISMATCH", 1, Severity.WARNING) in got
        assert ("SAN-SYNC-MISMATCH", 5, Severity.WARNING) in got
        assert ("SAN-SYNC-DIVERGENT", 3, Severity.ERROR) in got
        assert len(got) == 3

    def test_uniform_branch_barrier_is_fine(self):
        b = _shared_builder("sync_uniform")
        r = b.ldg("x")                                       # pc 0
        b.branch(if_length=1, taken_fraction=1.0, src=r)     # pc 1
        b.barrier()                                          # pc 2: all
        b.stg("x", r)                                        # pc 3
        assert _findings(b.build(), ONE_WARP) == []


# ----------------------------------------------------------------------
# initcheck
# ----------------------------------------------------------------------
class TestInitcheckCorpus:
    def test_never_written_register_is_error(self):
        b = _shared_builder("init_never")
        r = b.ldg("x")       # pc 0
        ghost = b.reg()
        out = b.ffma(ghost, r)   # pc 1: first read of a virgin register
        b.stg("x", out)          # pc 2
        assert _findings(b.build(), ONE_WARP) == [
            ("SAN-INIT", 1, Severity.ERROR),
        ]

    def test_one_arm_definition_is_warning_at_join(self):
        b = _shared_builder("init_one_arm")
        r = b.ldg("x")                                       # pc 0
        b.branch(if_length=1, taken_fraction=0.5, src=r)     # pc 1
        armed = b.iadd(r)                                    # pc 2 (if)
        b.stg("x", armed)                                    # pc 3: join read
        assert _findings(b.build(), ONE_WARP) == [
            ("SAN-INIT", 3, Severity.WARNING),
        ]

    def test_loop_carried_definition_is_warning(self):
        b = _shared_builder("init_carried")
        acc = b.reg()
        b.stg("x", acc)                                      # pc 0
        r = b.ldg("x")                                       # pc 1
        b.emit(Instruction(Opcode.IADD, dst=acc, srcs=(r,))) # pc 2
        assert _findings(b.build(iterations=3), ONE_WARP) == [
            ("SAN-INIT", 0, Severity.WARNING),
        ]

    def test_unstaged_shared_tile(self):
        b = _shared_builder("init_shared")
        t = b.lds("tile")    # pc 0: no STS anywhere stages the tile
        b.stg("x", t)        # pc 1
        assert _findings(b.build(), ONE_WARP) == [
            ("SAN-INIT-SHARED", 0, Severity.WARNING),
        ]


# ----------------------------------------------------------------------
# memcheck
# ----------------------------------------------------------------------
class TestMemcheckCorpus:
    def test_strided_overrun(self):
        b = ProgramBuilder("mem_overrun")
        b.pattern("w", AccessKind.STRIDED, working_set_bytes=1024,
                  stride_elements=16)
        t = b.ldg("w")       # pc 0: 31*64+4 = 1988 B span vs 1024 B
        b.stg("w", t)        # pc 1
        assert _findings(b.build(), ONE_WARP) == [
            ("SAN-MEM-OVERRUN", 0, Severity.ERROR),
        ]

    def test_misaligned_base_address(self):
        b = ProgramBuilder("mem_misalign")
        b.pattern("w", AccessKind.STREAM, working_set_bytes=1024)
        t = b.ldg("w")
        b.stg("w", t)
        prog = b.build()
        skewed = dataclasses.replace(
            prog,
            patterns=(dataclasses.replace(prog.patterns[0],
                                          base_address=0x2),),
        )
        assert _findings(skewed, ONE_WARP) == [
            ("SAN-MEM-MISALIGN", 0, Severity.WARNING),
        ]

    def test_ragged_working_set(self):
        b = ProgramBuilder("mem_ragged")
        b.pattern("w", AccessKind.STREAM, working_set_bytes=1030)
        t = b.ldg("w")       # pc 0: 1030 % 4 != 0
        b.stg("w", t)
        assert _findings(b.build(), ONE_WARP) == [
            ("SAN-MEM-MISALIGN", 0, Severity.WARNING),
        ]

    def test_shared_tile_exceeds_allocation(self):
        b = _shared_builder("mem_shared_extent")
        r = b.ldg("x")       # pc 0
        b.sts("tile", r)     # pc 1
        b.barrier()          # pc 2
        t = b.lds("tile")    # pc 3
        b.stg("x", t)        # pc 4
        tight = LaunchConfig(blocks=2, threads_per_block=32,
                             shared_bytes_per_block=1 << 10)
        assert _findings(b.build(), tight) == [
            ("SAN-MEM-SHARED-EXTENT", 1, Severity.ERROR),
        ]

    def test_clean_kernel_is_silent(self):
        b = _shared_builder("clean")
        r = b.ldg("x")
        b.sts("tile", r)
        b.barrier()
        t = b.lds("tile")
        out = b.ffma(t, r)
        b.stg("x", out)
        assert _findings(b.build(iterations=4), ONE_WARP) == []


# ----------------------------------------------------------------------
# hypothesis injectors: the report pc tracks the defect, not the shape
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(filler=st.integers(min_value=0, max_value=6))
def test_injected_race_tracks_load_pc(filler):
    b = _shared_builder("inj_race")
    r = b.ldg("x")
    b.sts("tile", r)                 # pc 1
    for _ in range(filler):
        r = b.ffma(r, r)
    load_pc = 2 + filler
    t = b.lds("tile")
    b.stg("x", t)
    cands = race_candidates(b.build(), MULTI_WARP)
    assert ("RAW", load_pc) in {(c.hazard, c.report_pc) for c in cands}


@settings(max_examples=25, deadline=None)
@given(if_length=st.integers(min_value=1, max_value=4),
       iterations=st.integers(min_value=1, max_value=4))
def test_injected_one_arm_def_tracks_join_pc(if_length, iterations):
    b = _shared_builder("inj_init")
    r = b.ldg("x")
    b.branch(if_length=if_length, taken_fraction=0.5, src=r)
    for _ in range(if_length - 1):
        r = b.iadd(r)
    armed = b.iadd(r)                # last arm instruction defines it
    join_pc = 2 + if_length
    b.stg("x", armed)
    got = _findings(b.build(iterations=iterations), ONE_WARP)
    assert ("SAN-INIT", join_pc, Severity.WARNING) in got
    assert all(rule == "SAN-INIT" for rule, _, _ in got)


@settings(max_examples=30, deadline=None)
@given(stride=st.integers(min_value=1, max_value=64))
def test_injected_overrun_threshold_is_exact(stride):
    b = ProgramBuilder("inj_overrun")
    b.pattern("w", AccessKind.STRIDED, working_set_bytes=1024,
              stride_elements=stride)
    t = b.ldg("w")
    b.stg("w", t)
    got = _findings(b.build(), ONE_WARP)
    span = 31 * stride * 4 + 4
    if span > 1024:
        assert got == [("SAN-MEM-OVERRUN", 0, Severity.ERROR)]
    else:
        assert got == []


# ----------------------------------------------------------------------
# zero false positives across the bundled corpus (76 apps x 2 GPUs)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("gpu", ("gtx1070", "rtx4000"))
def test_bundled_corpus_is_clean_after_waivers(gpu):
    spec = get_gpu(gpu)
    checked = 0
    for suite in bundled_suites().values():
        for app in suite:
            report = sanitize_application(app, spec)
            active = report.active()
            assert not active, (
                f"{app.suite}/{app.name}: unexpected active sanitize "
                f"finding(s): {[d.rule for d in active]}"
            )
            checked += 1
    assert checked == 76
