"""Tests for TopDownResult views, dynamic series, phase detection,
overhead records, and report rendering."""

import pytest

from repro.arch import ComputeCapability
from repro.core import (
    DeviceModel,
    Node,
    OverheadRecord,
    TopDownAnalyzer,
    TopDownResult,
    detect_phases,
    dynamic_analysis,
    format_table,
    hierarchy_report,
    level1_report,
    level2_report,
    level3_report,
    mean_overhead,
    stacked_bar,
)
from repro.core.dynamic import DynamicSeries
from repro.errors import AnalysisError
from repro.pmu import ncu_stall_metric_name
from repro.profilers import ApplicationProfile, KernelProfile
from repro.sim import WarpState


def make_result(retire=0.5, memory=1.0, fetch=0.3, name="r",
                constant=0.0, unattributed=0.2, ipc_max=2.0):
    values = {
        Node.RETIRE: retire,
        Node.BRANCH: 0.0, Node.REPLAY: 0.0, Node.DIVERGENCE: 0.0,
        Node.FETCH: fetch, Node.DECODE: 0.0,
        Node.CORE: 0.0, Node.MEMORY: memory,
        Node.FRONTEND: fetch, Node.BACKEND: memory,
        Node.UNATTRIBUTED: unattributed,
        Node.L3_L1_DEPENDENCY: memory - constant,
        Node.L3_CONSTANT_MEMORY: constant,
        Node.L3_INSTRUCTION_FETCH: fetch,
    }
    return TopDownResult(name=name, device="d", ipc_max=ipc_max,
                         values=values)


class TestTopDownResult:
    def test_fraction(self):
        r = make_result(retire=0.5)
        assert r.fraction(Node.RETIRE) == pytest.approx(0.25)

    def test_degradation(self):
        r = make_result(retire=0.5)
        assert r.ipc_degradation == pytest.approx(1.5)

    def test_levels(self):
        r = make_result()
        assert set(r.level1()) == {Node.RETIRE, Node.DIVERGENCE,
                                   Node.FRONTEND, Node.BACKEND,
                                   Node.UNATTRIBUTED}
        assert Node.MEMORY in r.level2()
        assert Node.L3_L1_DEPENDENCY in r.level3()

    def test_level_accessor_validation(self):
        with pytest.raises(AnalysisError):
            make_result().level(4)

    def test_degradation_share_sums(self):
        r = make_result(retire=0.5, memory=1.0, fetch=0.3)
        shares = r.degradation_share(level=2)
        total = sum(shares.values())
        # memory + fetch = 1.3 of 1.5 lost (0.2 unattributed)
        assert total == pytest.approx(1.3 / 1.5)

    def test_degradation_share_zero_loss(self):
        r = make_result(retire=2.0, memory=0.0, fetch=0.0, unattributed=0.0)
        assert all(v == 0.0 for v in r.degradation_share(level=2).values())

    def test_conservation_violation_detected(self):
        r = TopDownResult(
            name="bad", device="d", ipc_max=2.0,
            values={Node.RETIRE: 0.5, Node.DIVERGENCE: 0.0,
                    Node.FRONTEND: 0.0, Node.BACKEND: 0.0,
                    Node.UNATTRIBUTED: 0.0},
        )
        with pytest.raises(AnalysisError, match="level-1"):
            r.check_conservation()

    def test_bad_ipc_max(self):
        r = make_result(ipc_max=0.0)
        with pytest.raises(AnalysisError):
            r.fraction(Node.RETIRE)

    def test_summary_row(self):
        row = make_result().summary_row()
        assert set(row) == {"retire", "divergence", "frontend_bound",
                            "backend_bound", "unattributed"}


def _phase_profile(n=40, break_at=20):
    """Synthetic app: retire jumps at `break_at`."""
    device = DeviceModel(
        name="T", compute_capability=ComputeCapability(7, 5),
        ipc_max=2.0, subpartitions=2,
    )
    kernels = []
    for i in range(n):
        ipc = 0.2 if i < break_at else 0.6
        kernels.append(KernelProfile(
            "k", i,
            {
                "smsp__inst_executed.avg.per_cycle_active": ipc,
                "smsp__thread_inst_executed_per_inst_executed.ratio": 32.0,
                "smsp__inst_issued.avg.per_cycle_active": ipc,
                ncu_stall_metric_name(WarpState.LONG_SCOREBOARD): 60.0,
            },
            duration_cycles=100,
        ))
    app = ApplicationProfile(
        application="a", device_name="T",
        compute_capability=ComputeCapability(7, 5), kernels=tuple(kernels),
    )
    return TopDownAnalyzer(device), app


class TestDynamic:
    def test_series_length_and_values(self):
        analyzer, app = _phase_profile()
        series = dynamic_analysis(analyzer, app, "k")
        assert len(series) == 40
        retire = series.series(Node.RETIRE)
        assert retire[0] == pytest.approx(0.2)
        assert retire[-1] == pytest.approx(0.6)

    def test_level1_series_keys(self):
        analyzer, app = _phase_profile(n=20, break_at=10)
        series = dynamic_analysis(analyzer, app, "k")
        assert set(series.level1_series()) == {
            Node.RETIRE, Node.DIVERGENCE, Node.FRONTEND, Node.BACKEND
        }

    def test_phase_detection_finds_break(self):
        analyzer, app = _phase_profile(n=40, break_at=20)
        series = dynamic_analysis(analyzer, app, "k")
        phases = detect_phases(series, min_length=5)
        assert len(phases) == 2
        assert phases[0].end == 20
        assert phases[1].start == 20

    def test_homogeneous_series_single_phase(self):
        analyzer, app = _phase_profile(n=40, break_at=0)  # all phase 2
        series = dynamic_analysis(analyzer, app, "k")
        phases = detect_phases(series, min_length=5)
        assert len(phases) == 1
        assert (phases[0].start, phases[0].end) == (0, 40)

    def test_phase_summary_is_mean(self):
        analyzer, app = _phase_profile(n=30, break_at=15)
        series = dynamic_analysis(analyzer, app, "k")
        phases = detect_phases(series, min_length=5)
        # smsp ipc 0.2 x 2 smsp = 0.4 per-SM retire; /ipc_max 2.0 = 0.2
        assert phases[0].summary.fraction(Node.RETIRE) == pytest.approx(0.2)
        assert phases[0].length == 15

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            detect_phases(DynamicSeries(kernel_name="k", results=()))


class TestOverhead:
    def test_record_ratio(self):
        r = OverheadRecord("a", native_cycles=100, profiled_cycles=1300,
                           passes=8)
        assert r.overhead == pytest.approx(13.0)

    def test_zero_native_defaults_to_one(self):
        assert OverheadRecord("a", 0, 10, 1).overhead == 1.0

    def test_mean_overhead(self):
        records = [
            OverheadRecord("a", 100, 1000, 8),
            OverheadRecord("b", 100, 1600, 8),
        ]
        assert mean_overhead(records) == pytest.approx(13.0)
        assert mean_overhead([]) == 1.0


class TestReports:
    def test_format_table_alignment(self):
        out = format_table(["A", "Blong"], [["x", "y"], ["longer", "z"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")

    def test_stacked_bar_width(self):
        bar = stacked_bar({Node.RETIRE: 0.5, Node.BACKEND: 0.5}, width=20)
        assert len(bar) == 22  # brackets + width

    def test_level_reports_render(self):
        results = [make_result(name="app1"), make_result(name="app2")]
        assert "app1" in level1_report(results)
        assert "Memory" in level2_report(results)
        assert "L1 Data" in level3_report(results)

    def test_hierarchy_report(self):
        text = hierarchy_report(make_result(constant=0.4))
        assert "Retire" in text
        assert "Constant" in text
        assert "Unattributed" in text
