"""Bit-identity proof for the event-driven cycle loop.

Three layers of evidence that the wake-queue scheduler in
``repro.sim.sm`` is counter-for-counter identical to the per-cycle
scan it replaced:

1. a golden fixture (``tests/data/golden_sim_counters.json``) produced
   by the pre-event-loop implementation — every bundled suite on both
   paper GPUs must still reproduce it bit for bit;
2. randomized kernels compared live against the frozen seed loop
   (:class:`~repro.sim.sm_reference.ReferenceSMSimulator`), which pins
   the scan *and* the seed memory-model/address-gen/scoreboard helpers;
3. directed cases for the semantics the restructuring had to preserve:
   barrier release, EXIT drain, divergence, wide strides, constant
   reads, both schedulers, and the
   ``Σ state_cycles == warp_active_cycles`` invariant.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import get_gpu
from repro.io.counters_json import counters_from_doc, counters_to_doc
from repro.isa import AccessKind, LaunchConfig, ProgramBuilder
from repro.lint import bundled_suites
from repro.sim import SimConfig
from repro.sim.counters import EventCounters
from repro.sim.sm import SMSimulator
from repro.sim.sm_reference import ReferenceSMSimulator
from tests.test_property_sim import small_programs

GPUS = ("gtx1070", "rtx4000")
GOLDEN_PATH = (
    Path(__file__).resolve().parent / "data" / "golden_sim_counters.json"
)


def _assert_identical(live: EventCounters, ref: EventCounters,
                      label: str) -> None:
    if counters_to_doc(live) != counters_to_doc(ref):
        detail = "\n".join(live.diff(ref)) or "(doc-level difference)"
        pytest.fail(f"{label}: event loop diverged from reference\n{detail}")


# ----------------------------------------------------------------------
# 1. golden fixture: every bundled suite, both paper GPUs, both live
#    backends (the specialized driver must not fall back on any
#    bundled app — a fallback would quietly re-test the event loop)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["event", "specialized"])
@pytest.mark.parametrize("gpu", GPUS)
def test_golden_counters_all_suites(gpu, backend):
    from repro.sim.backend import simulator_class
    from repro.sim.specialize import check_supported

    sim_cls = simulator_class(backend)
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert gpu in golden["gpus"], "fixture missing this GPU"
    spec = get_gpu(gpu)
    config = SimConfig(seed=0)
    checked = 0
    for sname, suite in sorted(bundled_suites().items()):
        apps_doc = golden["gpus"][gpu][sname]
        for app in suite.applications:
            merged = EventCounters()
            for inv in app.invocations:
                if backend == "specialized":
                    assert check_supported(
                        inv.program, spec, config
                    ) is None, f"{app.name}: bundled app declined"
                sim = sim_cls(spec, inv.program, inv.launch, config)
                merged.merge(sim.run())
            if counters_to_doc(merged) != apps_doc[app.name]:
                # name the diverging counters, not two whole records.
                detail = "\n".join(
                    merged.diff(counters_from_doc(apps_doc[app.name]))
                ) or "(doc-level difference)"
                pytest.fail(
                    f"{gpu}/{sname}/{app.name}: counters diverged from "
                    f"the pre-event-loop golden fixture\n{detail}"
                )
            checked += 1
    # the fixture covers every bundled app; a silently shrunken suite
    # registry must not pass as "all apps identical".
    assert checked == sum(
        len(apps) for apps in golden["gpus"][gpu].values()
    )


# ----------------------------------------------------------------------
# 2. randomized kernels vs the frozen seed loop
# ----------------------------------------------------------------------
@given(
    program=small_programs(),
    blocks=st.sampled_from([1, 5, 17]),
    tpb=st.sampled_from([32, 96, 256]),
    scheduler=st.sampled_from(["gto", "lrr"]),
    seed=st.integers(0, 3),
)
@settings(max_examples=25, deadline=None)
def test_random_kernels_match_reference(program, blocks, tpb, scheduler,
                                        seed):
    spec = get_gpu("rtx4000")
    launch = LaunchConfig(blocks=blocks, threads_per_block=tpb)
    config = SimConfig(seed=seed, scheduler=scheduler)
    live = SMSimulator(
        spec, program, launch, config, blocks_assigned=blocks
    ).run()
    ref = ReferenceSMSimulator(
        spec, program, launch, config, blocks_assigned=blocks
    ).run()
    _assert_identical(live, ref, f"{program.name}/{scheduler}")
    live.validate()  # includes Σ state_cycles == warp_active_cycles


# ----------------------------------------------------------------------
# 3. directed semantics cases
# ----------------------------------------------------------------------
def _barrier_drain_kernel():
    b = ProgramBuilder("barrier_drain")
    b.pattern("x", AccessKind.STRIDED, working_set_bytes=1 << 20,
              stride_elements=4)
    r = b.ldg("x")
    b.barrier()
    r = b.ffma(r, r)
    b.sts("x", r)
    b.membar()
    b.stg("x", r)   # in flight at EXIT -> the warp drains
    return b.build(iterations=6)


def _divergence_kernel():
    b = ProgramBuilder("divergent")
    b.pattern("x", AccessKind.STRIDED, working_set_bytes=1 << 22,
              stride_elements=32)  # wide stride: per-lane sectors
    r = b.ldg("x")
    b.branch(if_length=2, else_length=1, taken_fraction=0.7)
    r = b.ffma(r, r)
    b.stg("x", r)
    b.imad(r, r)
    return b.build(iterations=5)


def _constant_kernel():
    b = ProgramBuilder("const_reads")
    b.pattern("c", AccessKind.UNIFORM, working_set_bytes=1 << 16)
    r = b.ldc("c")
    r = b.imad(r, r)
    b.stg("c", r)
    return b.build(iterations=10)


DIRECTED = {
    "barrier_drain": _barrier_drain_kernel,
    "divergent": _divergence_kernel,
    "const_reads": _constant_kernel,
}


@pytest.mark.parametrize("gpu", GPUS)
@pytest.mark.parametrize("kernel", sorted(DIRECTED))
@pytest.mark.parametrize("scheduler", ["gto", "lrr"])
def test_directed_cases_match_reference(gpu, kernel, scheduler):
    spec = get_gpu(gpu)
    program = DIRECTED[kernel]()
    for blocks, tpb in ((3, 128), (9, 256)):
        launch = LaunchConfig(blocks=blocks, threads_per_block=tpb)
        config = SimConfig(seed=7, scheduler=scheduler)
        live = SMSimulator(
            spec, program, launch, config, blocks_assigned=blocks
        ).run()
        ref = ReferenceSMSimulator(
            spec, program, launch, config, blocks_assigned=blocks
        ).run()
        _assert_identical(
            live, ref, f"{gpu}/{kernel}/{scheduler}/{blocks}x{tpb}"
        )
        live.validate()


def test_loop_statistics_cover_every_active_cycle():
    """processed + skipped cycles account for exactly cycles_active."""
    spec = get_gpu("rtx4000")
    program = _barrier_drain_kernel()
    launch = LaunchConfig(blocks=9, threads_per_block=128)
    sim = SMSimulator(spec, program, launch, SimConfig(seed=3),
                      blocks_assigned=9)
    counters = sim.run()
    assert sim._processed_cycles + sim._skipped_cycles == (
        counters.cycles_active
    )
    # an event-driven run of a memory-heavy kernel must actually skip
    # cycles — otherwise the wake queues are not doing their job.
    assert sim._skipped_cycles > 0
    assert sim._wake_events > 0


def test_diff_reports_field_level_divergence():
    a = EventCounters()
    b = EventCounters()
    assert a.diff(b) == []
    b.inst_executed = 5
    from repro.sim.stall_reasons import WarpState
    b.state_cycles[WarpState.SELECTED] = 2
    lines = a.diff(b)
    assert "inst_executed: 0 != 5" in lines
    assert any(line.startswith("state_cycles[SELECTED]") for line in lines)
