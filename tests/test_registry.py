"""Tests for the device registry and the paper's Table-IX devices."""

import pytest

from repro.arch import (
    GTX_1070,
    QUADRO_RTX_4000,
    ComputeCapability,
    get_gpu,
    list_gpus,
    register_gpu,
)
from repro.errors import ArchitectureError


class TestLookup:
    def test_canonical_names(self):
        assert get_gpu("NVIDIA GTX 1070") is GTX_1070
        assert get_gpu("NVIDIA Quadro RTX 4000") is QUADRO_RTX_4000

    @pytest.mark.parametrize("alias", [
        "gtx1070", "GTX-1070", "gtx 1070", "Pascal-GTX1070",
    ])
    def test_pascal_aliases(self, alias):
        assert get_gpu(alias) is GTX_1070

    @pytest.mark.parametrize("alias", ["rtx4000", "quadro rtx 4000"])
    def test_turing_aliases(self, alias):
        assert get_gpu(alias) is QUADRO_RTX_4000

    def test_unknown_gpu_lists_known(self):
        with pytest.raises(ArchitectureError, match="known GPUs"):
            get_gpu("GTX 9999")

    def test_list_gpus_contains_paper_devices(self):
        names = list_gpus()
        assert "NVIDIA GTX 1070" in names
        assert "NVIDIA Quadro RTX 4000" in names

    def test_reregistering_same_spec_is_idempotent(self):
        register_gpu(GTX_1070, "gtx1070")  # no error

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ArchitectureError):
            register_gpu(QUADRO_RTX_4000, "gtx1070")


class TestTable9Values:
    """The registered specs must carry the paper's Table IX values."""

    def test_gtx1070(self):
        spec = GTX_1070
        assert spec.compute_capability == ComputeCapability(6, 1)
        assert spec.cuda_cores == 1920
        assert spec.sm_count == 15
        assert spec.sm.subpartitions == 4
        assert spec.tdp_watts == 150
        assert spec.memory_type == "GDDR5"
        assert not spec.uses_unified_metrics

    def test_rtx4000(self):
        spec = QUADRO_RTX_4000
        assert spec.compute_capability == ComputeCapability(7, 5)
        assert spec.cuda_cores == 2304
        assert spec.sm_count == 36
        assert spec.sm.subpartitions == 2
        assert spec.tdp_watts == 160
        assert spec.memory_type == "GDDR6"
        assert spec.uses_unified_metrics

    def test_profiler_assignment_matches_paper(self):
        """§V: GTX 1070 -> nvprof, Quadro RTX 4000 -> nsight/ncu."""
        assert GTX_1070.default_profiler == "nvprof"
        assert QUADRO_RTX_4000.default_profiler == "ncu"
