"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import CacheSpec, ComputeCapability, PMUSpec
from repro.core import DeviceModel, Level1Inputs, Node, TopDownAnalyzer
from repro.pmu import ncu_stall_metric_name, schedule_passes, unified_catalog
from repro.profilers import KernelProfile, parse_metric_value
from repro.sim import SectorCache, WarpState
from repro.sim.rng import hash_u64, mix64, uniform
from repro.workloads.synth import _MixScheduler

# ---------------------------------------------------------------------------
# equation identities
# ---------------------------------------------------------------------------

ipc_values = st.floats(min_value=0.0, max_value=10.0,
                       allow_nan=False, allow_infinity=False)
fractions = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)


@given(ipc_max=st.floats(min_value=0.5, max_value=16.0),
       reported=ipc_values, eff=fractions, issued=ipc_values)
def test_level1_identity_universal(ipc_max, reported, eff, issued):
    """Equation (1) holds for ANY measured inputs after clamping."""
    lvl1 = Level1Inputs(
        ipc_max=ipc_max, ipc_reported=reported,
        warp_efficiency=eff, ipc_issued=issued,
    ).compute()
    assert lvl1.retire >= 0
    assert lvl1.branch >= -1e-12
    assert lvl1.replay >= -1e-12
    assert lvl1.stall >= 0
    total = lvl1.retire + lvl1.divergence + lvl1.stall
    assert abs(total - ipc_max) < 1e-6 * max(1.0, ipc_max)


@given(
    smsp_ipc=st.floats(min_value=0.0, max_value=1.0),
    threads=st.floats(min_value=0.0, max_value=32.0),
    issued_delta=st.floats(min_value=0.0, max_value=0.5),
    stall_pcts=st.lists(
        st.floats(min_value=0.0, max_value=40.0), min_size=3, max_size=3
    ),
)
@settings(max_examples=60)
def test_analyzer_conservation_universal(smsp_ipc, threads, issued_delta,
                                         stall_pcts):
    """The analyzer's output always satisfies the hierarchy identities,
    whatever the profiler reports."""
    device = DeviceModel(
        name="T", compute_capability=ComputeCapability(7, 5),
        ipc_max=2.0, subpartitions=2,
    )
    profile = KernelProfile("k", 0, {
        "smsp__inst_executed.avg.per_cycle_active": smsp_ipc,
        "smsp__thread_inst_executed_per_inst_executed.ratio": threads,
        "smsp__inst_issued.avg.per_cycle_active": smsp_ipc + issued_delta,
        ncu_stall_metric_name(WarpState.LONG_SCOREBOARD): stall_pcts[0],
        ncu_stall_metric_name(WarpState.NO_INSTRUCTION): stall_pcts[1],
        ncu_stall_metric_name(WarpState.MATH_PIPE_THROTTLE): stall_pcts[2],
    })
    for normalize in (True, False):
        result = TopDownAnalyzer(device,
                                 normalize_stalls=normalize).analyze_kernel(
            profile
        )
        result.check_conservation()
        for node in Node:
            assert result.ipc(node) >= -1e-9


# ---------------------------------------------------------------------------
# rng
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_mix64_stays_in_64_bits(x):
    assert 0 <= mix64(x) < 2**64


@given(st.lists(st.integers(min_value=0, max_value=2**32), min_size=1,
                max_size=5))
def test_uniform_in_unit_interval(parts):
    assert 0.0 <= uniform(*parts) < 1.0


@given(st.integers(0, 2**32), st.integers(0, 2**32))
def test_hash_deterministic(a, b):
    assert hash_u64(a, b) == hash_u64(a, b)


# ---------------------------------------------------------------------------
# caches
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                max_size=300))
@settings(max_examples=50)
def test_cache_hits_never_exceed_accesses(sector_stream):
    cache = SectorCache(CacheSpec("t", size_bytes=4096))
    for s in sector_stream:
        cache.probe(s)
    assert 0 <= cache.hits <= cache.accesses == len(sector_stream)


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=2,
                max_size=100))
@settings(max_examples=50)
def test_small_working_set_eventually_hits(sector_stream):
    """Any stream inside one cache-worth of sectors hits on re-access."""
    cache = SectorCache(CacheSpec("t", size_bytes=4096, ways=4))
    for s in sector_stream:
        cache.probe(s)
    # replay the same stream: everything must now hit (fits in cache)
    cache.reset_stats()
    for s in set(sector_stream):
        cache.probe(s)
    assert cache.hit_rate == 1.0


# ---------------------------------------------------------------------------
# pass scheduling
# ---------------------------------------------------------------------------

metric_names = st.lists(
    st.sampled_from(sorted(unified_catalog())), min_size=1, max_size=12,
    unique=True,
)


@given(names=metric_names, capacity=st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_pass_plan_covers_all_events(names, capacity):
    cat = unified_catalog()
    metrics = [cat[n] for n in names]
    plan = schedule_passes(metrics, PMUSpec(counters_per_pass=capacity))
    collected = set(plan.all_events)
    for m in metrics:
        assert set(m.events) <= collected
    for p in plan.passes:
        assert 0 < len(p) <= capacity
    # no event scheduled twice
    programmable = [e for p in plan.passes for e in p]
    assert len(programmable) == len(set(programmable))


# ---------------------------------------------------------------------------
# mix scheduler
# ---------------------------------------------------------------------------

@given(
    fracs=st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=2,
                   max_size=4),
    n=st.integers(min_value=50, max_value=400),
)
@settings(max_examples=40)
def test_mix_scheduler_tracks_fractions(fracs, n):
    total = sum(fracs)
    fractions = {f"k{i}": f / total for i, f in enumerate(fracs)}
    sched = _MixScheduler(fractions)
    counts = {k: 0 for k in fractions}
    for _ in range(n):
        counts[sched.next()] += 1
    for k, frac in fractions.items():
        assert abs(counts[k] / n - frac) < 0.1 + 2.0 / n


# ---------------------------------------------------------------------------
# value parsing
# ---------------------------------------------------------------------------

@given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
def test_parse_metric_value_round_trip(x):
    assert parse_metric_value(f"{x:.6f}") is not None
    assert abs(parse_metric_value(f"{x:.6f}") - x) < 1e-3 * max(1.0, x)


@given(st.floats(min_value=0, max_value=100))
def test_parse_percent_strips_unit(x):
    parsed = parse_metric_value(f"{x:.2f}%")
    assert parsed is not None
    assert abs(parsed - round(x, 2)) < 1e-9
