"""The eviction-aware result store: byte caps, cost-aware LRU,
crash-safe size index, and bit-exact results under eviction pressure.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ResilienceError, UsageError
from repro.obs.runtime import obs_context
from repro.resilience.faults import install_faults
from repro.sim import DEFAULT_CONFIG, sim_fingerprint
from repro.sim.engine import ExecutionEngine
from repro.sim.result_cache import (
    STORE_INDEX_SCHEMA,
    EvictingResultCache,
    SimResultCache,
)

from tests.conftest import build_stream_kernel


def _cells(n: int):
    """``n`` distinct kernels (distinct fingerprints, similar sizes)."""
    return [
        build_stream_kernel(f"k{i}", iterations=3 + i, working_set=1 << 16)
        for i in range(n)
    ]


def _fill(store, spec, launch, n=6):
    """Simulate ``n`` kernels through an engine backed by ``store``."""
    engine = ExecutionEngine(jobs=1, cache=store)
    results = {}
    for prog in _cells(n):
        fp = sim_fingerprint(prog, launch, spec, DEFAULT_CONFIG)
        results[fp] = engine.simulate(spec, prog, launch, DEFAULT_CONFIG)
    return results


class TestCapInvariant:
    def test_total_never_exceeds_cap(self, tmp_path, turing, small_launch):
        store = EvictingResultCache(tmp_path / "s", max_bytes=4_000)
        engine = ExecutionEngine(jobs=1, cache=store)
        for prog in _cells(8):
            engine.simulate(turing, prog, small_launch, DEFAULT_CONFIG)
            assert store.total_bytes <= store.max_bytes
        assert store.evictions > 0
        # the on-disk shards agree with the in-memory accounting.
        on_disk = sum(
            p.stat().st_size
            for p in store.root.glob("[0-9a-f][0-9a-f]/*.json")
        )
        assert on_disk == store.total_bytes

    def test_oversized_entry_is_rejected_not_overrun(
        self, tmp_path, turing, small_launch
    ):
        probe = EvictingResultCache(tmp_path / "probe")
        _fill(probe, turing, small_launch, n=1)
        entry_bytes = probe.total_bytes
        store = EvictingResultCache(
            tmp_path / "tiny", max_bytes=max(1, entry_bytes // 2)
        )
        _fill(store, turing, small_launch, n=1)
        assert store.total_bytes <= store.max_bytes
        assert store.rejected == 1
        assert len(store._entries) == 0

    def test_positive_cap_required(self, tmp_path):
        with pytest.raises(UsageError):
            EvictingResultCache(tmp_path, max_bytes=0)


class TestBitExactUnderEviction:
    def test_results_identical_with_and_without_cap(
        self, tmp_path, turing, small_launch
    ):
        """Evicting entries can cost re-simulation, never correctness:
        every result produced under heavy eviction pressure is equal to
        the same simulation with an unbounded store."""
        capped = EvictingResultCache(tmp_path / "capped", max_bytes=2_500)
        unbounded = SimResultCache(tmp_path / "unbounded")
        got = _fill(capped, turing, small_launch, n=6)
        want = _fill(unbounded, turing, small_launch, n=6)
        assert capped.evictions > 0
        assert got.keys() == want.keys()
        for fp, result in want.items():
            assert got[fp].duration_cycles == result.duration_cycles
            assert got[fp].counters == result.counters

    def test_evicted_entry_resimulates_identically(
        self, tmp_path, turing, small_launch
    ):
        store = EvictingResultCache(tmp_path / "s", max_bytes=2_500)
        first = _fill(store, turing, small_launch, n=6)
        assert store.evictions > 0
        # a fresh engine re-requests everything: evicted entries miss
        # and re-simulate, survivors hit — all bit-exact either way.
        again = _fill(store, turing, small_launch, n=6)
        for fp in first:
            assert again[fp].counters == first[fp].counters


class TestEvictionPolicy:
    def test_eviction_order_is_deterministic(
        self, tmp_path, turing, small_launch
    ):
        a = EvictingResultCache(tmp_path / "a", max_bytes=2_500)
        b = EvictingResultCache(tmp_path / "b", max_bytes=2_500)
        _fill(a, turing, small_launch, n=6)
        _fill(b, turing, small_launch, n=6)
        assert sorted(a._entries) == sorted(b._entries)
        assert a.evictions == b.evictions

    def test_hit_reinflates_priority(self, tmp_path, turing, small_launch):
        """A loaded (recently useful) entry outlives untouched peers."""
        store = EvictingResultCache(tmp_path / "s", max_bytes=100_000)
        _fill(store, turing, small_launch, n=4)
        store._inflate = 10.0  # age everything below future touches
        engine = ExecutionEngine(jobs=1, cache=store)
        favorite = _cells(4)[0]
        fp = sim_fingerprint(favorite, small_launch, turing, DEFAULT_CONFIG)
        engine.simulate(turing, favorite, small_launch, DEFAULT_CONFIG)
        assert store._entries[fp].pri >= 10.0
        others = [f for f in store._entries if f != fp]
        assert all(store._entries[o].pri < 10.0 for o in others)


class TestIndexCrashSafety:
    def test_warm_start_reports_inherited_entries(
        self, tmp_path, turing, small_launch
    ):
        store = EvictingResultCache(tmp_path / "s", max_bytes=100_000)
        _fill(store, turing, small_launch, n=3)
        reopened = EvictingResultCache(tmp_path / "s", max_bytes=100_000)
        assert reopened.warm_entries == len(store._entries)
        assert reopened.warm_bytes == store.total_bytes
        assert reopened.index_rebuilds == 0
        assert reopened.describe()["warm_entries"] == reopened.warm_entries

    def test_corrupt_index_rebuilds_from_shards(
        self, tmp_path, turing, small_launch
    ):
        store = EvictingResultCache(tmp_path / "s", max_bytes=100_000)
        _fill(store, turing, small_launch, n=3)
        store.index_path.write_text("{definitely not json")
        reopened = EvictingResultCache(tmp_path / "s", max_bytes=100_000)
        assert reopened.index_rebuilds == 1
        assert reopened.total_bytes == store.total_bytes
        doc = json.loads(reopened.index_path.read_text())
        assert doc["schema"] == STORE_INDEX_SCHEMA
        assert len(doc["entries"]) == len(store._entries)

    def test_missing_index_rebuilds_silently(
        self, tmp_path, turing, small_launch
    ):
        store = EvictingResultCache(tmp_path / "s", max_bytes=100_000)
        _fill(store, turing, small_launch, n=2)
        store.index_path.unlink()
        reopened = EvictingResultCache(tmp_path / "s", max_bytes=100_000)
        assert reopened.index_rebuilds == 0  # absent ≠ corrupt
        assert reopened.total_bytes == store.total_bytes

    def test_shrunk_cap_evicts_at_open(self, tmp_path, turing, small_launch):
        store = EvictingResultCache(tmp_path / "s")
        _fill(store, turing, small_launch, n=5)
        assert store.total_bytes > 2_000
        reopened = EvictingResultCache(tmp_path / "s", max_bytes=2_000)
        assert reopened.total_bytes <= 2_000
        assert reopened.evictions > 0

    def test_crash_mid_eviction_heals_on_reopen(
        self, tmp_path, turing, small_launch
    ):
        """The store.evict fault fires after the victim unlink, before
        the index rewrite — exactly a crash window.  The next open must
        reconcile the stale index row against the missing file."""
        # direct store API: the injected crash surfaces as an error...
        probe = EvictingResultCache(tmp_path / "probe", max_bytes=2_500)
        results = _fill(
            EvictingResultCache(tmp_path / "donor"), turing,
            small_launch, n=6,
        )
        with install_faults("store.evict"):
            with pytest.raises(ResilienceError, match="evicting"):
                for fp, result in results.items():
                    probe.store(fp, result)
        # ...but through the engine it is absorbed (a cache can never
        # fail a run), leaving only a stale on-disk index behind.
        store = EvictingResultCache(tmp_path / "s", max_bytes=2_500)
        engine = ExecutionEngine(jobs=1, cache=store)
        with install_faults("store.evict"):
            for prog in _cells(6):
                engine.simulate(turing, prog, small_launch, DEFAULT_CONFIG)
        assert engine.health.cache_write_failures > 0
        reopened = EvictingResultCache(tmp_path / "s", max_bytes=2_500)
        assert reopened.total_bytes <= 2_500
        on_disk = sum(
            p.stat().st_size
            for p in reopened.root.glob("[0-9a-f][0-9a-f]/*.json")
        )
        assert on_disk == reopened.total_bytes
        # and the healed store still serves/recomputes bit-exact data.
        results = _fill(reopened, turing, small_launch, n=6)
        assert len(results) == 6


class TestStoreObservability:
    def test_eviction_metrics_exported(self, tmp_path, turing, small_launch):
        with obs_context(enabled=True) as obs:
            store = EvictingResultCache(tmp_path / "s", max_bytes=2_500)
            _fill(store, turing, small_launch, n=6)
            assert obs.metrics.counter("store.evictions") == store.evictions
            assert obs.metrics.gauge("store.bytes") == store.total_bytes
            assert obs.metrics.gauge("store.entries") == len(store._entries)
        assert store.evictions > 0

    def test_describe_matches_reality(self, tmp_path, turing, small_launch):
        store = EvictingResultCache(tmp_path / "s", max_bytes=3_000)
        _fill(store, turing, small_launch, n=6)
        doc = store.describe()
        assert doc["bytes"] == store.total_bytes
        assert doc["entries"] == len(store._entries)
        assert doc["max_bytes"] == 3_000
        assert doc["evictions"] == store.evictions
        assert doc["stores"] == store.stats.stores
