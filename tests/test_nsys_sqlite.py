"""Tests for ``repro.io.nsys_sqlite`` — schema adapters, capability
degradation, and error handling over deterministic synthetic traces."""

import os
import sqlite3

import pytest

from repro.errors import ReproError, TraceError
from repro.io.nsys_sqlite import (
    MEMCPY_KINDS,
    SCHEMA_INLINE,
    SCHEMA_STRINGIDS,
    read_trace,
)
from repro.timeline.fixture import FixtureSpec, write_fixture

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "golden_nsys_trace.sqlite")
GOLDEN_DUMP = os.path.join(os.path.dirname(__file__), "data",
                           "golden_nsys_trace.sql")


def _fixture(tmp_path, **kwargs):
    path = str(tmp_path / "trace.sqlite")
    write_fixture(path, spec=FixtureSpec(**kwargs))
    return path


class TestSchemaAdapters:
    def test_v2_stringids_schema(self, tmp_path):
        trace = read_trace(_fixture(tmp_path))
        assert trace.schema == SCHEMA_STRINGIDS
        assert trace.capabilities.kernels
        assert trace.capabilities.strings
        # StringIds indirection resolved to real demangled names.
        names = {k.name for k in trace.kernels}
        assert any(n.startswith("void bpnn_layerforward") for n in names)
        assert not any(n.startswith("kernel_") for n in names)

    def test_v1_inline_schema(self, tmp_path):
        trace = read_trace(_fixture(tmp_path, schema="v1"))
        assert trace.schema == SCHEMA_INLINE
        assert not trace.capabilities.strings
        assert any(k.name.startswith("void gemm_tile")
                   for k in trace.kernels)

    def test_v1_and_v2_agree_on_timing(self, tmp_path):
        v1 = read_trace(_fixture(tmp_path, schema="v1"))
        write_fixture(str(tmp_path / "v2.sqlite"),
                      spec=FixtureSpec(schema="v2"))
        v2 = read_trace(str(tmp_path / "v2.sqlite"))
        assert [(k.start_ns, k.end_ns, k.device_id, k.stream_id)
                for k in v1.kernels] == \
               [(k.start_ns, k.end_ns, k.device_id, k.stream_id)
                for k in v2.kernels]

    def test_slices_are_time_sorted(self, tmp_path):
        trace = read_trace(_fixture(tmp_path))
        for device in trace.device_ids:
            slices = list(trace.slices(device))
            assert slices == sorted(
                slices, key=lambda s: (s.start_ns, s.end_ns))

    def test_memcpy_kinds_decoded(self, tmp_path):
        trace = read_trace(_fixture(tmp_path))
        kinds = {m.kind for m in trace.memcpys}
        assert kinds == {"HtoD", "DtoH"}
        assert MEMCPY_KINDS[1] == "HtoD" and MEMCPY_KINDS[2] == "DtoH"


class TestCapabilityDegradation:
    def test_full_fixture_has_all_capabilities(self, tmp_path):
        trace = read_trace(_fixture(tmp_path))
        assert trace.capabilities.missing() == ()

    def test_missing_gpu_info_synthesizes_devices(self, tmp_path):
        trace = read_trace(_fixture(tmp_path, gpu_info=False))
        assert not trace.capabilities.devices
        assert "devices" in trace.capabilities.missing()
        # devices still enumerable, synthesized from kernel rows.
        assert sorted(trace.devices) == [0, 1]
        assert trace.devices[0].name == "GPU 0"

    def test_missing_nvtx_is_a_flag_not_an_error(self, tmp_path):
        trace = read_trace(_fixture(tmp_path, nvtx=False))
        assert not trace.capabilities.nvtx
        assert trace.nvtx == ()

    def test_missing_memcpys_is_a_flag_not_an_error(self, tmp_path):
        trace = read_trace(_fixture(tmp_path, memcpys=False))
        assert not trace.capabilities.memcpys
        assert trace.memcpys == ()
        assert len(trace.kernels) > 0

    def test_capabilities_payload_shape(self, tmp_path):
        trace = read_trace(_fixture(tmp_path, nvtx=False,
                                    gpu_info=False))
        payload = trace.capabilities.payload()
        assert payload == {"kernels": True, "memcpys": True,
                           "devices": False, "nvtx": False,
                           "strings": True}


class TestErrors:
    def test_missing_file_raises_trace_error(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            read_trace(str(tmp_path / "nope.sqlite"))

    def test_corrupt_file_raises_trace_error(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"this is not a sqlite database" * 64)
        with pytest.raises(TraceError, match="not a SQLite"):
            read_trace(str(path))

    def test_no_kernel_table_raises_trace_error(self, tmp_path):
        path = str(tmp_path / "empty.sqlite")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE unrelated (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(TraceError, match="no CUPTI"):
            read_trace(path)

    def test_unrecognized_kernel_columns_raise(self, tmp_path):
        path = str(tmp_path / "odd.sqlite")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE CUPTI_ACTIVITY_KIND_KERNEL "
                     "(weird INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(TraceError):
            read_trace(path)

    def test_trace_error_is_repro_error(self):
        assert issubclass(TraceError, ReproError)


class TestGoldenFixture:
    def test_committed_binary_matches_committed_dump(self, tmp_path):
        """The committed .sqlite and .sql describe the same database.

        Byte-compare is deliberately avoided (the sqlite library
        version is embedded in the binary header); the dump is the
        byte-identity artifact, the binary is content-checked here.
        """
        rebuilt = str(tmp_path / "rebuilt.sqlite")
        conn = sqlite3.connect(rebuilt)
        with open(GOLDEN_DUMP, encoding="utf-8") as fh:
            conn.executescript(fh.read())
        conn.close()
        a = read_trace(GOLDEN)
        b = read_trace(rebuilt)
        assert a.kernels == b.kernels
        assert a.memcpys == b.memcpys
        assert a.nvtx == b.nvtx
        assert a.devices == b.devices

    def test_regenerated_dump_is_byte_identical(self, tmp_path):
        from repro.timeline.fixture import build_tables, render_dump

        spec = FixtureSpec(seed=0)
        text = render_dump(build_tables(spec), spec)
        with open(GOLDEN_DUMP, encoding="utf-8") as fh:
            assert fh.read() == text

    def test_golden_shape(self):
        trace = read_trace(GOLDEN)
        assert sorted(trace.devices) == [0, 1]
        assert sorted(trace.streams(0)) == [7, 14, 21]
        assert trace.capabilities.missing() == ()
        assert len(trace.kernels) == 34
        assert len(trace.memcpys) == 16
        assert len(trace.nvtx) == 9


class TestObs:
    def test_ingest_records_counters(self, tmp_path):
        from repro.obs.runtime import obs_context

        with obs_context(enabled=True) as obs:
            read_trace(_fixture(tmp_path))
        assert obs.metrics.counter("timeline.traces_read") == 1
        assert obs.metrics.counter("timeline.rows_ingested") > 0
