"""The HTTP/JSON façade: status codes, error envelopes, backpressure
headers — every documented API response, against a real socket.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

from repro.resilience.faults import install_faults
from repro.service import ServiceConfig, ServiceManager
from repro.service.httpd import ServiceHTTPServer

NN_JOB = {
    "kind": "app",
    "suite": "rodinia",
    "app": "nn",
    "gpu": "NVIDIA Quadro RTX 4000",
    "level": 1,
    "seed": 0,
}


def _manager(tmp_path, **overrides) -> ServiceManager:
    defaults = dict(
        state_dir=tmp_path / "state",
        workers=1,
        queue_cap=3,
        tenant_quota=2,
        hang_timeout_s=None,
    )
    defaults.update(overrides)
    return ServiceManager(ServiceConfig(**defaults))


@contextmanager
def _serve(manager):
    server = ServiceHTTPServer(("127.0.0.1", 0), manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()


def _request(url, body=None, raw: bytes | None = None):
    """Returns ``(status, doc, headers)`` without raising on 4xx/5xx."""
    data = raw if raw is not None else (
        json.dumps(body).encode() if body is not None else None
    )
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestSubmitResponses:
    def test_created_then_deduplicated(self, tmp_path):
        with _serve(_manager(tmp_path)) as base:
            status, doc, _ = _request(f"{base}/jobs", NN_JOB)
            assert status == 201
            assert doc["created"] is True
            assert doc["state"] == "queued"
            status, again, _ = _request(f"{base}/jobs", NN_JOB)
            assert status == 200
            assert again["created"] is False
            assert again["job"] == doc["job"]

    def test_malformed_body_is_400(self, tmp_path):
        with _serve(_manager(tmp_path)) as base:
            status, doc, _ = _request(
                f"{base}/jobs", raw=b"this is not json"
            )
            assert status == 400
            assert doc["error"]["code"] == "bad_request"
            assert doc["error"]["retryable"] is False

    def test_invalid_spec_is_400_with_reason(self, tmp_path):
        with _serve(_manager(tmp_path)) as base:
            status, doc, _ = _request(
                f"{base}/jobs", dict(NN_JOB, app="no-such-app")
            )
            assert status == 400
            assert "unknown app" in doc["error"]["message"]

    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        manager = _manager(tmp_path, queue_cap=1, tenant_quota=10)
        with _serve(manager) as base:
            _request(f"{base}/jobs", NN_JOB)
            status, doc, headers = _request(
                f"{base}/jobs", dict(NN_JOB, app="backprop")
            )
            assert status == 429
            assert doc["error"]["code"] == "queue_full"
            assert doc["error"]["retryable"] is True
            assert headers.get("Retry-After") == "1"

    def test_quota_exceeded_is_429(self, tmp_path):
        manager = _manager(tmp_path, queue_cap=10, tenant_quota=1)
        with _serve(manager) as base:
            _request(f"{base}/jobs", dict(NN_JOB, tenant="alice"))
            status, doc, _ = _request(
                f"{base}/jobs",
                dict(NN_JOB, app="backprop", tenant="alice"),
            )
            assert status == 429
            assert doc["error"]["code"] == "quota_exceeded"

    def test_transient_submit_fault_is_503(self, tmp_path):
        with install_faults("service.submit"):
            with _serve(_manager(tmp_path)) as base:
                status, doc, headers = _request(f"{base}/jobs", NN_JOB)
                assert status == 503
                assert doc["error"]["code"] == "transient"
                assert doc["error"]["retryable"] is True
                assert headers.get("Retry-After") == "1"

    def test_draining_is_503(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        with _serve(manager) as base:
            manager.drain(timeout_s=10)
            status, doc, _ = _request(f"{base}/jobs", NN_JOB)
            assert status == 503
            assert doc["error"]["code"] == "draining"


class TestStatusAndResult:
    def test_unknown_job_is_404(self, tmp_path):
        with _serve(_manager(tmp_path)) as base:
            status, doc, _ = _request(f"{base}/jobs/jdeadbeefdeadbeef")
            assert status == 404
            assert doc["error"]["code"] == "unknown_job"

    def test_unknown_route_is_404(self, tmp_path):
        with _serve(_manager(tmp_path)) as base:
            status, doc, _ = _request(f"{base}/nope")
            assert status == 404
            assert doc["error"]["code"] == "unknown_route"

    def test_result_before_completion_is_409(self, tmp_path):
        with _serve(_manager(tmp_path)) as base:  # workers not started
            _, doc, _ = _request(f"{base}/jobs", NN_JOB)
            status, err, _ = _request(f"{base}/jobs/{doc['job']}/result")
            assert status == 409
            assert err["error"]["code"] == "not_ready"
            assert err["error"]["retryable"] is True

    def test_full_lifecycle_over_http(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        with _serve(manager) as base:
            _, doc, _ = _request(f"{base}/jobs", NN_JOB)
            job = doc["job"]
            assert manager.wait_idle(timeout_s=60)
            status, state_doc, _ = _request(f"{base}/jobs/{job}")
            assert status == 200
            assert state_doc["state"] == "done"
            status, result, _ = _request(f"{base}/jobs/{job}/result")
            assert status == 200
            assert result["job"] == job
            assert result["result"]["name"] == "nn"
            status, listing, _ = _request(f"{base}/jobs")
            assert status == 200
            assert listing["jobs"][job] == "done"
        manager.drain(timeout_s=10)

    def test_quarantined_result_is_410(self, tmp_path):
        with install_faults("service.worker"):
            manager = _manager(tmp_path, retries=2)
            manager.start()
            with _serve(manager) as base:
                _, doc, _ = _request(f"{base}/jobs", NN_JOB)
                assert manager.wait_idle(timeout_s=60)
                status, err, _ = _request(
                    f"{base}/jobs/{doc['job']}/result"
                )
                assert status == 410
                assert err["error"]["code"] == "quarantined"
                assert err["error"]["retryable"] is False
            manager.drain(timeout_s=10)


class TestIntrospection:
    def test_healthz_shape(self, tmp_path):
        manager = _manager(tmp_path, store_max_bytes=50_000)
        manager.start()
        with _serve(manager) as base:
            _request(f"{base}/jobs", NN_JOB)
            assert manager.wait_idle(timeout_s=60)
            status, health, _ = _request(f"{base}/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["jobs"] == {"done": 1}
            assert health["queue"]["cap"] == 3
            assert health["store"]["max_bytes"] == 50_000
            assert health["store"]["entries"] >= 0
        manager.drain(timeout_s=10)

    def test_metrics_payload_served(self, tmp_path):
        from repro.obs.runtime import obs_context

        with obs_context(enabled=True):
            manager = _manager(tmp_path)
            manager.start()
            with _serve(manager) as base:
                _request(f"{base}/jobs", NN_JOB)
                assert manager.wait_idle(timeout_s=60)
                status, payload, _ = _request(f"{base}/metrics")
                assert status == 200
                assert payload["counters"]["service.submitted"] == 1
                assert payload["counters"]["service.jobs_done"] == 1
            manager.drain(timeout_s=10)
