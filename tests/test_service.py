"""The service manager: admission control, dedupe, the supervised
worker pool (retry, quarantine, hang abandonment) and drain semantics.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    QueueFullError,
    QuotaExceededError,
    TransientFaultError,
    UsageError,
)
from repro.resilience.faults import FaultInjector, FaultPlan, install_faults
from repro.service import ServiceConfig, ServiceManager
from repro.service.jobs import JOB_RESULT_SCHEMA, JobSpec

NN_JOB = {
    "kind": "app",
    "suite": "rodinia",
    "app": "nn",
    "gpu": "NVIDIA Quadro RTX 4000",
    "level": 1,
    "seed": 0,
}


def _spec_for(app: str, **overrides) -> dict:
    doc = dict(NN_JOB, app=app)
    doc.update(overrides)
    return doc


def _manager(tmp_path, **overrides) -> ServiceManager:
    defaults = dict(
        state_dir=tmp_path / "state",
        workers=1,
        queue_cap=4,
        tenant_quota=3,
        hang_timeout_s=None,
        retries=3,
    )
    defaults.update(overrides)
    return ServiceManager(ServiceConfig(**defaults))


# ---------------------------------------------------------------------------
# the job model
# ---------------------------------------------------------------------------

class TestJobSpec:
    def test_id_is_content_addressed(self):
        a = JobSpec.from_doc(NN_JOB)
        b = JobSpec.from_doc(dict(NN_JOB))
        assert a.job_id == b.job_id
        assert a.job_id.startswith("j")

    def test_tenant_does_not_change_identity(self):
        a = JobSpec.from_doc(dict(NN_JOB, tenant="alice"))
        b = JobSpec.from_doc(dict(NN_JOB, tenant="bob"))
        assert a.job_id == b.job_id

    def test_every_knob_changes_identity(self):
        base = JobSpec.from_doc(NN_JOB).job_id
        assert JobSpec.from_doc(_spec_for("backprop")).job_id != base
        assert JobSpec.from_doc(dict(NN_JOB, level=2)).job_id != base
        assert JobSpec.from_doc(dict(NN_JOB, seed=1)).job_id != base
        assert JobSpec.from_doc(
            dict(NN_JOB, gpu="NVIDIA GTX 1070")
        ).job_id != base

    @pytest.mark.parametrize("mutation, match", [
        (dict(app="no-such-app"), "unknown app"),
        (dict(suite="no-such-suite"), "unknown suite"),
        (dict(gpu="no-such-gpu"), "unknown gpu"),
        (dict(level=9), "level"),
        (dict(kind="nope"), "kind"),
        (dict(seed="zero"), "seed"),
        (dict(bogus=1), "unknown field"),
    ])
    def test_validation_refuses_bad_specs(self, mutation, match):
        with pytest.raises(UsageError, match=match):
            JobSpec.from_doc(dict(NN_JOB, **mutation))

    def test_suite_kind_rejects_app_field(self):
        with pytest.raises(UsageError, match="invalid for kind"):
            JobSpec.from_doc(dict(NN_JOB, kind="suite"))


# ---------------------------------------------------------------------------
# admission control (no workers started: jobs stay queued)
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_submit_and_dedupe(self, tmp_path):
        manager = _manager(tmp_path)
        record, created = manager.submit(NN_JOB)
        assert created and record.state == "queued"
        again, created = manager.submit(NN_JOB)
        assert not created and again is record

    def test_queue_full_is_explicit(self, tmp_path):
        manager = _manager(tmp_path, queue_cap=2, tenant_quota=100)
        manager.submit(_spec_for("nn"))
        manager.submit(_spec_for("backprop"))
        with pytest.raises(QueueFullError) as info:
            manager.submit(_spec_for("hotspot"))
        assert info.value.code == "queue_full"
        assert info.value.retryable
        # nothing was journalled or half-created for the refusal.
        assert len(manager.jobs) == 2

    def test_tenant_quota(self, tmp_path):
        manager = _manager(tmp_path, queue_cap=100, tenant_quota=2)
        manager.submit(_spec_for("nn"), tenant="alice")
        manager.submit(_spec_for("backprop"), tenant="alice")
        with pytest.raises(QuotaExceededError) as info:
            manager.submit(_spec_for("hotspot"), tenant="alice")
        assert info.value.code == "quota_exceeded"
        # a different tenant is unaffected ...
        manager.submit(_spec_for("hotspot"), tenant="bob")
        # ... and deduplicating onto an existing job is quota-free.
        record, created = manager.submit(_spec_for("nn"), tenant="alice")
        assert not created and record.state == "queued"

    def test_submit_fault_is_deterministic_and_leaves_no_trace(
        self, tmp_path
    ):
        plan = FaultPlan.parse("seed=3,service.submit@0.5")
        oracle = FaultInjector(plan)
        apps = ["nn", "backprop", "hotspot", "bfs", "lud", "kmeans"]
        fired_any = False
        with install_faults(plan):
            manager = _manager(
                tmp_path, queue_cap=100, tenant_quota=100
            )
            for app in apps:
                spec = JobSpec.from_doc(_spec_for(app))
                attempt = 0
                while True:
                    expected = oracle.decide(
                        "service.submit", spec.job_id, attempt
                    )
                    if expected:
                        fired_any = True
                        with pytest.raises(TransientFaultError):
                            manager.submit(_spec_for(app))
                        assert spec.job_id not in manager.jobs
                        assert spec.job_id not in manager.journal.jobs
                        attempt += 1
                    else:
                        _, created = manager.submit(_spec_for(app))
                        assert created
                        break
        assert fired_any  # the seed above does exercise the site
        assert len(manager.jobs) == len(apps)


# ---------------------------------------------------------------------------
# execution: workers, retries, quarantine, hangs
# ---------------------------------------------------------------------------

class TestExecution:
    def test_job_runs_to_done_with_result_doc(self, tmp_path):
        manager = _manager(tmp_path)
        manager.start()
        record, _ = manager.submit(NN_JOB)
        assert manager.wait_idle(timeout_s=60)
        assert record.state == "done"
        doc = manager.result_doc(record.job_id)
        assert doc["schema"] == JOB_RESULT_SCHEMA
        assert doc["kind"] == "app"
        assert doc["result"]["name"] == "nn"
        assert manager.drain(timeout_s=10)

    def test_concurrent_clients_share_one_job(self, tmp_path):
        """N threads race to submit the same spec: exactly one job is
        created, everyone gets the same id, the simulation runs once."""
        manager = _manager(tmp_path, workers=2, queue_cap=16,
                           tenant_quota=16)
        manager.start()
        outcomes = []
        barrier = threading.Barrier(8)

        def client(i):
            barrier.wait()
            record, created = manager.submit(NN_JOB, tenant=f"t{i}")
            outcomes.append((record.job_id, created))

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert manager.wait_idle(timeout_s=60)
        ids = {job_id for job_id, _ in outcomes}
        assert len(ids) == 1
        assert sum(created for _, created in outcomes) == 1
        assert len(manager.jobs) == 1
        assert manager.jobs[ids.pop()].state == "done"
        assert manager.drain(timeout_s=10)

    def test_worker_crash_retries_then_succeeds(self, tmp_path):
        # rate 0.5: some attempts crash, a later re-roll gets through.
        plan = FaultPlan.parse("seed=1,service.worker@0.5")
        spec = JobSpec.from_doc(NN_JOB)
        oracle = FaultInjector(plan)
        first_success = next(
            a for a in range(10)
            if not oracle.decide("service.worker", spec.job_id, a)
        )
        if first_success == 0 or first_success >= 3:
            pytest.skip("seed does not produce a recoverable schedule")
        with install_faults(plan):
            manager = _manager(tmp_path)
            manager.start()
            record, _ = manager.submit(NN_JOB)
            assert manager.wait_idle(timeout_s=60)
        assert record.state == "done"
        # attempts count exactly the injected crashes before success.
        assert record.attempts == first_success
        assert manager.drain(timeout_s=10)

    def test_poison_job_is_quarantined_not_wedged(self, tmp_path):
        """A job that crashes on every attempt ends quarantined after
        the retry budget — and the queue keeps serving other jobs."""
        with install_faults("service.worker"):  # rate 1.0: always
            manager = _manager(tmp_path, retries=2, queue_cap=8)
            manager.start()
            poison, _ = manager.submit(NN_JOB)
            assert manager.wait_idle(timeout_s=60)
            assert poison.state == "quarantined"
            assert poison.attempts == 2
            assert poison.error_kind == "WorkerCrashError"
        # the injector is gone: a different job still completes.
        healthy, _ = manager.submit(_spec_for("backprop"))
        assert manager.wait_idle(timeout_s=60)
        assert healthy.state == "done"
        assert not manager.drain(timeout_s=10)  # degraded: poison job

    def test_nonretryable_failure_fails_fast(self, tmp_path, monkeypatch):
        manager = _manager(tmp_path, retries=3)

        def explode(spec):
            raise ValueError("boom: not a retryable family")

        monkeypatch.setattr(manager, "_run_job", explode)
        manager.start()
        record, _ = manager.submit(NN_JOB)
        assert manager.wait_idle(timeout_s=30)
        assert record.state == "failed"
        assert record.attempts == 1  # no retry burned on a sure loser
        assert record.error_kind == "ValueError"
        assert not manager.drain(timeout_s=10)

    def test_hung_worker_is_abandoned_and_job_quarantined(self, tmp_path):
        """sim.hang makes every simulation sleep far past the hang
        timeout: the supervisor must abandon the worker each attempt,
        keep the pool at width, and quarantine the job — all without
        wedging the queue."""
        with install_faults("sim.hang,hang=5"):
            manager = _manager(
                tmp_path, retries=2, hang_timeout_s=0.25,
            )
            manager.start()
            record, _ = manager.submit(NN_JOB)
            assert manager.wait_idle(timeout_s=30)
            assert record.state == "quarantined"
            assert record.error_kind == "ServiceHangError"
            assert manager.hangs_detected >= 2
        # abandoned workers were replaced: a fresh job still runs.
        healthy, _ = manager.submit(_spec_for("backprop"))
        assert manager.wait_idle(timeout_s=60)
        assert healthy.state == "done"
        assert not manager.drain(timeout_s=10)


# ---------------------------------------------------------------------------
# drain
# ---------------------------------------------------------------------------

class TestDrain:
    def test_drain_completes_inflight_then_refuses(self, tmp_path):
        manager = _manager(tmp_path, workers=2)
        manager.start()
        record, _ = manager.submit(NN_JOB)
        assert manager.drain(timeout_s=60)
        assert record.state == "done"
        from repro.errors import AdmissionError

        with pytest.raises(AdmissionError) as info:
            manager.submit(_spec_for("backprop"))
        assert info.value.code == "draining"
        assert info.value.retryable
