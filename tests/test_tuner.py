"""Tests for the Top-Down-guided launch tuner."""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.tuner import launch_candidates, tune_launch
from repro.tuner.search import tuning_report
from repro.workloads import KernelBehavior, synthesize


@pytest.fixture(scope="module")
def stencil_program():
    return synthesize(KernelBehavior(
        name="stencil", loads_per_iter=2, alu_per_mem=5,
        shared_fraction=0.4, barrier_per_iter=True,
        working_set_bytes=1 << 21, ilp=4, iterations=4,
    ))


@pytest.fixture(scope="module")
def tuning(turing, stencil_program):
    return tune_launch(turing, stencil_program, total_threads=36 * 1024,
                       block_sizes=(64, 128, 256, 512))


class TestLaunchCandidates:
    def test_covers_total_threads(self, turing, stencil_program):
        total = 10_000
        for launch in launch_candidates(turing, stencil_program, total):
            assert launch.blocks * launch.threads_per_block >= total

    def test_infeasible_register_budget_filtered(self, turing,
                                                 stencil_program):
        fat = dataclasses.replace(stencil_program,
                                  registers_per_thread=255)
        # 255 regs x 1024 threads cannot fit one block -> filtered out
        candidates = launch_candidates(
            turing, fat, 4096, block_sizes=(256, 1024)
        )
        assert all(c.threads_per_block != 1024 for c in candidates)

    def test_no_candidates_raises(self, turing, stencil_program):
        fat = dataclasses.replace(stencil_program,
                                  registers_per_thread=255)
        with pytest.raises(ReproError):
            launch_candidates(turing, fat, 4096, block_sizes=(1024,))


class TestTuneLaunch:
    def test_best_is_fastest(self, tuning):
        assert tuning.best.duration_cycles == min(
            s.duration_cycles for s in tuning.steps
        )

    def test_all_candidates_evaluated(self, tuning):
        assert len(tuning.steps) == 4

    def test_improvement_at_least_one_for_best_first(self, tuning):
        assert tuning.improvement >= 1.0 or tuning.best is tuning.steps[0]

    def test_results_carry_explanations(self, tuning):
        for step in tuning.steps:
            step.result.check_conservation()
            assert step.dominant_loss() is not None

    def test_deterministic(self, turing, stencil_program):
        a = tune_launch(turing, stencil_program, 8192,
                        block_sizes=(128, 256))
        b = tune_launch(turing, stencil_program, 8192,
                        block_sizes=(128, 256))
        assert a.best.launch == b.best.launch
        assert [s.duration_cycles for s in a.steps] == \
            [s.duration_cycles for s in b.steps]

    def test_report_renders(self, tuning):
        text = tuning_report(tuning)
        assert "best" in text and "speedup" in text
