"""End-to-end integration tests: simulator → PMU → profiler → parser →
analyzer → report, asserting the causal chain the methodology relies on
(a microarchitectural cause planted in the workload must surface at the
right Top-Down node)."""

import pytest

from repro.core import (
    Node,
    TopDownAnalyzer,
    hierarchy_report,
    metric_names_for_level,
)
from repro.isa import AccessKind, LaunchConfig
from repro.profilers import (
    NcuTool,
    NvprofTool,
    parse_ncu_csv,
    parse_nvprof_csv,
    tool_for,
)
from repro.sim import SimConfig
from repro.workloads import KernelBehavior, materialize
from repro.workloads.base import Application, KernelInvocation


def analyze_behavior(spec, behavior, seed=0):
    """behaviour -> program -> profile -> Top-Down result."""
    program, launch = materialize(behavior)
    app = Application(behavior.name, "it",
                      (KernelInvocation(program, launch),))
    tool = tool_for(spec, config=SimConfig(seed=seed))
    metrics = metric_names_for_level(spec.compute_capability, 3)
    profile = tool.profile_application(app, metrics)
    return TopDownAnalyzer(spec).analyze_application(profile)


class TestCauseToNode:
    """Planted cause -> expected dominant Top-Down node."""

    def test_memory_cause(self, turing):
        r = analyze_behavior(turing, KernelBehavior(
            name="mem", loads_per_iter=4, alu_per_mem=1,
            working_set_bytes=1 << 23, ilp=2, iterations=6,
        ))
        assert r.ipc(Node.MEMORY) > r.ipc(Node.CORE)
        assert r.ipc(Node.BACKEND) > r.ipc(Node.FRONTEND)
        assert r.fraction(Node.L3_L1_DEPENDENCY) > 0.4

    def test_compute_cause(self, turing):
        r = analyze_behavior(turing, KernelBehavior(
            name="cmp", loads_per_iter=0, alu_per_mem=32, ilp=8,
            working_set_bytes=1 << 14, iterations=6,
        ))
        assert r.fraction(Node.RETIRE) > 0.5

    def test_divergence_cause(self, turing):
        r = analyze_behavior(turing, KernelBehavior(
            name="div", loads_per_iter=1, alu_per_mem=4,
            branch_every=1, branch_if_length=4, branch_else_length=4,
            branch_taken_fraction=0.5, working_set_bytes=1 << 16,
            iterations=6,
        ))
        assert r.fraction(Node.DIVERGENCE) > 0.05
        assert r.ipc(Node.BRANCH) > r.ipc(Node.REPLAY)

    def test_replay_cause(self, turing):
        r = analyze_behavior(turing, KernelBehavior(
            name="rep", loads_per_iter=2, alu_per_mem=2,
            access_kind=AccessKind.STRIDED, stride_elements=32,
            working_set_bytes=1 << 22, iterations=6,
        ))
        assert r.ipc(Node.REPLAY) > 0.0

    def test_constant_cause(self, turing):
        r = analyze_behavior(turing, KernelBehavior(
            name="cst", loads_per_iter=1, constant_loads_per_iter=6,
            constant_working_set=256 * 1024,
            working_set_bytes=1 << 16, alu_per_mem=3, iterations=6,
        ))
        assert r.fraction(Node.L3_CONSTANT_MEMORY) > 0.1
        assert r.ipc(Node.L3_CONSTANT_MEMORY) > r.ipc(
            Node.L3_L1_DEPENDENCY
        )

    def test_barrier_cause(self, turing):
        r = analyze_behavior(turing, KernelBehavior(
            name="bar", loads_per_iter=2, alu_per_mem=3,
            barrier_per_iter=True, working_set_bytes=1 << 20,
            iterations=6,
        ))
        assert r.ipc(Node.L3_SYNC_BARRIER) > 0.0

    def test_fetch_cause_on_pascal(self, pascal):
        r = analyze_behavior(pascal, KernelBehavior(
            name="fetch", loads_per_iter=1, alu_per_mem=8, ilp=6,
            working_set_bytes=1 << 14, static_instructions=3000,
            iterations=6,
        ))
        assert r.fraction(Node.FETCH) > 0.1


class TestCsvRoundTripAnalysis:
    """Analyzing a profile directly and analyzing its CSV re-parse must
    agree — the analyzer cannot tell real from emulated sources."""

    def test_ncu_round_trip(self, turing):
        behavior = KernelBehavior(
            name="rt", loads_per_iter=2, alu_per_mem=4,
            working_set_bytes=1 << 20, iterations=6,
        )
        program, launch = materialize(behavior)
        app = Application("rtapp", "it",
                          (KernelInvocation(program, launch),))
        tool = NcuTool(turing, SimConfig(seed=2))
        metrics = metric_names_for_level("7.5", 3)
        profile = tool.profile_application(app, metrics)
        parsed = parse_ncu_csv(tool.to_csv(profile),
                               application="rtapp")
        analyzer = TopDownAnalyzer(turing)
        direct = analyzer.analyze_application(profile)
        reparsed = analyzer.analyze_application(parsed)
        for node in (Node.RETIRE, Node.MEMORY, Node.FETCH,
                     Node.DIVERGENCE):
            assert reparsed.ipc(node) == pytest.approx(
                direct.ipc(node), abs=1e-4
            )

    def test_nvprof_round_trip(self, pascal):
        behavior = KernelBehavior(
            name="rt", loads_per_iter=2, alu_per_mem=4,
            working_set_bytes=1 << 20, iterations=6,
        )
        program, launch = materialize(behavior)
        app = Application("rtapp", "it",
                          (KernelInvocation(program, launch),))
        tool = NvprofTool(pascal, SimConfig(seed=2))
        metrics = metric_names_for_level("6.1", 3)
        profile = tool.profile_application(app, metrics)
        parsed = parse_nvprof_csv(tool.to_csv(profile),
                                  application="rtapp",
                                  compute_capability="6.1")
        analyzer = TopDownAnalyzer(pascal)
        direct = analyzer.analyze_application(profile)
        reparsed = analyzer.analyze_application(parsed)
        # nvprof CSV rounds percentages to two decimals, so allow a
        # correspondingly small relative error.
        for node in (Node.RETIRE, Node.MEMORY, Node.FETCH):
            assert reparsed.ipc(node) == pytest.approx(
                direct.ipc(node), rel=1e-3, abs=1e-3
            )


class TestReportIntegration:
    def test_hierarchy_report_end_to_end(self, turing):
        r = analyze_behavior(turing, KernelBehavior(
            name="rep", loads_per_iter=2, working_set_bytes=1 << 20,
            iterations=4,
        ))
        text = hierarchy_report(r)
        assert "Backend" in text and "%" in text


class TestSeedStability:
    def test_same_seed_same_result(self, turing):
        b = KernelBehavior(name="s", loads_per_iter=2, iterations=4)
        a = analyze_behavior(turing, b, seed=9)
        c = analyze_behavior(turing, b, seed=9)
        assert a.values == c.values

    def test_different_seed_similar_shape(self, turing):
        b = KernelBehavior(name="s", loads_per_iter=3, alu_per_mem=2,
                           working_set_bytes=1 << 22, iterations=6)
        a = analyze_behavior(turing, b, seed=1)
        c = analyze_behavior(turing, b, seed=2)
        # the dominant node must not flip with the seed
        assert abs(a.fraction(Node.MEMORY) - c.fraction(Node.MEMORY)) < 0.1
