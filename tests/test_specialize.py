"""The specialized-driver backend: bit-identity, caching, fallback.

The perf claim lives in ``benchmarks/test_bench_simcore.py``; this
file pins the *correctness* half of the contract:

* randomized and directed kernels produce counters bit-identical to
  the frozen reference scan (and the specializer accepts — does not
  silently fall back on — every shape it claims to support);
* the numpy-vectorized roll tables match the scalar SplitMix64 path
  bit for bit;
* declined programs fall back to the event loop transparently, with
  the fallback visible in observability;
* the driver cache (in-process + persisted source) and the per-run
  table cache behave: hits/misses counted, corrupt persisted sources
  regenerated, reuse bit-identical;
* the backend selection is threaded through the engine/CLI plumbing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import get_gpu
from repro.io.counters_json import counters_to_doc
from repro.isa import AccessKind, LaunchConfig, ProgramBuilder
from repro.obs.runtime import obs_context
from repro.sim import SimConfig
from repro.sim.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    backend_context,
    current_backend,
    make_sm_simulator,
    set_backend,
    simulator_class,
)
from repro.sim.gpu import GPUSimulator
from repro.sim.rng import mix64
from repro.sim.sm import SMSimulator
from repro.sim.sm_reference import ReferenceSMSimulator
from repro.sim.specialize import (
    MAX_DYNAMIC_TOKENS,
    SpecializedSMSimulator,
    check_supported,
    clear_driver_cache,
    driver_for,
    source_dir,
    specialization_key,
)
from tests.test_property_sim import small_programs

SPEC = get_gpu("rtx4000")


def _run(cls, program, launch, config, **kw):
    return cls(SPEC, program, launch, config, **kw).run()


def _assert_identical(spz, ref, label):
    if counters_to_doc(spz) != counters_to_doc(ref):
        detail = "\n".join(spz.diff(ref)) or "(doc-level difference)"
        pytest.fail(f"{label}: specialized diverged\n{detail}")


# ----------------------------------------------------------------------
# directed kernels: the semantics the codegen had to preserve
# ----------------------------------------------------------------------
def _barrier_drain_kernel():
    b = ProgramBuilder("barrier_drain")
    b.pattern("x", AccessKind.STRIDED, working_set_bytes=1 << 20,
              stride_elements=4)
    r = b.ldg("x")
    b.barrier()
    r = b.ffma(r, r)
    b.sts("x", r)
    b.membar()
    b.stg("x", r)
    return b.build(iterations=6)


def _divergence_kernel():
    b = ProgramBuilder("divergent")
    b.pattern("x", AccessKind.STRIDED, working_set_bytes=1 << 22,
              stride_elements=32)
    r = b.ldg("x")
    b.branch(if_length=2, else_length=1, taken_fraction=0.7)
    r = b.ffma(r, r)
    b.stg("x", r)
    b.imad(r, r)
    return b.build(iterations=5)


def _constant_kernel():
    b = ProgramBuilder("const_reads")
    b.pattern("c", AccessKind.UNIFORM, working_set_bytes=1 << 16)
    r = b.ldc("c")
    r = b.imad(r, r)
    b.stg("c", r)
    return b.build(iterations=10)


DIRECTED = {
    "barrier_drain": _barrier_drain_kernel,
    "divergent": _divergence_kernel,
    "const_reads": _constant_kernel,
}


@pytest.mark.parametrize("kernel", sorted(DIRECTED))
@pytest.mark.parametrize("scheduler", ["gto", "lrr"])
def test_directed_cases_match_reference(kernel, scheduler):
    program = DIRECTED[kernel]()
    for seed in (0, 7):
        for blocks, tpb in ((3, 128), (9, 256), (1, 32)):
            launch = LaunchConfig(blocks=blocks, threads_per_block=tpb)
            config = SimConfig(seed=seed, scheduler=scheduler)
            assert check_supported(program, SPEC, config) is None
            kw = dict(blocks_assigned=blocks)
            ref = _run(ReferenceSMSimulator, program, launch, config,
                       **kw)
            spz = _run(SpecializedSMSimulator, program, launch, config,
                       **kw)
            _assert_identical(
                spz, ref, f"{kernel}/{scheduler}/s{seed}/{blocks}x{tpb}"
            )
            spz.validate()


@given(
    program=small_programs(),
    blocks=st.sampled_from([1, 5, 17]),
    tpb=st.sampled_from([32, 96, 256]),
    scheduler=st.sampled_from(["gto", "lrr"]),
    seed=st.integers(0, 3),
)
@settings(max_examples=25, deadline=None)
def test_random_kernels_match_reference(program, blocks, tpb, scheduler,
                                        seed):
    launch = LaunchConfig(blocks=blocks, threads_per_block=tpb)
    config = SimConfig(seed=seed, scheduler=scheduler)
    # every generated shape must be *accepted*: a silent fallback here
    # would make the equivalence claim vacuous.
    assert check_supported(program, SPEC, config) is None
    spz = _run(SpecializedSMSimulator, program, launch, config,
               blocks_assigned=blocks)
    ref = _run(ReferenceSMSimulator, program, launch, config,
               blocks_assigned=blocks)
    _assert_identical(spz, ref, f"{program.name}/{scheduler}")
    spz.validate()


def test_shared_l2_serial_path_matches_event_loop():
    """share_l2 launches take the serial path; the inline L1/L2 probe
    must mutate the *shared* cache exactly like the event loop."""
    program = _divergence_kernel()
    launch = LaunchConfig(blocks=6, threads_per_block=128)
    docs = []
    for backend in ("event", "specialized"):
        with backend_context(backend):
            config = SimConfig(seed=3, share_l2=True, simulated_sms=2)
            result = GPUSimulator(SPEC, config).launch_uncached(
                program, launch
            )
        docs.append([counters_to_doc(c) for c in result.per_sm])
    assert docs[0] == docs[1]


# ----------------------------------------------------------------------
# numpy roll tables vs the scalar SplitMix64 path
# ----------------------------------------------------------------------
def test_numpy_rolls_bit_identical_to_scalar():
    np = pytest.importorskip("numpy")
    from repro.sim.specialize import _mix64_np, _u01_np

    xs = [0, 1, 2, 1 << 63, (1 << 64) - 1, 0xDEADBEEF]
    xs += [mix64(i * 977) for i in range(64)]
    arr = np.array(xs, dtype=np.uint64)
    mixed = _mix64_np(arr)
    for i, x in enumerate(xs):
        assert int(mixed[i]) == mix64(x)
    u = _u01_np(mixed)
    for i, x in enumerate(xs):
        assert float(u[i]) == mix64(x) / float(1 << 64)


# ----------------------------------------------------------------------
# fallback: declined programs run the event loop, visibly
# ----------------------------------------------------------------------
def _oversized_kernel():
    b = ProgramBuilder("oversized")
    b.pattern("x", AccessKind.STRIDED, working_set_bytes=1 << 20,
              stride_elements=1)
    r = b.ldg("x")
    b.stg("x", r)
    return b.build(iterations=MAX_DYNAMIC_TOKENS)


def test_declined_program_falls_back_bit_identical():
    program = _oversized_kernel()
    launch = LaunchConfig(blocks=1, threads_per_block=32)
    config = SimConfig(seed=0, max_cycles=50_000_000)
    reason = check_supported(program, SPEC, config)
    assert reason is not None and "dynamic length" in reason
    with obs_context(enabled=True) as obs:
        spz = _run(SpecializedSMSimulator, program, launch, config)
        assert obs.metrics.counter("sim.specialize_fallbacks") == 1
    event = _run(SMSimulator, program, launch, config)
    assert counters_to_doc(spz) == counters_to_doc(event)


# ----------------------------------------------------------------------
# driver cache: metrics, persistence, table reuse
# ----------------------------------------------------------------------
def test_driver_cache_hit_miss_metrics():
    program = _constant_kernel()
    config = SimConfig(seed=0)
    clear_driver_cache()
    try:
        with obs_context(enabled=True) as obs:
            d1 = driver_for(program, SPEC, config)
            d2 = driver_for(program, SPEC, config)
            assert d1 is d2
            assert obs.metrics.counter("sim.specialize_misses") == 1
            assert obs.metrics.counter("sim.specialize_hits") == 1
    finally:
        clear_driver_cache()


def test_source_persistence_roundtrip(tmp_path):
    program = _divergence_kernel()
    config = SimConfig(seed=1)
    launch = LaunchConfig(blocks=2, threads_per_block=64)
    key = specialization_key(program, SPEC, config)
    path = tmp_path / f"{key}.py"
    clear_driver_cache()
    try:
        with source_dir(tmp_path):
            first = _run(SpecializedSMSimulator, program, launch, config)
            assert path.is_file(), "generated source not persisted"
            text = path.read_text(encoding="utf-8")

            # a fresh process (simulated by clearing the in-process
            # cache) loads the persisted source instead of re-running
            # codegen, bit-identically.
            clear_driver_cache()
            again = _run(SpecializedSMSimulator, program, launch, config)
            assert counters_to_doc(again) == counters_to_doc(first)

            # a corrupt persisted source (truncated write, not valid
            # python) is regenerated, not trusted.
            path.write_text("def drive(sim:\n    (", encoding="utf-8")
            clear_driver_cache()
            healed = _run(SpecializedSMSimulator, program, launch,
                          config)
            assert counters_to_doc(healed) == counters_to_doc(first)
            assert path.read_text(encoding="utf-8") == text

            # ...as is one that parses but lacks the entry point.
            path.write_text("x = 1\n", encoding="utf-8")
            clear_driver_cache()
            healed = _run(SpecializedSMSimulator, program, launch,
                          config)
            assert counters_to_doc(healed) == counters_to_doc(first)
            assert path.read_text(encoding="utf-8") == text
    finally:
        clear_driver_cache()


def test_runtime_table_cache_reused_across_runs():
    program = DIRECTED["barrier_drain"]()
    launch = LaunchConfig(blocks=4, threads_per_block=128)
    config = SimConfig(seed=5)
    clear_driver_cache()
    try:
        first = _run(SpecializedSMSimulator, program, launch, config)
        driver = driver_for(program, SPEC, config)
        assert driver.tables_cache, "per-run table cache not populated"
        keys = set(driver.tables_cache)
        again = _run(SpecializedSMSimulator, program, launch, config)
        assert set(driver.tables_cache) == keys
        assert counters_to_doc(again) == counters_to_doc(first)
    finally:
        clear_driver_cache()


# ----------------------------------------------------------------------
# backend plumbing
# ----------------------------------------------------------------------
def test_backend_selection_and_factory():
    assert current_backend() == DEFAULT_BACKEND == "specialized"
    assert simulator_class("event") is SMSimulator
    assert simulator_class("reference") is ReferenceSMSimulator
    assert simulator_class("specialized") is SpecializedSMSimulator
    with backend_context("reference"):
        assert current_backend() == "reference"
        program = _constant_kernel()
        sim = make_sm_simulator(
            SPEC, program, LaunchConfig(blocks=1, threads_per_block=32),
            SimConfig(seed=0),
        )
        assert type(sim) is ReferenceSMSimulator
    assert current_backend() == DEFAULT_BACKEND
    with pytest.raises(Exception):
        set_backend("no-such-backend")


def test_engine_context_threads_backend_and_source_dir(tmp_path):
    from repro.sim import specialize
    from repro.sim.engine import engine_context

    with engine_context(jobs=1, cache_dir=tmp_path, backend="event"):
        assert current_backend() == "event"
        assert specialize._SOURCE_DIR == tmp_path / "specialized"
    assert current_backend() == DEFAULT_BACKEND
    assert specialize._SOURCE_DIR is None


def test_cli_backend_flag_parses():
    from repro.cli import build_parser

    args = build_parser().parse_args(["analyze", "--backend", "event"])
    assert args.backend == "event"
    assert build_parser().parse_args(["analyze"]).backend is None
    for name in BACKENDS:
        parsed = build_parser().parse_args(["analyze", "--backend", name])
        assert parsed.backend == name
