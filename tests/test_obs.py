"""Unit tests for the observability layer (:mod:`repro.obs`).

Covers the tracer's span nesting/ordering and on-disk Chrome
trace-event format, the metrics registry's merge algebra and canonical
JSON export, the disabled-path zero-overhead contract (shared no-op
singletons, no events, no files), and the self-profiling arithmetic.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DISABLED_OBS,
    METRICS_SCHEMA,
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA,
    MetricsRegistry,
    ObsSession,
    Tracer,
    active_obs,
    iter_spans,
    load_trace,
    obs_context,
    self_profile,
)
from repro.obs.selfprof import render
from repro.sim.engine import EngineStats


class TestTracerSpans:
    def test_nesting_order_and_durations(self):
        tracer = Tracer(None)  # in-memory
        with tracer.span("outer", cat="engine", jobs=2):
            with tracer.span("inner", cat="sim"):
                pass
        spans = list(iter_spans(tracer.events))
        # completion order: inner closes (and records) before outer.
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        # the outer span must fully enclose the inner one.
        assert outer["ts"] <= inner["ts"]
        assert (outer["ts"] + outer["dur"]
                >= inner["ts"] + inner["dur"])
        assert outer["args"] == {"jobs": 2}
        assert outer["cat"] == "engine" and inner["cat"] == "sim"

    def test_span_set_records_late_args(self):
        tracer = Tracer(None)
        with tracer.span("cache.load", cat="cache", key="abc") as span:
            span.set(outcome="hit")
        (event,) = iter_spans(tracer.events)
        assert event["args"] == {"key": "abc", "outcome": "hit"}

    def test_instant_and_counter_events(self):
        tracer = Tracer(None)
        tracer.instant("retry", cat="resilience", attempt=1)
        tracer.counter("cache", {"hits": 3}, cat="cache")
        phases = [e["ph"] for e in tracer.events if "cat" in e]
        assert phases == ["i", "C"]

    def test_exception_still_records_span(self):
        tracer = Tracer(None)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert [s["name"] for s in iter_spans(tracer.events)] == ["boom"]


class TestTracerFile:
    def test_chrome_trace_schema(self, tmp_path):
        path = tmp_path / "out.trace.json"
        tracer = Tracer(path, process_name="unit")
        with tracer.span("a", cat="engine"):
            tracer.instant("mark", cat="resilience")
        tracer.close()
        text = path.read_text()
        # a closed trace is a complete JSON array.
        events = json.loads(text)
        assert isinstance(events, list)
        # metadata: process name first, trace.end last.
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "unit"
        assert events[0]["args"]["schema"] == TRACE_SCHEMA
        assert events[-1]["name"] == "trace.end"
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0

    def test_unterminated_trace_still_loads(self, tmp_path):
        # a crashed writer leaves no footer; load_trace (like Perfetto)
        # must accept the torn file.
        path = tmp_path / "torn.trace.json"
        tracer = Tracer(path, footer=False)
        with tracer.span("a"):
            pass
        tracer.close()
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())
        events = load_trace(path)
        assert any(e["name"] == "a" for e in events)

    def test_load_trace_round_trip(self, tmp_path):
        path = tmp_path / "rt.trace.json"
        tracer = Tracer(path)
        with tracer.span("x", cat="sim", key="k"):
            pass
        tracer.close()
        assert load_trace(path) == json.loads(path.read_text())


class TestDisabledPath:
    def test_null_singletons_are_shared(self):
        # the disabled path must not allocate per call.
        assert NULL_TRACER.span("anything", cat="x", a=1) is NULL_SPAN
        with NULL_TRACER.span("s") as span:
            span.set(outcome="hit")
        assert span is NULL_SPAN
        NULL_TRACER.instant("i")
        NULL_TRACER.counter("c", {"v": 1})
        NULL_TRACER.close()

    def test_null_metrics_noop(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.observe("y", 1.0)
        NULL_METRICS.set_gauge("z", 2)
        assert NULL_METRICS.counter("x") == 0

    def test_default_session_is_disabled(self):
        obs = active_obs()
        assert obs is DISABLED_OBS
        assert not obs.enabled
        assert obs.tracer is NULL_TRACER
        assert obs.metrics is NULL_METRICS

    def test_obs_context_without_targets_stays_disabled(self):
        with obs_context() as obs:
            assert obs is DISABLED_OBS
            assert active_obs() is DISABLED_OBS

    def test_obs_context_enabled_in_memory(self):
        with obs_context(enabled=True) as obs:
            assert obs.enabled
            assert active_obs() is obs
            with obs.tracer.span("s", cat="engine"):
                obs.metrics.inc("k")
        assert active_obs() is DISABLED_OBS
        assert obs.metrics.counter("k") == 1
        assert [s["name"] for s in iter_spans(obs.tracer.events)] == ["s"]

    def test_disabled_run_writes_no_files(self, tmp_path):
        before = set(tmp_path.iterdir())
        with obs_context():
            pass
        assert set(tmp_path.iterdir()) == before


class TestMetricsRegistry:
    def test_inc_gauge_observe(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2)
        reg.set_gauge("jobs", 4)
        reg.observe("wall", 0.5)
        reg.observe("wall", 1.5)
        assert reg.counter("hits") == 3
        assert reg.gauge("jobs") == 4
        hist = reg.histogram("wall")
        assert hist.count == 2
        assert hist.total == 2.0
        assert hist.min == 0.5 and hist.max == 1.5

    def test_merge_is_commutative(self):
        def build(a_hits, b_jobs, walls):
            reg = MetricsRegistry()
            reg.inc("hits", a_hits)
            reg.set_gauge("jobs", b_jobs)
            for w in walls:
                reg.observe("wall", w)
            return reg

        x = build(2, 1, [0.25])
        y = build(5, 4, [1.0, 2.0])
        xy = build(2, 1, [0.25])
        xy.merge(y.payload())
        yx = build(5, 4, [1.0, 2.0])
        yx.merge(x.payload())
        # counters add, gauges max, histograms combine — order-free.
        assert xy.to_json() == yx.to_json()
        assert xy.counter("hits") == 7
        assert xy.gauge("jobs") == 4
        assert xy.histogram("wall").count == 3

    def test_payload_deterministic_only_drops_nondeterministic(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 0.1)
        full = reg.payload()
        assert set(full) == {"schema", "counters", "gauges", "histograms"}
        det = reg.payload(deterministic_only=True)
        assert set(det) == {"schema", "counters"}
        assert det["schema"] == METRICS_SCHEMA

    def test_to_json_is_canonical(self):
        a = MetricsRegistry()
        a.inc("z")
        a.inc("a")
        b = MetricsRegistry()
        b.inc("a")
        b.inc("z")
        # insertion order must not leak into the export.
        assert a.to_json() == b.to_json()
        assert a.to_json().endswith("\n")
        json.loads(a.to_json())  # valid JSON

    def test_write_creates_file_atomically(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("k")
        out = tmp_path / "m.json"
        reg.write(out)
        assert json.loads(out.read_text())["counters"] == {"k": 1}
        assert not list(tmp_path.glob("*.tmp*"))


class TestObsSessionMerge:
    def test_close_merges_spill_files(self, tmp_path):
        session = ObsSession(metrics_out=tmp_path / "m.json")
        spill_dir = session.worker_init_args()[2]
        for pid, n in ((101, 2), (102, 3)):
            worker = MetricsRegistry()
            worker.inc("sim.cells_executed", n)
            worker.write(f"{spill_dir}/metrics-{pid}.json")
        session.close()
        doc = json.loads((tmp_path / "m.json").read_text())
        assert doc["counters"]["sim.cells_executed"] == 5

    def test_corrupt_spill_is_skipped(self, tmp_path):
        session = ObsSession(metrics_out=tmp_path / "m.json")
        spill_dir = session.worker_init_args()[2]
        with open(f"{spill_dir}/metrics-1.json", "w") as fh:
            fh.write("{ torn")
        good = MetricsRegistry()
        good.inc("ok")
        good.write(f"{spill_dir}/metrics-2.json")
        session.close()
        doc = json.loads((tmp_path / "m.json").read_text())
        assert doc["counters"] == {"ok": 1}


class TestSelfProfile:
    def test_overhead_arithmetic(self):
        stats = EngineStats(sim_calls=4, memo_hits=2,
                            sim_seconds=2.0, cache_seconds=0.5)
        sp = self_profile(stats, wall_s=4.0)
        assert sp.sim_s == 2.0
        assert sp.cache_io_s == 0.5
        assert sp.orchestration_s == pytest.approx(1.5)
        assert sp.self_overhead_x == pytest.approx(2.0)
        assert sp.sim_share == pytest.approx(0.5)

    def test_replay_ratio_from_metrics(self):
        reg = MetricsRegistry()
        reg.inc("profiler.kernels", 10)
        reg.inc("profiler.replay_passes", 130)
        sp = self_profile(EngineStats(sim_calls=1, sim_seconds=1.0),
                          wall_s=1.0, metrics=reg)
        # the paper's §VI ~13x replay overhead, modeled.
        assert sp.modeled_replay_x == pytest.approx(13.0)
        assert "13.0x" in render(sp)

    def test_zero_sim_time_does_not_divide_by_zero(self):
        sp = self_profile(EngineStats(), wall_s=0.0)
        assert sp.self_overhead_x == 1.0  # nothing happened: no overhead
        assert sp.sim_share == 0.0
        assert sp.modeled_replay_x == 0.0
        render(sp)
