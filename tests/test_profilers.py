"""Tests for the nvprof/ncu emulators and the CSV parsers (including
round-trips: emulated CSV -> parser -> identical analysis input)."""

import pytest

from repro.arch import ComputeCapability
from repro.errors import ProfilerError
from repro.isa import LaunchConfig
from repro.profilers import (
    ApplicationProfile,
    KernelProfile,
    NcuTool,
    NvprofTool,
    parse_metric_value,
    parse_ncu_csv,
    parse_nvprof_csv,
    tool_for,
)
from repro.sim import SimConfig
from repro.workloads.base import Application, KernelInvocation

from tests.conftest import build_stream_kernel


def _app(n_invocations=2):
    prog = build_stream_kernel(iterations=4)
    launch = LaunchConfig(blocks=8, threads_per_block=128)
    return Application(
        "testapp", "test",
        tuple(KernelInvocation(prog, launch) for _ in range(n_invocations)),
    )


class TestRecords:
    def test_metric_accessors(self):
        k = KernelProfile("k", 0, {"ipc": 1.5})
        assert k.metric("ipc") == 1.5
        assert k.metric_or("nope", 9.0) == 9.0
        with pytest.raises(ProfilerError):
            k.metric("nope")

    def test_application_profile_requires_kernels(self):
        with pytest.raises(ProfilerError):
            ApplicationProfile(
                application="a", device_name="d",
                compute_capability=ComputeCapability(7, 5), kernels=(),
            )

    def test_overhead_and_grouping(self):
        kernels = (
            KernelProfile("k1", 0, {"m": 1.0}, duration_cycles=100),
            KernelProfile("k1", 1, {"m": 2.0}, duration_cycles=100),
            KernelProfile("k2", 0, {"m": 3.0}, duration_cycles=50),
        )
        p = ApplicationProfile(
            application="a", device_name="d",
            compute_capability=ComputeCapability(7, 5),
            kernels=kernels, native_cycles=250, profiled_cycles=1000,
        )
        assert p.overhead == 4.0
        assert p.kernel_names == ["k1", "k2"]
        assert len(p.invocations_of("k1")) == 2
        assert p.total_duration_cycles() == 250


class TestToolSelection:
    def test_tool_for_turing_is_ncu(self, turing):
        assert isinstance(tool_for(turing), NcuTool)

    def test_tool_for_pascal_is_nvprof(self, pascal):
        assert isinstance(tool_for(pascal), NvprofTool)

    def test_ncu_refuses_pascal(self, pascal):
        with pytest.raises(ProfilerError, match="does not support"):
            NcuTool(pascal)

    def test_nvprof_refuses_turing(self, turing):
        with pytest.raises(ProfilerError, match="does not support"):
            NvprofTool(turing)


class TestProfiling:
    def test_profile_application_counts_invocations(self, turing):
        tool = NcuTool(turing, SimConfig(seed=1))
        profile = tool.profile_application(
            _app(3), ["smsp__inst_executed.avg.per_cycle_active"]
        )
        assert len(profile.kernels) == 3
        assert [k.invocation for k in profile.kernels] == [0, 1, 2]
        assert profile.native_cycles > 0
        assert profile.profiled_cycles > profile.native_cycles

    def test_profile_records_durations(self, turing):
        tool = NcuTool(turing, SimConfig(seed=1))
        profile = tool.profile_application(
            _app(1), ["smsp__inst_executed.avg.per_cycle_active"]
        )
        assert profile.kernels[0].duration_cycles > 0


class TestNvprofCsv:
    def _profile(self, pascal):
        tool = NvprofTool(pascal, SimConfig(seed=1))
        return tool, tool.profile_application(
            _app(2), ["ipc", "warp_execution_efficiency", "stall_sync"]
        )

    def test_csv_layout(self, pascal):
        tool, profile = self._profile(pascal)
        csv_text = tool.to_csv(profile)
        assert csv_text.startswith("==PROF==")
        assert '"Metric Name"' in csv_text
        assert '"ipc"' in csv_text
        assert "%" in csv_text  # percent-unit metrics formatted with %

    def test_round_trip(self, pascal):
        tool, profile = self._profile(pascal)
        parsed = parse_nvprof_csv(
            tool.to_csv(profile), application="testapp",
            compute_capability="6.1",
        )
        orig = profile.kernels[0]
        back = parsed.kernels[0]
        assert back.kernel_name == orig.kernel_name
        # nvprof aggregates invocations; both invocations are identical
        # here, so Avg == each value.
        for m in ("ipc", "warp_execution_efficiency", "stall_sync"):
            assert back.metrics[m] == pytest.approx(orig.metrics[m],
                                                    abs=1e-4)
        assert "NVIDIA GTX 1070" in parsed.device_name

    def test_parse_rejects_empty(self):
        with pytest.raises(ProfilerError):
            parse_nvprof_csv("")

    def test_parse_rejects_headerless(self):
        with pytest.raises(ProfilerError):
            parse_nvprof_csv("a,b,c\n1,2,3\n")

    def test_parse_real_format_sample(self):
        """A hand-written snippet in genuine nvprof CSV shape."""
        text = (
            "==4120== NVPROF is profiling process 4120\n"
            "==4120== Profiling result:\n"
            '"Device","Kernel","Invocations","Metric Name",'
            '"Metric Description","Min","Max","Avg"\n'
            '"GeForce GTX 1070 (0)","void kernelA(float*)","4",'
            '"ipc","Executed IPC","1.227127","1.324201","1.280664"\n'
            '"GeForce GTX 1070 (0)","void kernelA(float*)","4",'
            '"stall_sync","Issue Stall Reasons","10.50%","12.20%",'
            '"11.35%"\n'
        )
        profile = parse_nvprof_csv(text, application="real")
        k = profile.kernels[0]
        assert k.kernel_name == "void kernelA(float*)"
        assert k.metrics["ipc"] == pytest.approx(1.280664)
        assert k.metrics["stall_sync"] == pytest.approx(11.35)


class TestNcuCsv:
    def _profile(self, turing):
        tool = NcuTool(turing, SimConfig(seed=1))
        return tool, tool.profile_application(
            _app(2),
            ["smsp__inst_executed.avg.per_cycle_active",
             "smsp__thread_inst_executed_per_inst_executed.ratio"],
        )

    def test_csv_layout(self, turing):
        tool, profile = self._profile(turing)
        csv_text = tool.to_csv(profile)
        lines = csv_text.splitlines()
        assert lines[0].startswith('"ID"')
        assert len(lines) == 1 + 2 * 2  # 2 invocations x 2 metrics

    def test_round_trip_preserves_invocations(self, turing):
        tool, profile = self._profile(turing)
        parsed = parse_ncu_csv(tool.to_csv(profile), application="testapp")
        assert len(parsed.kernels) == 2
        assert [k.invocation for k in parsed.kernels] == [0, 1]
        for orig, back in zip(profile.kernels, parsed.kernels):
            for name, value in orig.metrics.items():
                assert back.metrics[name] == pytest.approx(value, abs=1e-5)

    def test_parse_real_format_sample(self):
        text = (
            '"ID","Process ID","Process Name","Host Name","Kernel Name",'
            '"Context","Stream","Section Name","Metric Name",'
            '"Metric Unit","Metric Value"\n'
            '"0","1721","./app","127.0.0.1","kern(float*)","1","7",'
            '"Command line profiler metrics",'
            '"smsp__inst_executed.avg.per_cycle_active","inst/cycle",'
            '"0.35"\n'
            '"1","1721","./app","127.0.0.1","kern(float*)","1","7",'
            '"Command line profiler metrics",'
            '"smsp__inst_executed.avg.per_cycle_active","inst/cycle",'
            '"0.55"\n'
        )
        profile = parse_ncu_csv(text)
        assert len(profile.kernels) == 2
        assert profile.kernels[1].invocation == 1
        assert profile.kernels[1].metrics[
            "smsp__inst_executed.avg.per_cycle_active"
        ] == pytest.approx(0.55)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ProfilerError):
            parse_ncu_csv("")
        with pytest.raises(ProfilerError):
            parse_ncu_csv("x,y\n1,2\n")


class TestMetricValueParsing:
    @pytest.mark.parametrize("text,value", [
        ("1.5", 1.5),
        ("12.20%", 12.2),
        ("1,234.5", 1234.5),
        ("3.2e-05", 3.2e-05),
        ("80 GB/s", 80.0),
    ])
    def test_accepts(self, text, value):
        assert parse_metric_value(text) == pytest.approx(value)

    @pytest.mark.parametrize("text", ["", "n/a", "<inactive>"])
    def test_rejects(self, text):
        assert parse_metric_value(text) is None
