"""Tests for the issue tracer — cycle-accurate observability."""

import pytest

from repro.isa import AccessKind, LaunchConfig, Opcode, ProgramBuilder
from repro.sim import SimConfig, simulate_kernel, trace_kernel


def _tiny_kernel(iterations=2):
    b = ProgramBuilder("tiny")
    b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 14)
    r = b.ldg("x")
    r = b.ffma(r, r)
    b.stg("x", r)
    return b.build(iterations=iterations)


@pytest.fixture()
def traced(turing):
    prog = _tiny_kernel()
    launch = LaunchConfig(blocks=36, threads_per_block=64)
    counters, tracer = trace_kernel(turing, prog, launch,
                                    SimConfig(seed=1))
    return prog, counters, tracer


class TestTracer:
    def test_one_event_per_executed_body_instruction(self, traced):
        prog, counters, tracer = traced
        # EXIT/barrier bookkeeping goes through a separate path; all
        # body instructions must appear in the trace.
        body_insts = counters.inst_executed - counters.warps_launched
        assert len(tracer.events) == body_insts

    def test_events_are_time_ordered_per_warp(self, traced):
        _, _, tracer = traced
        warp_ids = {e.warp_id for e in tracer.events}
        for wid in warp_ids:
            cycles = [e.cycle for e in tracer.issues_of_warp(wid)]
            assert cycles == sorted(cycles)

    def test_program_order_within_warp(self, traced):
        prog, _, tracer = traced
        wid = tracer.events[0].warp_id
        seq = [(e.iteration, e.pc) for e in tracer.issues_of_warp(wid)]
        assert seq == sorted(seq)

    def test_opcode_histogram_matches_program(self, traced):
        prog, counters, tracer = traced
        hist = tracer.opcode_histogram()
        warps = counters.warps_launched
        iters = prog.iterations
        assert hist[Opcode.LDG] == warps * iters
        assert hist[Opcode.FFMA] == warps * iters
        assert hist[Opcode.STG] == warps * iters

    def test_issues_per_cycle_bounded_by_dispatch(self, traced, turing):
        _, _, tracer = traced
        per_cycle = tracer.issues_per_cycle()
        limit = turing.sm.dispatch_units
        assert max(per_cycle.values()) <= limit

    def test_counters_match_untraced_run(self, turing):
        prog = _tiny_kernel()
        launch = LaunchConfig(blocks=36, threads_per_block=64)
        traced_counters, _ = trace_kernel(turing, prog, launch,
                                          SimConfig(seed=1))
        plain = simulate_kernel(turing, prog, launch,
                                SimConfig(seed=1)).per_sm[0]
        assert traced_counters.inst_executed == plain.inst_executed
        assert traced_counters.state_cycles == plain.state_cycles

    def test_listing_renders(self, traced):
        _, _, tracer = traced
        text = tracer.listing(limit=5)
        assert "LDG" in text or "FFMA" in text
        assert "more" in text

    def test_divergence_mask_recorded(self, turing):
        b = ProgramBuilder("div")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 14)
        r = b.ldg("x")
        b.branch(if_length=2, taken_fraction=0.25, src=r)
        b.ffma(r, r)
        b.ffma(r, r)
        b.stg("x", r)
        prog = b.build()
        _, tracer = trace_kernel(
            turing, prog, LaunchConfig(blocks=36, threads_per_block=32),
            SimConfig(seed=1),
        )
        masks = {e.pc: e.active_threads for e in tracer.events}
        assert masks[2] == 8      # inside the IF region: 25% of 32
        assert masks[4] == 32     # after reconvergence
