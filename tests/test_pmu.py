"""Tests for the PMU layer: events, metric catalogs, pass scheduling
and the CUPTI-like session."""

import pytest

from repro.arch import PMUSpec, get_gpu
from repro.errors import CounterError
from repro.isa import LaunchConfig
from repro.pmu import (
    EVENT_CATALOG,
    CuptiSession,
    MetricContext,
    catalog_for,
    get_event,
    get_metric,
    legacy_catalog,
    ncu_stall_metric_name,
    required_events,
    schedule_passes,
    stall_event_name,
    unified_catalog,
)
from repro.sim import SimConfig, WarpState
from repro.sim.counters import EventCounters

from tests.conftest import build_stream_kernel


class TestEvents:
    def test_catalog_covers_all_warp_states(self):
        for state in WarpState:
            assert stall_event_name(state) in EVENT_CATALOG

    def test_unknown_event_raises(self):
        with pytest.raises(CounterError):
            get_event("nope")

    def test_fixed_events_flagged(self):
        assert get_event("sm__cycles_active").fixed
        assert not get_event("sm__inst_executed").fixed

    def test_extract_from_counters(self):
        c = EventCounters()
        c.inst_executed = 42
        assert get_event("sm__inst_executed").extract(c) == 42.0


class TestCatalogs:
    def test_dispatch_by_cc(self):
        assert catalog_for("6.1") is legacy_catalog()
        assert catalog_for("7.5") is unified_catalog()
        assert catalog_for("7.2") is unified_catalog()

    def test_legacy_has_paper_table_metrics(self):
        cat = legacy_catalog()
        for name in ("ipc", "issued_ipc", "warp_execution_efficiency",
                     "stall_inst_fetch", "stall_sync", "stall_other",
                     "stall_exec_dependency", "stall_pipe_busy",
                     "stall_memory_dependency",
                     "stall_constant_memory_dependency",
                     "stall_memory_throttle"):
            assert name in cat

    def test_unified_has_paper_table_metrics(self):
        cat = unified_catalog()
        for name in (
            "smsp__inst_executed.avg.per_cycle_active",
            "smsp__inst_issued.avg.per_cycle_active",
            "smsp__thread_inst_executed_per_inst_executed.ratio",
        ):
            assert name in cat
        for state in (WarpState.NO_INSTRUCTION, WarpState.BARRIER,
                      WarpState.LONG_SCOREBOARD, WarpState.IMC_MISS,
                      WarpState.LG_THROTTLE, WarpState.DRAIN):
            assert ncu_stall_metric_name(state) in cat

    def test_get_metric_cc_gating(self):
        with pytest.raises(CounterError):
            get_metric("ipc", "7.5")
        with pytest.raises(CounterError):
            get_metric("smsp__inst_executed.avg.per_cycle_active", "6.1")

    def test_metric_requirements_are_known_events(self):
        for cat in (legacy_catalog(), unified_catalog()):
            for metric in cat.values():
                for ev in metric.events:
                    assert ev in EVENT_CATALOG

    def test_nvprof_stall_percentages_sum_to_100(self, pascal):
        """All nvprof stall reasons partition the stall cycles."""
        c = EventCounters()
        # fabricate some stall distribution
        vals = [100, 50, 25, 10, 5, 300, 40, 7, 3, 90, 110, 17, 230, 8,
                12, 6, 44, 1]
        states = [s for s in WarpState if s is not WarpState.SELECTED]
        for state, v in zip(states, vals):
            c.state_cycles[state] = v
        c.warp_active_cycles = sum(c.state_cycles.values())
        ctx = MetricContext(spec=pascal)
        events = {name: e.extract(c) for name, e in EVENT_CATALOG.items()}
        total = sum(
            m.evaluate(events, ctx)
            for name, m in legacy_catalog().items()
            if name.startswith("stall_")
        )
        assert total == pytest.approx(100.0)

    def test_ncu_stall_pct_definition(self, turing):
        c = EventCounters()
        c.warp_active_cycles = 1000
        c.state_cycles[WarpState.LONG_SCOREBOARD] = 250
        ctx = MetricContext(spec=turing)
        events = {name: e.extract(c) for name, e in EVENT_CATALOG.items()}
        metric = unified_catalog()[
            ncu_stall_metric_name(WarpState.LONG_SCOREBOARD)
        ]
        assert metric.evaluate(events, ctx) == pytest.approx(25.0)

    def test_smsp_ipc_scaling(self, turing):
        """ncu reports per-sub-partition IPC."""
        c = EventCounters()
        c.cycles_active = 1000
        c.inst_executed = 1000
        ctx = MetricContext(spec=turing)  # 2 smsp
        events = {name: e.extract(c) for name, e in EVENT_CATALOG.items()}
        metric = unified_catalog()["smsp__inst_executed.avg.per_cycle_active"]
        assert metric.evaluate(events, ctx) == pytest.approx(0.5)

    def test_metric_missing_event_raises(self, turing):
        metric = unified_catalog()["smsp__inst_executed.avg.per_cycle_active"]
        with pytest.raises(CounterError, match="missing events"):
            metric.evaluate({}, MetricContext(spec=turing))


class TestPassScheduling:
    def test_fixed_events_are_free(self):
        cat = unified_catalog()
        metrics = [cat["sm__cycles_active.avg"]]
        plan = schedule_passes(metrics, PMUSpec(counters_per_pass=4))
        assert plan.passes == ()          # nothing programmable
        assert plan.num_passes == 1       # baseline pass only

    def test_capacity_drives_pass_count(self):
        cat = unified_catalog()
        metrics = [
            cat[ncu_stall_metric_name(s)]
            for s in (WarpState.NO_INSTRUCTION, WarpState.BARRIER,
                      WarpState.MEMBAR, WarpState.LONG_SCOREBOARD,
                      WarpState.IMC_MISS)
        ]
        plan2 = schedule_passes(metrics, PMUSpec(counters_per_pass=2))
        plan5 = schedule_passes(metrics, PMUSpec(counters_per_pass=5))
        assert plan2.num_passes == 1 + 3   # ceil(5/2) programmable passes
        assert plan5.num_passes == 1 + 1

    def test_shared_events_counted_once(self):
        cat = unified_catalog()
        metrics = [
            cat["smsp__inst_executed.avg.per_cycle_active"],
            cat["smsp__thread_inst_executed_per_inst_executed.ratio"],
        ]
        programmable, fixed = required_events(metrics)
        assert programmable == {"sm__inst_executed",
                                "sm__thread_inst_executed"}
        assert "sm__cycles_active" in fixed

    def test_paper_pass_count(self, turing, pascal):
        """A level-3 Top-Down collection takes 8 executions per kernel
        on both devices (paper §V.E)."""
        from repro.core.overhead import passes_for_level

        assert passes_for_level(turing, 3) == 8
        assert passes_for_level(pascal, 3) == 8

    def test_zero_capacity_rejected(self):
        cat = unified_catalog()
        with pytest.raises(CounterError):
            schedule_passes(
                [cat["smsp__inst_executed.avg.per_cycle_active"]],
                PMUSpec(counters_per_pass=0),
            )


class TestCuptiSession:
    def _collect(self, spec, replay="model", metrics=None):
        session = CuptiSession(spec, SimConfig(seed=5), replay)
        prog = build_stream_kernel(iterations=4)
        launch = LaunchConfig(blocks=8, threads_per_block=128)
        metrics = metrics or [
            "smsp__inst_executed.avg.per_cycle_active",
            ncu_stall_metric_name(WarpState.LONG_SCOREBOARD),
        ]
        return session.collect(prog, launch, metrics)

    def test_collect_returns_metrics(self, turing):
        collected = self._collect(turing)
        assert set(collected.metrics) == {
            "smsp__inst_executed.avg.per_cycle_active",
            ncu_stall_metric_name(WarpState.LONG_SCOREBOARD),
        }
        assert collected.metrics[
            "smsp__inst_executed.avg.per_cycle_active"
        ] > 0

    def test_unknown_metric_rejected(self, turing):
        with pytest.raises(CounterError, match="not available"):
            self._collect(turing, metrics=["ipc"])

    def test_overhead_grows_with_passes(self, turing):
        few = self._collect(turing)
        many = CuptiSession(turing, SimConfig(seed=5)).collect(
            build_stream_kernel(iterations=4),
            LaunchConfig(blocks=8, threads_per_block=128),
            list(unified_catalog()),
        )
        assert many.plan.num_passes > few.plan.num_passes
        assert many.profiled_cycles > few.profiled_cycles
        assert many.overhead > few.overhead > 1.0

    def test_execute_replay_is_deterministic(self, turing):
        collected = self._collect(turing, replay="execute")
        assert collected.plan.num_passes >= 1  # replays did not diverge

    def test_invalid_replay_mode(self, turing):
        with pytest.raises(CounterError):
            CuptiSession(turing, SimConfig(), "bogus")

    def test_available_metrics_match_catalog(self, turing, pascal):
        assert set(CuptiSession(turing).available_metrics()) == set(
            unified_catalog()
        )
        assert set(CuptiSession(pascal).available_metrics()) == set(
            legacy_catalog()
        )
