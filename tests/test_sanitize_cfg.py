"""Unit tests for the sanitizer's static-analysis substrate: the
per-thread CFG, the fixed-point dataflow engine (reaching definitions,
liveness, barrier counting), and the path-aware lint analyses that now
route through it (dependency depths, dead regions)."""

from __future__ import annotations

import pytest

from repro.isa import AccessKind, Instruction, Opcode, ProgramBuilder
from repro.lint.analysis import (
    achievable_ilp,
    dead_regions,
    dependency_depths,
)
from repro.sanitize import (
    EXIT_BLOCK,
    barrier_free_reachable,
    build_cfg,
    divergent_region_pcs,
    exit_barrier_counts,
    liveness,
    reaching_definitions,
    uninit_def,
)


def _straight(iterations: int = 1):
    b = ProgramBuilder("straight")
    b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
    r0 = b.ldg("x")          # pc 0
    r1 = b.ffma(r0, r0)      # pc 1
    r2 = b.ffma(r1, r0)      # pc 2
    b.stg("x", r2)           # pc 3
    return b.build(iterations=iterations)


def _diamond(taken_fraction: float = 0.5, iterations: int = 1):
    """pc 0 LDG, pc 1 BRA, pc 2 if-arm IADD, pc 3 else-arm FADD,
    pc 4 join FFMA, pc 5 STG."""
    b = ProgramBuilder("diamond")
    b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
    r0 = b.ldg("x")
    b.branch(if_length=1, else_length=1, taken_fraction=taken_fraction,
             src=r0)
    r_if = b.iadd(r0)
    r_else = b.fadd(r0)
    out = b.ffma(r_if, r_else)
    b.stg("x", out)
    return b.build(iterations=iterations)


# ----------------------------------------------------------------------
# CFG structure
# ----------------------------------------------------------------------
class TestBuildCfg:
    def test_straight_line_is_one_block(self):
        cfg = build_cfg(_straight())
        assert len(cfg.blocks) == 1
        assert cfg.entry.pcs == range(0, 4)
        assert cfg.succs[0] == (EXIT_BLOCK,)
        assert cfg.back_edges == frozenset()

    def test_diamond_blocks_and_kinds(self):
        cfg = build_cfg(_diamond())
        kinds = [b.kind for b in cfg.blocks]
        assert kinds == ["branch", "if_arm", "else_arm", "linear"]
        assert cfg.block_at(2).branch_pc == 1
        assert cfg.block_at(3).branch_pc == 1
        # branch -> both arms; arms -> join; join -> exit.
        assert set(cfg.succs[0]) == {1, 2}
        assert cfg.succs[1] == (3,)
        assert cfg.succs[2] == (3,)
        assert cfg.succs[3] == (EXIT_BLOCK,)
        assert set(cfg.preds[3]) == {1, 2}

    def test_loop_back_edge(self):
        cfg = build_cfg(_straight(iterations=4))
        assert cfg.succs[0] == (EXIT_BLOCK, 0)
        assert cfg.back_edges == frozenset({(0, 0)})
        assert cfg.forward_succs(0) == ()

    def test_degenerate_fractions_leave_unreachable_arms(self):
        always = build_cfg(_diamond(taken_fraction=1.0))
        dead = always.unreachable_blocks()
        assert [b.kind for b in dead] == ["else_arm"]
        never = build_cfg(_diamond(taken_fraction=0.0))
        assert [b.kind for b in never.unreachable_blocks()] == ["if_arm"]
        divergent = build_cfg(_diamond(taken_fraction=0.5))
        assert divergent.unreachable_blocks() == ()

    def test_inst_succs_thread_semantics(self):
        cfg = build_cfg(_diamond(iterations=2))
        assert cfg.inst_succs(0) == (1,)
        assert set(cfg.inst_succs(1)) == {2, 3}   # one arm per thread
        assert cfg.inst_succs(2) == (4,)
        assert cfg.inst_succs(3) == (4,)
        assert set(cfg.inst_succs(5)) == {EXIT_BLOCK, 0}

    def test_topological_order_is_start_order(self):
        cfg = build_cfg(_diamond())
        order = cfg.topological_order()
        assert order == tuple(range(len(cfg.blocks)))
        pos = {b: i for i, b in enumerate(order)}
        for src in range(len(cfg.blocks)):
            for dst in cfg.forward_succs(src):
                assert pos[src] < pos[dst]

    def test_divergent_region_pcs(self):
        assert divergent_region_pcs(_diamond(0.5)) == frozenset({2, 3})
        assert divergent_region_pcs(_diamond(1.0)) == frozenset()
        assert divergent_region_pcs(_straight()) == frozenset()


# ----------------------------------------------------------------------
# dataflow analyses
# ----------------------------------------------------------------------
class TestReachingDefs:
    def test_straight_line_last_writer(self):
        prog = _straight()
        defs = reaching_definitions(build_cfg(prog))
        # the FFMA at pc 2 reads r1 (defined at 1) and r0 (defined at 0)
        r1, r0 = prog.body[2].srcs
        assert defs.real_defs_of(2, r1) == frozenset({1})
        assert defs.real_defs_of(2, r0) == frozenset({0})
        assert not defs.maybe_uninit(2, r1)

    def test_one_arm_def_is_partial_at_join(self):
        b = ProgramBuilder("partial")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
        r0 = b.ldg("x")                                     # pc 0
        b.branch(if_length=1, taken_fraction=0.5, src=r0)   # pc 1
        r1 = b.iadd(r0)                                     # pc 2 (if arm)
        b.stg("x", r1)                                      # pc 3 (join)
        prog = b.build()
        defs = reaching_definitions(build_cfg(prog))
        assert defs.maybe_uninit(3, r1)
        assert not defs.certainly_uninit(3, r1)
        assert defs.defs_of(3, r1) == frozenset({2, uninit_def(r1)})

    def test_never_written_is_certain(self):
        b = ProgramBuilder("uninit")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
        ghost = b.reg()
        b.stg("x", ghost)
        prog = b.build()
        defs = reaching_definitions(build_cfg(prog))
        assert defs.certainly_uninit(0, ghost)

    def test_loop_carried_def_reaches_via_back_edge_only(self):
        b = ProgramBuilder("carried")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
        acc = b.reg()
        b.stg("x", acc)          # pc 0: read before any first-pass write
        r = b.ldg("x")           # pc 1
        b.emit(Instruction(Opcode.IADD, dst=acc, srcs=(r,)))  # pc 2
        prog = b.build(iterations=3)
        cfg = build_cfg(prog)
        cyclic = reaching_definitions(cfg)
        assert cyclic.defs_of(0, acc) == frozenset({2, uninit_def(acc)})
        first_pass = reaching_definitions(cfg, include_back_edges=False)
        assert first_pass.certainly_uninit(0, acc)

    def test_def_use_chains(self):
        prog = _straight()
        defs = reaching_definitions(build_cfg(prog))
        assert 2 in defs.def_use[1]      # r1 (def pc 1) feeds pc 2
        assert defs.def_use[2] == frozenset({3})


class TestLivenessAndBarriers:
    def test_liveness_across_diamond(self):
        prog = _diamond()
        cfg = build_cfg(prog)
        ins, _outs = liveness(cfg)
        r0 = prog.body[0].dst
        # r0 is consumed by both arms: live into both arm blocks.
        assert r0 in ins[1] and r0 in ins[2]
        # nothing is live into the entry before pc 0 defines r0.
        assert r0 not in ins[0]

    def test_exit_barrier_counts_balanced(self):
        b = ProgramBuilder("balanced")
        b.pattern("s", AccessKind.STREAM, working_set_bytes=1 << 12)
        r = b.ldg("s")
        b.branch(if_length=2, else_length=2, taken_fraction=0.5, src=r)
        b.iadd(r)
        b.barrier()
        b.fadd(r)
        b.barrier()
        b.stg("s", r)
        prog = b.build()
        assert exit_barrier_counts(build_cfg(prog)) == frozenset({1})

    def test_exit_barrier_counts_mismatch(self):
        b = ProgramBuilder("lopsided")
        b.pattern("s", AccessKind.STREAM, working_set_bytes=1 << 12)
        r = b.ldg("s")
        b.branch(if_length=2, else_length=1, taken_fraction=0.5, src=r)
        b.iadd(r)
        b.barrier()          # taken path: 1 barrier
        b.fadd(r)            # fall-through: 0 barriers
        b.stg("s", r)
        prog = b.build()
        assert exit_barrier_counts(build_cfg(prog)) == frozenset({0, 1})

    def test_barrier_free_reachability_stops_at_bar(self):
        b = ProgramBuilder("fence")
        b.pattern("t", AccessKind.STREAM, working_set_bytes=1 << 12)
        r = b.ldg("t")       # pc 0
        b.sts("t", r)        # pc 1
        b.barrier()          # pc 2
        b.lds("t")           # pc 3
        prog = b.build()
        cfg = build_cfg(prog)
        reach = barrier_free_reachable(cfg, 1, separating=frozenset({2}))
        assert 3 not in reach and 2 in reach
        # around the loop the same fence protects the next iteration.
        looped = build_cfg(b.build(iterations=2))
        reach = barrier_free_reachable(looped, 3, separating=frozenset({2}))
        assert {0, 1, 2} <= reach and 3 not in reach


# ----------------------------------------------------------------------
# path-aware lint analyses (satellite of the same PR)
# ----------------------------------------------------------------------
class TestPathAwareLintAnalyses:
    def test_straight_line_depths_match_classic_scan(self):
        prog = _straight()
        assert dependency_depths(prog) == [1, 2, 3, 4]
        assert achievable_ilp(prog) == pytest.approx(4 / 4)

    def test_unreachable_arm_does_not_deepen_chain(self):
        # if-arm writes r1 but the branch never takes it: the join
        # read must not inherit the arm's depth.
        b = ProgramBuilder("deadarm")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
        r0 = b.ldg("x")                                     # pc 0
        r1 = b.ffma(r0, r0)                                 # pc 1
        b.branch(if_length=1, taken_fraction=0.0, src=r0)   # pc 2
        b.emit(Instruction(Opcode.FFMA, dst=r1, srcs=(r1, r1)))  # pc 3
        b.stg("x", r1)                                      # pc 4 (join)
        prog = b.build()
        depths = dependency_depths(prog)
        # the only *live* producer of r1 is pc 1 (depth 2), not the
        # would-be-deeper rewrite inside the untaken arm.
        assert depths[4] == 3

    def test_join_read_takes_deepest_live_arm(self):
        prog = _diamond(0.5)
        depths = dependency_depths(prog)
        assert depths[2] == depths[3] == 2   # both arms read r0
        assert depths[4] == 3                # join reads both arm results
        assert depths[5] == 4                # store reads the join value

    def test_dead_regions_rows(self):
        assert dead_regions(_diamond(0.5)) == []
        assert dead_regions(_diamond(1.0)) == [(1, "else", 1)]
        assert dead_regions(_diamond(0.0)) == [(1, "if", 1)]
