"""Tests for the Top-Down analyzer on hand-constructed profiles, for
both metric generations."""

import pytest

from repro.arch import ComputeCapability
from repro.core import (
    DeviceModel,
    Node,
    TopDownAnalyzer,
    TopDownResult,
    combine_results,
)
from repro.errors import AnalysisError
from repro.pmu import ncu_stall_metric_name
from repro.profilers import ApplicationProfile, KernelProfile
from repro.sim import WarpState


def turing_device():
    return DeviceModel(
        name="Turing", compute_capability=ComputeCapability(7, 5),
        ipc_max=2.0, subpartitions=2,
    )


def pascal_device():
    return DeviceModel(
        name="Pascal", compute_capability=ComputeCapability(6, 1),
        ipc_max=8.0, subpartitions=4,
    )


def ncu_profile(
    *,
    smsp_ipc=0.4,
    threads_per_inst=28.8,
    smsp_issued=0.44,
    stalls=None,
    invocation=0,
    duration=100,
):
    metrics = {
        "smsp__inst_executed.avg.per_cycle_active": smsp_ipc,
        "smsp__thread_inst_executed_per_inst_executed.ratio":
            threads_per_inst,
        "smsp__inst_issued.avg.per_cycle_active": smsp_issued,
    }
    for state, pct in (stalls or {}).items():
        metrics[ncu_stall_metric_name(state)] = pct
    return KernelProfile("k", invocation, metrics, duration_cycles=duration)


def nvprof_profile(*, ipc=1.6, weff_pct=90.0, issued=1.8, stalls=None):
    metrics = {
        "ipc": ipc,
        "warp_execution_efficiency": weff_pct,
        "issued_ipc": issued,
    }
    metrics.update(stalls or {})
    return KernelProfile("k", 0, metrics)


class TestNcuAnalysis:
    def test_level1_values(self):
        analyzer = TopDownAnalyzer(turing_device(), normalize_stalls=False)
        profile = ncu_profile(
            stalls={WarpState.LONG_SCOREBOARD: 40.0,
                    WarpState.NO_INSTRUCTION: 10.0},
        )
        result = analyzer.analyze_kernel(profile)
        # reported per-SM IPC = 0.4 * 2 smsp = 0.8; weff = 28.8/32 = 0.9
        assert result.ipc(Node.RETIRE) == pytest.approx(0.72)
        assert result.ipc(Node.BRANCH) == pytest.approx(0.08)
        assert result.ipc(Node.REPLAY) == pytest.approx(0.08)
        stall = 2.0 - 0.72 - 0.16
        assert result.ipc(Node.MEMORY) == pytest.approx(0.4 * stall)
        assert result.ipc(Node.FETCH) == pytest.approx(0.1 * stall)
        assert result.ipc(Node.UNATTRIBUTED) == pytest.approx(0.5 * stall)

    def test_normalized_mode_covers_stall(self):
        analyzer = TopDownAnalyzer(turing_device(), normalize_stalls=True)
        profile = ncu_profile(
            stalls={WarpState.LONG_SCOREBOARD: 40.0,
                    WarpState.NO_INSTRUCTION: 10.0},
        )
        result = analyzer.analyze_kernel(profile)
        stall = 2.0 - 0.72 - 0.16
        assert result.ipc(Node.FRONTEND) + result.ipc(Node.BACKEND) == \
            pytest.approx(stall)
        assert result.ipc(Node.UNATTRIBUTED) == pytest.approx(0.0)
        # proportions preserved: memory got 80% of attributed stalls
        assert result.ipc(Node.MEMORY) / stall == pytest.approx(0.8)

    def test_conservation_always(self):
        analyzer = TopDownAnalyzer(turing_device())
        profile = ncu_profile(
            stalls={WarpState.LONG_SCOREBOARD: 70.0,
                    WarpState.MATH_PIPE_THROTTLE: 15.0,
                    WarpState.BARRIER: 5.0},
        )
        result = analyzer.analyze_kernel(profile)
        result.check_conservation()

    def test_overreported_stalls_rescaled(self):
        """Stall percentages summing above 100% must not break eq. 1."""
        analyzer = TopDownAnalyzer(turing_device(), normalize_stalls=False)
        profile = ncu_profile(
            stalls={WarpState.LONG_SCOREBOARD: 80.0,
                    WarpState.NO_INSTRUCTION: 50.0},
        )
        result = analyzer.analyze_kernel(profile)
        result.check_conservation()
        assert result.ipc(Node.UNATTRIBUTED) == pytest.approx(0.0)

    def test_level3_leaves(self):
        analyzer = TopDownAnalyzer(turing_device(), normalize_stalls=False)
        profile = ncu_profile(
            stalls={WarpState.LONG_SCOREBOARD: 30.0,
                    WarpState.IMC_MISS: 20.0,
                    WarpState.MIO_THROTTLE: 5.0},
        )
        result = analyzer.analyze_kernel(profile)
        stall = result.ipc_max - result.ipc(Node.RETIRE) - result.ipc(
            Node.DIVERGENCE
        )
        assert result.ipc(Node.L3_CONSTANT_MEMORY) == \
            pytest.approx(0.2 * stall)
        # leaves sum to their parent
        mem_leaves = (
            result.ipc(Node.L3_L1_DEPENDENCY)
            + result.ipc(Node.L3_CONSTANT_MEMORY)
            + result.ipc(Node.L3_MIO_THROTTLE)
        )
        assert mem_leaves == pytest.approx(result.ipc(Node.MEMORY))

    def test_missing_core_metric_raises(self):
        analyzer = TopDownAnalyzer(turing_device())
        profile = KernelProfile("k", 0, {"some_metric": 1.0})
        with pytest.raises(AnalysisError, match="none of the metrics"):
            analyzer.analyze_kernel(profile)

    def test_required_metrics_match_tables(self):
        analyzer = TopDownAnalyzer(turing_device())
        names = analyzer.required_metrics()
        assert "smsp__inst_issued.avg.per_cycle_active" in names
        assert ncu_stall_metric_name(WarpState.DRAIN) in names


class TestNvprofAnalysis:
    def test_level1_scaling(self):
        """nvprof ipc is already per-SM; warp efficiency is a percent."""
        analyzer = TopDownAnalyzer(pascal_device(), normalize_stalls=False)
        profile = nvprof_profile(
            ipc=1.6, weff_pct=90.0, issued=1.8,
            stalls={"stall_memory_dependency": 50.0},
        )
        result = analyzer.analyze_kernel(profile)
        assert result.ipc(Node.RETIRE) == pytest.approx(1.44)
        assert result.ipc(Node.BRANCH) == pytest.approx(0.16)
        assert result.ipc(Node.REPLAY) == pytest.approx(0.2)
        stall = 8.0 - 1.44 - 0.36
        assert result.ipc(Node.MEMORY) == pytest.approx(0.5 * stall)

    def test_pascal_fetch_includes_sync(self):
        analyzer = TopDownAnalyzer(pascal_device(), normalize_stalls=False)
        profile = nvprof_profile(
            stalls={"stall_inst_fetch": 10.0, "stall_sync": 15.0,
                    "stall_other": 5.0},
        )
        result = analyzer.analyze_kernel(profile)
        stall = result.ipc_max - result.ipc(Node.RETIRE) - result.ipc(
            Node.DIVERGENCE
        )
        assert result.ipc(Node.FETCH) == pytest.approx(0.25 * stall)
        assert result.ipc(Node.DECODE) == pytest.approx(0.05 * stall)


class TestApplicationAggregation:
    def test_duration_weighting(self):
        analyzer = TopDownAnalyzer(turing_device())
        fast = ncu_profile(smsp_ipc=0.9, threads_per_inst=32.0,
                           smsp_issued=0.9, duration=100,
                           stalls={WarpState.LONG_SCOREBOARD: 50.0})
        slow = ncu_profile(smsp_ipc=0.1, threads_per_inst=32.0,
                           smsp_issued=0.1, duration=900, invocation=1,
                           stalls={WarpState.LONG_SCOREBOARD: 50.0})
        app = ApplicationProfile(
            application="app", device_name="Turing",
            compute_capability=ComputeCapability(7, 5),
            kernels=(fast, slow),
        )
        result = analyzer.analyze_application(app)
        # weighted retire: (1.8*100 + 0.2*900) / 1000 = 0.36
        assert result.ipc(Node.RETIRE) == pytest.approx(0.36)
        result.check_conservation()

    def test_analyze_invocations_orders(self):
        analyzer = TopDownAnalyzer(turing_device())
        kernels = tuple(
            ncu_profile(smsp_ipc=0.1 * (i + 1), invocation=i,
                        stalls={WarpState.LONG_SCOREBOARD: 50.0})
            for i in range(3)
        )
        app = ApplicationProfile(
            application="app", device_name="Turing",
            compute_capability=ComputeCapability(7, 5), kernels=kernels,
        )
        series = analyzer.analyze_invocations(app, "k")
        retires = [r.ipc(Node.RETIRE) for r in series]
        assert retires == sorted(retires)

    def test_analyze_invocations_unknown_kernel(self):
        analyzer = TopDownAnalyzer(turing_device())
        app = ApplicationProfile(
            application="app", device_name="Turing",
            compute_capability=ComputeCapability(7, 5),
            kernels=(ncu_profile(),),
        )
        with pytest.raises(AnalysisError):
            analyzer.analyze_invocations(app, "nope")


class TestCombineResults:
    def _result(self, retire):
        values = {
            Node.RETIRE: retire, Node.DIVERGENCE: 0.0, Node.BRANCH: 0.0,
            Node.REPLAY: 0.0, Node.FETCH: 0.0, Node.DECODE: 0.0,
            Node.CORE: 0.0, Node.MEMORY: 2.0 - retire,
            Node.FRONTEND: 0.0, Node.BACKEND: 2.0 - retire,
            Node.UNATTRIBUTED: 0.0,
        }
        return TopDownResult(name="r", device="d", ipc_max=2.0,
                             values=values)

    def test_weighted_mean(self):
        combined = combine_results(
            [self._result(1.0), self._result(2.0)], [3.0, 1.0],
            name="c", device="d", ipc_max=2.0,
        )
        assert combined.ipc(Node.RETIRE) == pytest.approx(1.25)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            combine_results([], name="c", device="d", ipc_max=2.0)

    def test_mismatched_weights_rejected(self):
        with pytest.raises(AnalysisError):
            combine_results([self._result(1.0)], [1.0, 2.0],
                            name="c", device="d", ipc_max=2.0)

    def test_zero_weights_rejected(self):
        with pytest.raises(AnalysisError):
            combine_results([self._result(1.0)], [0.0],
                            name="c", device="d", ipc_max=2.0)


class TestDeviceModel:
    def test_from_spec(self, turing):
        model = DeviceModel.from_spec(turing)
        assert model.ipc_max == turing.ipc_max
        assert model.subpartitions == turing.sm.subpartitions

    def test_analyzer_accepts_spec_directly(self, turing):
        analyzer = TopDownAnalyzer(turing)
        assert analyzer.device.name == turing.name
