"""Tests for the extension features: JSON serialization, result
comparison, sampling-based collection, collection-mode pass split, and
the SHOC suite."""

import pytest

from repro.arch import ComputeCapability, PMUSpec, get_gpu
from repro.core import (
    DeviceModel,
    Node,
    TopDownAnalyzer,
    compare_results,
    comparison_report,
    metric_names_for_level,
)
from repro.errors import ProfilerError
from repro.io import (
    profile_from_json,
    profile_to_json,
    result_from_json,
    result_to_json,
)
from repro.isa import LaunchConfig, Opcode
from repro.pmu import schedule_passes, unified_catalog
from repro.profilers import (
    ApplicationProfile,
    KernelProfile,
    NcuTool,
    SamplingPolicy,
    profile_application_sampled,
    tool_for,
)
from repro.sim import SimConfig
from repro.workloads import shoc, srad_application
from repro.workloads.base import Application, KernelInvocation

from tests.conftest import build_stream_kernel


# ---------------------------------------------------------------------------
# JSON serialization
# ---------------------------------------------------------------------------

class TestProfileJson:
    def _profile(self):
        return ApplicationProfile(
            application="app", device_name="dev",
            compute_capability=ComputeCapability(7, 5),
            kernels=(
                KernelProfile("k", 0, {"m": 1.5}, duration_cycles=100),
                KernelProfile("k", 1, {"m": 2.5}, duration_cycles=120),
            ),
            native_cycles=220, profiled_cycles=2860, passes=8,
        )

    def test_round_trip(self):
        original = self._profile()
        back = profile_from_json(profile_to_json(original))
        assert back.application == original.application
        assert back.compute_capability == original.compute_capability
        assert back.passes == 8
        assert back.overhead == pytest.approx(original.overhead)
        assert back.kernels[1].metrics == {"m": 2.5}

    def test_rejects_garbage(self):
        with pytest.raises(ProfilerError):
            profile_from_json("not json")
        with pytest.raises(ProfilerError, match="schema"):
            profile_from_json('{"schema": "wrong"}')


class TestResultJson:
    def test_round_trip(self, turing):
        tool = tool_for(turing, config=SimConfig(seed=1))
        metrics = metric_names_for_level("7.5", 3)
        prog = build_stream_kernel(iterations=4)
        app = Application("a", "t", (
            KernelInvocation(prog, LaunchConfig(blocks=8,
                                                threads_per_block=128)),
        ))
        result = TopDownAnalyzer(turing).analyze_application(
            tool.profile_application(app, metrics)
        )
        back = result_from_json(result_to_json(result))
        assert back.name == result.name
        assert back.ipc_max == result.ipc_max
        for node in result.values:
            assert back.ipc(node) == pytest.approx(result.ipc(node))

    def test_conservation_rechecked(self):
        bad = ('{"schema": "repro/topdown-result@1", "name": "x", '
               '"device": "d", "ipc_max": 2.0, '
               '"values": {"retire": 0.1}}')
        from repro.errors import AnalysisError
        with pytest.raises(AnalysisError):
            result_from_json(bad)

    def test_unknown_node_rejected(self):
        bad = ('{"schema": "repro/topdown-result@1", "name": "x", '
               '"device": "d", "ipc_max": 2.0, "values": {"bogus": 1}}')
        with pytest.raises(ProfilerError, match="unknown hierarchy node"):
            result_from_json(bad)


# ---------------------------------------------------------------------------
# result comparison
# ---------------------------------------------------------------------------

class TestCompare:
    def _result(self, retire, memory, name, ipc_max=2.0):
        from repro.core import TopDownResult

        rest = ipc_max - retire - memory
        values = {
            Node.RETIRE: retire, Node.DIVERGENCE: 0.0, Node.BRANCH: 0.0,
            Node.REPLAY: 0.0, Node.FETCH: rest, Node.DECODE: 0.0,
            Node.CORE: 0.0, Node.MEMORY: memory, Node.FRONTEND: rest,
            Node.BACKEND: memory, Node.UNATTRIBUTED: 0.0,
        }
        return TopDownResult(name=name, device="d", ipc_max=ipc_max,
                             values=values)

    def test_delta_in_fraction_units(self):
        a = self._result(0.5, 1.0, "A", ipc_max=2.0)
        b = self._result(2.0, 4.0, "B", ipc_max=8.0)
        cmp = compare_results(a, b)
        # identical fractions despite different peaks
        assert cmp.retire_gain == pytest.approx(0.0)
        assert cmp.delta(Node.MEMORY) == pytest.approx(0.0)

    def test_biggest_shifts(self):
        a = self._result(0.5, 1.0, "A")
        b = self._result(0.5, 0.2, "B")
        cmp = compare_results(a, b)
        shifts = cmp.biggest_shifts(1)
        assert shifts[0].node in (Node.MEMORY, Node.FETCH)

    def test_report_renders(self):
        a = self._result(0.5, 1.0, "Pascal")
        b = self._result(0.8, 0.9, "Turing")
        text = comparison_report(compare_results(a, b))
        assert "Pascal" in text and "Turing" in text and "+" in text


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------

class TestSamplingPolicies:
    def test_full(self):
        p = SamplingPolicy.full()
        assert all(p.should_sample("k", i) for i in range(10))

    def test_every_nth(self):
        p = SamplingPolicy.every_nth(3)
        assert [p.should_sample("k", i) for i in range(6)] == [
            True, False, False, True, False, False
        ]

    def test_first_k(self):
        p = SamplingPolicy.first_k(2)
        assert [p.should_sample("k", i) for i in range(4)] == [
            True, True, False, False
        ]

    def test_window_samples_zero(self):
        p = SamplingPolicy.window(5, 8)
        assert p.should_sample("k", 0)
        assert not p.should_sample("k", 3)
        assert p.should_sample("k", 6)

    def test_invalid_policies(self):
        with pytest.raises(ProfilerError):
            SamplingPolicy.every_nth(0)
        with pytest.raises(ProfilerError):
            SamplingPolicy.first_k(0)
        with pytest.raises(ProfilerError):
            SamplingPolicy.window(5, 5)


class TestSampledProfiling:
    @pytest.fixture(scope="class")
    def setup(self, ):
        spec = get_gpu("rtx4000")
        tool = NcuTool(spec, SimConfig(seed=3))
        metrics = metric_names_for_level("7.5", 3)
        app = srad_application(12, phase_break=6)
        return spec, tool, metrics, app

    def test_full_policy_equals_normal_profiling(self, setup):
        spec, tool, metrics, app = setup
        sampled = profile_application_sampled(
            tool, app, metrics, SamplingPolicy.full()
        )
        assert sampled.sampling_rate == 1.0
        normal = tool.profile_application(app, metrics)
        analyzer = TopDownAnalyzer(spec)
        a = analyzer.analyze_application(sampled.profile)
        b = analyzer.analyze_application(normal)
        assert a.ipc(Node.RETIRE) == pytest.approx(b.ipc(Node.RETIRE))

    def test_sampling_reduces_overhead(self, setup):
        _, tool, metrics, app = setup
        full = profile_application_sampled(
            tool, app, metrics, SamplingPolicy.full()
        )
        sampled = profile_application_sampled(
            tool, app, metrics, SamplingPolicy.every_nth(4)
        )
        assert sampled.overhead < full.overhead / 2
        assert sampled.overhead_reduction > 2.0

    def test_all_invocations_present(self, setup):
        _, tool, metrics, app = setup
        sampled = profile_application_sampled(
            tool, app, metrics, SamplingPolicy.every_nth(5)
        )
        assert len(sampled.profile.kernels) == len(app.invocations)
        for kernel_name in app.kernel_names:
            invs = sampled.profile.invocations_of(kernel_name)
            assert [k.invocation for k in invs] == list(range(len(invs)))

    def test_periodic_sampling_small_error(self, setup):
        spec, tool, metrics, app = setup
        analyzer = TopDownAnalyzer(spec)
        full = analyzer.analyze_application(
            tool.profile_application(app, metrics)
        )
        sampled_run = profile_application_sampled(
            tool, app, metrics, SamplingPolicy.every_nth(3)
        )
        sampled = analyzer.analyze_application(sampled_run.profile)
        for node in (Node.RETIRE, Node.BACKEND):
            assert abs(sampled.fraction(node) - full.fraction(node)) < 0.08


# ---------------------------------------------------------------------------
# collection modes (SMPC vs HWPM pass split)
# ---------------------------------------------------------------------------

class TestCollectionModes:
    def test_sm_metrics_use_smpc(self):
        cat = unified_catalog()
        plan = schedule_passes(
            [cat["smsp__inst_executed.avg.per_cycle_active"]],
            PMUSpec(counters_per_pass=4),
        )
        assert plan.smpc_passes and not plan.hwpm_passes

    def test_memory_metrics_use_hwpm(self):
        cat = unified_catalog()
        plan = schedule_passes(
            [cat["lts__t_sector_hit_rate.pct"],
             cat["imc__request_hit_rate.pct"]],
            PMUSpec(counters_per_pass=4),
        )
        assert plan.hwpm_passes and not plan.smpc_passes

    def test_mixed_sets_split(self):
        cat = unified_catalog()
        plan = schedule_passes(
            [cat["smsp__inst_executed.avg.per_cycle_active"],
             cat["l1tex__t_sector_hit_rate.pct"]],
            PMUSpec(counters_per_pass=4),
        )
        assert plan.smpc_passes and plan.hwpm_passes
        assert plan.num_passes == 1 + len(plan.smpc_passes) + len(
            plan.hwpm_passes
        )


# ---------------------------------------------------------------------------
# SHOC suite
# ---------------------------------------------------------------------------

class TestShoc:
    def test_roster(self):
        names = shoc().names
        for app in ("maxflops", "devicememory", "fft", "md", "reduction",
                    "scan", "spmv", "stencil2d"):
            assert app in names

    def test_programs_valid(self):
        for app in shoc():
            for inv in app:
                assert inv.program.dynamic_length > 1

    def test_maxflops_is_compute_bound(self, turing):
        from repro.experiments.runner import profile_application

        _, result = profile_application(turing, shoc().get("maxflops"))
        assert result.fraction(Node.RETIRE) > 0.5

    def test_devicememory_is_memory_bound(self, turing):
        from repro.experiments.runner import profile_application

        _, result = profile_application(turing,
                                        shoc().get("devicememory"))
        assert result.fraction(Node.MEMORY) > 0.5
