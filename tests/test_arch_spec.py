"""Unit tests for the GPU spec dataclasses and their invariants."""

import pytest

from repro.arch import (
    CacheSpec,
    ComputeCapability,
    FunctionalUnitSpec,
    GPUSpec,
    MemorySpec,
    SMSpec,
)
from repro.errors import ArchitectureError


def _sm(**overrides):
    defaults = dict(
        subpartitions=2,
        warps_per_subpartition=16,
        dispatch_units_per_subpartition=1,
        functional_units=(
            FunctionalUnitSpec("fp32", issue_interval=2, latency=6),
            FunctionalUnitSpec("ctrl", issue_interval=1, latency=2),
        ),
    )
    defaults.update(overrides)
    return SMSpec(**defaults)


def _memory():
    return MemorySpec(
        l1=CacheSpec("l1", size_bytes=64 * 1024),
        l2=CacheSpec("l2", size_bytes=1024 * 1024, ways=16),
        constant=CacheSpec("constant", size_bytes=2048, line_bytes=64),
    )


class TestFunctionalUnitSpec:
    def test_valid(self):
        fu = FunctionalUnitSpec("fp32", issue_interval=2, latency=4)
        assert fu.pipes == 1

    @pytest.mark.parametrize("kwargs", [
        dict(issue_interval=0, latency=4),
        dict(issue_interval=1, latency=0),
        dict(issue_interval=1, latency=1, pipes=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ArchitectureError):
            FunctionalUnitSpec("x", **kwargs)


class TestCacheSpec:
    def test_geometry(self):
        c = CacheSpec("l1", size_bytes=64 * 1024, line_bytes=128, ways=4)
        assert c.num_sets == 64 * 1024 // (128 * 4)
        assert c.sectors_per_line == 4

    def test_size_must_divide(self):
        with pytest.raises(ArchitectureError):
            CacheSpec("bad", size_bytes=1000, line_bytes=128, ways=4)

    def test_line_sector_relation(self):
        with pytest.raises(ArchitectureError):
            CacheSpec("bad", size_bytes=4096, line_bytes=100,
                      sector_bytes=32, ways=1)


class TestSMSpec:
    def test_derived_quantities(self):
        sm = _sm()
        assert sm.max_warps == 32
        assert sm.dispatch_units == 2

    def test_duplicate_fu_names_rejected(self):
        with pytest.raises(ArchitectureError):
            _sm(functional_units=(
                FunctionalUnitSpec("fp32", 1, 4),
                FunctionalUnitSpec("fp32", 1, 4),
            ))

    def test_functional_unit_lookup(self):
        sm = _sm()
        assert sm.functional_unit("fp32").latency == 6
        with pytest.raises(ArchitectureError):
            sm.functional_unit("tensor")

    def test_bad_topology(self):
        with pytest.raises(ArchitectureError):
            _sm(subpartitions=0)
        with pytest.raises(ArchitectureError):
            _sm(warps_per_subpartition=0)


class TestGPUSpec:
    def _spec(self, **overrides):
        defaults = dict(
            name="TestGPU",
            compute_capability=ComputeCapability(7, 5),
            sm_count=4,
            sm=_sm(),
            memory=_memory(),
        )
        defaults.update(overrides)
        return GPUSpec(**defaults)

    def test_ipc_max_is_dispatch_units(self):
        """Paper §IV.C: IPC_MAX equals dispatch units per SM."""
        assert self._spec().ipc_max == 2.0

    def test_default_profiler_by_cc(self):
        assert self._spec().default_profiler == "ncu"
        old = self._spec(compute_capability=ComputeCapability(6, 1))
        assert old.default_profiler == "nvprof"

    def test_warp_size_fixed(self):
        with pytest.raises(ArchitectureError):
            self._spec(warp_size=64)

    def test_sm_count_positive(self):
        with pytest.raises(ArchitectureError):
            self._spec(sm_count=0)

    def test_summary_has_table9_fields(self):
        summary = self._spec().summary()
        for key in ("Compute Capability", "Memory", "CUDA cores", "SMs",
                    "SM Subpartitions", "Power"):
            assert key in summary

    def test_specs_hashable(self):
        assert hash(self._spec()) == hash(self._spec())
