"""Property-based tests on the simulator itself: random small programs
must always satisfy the counter invariants the methodology relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import get_gpu
from repro.isa import AccessKind, LaunchConfig, ProgramBuilder
from repro.sim import SimConfig, simulate_kernel

TURING = get_gpu("NVIDIA Quadro RTX 4000")
PASCAL = get_gpu("NVIDIA GTX 1070")


@st.composite
def small_programs(draw):
    """Random structurally-valid kernels covering every opcode class."""
    b = ProgramBuilder("prop")
    kinds = [AccessKind.STREAM, AccessKind.STRIDED, AccessKind.RANDOM]
    b.pattern(
        "data",
        draw(st.sampled_from(kinds)),
        working_set_bytes=draw(st.sampled_from(
            [1 << 13, 1 << 17, 1 << 21]
        )),
        stride_elements=draw(st.sampled_from([1, 4, 32])),
    )
    b.pattern("tile", AccessKind.STREAM, working_set_bytes=8192)
    b.pattern("coef", AccessKind.UNIFORM, working_set_bytes=32 * 1024)

    n_ops = draw(st.integers(min_value=1, max_value=14))
    regs = [b.iadd()]
    use_barrier = draw(st.booleans())
    for _ in range(n_ops):
        choice = draw(st.integers(0, 7))
        src = regs[-1]
        if choice == 0:
            regs.append(b.ldg("data"))
        elif choice == 1:
            regs.append(b.lds("tile"))
        elif choice == 2:
            regs.append(b.ldc("coef"))
        elif choice == 3:
            b.stg("data", src)
        elif choice == 4:
            regs.append(b.ffma(src, regs[0]))
        elif choice == 5:
            regs.append(b.dfma(src, regs[0]))
        elif choice == 6:
            regs.append(b.mufu(src))
        else:
            body_len = draw(st.integers(1, 3))
            b.branch(
                if_length=body_len,
                taken_fraction=draw(st.sampled_from([0.25, 0.5, 1.0])),
                src=src,
            )
            for _ in range(body_len):
                regs.append(b.iadd(regs[-1]))
    if use_barrier:
        b.barrier()
    b.nop()
    iterations = draw(st.integers(min_value=1, max_value=4))
    return b.build(iterations=iterations)


launches = st.builds(
    LaunchConfig,
    blocks=st.sampled_from([1, 3, 36, 80]),
    threads_per_block=st.sampled_from([32, 64, 224, 256]),
)


@given(program=small_programs(), launch=launches,
       seed=st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_sim_invariants_hold_for_random_programs(program, launch, seed):
    result = simulate_kernel(TURING, program, launch,
                             SimConfig(seed=seed))
    for counters in result.per_sm:
        counters.validate()
        # warp efficiency in range
        if counters.inst_executed:
            eff = counters.thread_inst_executed / (
                32 * counters.inst_executed
            )
            assert 0.0 < eff <= 1.0
        # every launched warp executed the implicit EXIT
        assert counters.inst_executed >= counters.warps_launched
        # caches never report more hits than accesses
        assert counters.l1_sector_hits <= counters.l1_sector_accesses
        assert counters.constant_hits <= counters.constant_accesses


@given(program=small_programs(), seed=st.integers(0, 2))
@settings(max_examples=15, deadline=None)
def test_work_is_architecture_independent(program, seed):
    """Executed instructions depend on the program, not the device."""
    launch = LaunchConfig(blocks=1, threads_per_block=64)
    turing = simulate_kernel(TURING, program, launch,
                             SimConfig(seed=seed)).counters
    pascal = simulate_kernel(PASCAL, program, launch,
                             SimConfig(seed=seed)).counters
    assert turing.inst_executed == pascal.inst_executed
    assert turing.thread_inst_executed == pascal.thread_inst_executed


@given(program=small_programs())
@settings(max_examples=15, deadline=None)
def test_simulation_is_deterministic(program):
    launch = LaunchConfig(blocks=4, threads_per_block=128)
    a = simulate_kernel(TURING, program, launch, SimConfig(seed=9))
    b = simulate_kernel(TURING, program, launch, SimConfig(seed=9))
    ca, cb = a.per_sm[0], b.per_sm[0]
    assert ca.state_cycles == cb.state_cycles
    assert ca.cycles_elapsed == cb.cycles_elapsed
    assert ca.l1_sector_hits == cb.l1_sector_hits


@given(program=small_programs(), seed=st.integers(0, 2))
@settings(max_examples=15, deadline=None)
def test_schedulers_agree_on_work(program, seed):
    launch = LaunchConfig(blocks=4, threads_per_block=128)
    lrr = simulate_kernel(TURING, program, launch,
                          SimConfig(seed=seed, scheduler="lrr")).counters
    gto = simulate_kernel(TURING, program, launch,
                          SimConfig(seed=seed, scheduler="gto")).counters
    assert lrr.inst_executed == gto.inst_executed
    assert lrr.barriers_executed == gto.barriers_executed
