"""Checkpoint/resume tests: the run journal and ``generate_all --resume``.

The kill-and-resume scenario is simulated in-process by stubbing the
experiment stages with fast fakes and raising mid-run; the resumed
bundle must be bit-identical to an uninterrupted run (``RUNHEALTH.txt``,
which records wall-clock timings, is the documented exception).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ResilienceError
from repro.experiments import generate_all as gen
from repro.resilience import RunJournal
from repro.resilience.checkpoint import JOURNAL_SCHEMA

PARAMS = {"seed": 0, "srad_invocations": 8}


class TestRunJournal:
    def test_record_then_resume(self, tmp_path):
        (tmp_path / "a.txt").write_text("a")
        journal = RunJournal(tmp_path / "j", PARAMS)
        assert not journal.done("stage_a")
        journal.record("stage_a", ["a.txt"])
        journal.close()

        resumed = RunJournal(tmp_path / "j", PARAMS, resume=True)
        assert resumed.done("stage_a")
        assert resumed.files_of("stage_a") == ["a.txt"]
        assert not resumed.done("stage_b")

    def test_missing_artifact_invalidates_the_cell(self, tmp_path):
        journal = RunJournal(tmp_path / "j", PARAMS)
        journal.record("stage_a", ["gone.txt"])
        journal.close()
        resumed = RunJournal(tmp_path / "j", PARAMS, resume=True)
        assert not resumed.done("stage_a")  # file never written / deleted

    def test_deleted_artifact_can_be_rerecorded(self, tmp_path):
        # the reviewer scenario: entry parses, artifact was deleted.
        (tmp_path / "a.txt").write_text("a")
        journal = RunJournal(tmp_path / "j", PARAMS)
        journal.record("stage_a", ["a.txt"])
        journal.close()
        (tmp_path / "a.txt").unlink()

        resumed = RunJournal(tmp_path / "j", PARAMS, resume=True)
        assert not resumed.done("stage_a")
        # re-running the cell re-records it — no "recorded twice".
        (tmp_path / "a.txt").write_text("a2")
        resumed.record("stage_a", ["a.txt"])
        resumed.close()

        again = RunJournal(tmp_path / "j", PARAMS, resume=True)
        assert again.done("stage_a")

    def test_loaded_cell_may_be_superseded(self, tmp_path):
        (tmp_path / "a.txt").write_text("a")
        journal = RunJournal(tmp_path / "j", PARAMS)
        journal.record("stage_a", ["a.txt"])
        journal.close()
        resumed = RunJournal(tmp_path / "j", PARAMS, resume=True)
        (tmp_path / "b.txt").write_text("b")
        resumed.record("stage_a", ["b.txt"])  # supersedes: last wins
        resumed.close()
        again = RunJournal(tmp_path / "j", PARAMS, resume=True)
        assert again.files_of("stage_a") == ["b.txt"]

    def test_parameter_mismatch_starts_over(self, tmp_path):
        (tmp_path / "a.txt").write_text("a")
        journal = RunJournal(tmp_path / "j", PARAMS)
        journal.record("stage_a", ["a.txt"])
        journal.close()
        other = RunJournal(tmp_path / "j", {**PARAMS, "seed": 1},
                           resume=True)
        assert not other.done("stage_a")

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        (tmp_path / "a.txt").write_text("a")
        journal = RunJournal(tmp_path / "j", PARAMS)
        journal.record("stage_a", ["a.txt"])
        journal.close()
        # simulate a writer killed mid-append: garbage partial line.
        with open(tmp_path / "j", "a") as fh:
            fh.write('{"cell": "stage_b", "files": [')
        resumed = RunJournal(tmp_path / "j", PARAMS, resume=True)
        assert resumed.done("stage_a")
        assert not resumed.done("stage_b")

    def test_second_resume_keeps_first_resumes_records(self, tmp_path):
        # a torn tail must not corrupt records appended by a resume:
        # resume #1 appends stage_b after garbage; resume #2 must see
        # both cells (previously the append landed on the partial line
        # and resume #2 parsed neither).
        (tmp_path / "a.txt").write_text("a")
        journal = RunJournal(tmp_path / "j", PARAMS)
        journal.record("stage_a", ["a.txt"])
        journal.close()
        with open(tmp_path / "j", "a") as fh:
            fh.write('{"cell": "stage_x", "files": [')  # no newline

        first = RunJournal(tmp_path / "j", PARAMS, resume=True)
        assert first.done("stage_a")
        (tmp_path / "b.txt").write_text("b")
        first.record("stage_b", ["b.txt"])
        first.close()

        second = RunJournal(tmp_path / "j", PARAMS, resume=True)
        assert second.done("stage_a")
        assert second.done("stage_b")
        assert not second.done("stage_x")

    def test_torn_header_starts_over(self, tmp_path):
        (tmp_path / "j").write_text('{"schema": ')
        resumed = RunJournal(tmp_path / "j", PARAMS, resume=True)
        assert resumed.completed == {}

    def test_double_record_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "j", PARAMS)
        journal.record("stage_a", [])
        with pytest.raises(ResilienceError):
            journal.record("stage_a", [])
        journal.close()

    def test_complete_removes_the_journal(self, tmp_path):
        journal = RunJournal(tmp_path / "j", PARAMS)
        journal.record("stage_a", [])
        journal.complete()
        assert not (tmp_path / "j").exists()

    def test_header_pins_schema(self, tmp_path):
        journal = RunJournal(tmp_path / "j", PARAMS)
        journal.record("stage_a", [])
        journal.close()
        header = json.loads(
            (tmp_path / "j").read_text().splitlines()[0]
        )
        assert header == {"schema": JOURNAL_SCHEMA, "params": PARAMS}


# ---------------------------------------------------------------------------
# generate_all kill-and-resume (with fast fake stages)
# ---------------------------------------------------------------------------

def _fake_stages(calls, *, die_in=None):
    """Deterministic stand-ins for the experiment stages.

    ``calls`` records execution; ``die_in`` names a stage that raises
    (the in-process stand-in for kill -9 mid-run).
    """
    def stage(name, files):
        def run():
            calls.append(name)
            if name == die_in:
                raise KeyboardInterrupt
            return [(fname, f"content of {fname}\n") for fname in files]
        return (name, run)

    return [
        stage("one", ["one.txt"]),
        stage("two", ["two.txt", "two.csv"]),
        stage("three", ["three.txt"]),
    ]


def _bundle(path):
    """name -> bytes for every artifact in a bundle directory."""
    return {
        p.name: p.read_bytes() for p in path.iterdir() if p.is_file()
    }


class TestGenerateAllResume:
    def test_killed_run_resumes_bit_identically(self, tmp_path,
                                                monkeypatch):
        # uninterrupted reference run.
        ref_calls: list[str] = []
        monkeypatch.setattr(
            gen, "_stages", lambda s, n: _fake_stages(ref_calls)
        )
        ref_dir = tmp_path / "ref"
        gen.generate_all(ref_dir, seed=3)
        assert ref_calls == ["one", "two", "three"]
        assert not (ref_dir / gen.JOURNAL_NAME).exists()

        # a run killed inside stage "three"...
        killed_calls: list[str] = []
        monkeypatch.setattr(
            gen, "_stages",
            lambda s, n: _fake_stages(killed_calls, die_in="three"),
        )
        out_dir = tmp_path / "out"
        with pytest.raises(KeyboardInterrupt):
            gen.generate_all(out_dir, seed=3)
        assert (out_dir / gen.JOURNAL_NAME).exists()
        assert not (out_dir / "three.txt").exists()

        # ...resumed: completed cells skip, the rest re-run.
        resumed_calls: list[str] = []
        monkeypatch.setattr(
            gen, "_stages", lambda s, n: _fake_stages(resumed_calls)
        )
        written = gen.generate_all(out_dir, seed=3, resume=True)
        assert resumed_calls == ["three"]
        assert not (out_dir / gen.JOURNAL_NAME).exists()
        assert {p.name for p in written} == {
            "one.txt", "two.txt", "two.csv", "three.txt",
            "MANIFEST.txt", "RUNHEALTH.txt",
        }

        ref, out = _bundle(ref_dir), _bundle(out_dir)
        assert set(ref) == set(out)
        for name in ref:
            if name == "RUNHEALTH.txt":  # wall-clock times: may differ
                continue
            assert out[name] == ref[name], f"{name} differs after resume"

    def test_resume_after_artifact_deletion_completes(self, tmp_path,
                                                      monkeypatch):
        # kill inside "three", then delete an artifact of the already
        # completed cell "two": --resume must re-run both cells and
        # finish (not crash on re-recording "two").
        ref_dir = tmp_path / "ref"
        monkeypatch.setattr(
            gen, "_stages", lambda s, n: _fake_stages([])
        )
        gen.generate_all(ref_dir, seed=3)

        killed_calls: list[str] = []
        monkeypatch.setattr(
            gen, "_stages",
            lambda s, n: _fake_stages(killed_calls, die_in="three"),
        )
        out_dir = tmp_path / "out"
        with pytest.raises(KeyboardInterrupt):
            gen.generate_all(out_dir, seed=3)
        (out_dir / "two.txt").unlink()

        resumed_calls: list[str] = []
        monkeypatch.setattr(
            gen, "_stages", lambda s, n: _fake_stages(resumed_calls)
        )
        gen.generate_all(out_dir, seed=3, resume=True)
        assert resumed_calls == ["two", "three"]
        assert not (out_dir / gen.JOURNAL_NAME).exists()

        ref, out = _bundle(ref_dir), _bundle(out_dir)
        assert set(ref) == set(out)
        for name in ref:
            if name != "RUNHEALTH.txt":
                assert out[name] == ref[name], f"{name} differs"

    def test_resume_with_other_seed_starts_over(self, tmp_path,
                                                monkeypatch):
        calls: list[str] = []
        monkeypatch.setattr(
            gen, "_stages",
            lambda s, n: _fake_stages(calls, die_in="two"),
        )
        out_dir = tmp_path / "out"
        with pytest.raises(KeyboardInterrupt):
            gen.generate_all(out_dir, seed=3)
        assert calls == ["one", "two"]

        calls.clear()
        monkeypatch.setattr(
            gen, "_stages", lambda s, n: _fake_stages(calls)
        )
        gen.generate_all(out_dir, seed=4, resume=True)
        # different parameters: nothing may be reused.
        assert calls == ["one", "two", "three"]

    def test_resume_without_journal_runs_everything(self, tmp_path,
                                                    monkeypatch):
        calls: list[str] = []
        monkeypatch.setattr(
            gen, "_stages", lambda s, n: _fake_stages(calls)
        )
        gen.generate_all(tmp_path / "out", seed=0, resume=True)
        assert calls == ["one", "two", "three"]

    def test_manifest_is_deterministic(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            gen, "_stages", lambda s, n: _fake_stages([])
        )
        gen.generate_all(tmp_path / "a", seed=5)
        gen.generate_all(tmp_path / "b", seed=5)
        assert (tmp_path / "a" / "MANIFEST.txt").read_bytes() == \
            (tmp_path / "b" / "MANIFEST.txt").read_bytes()
        text = (tmp_path / "a" / "MANIFEST.txt").read_text()
        assert "seed=5" in text
        # wall-clock timings belong to RUNHEALTH.txt, not the manifest.
        assert "s\n" not in text.splitlines()[0]
        assert "elapsed" in \
            (tmp_path / "a" / "RUNHEALTH.txt").read_text()
