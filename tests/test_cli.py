"""Tests for the ``gpu-topdown`` command-line interface."""


from repro.cli import main


class TestBasicCommands:
    def test_gpus(self, capsys):
        assert main(["gpus"]) == 0
        out = capsys.readouterr().out
        assert "NVIDIA GTX 1070" in out
        assert "nvprof" in out and "ncu" in out

    def test_metrics_turing(self, capsys):
        assert main(["metrics", "--gpu", "rtx4000"]) == 0
        out = capsys.readouterr().out
        assert "smsp__inst_executed.avg.per_cycle_active" in out

    def test_metrics_pascal(self, capsys):
        assert main(["metrics", "--gpu", "gtx1070"]) == 0
        assert "ipc" in capsys.readouterr().out

    def test_unknown_gpu_reports_error(self, capsys):
        # ArchitectureError has its own exit code (see README).
        assert main(["metrics", "--gpu", "gtx9999"]) == 4
        assert "error:" in capsys.readouterr().err


class TestUsageExitCode:
    def test_negative_jobs_maps_to_usage_exit(self, capsys):
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--jobs", "-2"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--jobs" in err
        assert "Traceback" not in err

    def test_generate_all_negative_jobs_clean_error(self, tmp_path,
                                                    capsys):
        from repro.experiments.generate_all import main as gen_main

        rc = gen_main(["--output", str(tmp_path / "a"), "--jobs", "-2"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--jobs" in err


class TestAnalyze:
    def test_single_app_hierarchy(self, capsys):
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Top-Down breakdown" in out
        assert "Constant" in out

    def test_level1_table(self, capsys):
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "1"])
        assert rc == 0
        assert "Retire" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        out_file = tmp_path / "out.csv"
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "1", "--csv", str(out_file)])
        assert rc == 0
        text = out_file.read_text()
        assert text.startswith("application,retire")
        assert "nn" in text

    def test_unknown_app(self, capsys):
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "doom"])
        assert rc == 10  # WorkloadError exit code


class TestAnalyzeCsv:
    def test_ncu_input(self, tmp_path, capsys):
        csv_text = (
            '"ID","Process ID","Process Name","Host Name","Kernel Name",'
            '"Context","Stream","Section Name","Metric Name",'
            '"Metric Unit","Metric Value"\n'
            '"0","1","app","host","k","1","7","s",'
            '"smsp__inst_executed.avg.per_cycle_active","inst/cycle",'
            '"0.4"\n'
            '"0","1","app","host","k","1","7","s",'
            '"smsp__thread_inst_executed_per_inst_executed.ratio",'
            '"threads","30.0"\n'
            '"0","1","app","host","k","1","7","s",'
            '"smsp__inst_issued.avg.per_cycle_active","inst/cycle",'
            '"0.45"\n'
            '"0","1","app","host","k","1","7","s",'
            '"smsp__warp_issue_stalled_long_scoreboard_per_warp_active'
            '.pct","%","55.0"\n'
        )
        f = tmp_path / "run.csv"
        f.write_text(csv_text)
        rc = main(["analyze-csv", "--input", str(f), "--format", "ncu",
                   "--cc", "7.5", "--ipc-max", "2", "--subpartitions", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Top-Down breakdown" in out
        assert "Memory" in out

    def test_bad_file(self, tmp_path):
        f = tmp_path / "bad.csv"
        f.write_text("not a csv")
        rc = main(["analyze-csv", "--input", str(f), "--format", "ncu",
                   "--cc", "7.5", "--ipc-max", "2", "--subpartitions", "2"])
        assert rc == 8  # ProfilerError exit code


class TestDynamicAndExperiments:
    def test_dynamic(self, capsys):
        rc = main(["dynamic", "--kernel", "srad_cuda_1",
                   "--invocations", "12", "--stride", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phases:" in out

    def test_experiment_table9(self, capsys):
        assert main(["experiment", "table9"]) == 0
        assert "Table IX" in capsys.readouterr().out

    def test_experiment_tables(self, capsys):
        assert main(["experiment", "tables"]) == 0
        assert "TABLE VIII" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestNewSubcommands:
    def test_workloads_listing(self, capsys):
        assert main(["workloads", "--suite", "rodinia"]) == 0
        out = capsys.readouterr().out
        assert "srad_v2" in out and "myocyte" in out

    def test_workloads_all_suites(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "rodinia" in out and "altis" in out

    def test_sections(self, capsys):
        assert main(["sections", "--app", "nn"]) == 0
        out = capsys.readouterr().out
        assert "Section: Occupancy" in out

    def test_summary(self, capsys):
        assert main(["summary", "--app", "nn"]) == 0
        out = capsys.readouterr().out
        assert "[CUDA memcpy HtoD]" in out

    def test_trace(self, capsys):
        assert main(["trace", "--app", "nn", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "issue trace" in out
        assert "smsp" in out

    def test_analyze_advise_flag(self, capsys):
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "3", "--advise"])
        assert rc == 0
        assert "Optimization guidance" in capsys.readouterr().out

    def test_analyze_json_export(self, tmp_path, capsys):
        out_file = tmp_path / "r.json"
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "1", "--json",
                   str(out_file)])
        assert rc == 0
        from repro.io import result_from_json

        result = result_from_json(out_file.read_text())
        assert result.name == "nn"

    def test_analyze_per_kernel_flag(self, capsys):
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "srad_v2", "--level", "1",
                   "--per-kernel", "memory_bound"])
        assert rc == 0
        assert "Per-kernel attribution" in capsys.readouterr().out

    def test_analyze_sampled(self, capsys):
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "altis",
                   "--app", "srad", "--level", "1",
                   "--sample-every", "4"])
        assert rc == 0
        assert "srad" in capsys.readouterr().out


class TestLint:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("PROG-LOW-ILP", "PROG-STRIDED-SECTORS",
                        "HIER-PARTITION", "MET-TABLE-CATALOG",
                        "PMU-PASS-CAPACITY", "TD-DRIFT"):
            assert rule_id in out

    def test_suite_text_report(self, capsys):
        assert main(["lint", "--suite", "synth"]) == 0
        out = capsys.readouterr().out
        assert "lint: suite synth" in out
        assert "rules checked" in out
        assert "[allowed:" in out  # waived micro-benchmark findings

    def test_all_suites_are_clean(self, capsys):
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "lint: all suites" in out
        assert "0 error(s), 0 warning(s)" in out

    def test_json_output(self, capsys):
        import json

        assert main(["lint", "--suite", "shoc", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["subject"] == "suite shoc"
        assert len(doc["rules"]) >= 8
        assert {r["id"] for r in doc["rules"]} >= {
            "PROG-LOW-ILP", "MET-VARIABLE-COVERAGE"
        }
        for diag in doc["diagnostics"]:
            assert diag["suppressed"] is True

    def test_single_app(self, capsys):
        rc = main(["lint", "--suite", "synth", "--app", "serial_chain"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "synthetic/serial_chain" in out
        assert "PROG-LOW-ILP" in out

    def test_app_requires_suite(self, capsys):
        assert main(["lint", "--app", "nn"]) == 1
        assert "specific --suite" in capsys.readouterr().err

    def test_disable_and_hide_allowed(self, capsys):
        rc = main(["lint", "--suite", "synth",
                   "--disable", "PROG-LOW-ILP", "--hide-allowed"])
        assert rc == 0
        assert "PROG-LOW-ILP" not in capsys.readouterr().out

    def test_bad_severity_spec(self, capsys):
        assert main(["lint", "--severity", "PROG-LOW-ILP"]) == 1
        assert "RULE=LEVEL" in capsys.readouterr().err

    def test_unknown_rule_reported(self, capsys):
        assert main(["lint", "--disable", "NO-SUCH"]) == 11  # LintError
        assert "unknown rule" in capsys.readouterr().err

    def test_exit_nonzero_on_error_findings(self, monkeypatch, capsys):
        import repro.lint as lint_pkg
        from repro.lint import Diagnostic, LintReport, Severity

        bad = LintReport(diagnostics=(
            Diagnostic("PROG-UNDEF-PATTERN", Severity.ERROR, "boom"),
        ))
        monkeypatch.setattr(
            lint_pkg, "lint_suite",
            lambda suite, spec, registry=None, include_model=True: bad,
        )
        assert main(["lint", "--suite", "synth"]) == 1

    def test_strict_promotes_warnings_to_failure(self, monkeypatch):
        import repro.lint as lint_pkg
        from repro.lint import Diagnostic, LintReport, Severity

        warn = LintReport(diagnostics=(
            Diagnostic("PROG-LOW-ILP", Severity.WARNING, "slow"),
        ))
        monkeypatch.setattr(
            lint_pkg, "lint_suite",
            lambda suite, spec, registry=None, include_model=True: warn,
        )
        assert main(["lint", "--suite", "synth"]) == 0
        assert main(["lint", "--suite", "synth", "--strict"]) == 1

    def test_drift_single_app(self, capsys):
        rc = main(["lint", "--suite", "synth", "--app", "gather_random",
                   "--drift"])
        assert rc == 0
        assert "synthetic/gather_random" in capsys.readouterr().out


class TestPreLint:
    def test_analyze_aborts_on_error_finding(self, monkeypatch, capsys):
        import repro.lint as lint_pkg
        from repro.lint import Diagnostic, LintReport, Severity

        bad = LintReport(diagnostics=(
            Diagnostic("PROG-UNDEF-PATTERN", Severity.ERROR, "boom"),
        ))
        monkeypatch.setattr(
            lint_pkg, "lint_application",
            lambda app, spec, registry=None: bad,
        )
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "1"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "PROG-UNDEF-PATTERN" in err and "--no-lint" in err

    def test_no_lint_flag_skips_the_gate(self, monkeypatch, capsys):
        import repro.lint as lint_pkg

        def explode(app, spec, registry=None):
            raise AssertionError("lint ran despite --no-lint")

        monkeypatch.setattr(lint_pkg, "lint_application", explode)
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "1", "--no-lint"])
        assert rc == 0

    def test_tune_runs_the_gate(self, capsys):
        rc = main(["tune", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "hotspot", "--threads", "4096"])
        assert rc == 0
        assert "tuning" in capsys.readouterr().out


class TestSanitize:
    def test_list_passes_catalog(self, capsys):
        assert main(["sanitize", "--list-passes"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SAN-RACE", "SAN-SYNC-DIVERGENT", "SAN-INIT",
                        "SAN-MEM-OVERRUN"):
            assert rule_id in out

    def test_all_suites_strict_is_clean(self, capsys):
        assert main(["sanitize", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "allowed" in out   # waived findings are visible

    def test_hide_allowed_suppresses_waived_rows(self, capsys):
        assert main(["sanitize", "--suite", "synth", "--strict",
                     "--hide-allowed"]) == 0
        out = capsys.readouterr().out
        assert "allowed:" not in out

    def test_single_app_json_payload(self, capsys):
        import json

        assert main(["sanitize", "--suite", "rodinia", "--app",
                     "backprop", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["subject"] == "rodinia/backprop"
        assert {r["id"] for r in doc["rules"]} >= {"SAN-RACE", "SAN-INIT"}

    def test_disable_and_severity_knobs(self, capsys):
        assert main(["sanitize", "--suite", "rodinia", "--app", "bfs",
                     "--disable", "SAN-INIT",
                     "--severity", "SAN-INIT-SHARED=info"]) == 0

    def test_static_mode_skips_dynamic_verdicts(self, capsys):
        assert main(["sanitize", "--suite", "synth", "--static"]) == 0
        assert "[dynamic:" not in capsys.readouterr().out

    def test_analyze_sanitize_gate_passes_clean_app(self, capsys):
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "1", "--sanitize"])
        assert rc == 0
