"""Tests pinning the paper's equations (1)–(14) to their formulas."""

import pytest

from repro.core import (
    Level1Inputs,
    ipc_branch,
    ipc_divergence,
    ipc_replay,
    ipc_retire,
    ipc_stall,
    stall_backend,
    stall_frontend,
    stall_share_to_ipc,
)


class TestIndividualEquations:
    def test_eq2_retire(self):
        assert ipc_retire(1.2, 0.75) == pytest.approx(0.9)

    def test_eq3_branch(self):
        assert ipc_branch(1.2, 0.75) == pytest.approx(0.3)

    def test_eq2_plus_eq3_is_reported(self):
        """Retire + Branch must reconstruct IPC_REPORTED."""
        reported, eff = 1.37, 0.642
        assert ipc_retire(reported, eff) + ipc_branch(reported, eff) == \
            pytest.approx(reported)

    def test_eq4_replay(self):
        assert ipc_replay(1.5, 1.2) == pytest.approx(0.3)

    def test_eq4_clamped_at_zero(self):
        assert ipc_replay(1.0, 1.1) == 0.0

    def test_eq5_divergence(self):
        assert ipc_divergence(0.3, 0.2) == pytest.approx(0.5)

    def test_eq6_frontend(self):
        assert stall_frontend(12.0, 3.0) == pytest.approx(15.0)

    def test_eq7_stall(self):
        assert ipc_stall(2.0, 0.3, 0.8) == pytest.approx(0.9)

    def test_eq7_clamped(self):
        assert ipc_stall(2.0, 1.5, 1.0) == 0.0

    def test_eq8_to_14_share(self):
        assert stall_share_to_ipc(50.0, 0.9) == pytest.approx(0.45)
        assert stall_share_to_ipc(0.0, 0.9) == 0.0

    def test_eq11_backend(self):
        assert stall_backend(10.0, 60.0) == pytest.approx(70.0)


class TestLevel1Inputs:
    def test_eq1_identity_holds(self):
        """Equation (1): IPC_RETIRE = IPC_MAX - (DIV + STALL)."""
        lvl1 = Level1Inputs(
            ipc_max=2.0, ipc_reported=0.8,
            warp_efficiency=0.9, ipc_issued=0.85,
        ).compute()
        assert lvl1.retire + lvl1.divergence + lvl1.stall == \
            pytest.approx(2.0)

    def test_components(self):
        lvl1 = Level1Inputs(
            ipc_max=2.0, ipc_reported=1.0,
            warp_efficiency=0.8, ipc_issued=1.1,
        ).compute()
        assert lvl1.retire == pytest.approx(0.8)
        assert lvl1.branch == pytest.approx(0.2)
        assert lvl1.replay == pytest.approx(0.1)
        assert lvl1.divergence == pytest.approx(0.3)
        assert lvl1.stall == pytest.approx(0.9)

    def test_oversubscribed_measurement_clamped(self):
        """If reported metrics exceed the theoretical peak, the identity
        still holds: retire is trusted first, divergence shrinks."""
        lvl1 = Level1Inputs(
            ipc_max=1.0, ipc_reported=1.2,
            warp_efficiency=0.9, ipc_issued=1.6,
        ).compute()
        assert lvl1.retire + lvl1.divergence + lvl1.stall == \
            pytest.approx(1.0)
        assert lvl1.retire <= 1.0
        assert lvl1.divergence >= 0.0
        assert lvl1.stall >= 0.0

    def test_branch_replay_sum_to_divergence(self):
        lvl1 = Level1Inputs(
            ipc_max=1.0, ipc_reported=0.9,
            warp_efficiency=0.5, ipc_issued=1.4,
        ).compute()
        assert lvl1.branch + lvl1.replay == pytest.approx(lvl1.divergence)

    def test_perfect_kernel(self):
        lvl1 = Level1Inputs(
            ipc_max=2.0, ipc_reported=2.0,
            warp_efficiency=1.0, ipc_issued=2.0,
        ).compute()
        assert lvl1.retire == pytest.approx(2.0)
        assert lvl1.divergence == 0.0
        assert lvl1.stall == 0.0

    def test_idle_kernel(self):
        lvl1 = Level1Inputs(
            ipc_max=2.0, ipc_reported=0.0,
            warp_efficiency=0.0, ipc_issued=0.0,
        ).compute()
        assert lvl1.retire == 0.0
        assert lvl1.stall == pytest.approx(2.0)
