"""Tests for the markdown report generator and the PMU
measurement-noise model."""

import pytest

from repro.core import Node, TopDownAnalyzer, TopDownResult, markdown_report
from repro.core import metric_names_for_level
from repro.errors import CounterError
from repro.isa import LaunchConfig
from repro.pmu import CuptiSession
from repro.profilers import KernelProfile
from repro.sim import SimConfig

from tests.conftest import build_stream_kernel


def _result(name, retire, memory):
    ipc_max = 2.0
    rest = ipc_max - retire - memory
    values = {
        Node.RETIRE: retire, Node.DIVERGENCE: 0.0, Node.BRANCH: 0.0,
        Node.REPLAY: 0.0, Node.FETCH: rest, Node.DECODE: 0.0,
        Node.CORE: 0.0, Node.MEMORY: memory, Node.FRONTEND: rest,
        Node.BACKEND: memory, Node.UNATTRIBUTED: 0.0,
        Node.L3_L1_DEPENDENCY: memory,
    }
    return TopDownResult(name=name, device="T", ipc_max=ipc_max,
                         values=values)


class TestMarkdownReport:
    def test_empty(self):
        assert "_No results._" in markdown_report({})

    def test_contains_tables_and_average(self):
        text = markdown_report({
            "slow": _result("slow", 0.2, 1.6),
            "fast": _result("fast", 1.8, 0.1),
        })
        assert "## Level 1" in text
        assert "## Level 2" in text
        assert "| slow |" in text
        assert "**average**" in text

    def test_advice_only_for_slow_apps(self):
        text = markdown_report({
            "slow": _result("slow", 0.2, 1.6),
            "fast": _result("fast", 1.8, 0.1),
        })
        assert "### slow" in text
        assert "### fast" not in text

    def test_markdown_table_syntax(self):
        text = markdown_report({"a": _result("a", 0.5, 1.2)})
        header_seps = [l for l in text.splitlines()
                       if l.startswith("|---")]
        assert header_seps  # valid md table separators present


class TestMeasurementNoise:
    def _collect(self, turing, noise, seed=4):
        session = CuptiSession(
            turing, SimConfig(seed=seed), measurement_noise=noise
        )
        prog = build_stream_kernel(iterations=4)
        metrics = metric_names_for_level("7.5", 3)
        return session.collect(
            prog, LaunchConfig(blocks=8, threads_per_block=128), metrics
        )

    def test_invalid_noise_rejected(self, turing):
        with pytest.raises(CounterError):
            CuptiSession(turing, SimConfig(), measurement_noise=1.5)

    def test_zero_noise_is_exact(self, turing):
        a = self._collect(turing, 0.0)
        b = self._collect(turing, 0.0)
        assert a.metrics == b.metrics

    def test_noise_perturbs_metrics(self, turing):
        clean = self._collect(turing, 0.0)
        noisy = self._collect(turing, 0.05)
        diffs = [
            abs(noisy.metrics[m] - clean.metrics[m])
            for m in clean.metrics if clean.metrics[m] > 0
        ]
        assert any(d > 0 for d in diffs)

    def test_noise_bounded(self, turing):
        clean = self._collect(turing, 0.0)
        noisy = self._collect(turing, 0.05)
        for m, v in clean.metrics.items():
            if v <= 0:
                continue
            # percent metrics divide two perturbed counters: worst case
            # (1+e)/(1-e) relative error.
            assert abs(noisy.metrics[m] - v) / v < 0.12

    def test_analysis_stable_under_noise(self, turing):
        """The methodology's clamps keep the breakdown sane and close
        to the clean one under realistic PMU skew."""
        analyzer = TopDownAnalyzer(turing)

        def analyze(noise):
            collected = self._collect(turing, noise)
            profile = KernelProfile("k", 0, dict(collected.metrics))
            return analyzer.analyze_kernel(profile)

        clean = analyze(0.0)
        noisy = analyze(0.04)
        noisy.check_conservation()
        for node in (Node.RETIRE, Node.MEMORY, Node.BACKEND):
            assert abs(noisy.fraction(node) - clean.fraction(node)) < 0.08
