"""Tests for the metric tables (paper Tables I–VIII) and the node
hierarchy wiring."""

import pytest

from repro.core import (
    LEVEL1,
    LEVEL2,
    LEVEL3,
    METRIC_TABLES,
    PARENT,
    Node,
    children,
    entries_for,
    entries_for_variable,
    generation_for,
    ipc_scale,
    level_of,
    metric_names_for_level,
    warp_efficiency_scale,
)
from repro.errors import AnalysisError


class TestHierarchy:
    def test_level1_nodes(self):
        assert set(LEVEL1) == {Node.RETIRE, Node.DIVERGENCE,
                               Node.FRONTEND, Node.BACKEND}

    def test_level2_parents(self):
        assert PARENT[Node.BRANCH] is Node.DIVERGENCE
        assert PARENT[Node.FETCH] is Node.FRONTEND
        assert PARENT[Node.MEMORY] is Node.BACKEND

    def test_children_inverse_of_parent(self):
        for child, parent in PARENT.items():
            assert child in children(parent)

    def test_level3_under_level2(self):
        for node in LEVEL3:
            assert PARENT[node] in LEVEL2

    def test_level_of(self):
        assert level_of(Node.RETIRE) == 1
        assert level_of(Node.MEMORY) == 2
        assert level_of(Node.L3_CONSTANT_MEMORY) == 3


class TestTableContents:
    def test_every_paper_table_present(self):
        tables = {e.table for e in METRIC_TABLES}
        assert tables == {"I", "II", "III", "IV", "V", "VI", "VII", "VIII"}

    def test_odd_tables_are_legacy_even_unified(self):
        """Paper layout: odd-numbered tables are CC<7.2, even CC>=7.2."""
        legacy = {"I", "III", "V", "VII"}
        for e in METRIC_TABLES:
            assert (e.generation == "legacy") == (e.table in legacy)

    def test_table_v_contents(self):
        entries = {e.metric: e for e in METRIC_TABLES if e.table == "V"}
        assert set(entries) == {"stall_inst_fetch", "stall_sync",
                                "stall_other"}
        assert entries["stall_sync"].variable == "STALL_FETCH"
        assert entries["stall_other"].variable == "STALL_DECODE"

    def test_table_vi_has_seven_metrics(self):
        assert len([e for e in METRIC_TABLES if e.table == "VI"]) == 7

    def test_table_viii_has_nine_metrics(self):
        assert len([e for e in METRIC_TABLES if e.table == "VIII"]) == 9

    def test_stall_entries_carry_leaves(self):
        for e in METRIC_TABLES:
            if e.variable.startswith("STALL_"):
                assert e.leaf is not None, e.metric

    def test_long_scoreboard_maps_to_l1(self):
        entry = next(
            e for e in METRIC_TABLES
            if "long_scoreboard" in e.metric
        )
        assert entry.variable == "STALL_MEMORY"
        assert entry.leaf is Node.L3_L1_DEPENDENCY

    def test_imc_miss_maps_to_constant(self):
        entry = next(e for e in METRIC_TABLES if "imc_miss" in e.metric)
        assert entry.leaf is Node.L3_CONSTANT_MEMORY


class TestSelectors:
    def test_generation_for(self):
        assert generation_for("6.1") == "legacy"
        assert generation_for("7.5") == "unified"

    def test_entries_for_filters_generation(self):
        for e in entries_for("6.1"):
            assert e.generation == "legacy"
        for e in entries_for("7.5"):
            assert e.generation == "unified"

    def test_entries_for_variable(self):
        fetch = entries_for_variable("7.5", "STALL_FETCH")
        assert len(fetch) == 5  # Table VI fetch rows

    def test_metric_names_for_level(self):
        names = metric_names_for_level("7.5", 3)
        assert "smsp__inst_executed.avg.per_cycle_active" in names
        assert len(names) == len(set(names))
        legacy = metric_names_for_level("6.1", 1)
        assert "ipc" in legacy

    def test_metric_names_rejects_bad_level(self):
        with pytest.raises(AnalysisError):
            metric_names_for_level("7.5", 4)

    def test_scales(self):
        assert warp_efficiency_scale("6.1") == 100.0   # nvprof: percent
        assert warp_efficiency_scale("7.5") == 32.0    # ncu: threads/inst
        assert ipc_scale("6.1", 4) == 1.0              # nvprof: per-SM
        assert ipc_scale("7.5", 2) == 2.0              # ncu: per-smsp
