"""Tests for the theoretical-occupancy model and its effect on the
simulator's block residency."""

import pytest

from repro.arch import (
    KernelResources,
    get_gpu,
    theoretical_occupancy,
)
from repro.errors import ArchitectureError
from repro.isa import LaunchConfig
from repro.sim import SimConfig
from repro.sim.sm import SMSimulator

from tests.conftest import build_stream_kernel


class TestTheoreticalOccupancy:
    def test_warp_limited(self, turing):
        # 8 warps/block, 32 warp slots -> 4 blocks, full occupancy
        occ = theoretical_occupancy(
            turing, LaunchConfig(blocks=100, threads_per_block=256)
        )
        assert occ.limiter == "warps"
        assert occ.blocks_per_sm == 4
        assert occ.theoretical_occupancy == pytest.approx(1.0)

    def test_block_slot_limited(self, turing):
        # 1 warp/block: 32 blocks would fit warp-wise, device allows 16
        occ = theoretical_occupancy(
            turing, LaunchConfig(blocks=100, threads_per_block=32)
        )
        assert occ.limiter == "blocks"
        assert occ.blocks_per_sm == turing.max_blocks_per_sm
        assert occ.theoretical_occupancy == pytest.approx(0.5)

    def test_shared_memory_limited(self, turing):
        occ = theoretical_occupancy(
            turing,
            LaunchConfig(blocks=100, threads_per_block=128,
                         shared_bytes_per_block=24 * 1024),
        )
        assert occ.limiter == "shared"
        assert occ.blocks_per_sm == 2  # 64 KiB / 24 KiB

    def test_register_limited(self, turing):
        occ = theoretical_occupancy(
            turing,
            LaunchConfig(blocks=100, threads_per_block=256),
            KernelResources(registers_per_thread=128),
        )
        assert occ.limiter == "registers"
        # 128 regs x 32 threads = 4096/warp, x8 warps = 32768/block
        # -> 2 blocks of the 64k register file
        assert occ.blocks_per_sm == 2
        assert occ.theoretical_occupancy == pytest.approx(0.5)

    def test_impossible_launch_rejected(self, turing):
        with pytest.raises(ArchitectureError, match="cannot fit"):
            theoretical_occupancy(
                turing,
                LaunchConfig(blocks=1, threads_per_block=64,
                             shared_bytes_per_block=128 * 1024),
            )

    def test_resource_validation(self):
        with pytest.raises(ArchitectureError):
            KernelResources(registers_per_thread=0)
        with pytest.raises(ArchitectureError):
            KernelResources(shared_bytes_per_block=-1)


class TestSimulatorResidency:
    def test_register_pressure_reduces_concurrency(self, turing):
        import dataclasses

        prog = build_stream_kernel(iterations=4)
        fat = dataclasses.replace(prog, registers_per_thread=128)
        launch = LaunchConfig(blocks=8, threads_per_block=256)
        lean_sim = SMSimulator(turing, prog, launch, SimConfig(seed=1))
        fat_sim = SMSimulator(turing, fat, launch, SimConfig(seed=1))
        assert fat_sim.max_concurrent_blocks < lean_sim.max_concurrent_blocks

    def test_low_occupancy_hurts_memory_bound_kernel(self, turing):
        """Fewer resident warps -> worse latency hiding -> longer run."""
        import dataclasses

        prog = build_stream_kernel(iterations=6, working_set=1 << 22)
        fat = dataclasses.replace(prog, registers_per_thread=200)
        launch = LaunchConfig(blocks=36 * 4, threads_per_block=256)
        lean = SMSimulator(turing, prog, launch, SimConfig(seed=1)).run()
        heavy = SMSimulator(turing, fat, launch, SimConfig(seed=1)).run()
        assert heavy.cycles_elapsed > lean.cycles_elapsed

    def test_occupancy_exposed_on_simulator(self, turing):
        prog = build_stream_kernel(iterations=2)
        launch = LaunchConfig(blocks=4, threads_per_block=256)
        sim = SMSimulator(turing, prog, launch, SimConfig(seed=1))
        assert sim.occupancy.blocks_per_sm >= 1
        assert 0.0 < sim.occupancy.theoretical_occupancy <= 1.0


class TestNcuOccupancySection:
    def test_limiter_shown(self, turing):
        from repro.profilers import NcuTool

        prog = build_stream_kernel(iterations=2)
        tool = NcuTool(turing)
        text = tool.details_report(
            prog, LaunchConfig(blocks=36, threads_per_block=256)
        )
        assert "Occupancy Limiter" in text
        assert "warps" in text


class TestSharedL2:
    def test_second_sm_benefits_from_shared_l2(self, turing):
        """Constructive sharing: SM 1 finds lines SM 0 already pulled
        into the device-level L2 (streams that map to the same data)."""
        from repro.sim import SimConfig, simulate_kernel

        prog = build_stream_kernel(iterations=6, working_set=1 << 19)
        launch = LaunchConfig(blocks=72, threads_per_block=128)
        res = simulate_kernel(
            turing, prog, launch,
            SimConfig(seed=1, simulated_sms=2, share_l2=True),
        )
        c0, c1 = res.per_sm
        def l2_rate(c):
            return c.l2_sector_hits / max(1, c.l2_sector_accesses)
        assert l2_rate(c1) >= l2_rate(c0)

    def test_per_sm_l2_stats_are_deltas(self, turing):
        """Shared array, but each SM reports only its own traffic."""
        from repro.sim import SimConfig, simulate_kernel

        prog = build_stream_kernel(iterations=4, working_set=1 << 21)
        launch = LaunchConfig(blocks=72, threads_per_block=128)
        res = simulate_kernel(
            turing, prog, launch,
            SimConfig(seed=1, simulated_sms=2, share_l2=True),
        )
        c0, c1 = res.per_sm
        for c in (c0, c1):
            assert c.l2_sector_hits <= c.l2_sector_accesses
        # both SMs did comparable work -> comparable L2 traffic
        assert c1.l2_sector_accesses > 0
