"""Behavioural tests of the SM pipeline simulator.

Each test builds a kernel that exercises one mechanism and asserts the
corresponding counters respond — the causal chain the Top-Down
methodology depends on.
"""

import pytest

from repro.errors import SimulationError
from repro.isa import AccessKind, LaunchConfig, ProgramBuilder
from repro.isa.opcodes import OpClass
from repro.sim import SimConfig, SMSimulator, WarpState, simulate_kernel
from repro.sim.sm import _blocks_for_sm

from tests.conftest import build_stream_kernel


def _sim(spec, prog, launch=None, **cfg):
    launch = launch or LaunchConfig(blocks=8, threads_per_block=128)
    config = SimConfig(seed=3, **cfg)
    return simulate_kernel(spec, prog, launch, config)


class TestBasicExecution:
    def test_counts_match_program_shape(self, turing):
        prog = build_stream_kernel(iterations=4)
        launch = LaunchConfig(blocks=36, threads_per_block=128)
        res = _sim(turing, prog, launch)
        c = res.counters
        # SM 0 receives exactly 1 block under round-robin of 36 blocks.
        warps = 4
        expected = warps * prog.dynamic_length
        assert c.inst_executed == expected

    def test_every_warp_reaches_exit(self, turing, stream_kernel):
        res = _sim(turing, stream_kernel)
        c = res.counters
        assert c.warps_launched > 0
        assert c.inst_by_class[OpClass.CONTROL] >= c.warps_launched

    def test_issued_at_least_executed(self, turing, stream_kernel):
        c = _sim(turing, stream_kernel).counters
        assert c.inst_issued >= c.inst_executed

    def test_state_cycles_conserved(self, turing, stream_kernel):
        """Every resident warp is in exactly one state per cycle."""
        c = _sim(turing, stream_kernel).counters
        assert sum(c.state_cycles.values()) == c.warp_active_cycles

    def test_deterministic_across_runs(self, turing, stream_kernel):
        a = _sim(turing, stream_kernel).counters
        b = _sim(turing, stream_kernel).counters
        assert a.inst_executed == b.inst_executed
        assert a.state_cycles == b.state_cycles
        assert a.cycles_elapsed == b.cycles_elapsed

    def test_seed_changes_details_not_structure(self, turing, stream_kernel):
        launch = LaunchConfig(blocks=8, threads_per_block=128)
        a = simulate_kernel(turing, stream_kernel, launch, SimConfig(seed=1))
        b = simulate_kernel(turing, stream_kernel, launch, SimConfig(seed=2))
        assert a.counters.inst_executed == b.counters.inst_executed

    def test_cycle_budget_enforced(self, turing, stream_kernel):
        with pytest.raises(SimulationError, match="exceeded"):
            _sim(turing, stream_kernel, max_cycles=50)


class TestMemoryBehaviour:
    def test_memory_bound_kernel_stalls_on_long_scoreboard(self, turing):
        prog = build_stream_kernel(working_set=1 << 23)
        c = _sim(turing, prog).counters
        stalls = c.state_cycles
        assert stalls[WarpState.LONG_SCOREBOARD] > stalls[WarpState.WAIT]
        assert (
            stalls[WarpState.LONG_SCOREBOARD]
            > 0.3 * c.warp_active_cycles
        )

    def test_small_working_set_hits_l1(self, turing):
        small = _sim(turing, build_stream_kernel(working_set=1 << 13)).counters
        big = _sim(turing, build_stream_kernel(working_set=1 << 23)).counters
        hit_small = small.l1_sector_hits / small.l1_sector_accesses
        hit_big = big.l1_sector_hits / big.l1_sector_accesses
        assert hit_small > hit_big

    def test_l1_resident_kernel_faster(self, turing):
        small = _sim(turing, build_stream_kernel(working_set=1 << 13))
        big = _sim(turing, build_stream_kernel(working_set=1 << 23))
        assert small.duration_cycles < big.duration_cycles

    def test_strided_access_replays(self, turing):
        b = ProgramBuilder("strided")
        b.pattern("x", AccessKind.STRIDED, working_set_bytes=1 << 22,
                  stride_elements=32)
        r = b.ldg("x")
        b.stg("x", r)
        prog = b.build(iterations=8)
        c = _sim(turing, prog).counters
        assert c.replay_transactions > 0
        assert c.inst_issued > c.inst_executed

    def test_coalesced_access_no_replays(self, turing):
        c = _sim(turing, build_stream_kernel()).counters
        assert c.replay_transactions == 0

    def test_constant_misses_stall_imc(self, turing):
        b = ProgramBuilder("const")
        b.pattern("coef", AccessKind.UNIFORM, working_set_bytes=128 * 1024)
        r = b.ldc("coef")
        b.stg_pattern = b.pattern("o", AccessKind.STREAM,
                                  working_set_bytes=4096)
        b.stg("o", r)
        prog = b.build(iterations=16)
        c = _sim(turing, prog).counters
        assert c.constant_accesses > 0
        assert c.constant_hits < c.constant_accesses
        assert c.state_cycles[WarpState.IMC_MISS] > 0

    def test_small_constant_table_hits(self, turing):
        b = ProgramBuilder("const_small")
        b.pattern("coef", AccessKind.UNIFORM, working_set_bytes=256)
        r = b.ldc("coef")
        b.pattern("o", AccessKind.STREAM, working_set_bytes=4096)
        b.stg("o", r)
        prog = b.build(iterations=16)
        c = _sim(turing, prog).counters
        assert c.constant_hits / c.constant_accesses > 0.9

    def test_shared_loads_use_short_scoreboard(self, turing):
        b = ProgramBuilder("shared")
        b.pattern("tile", AccessKind.STREAM, working_set_bytes=16 * 1024)
        r = b.lds("tile")
        r2 = b.ffma(r, r)
        b.pattern("o", AccessKind.STREAM, working_set_bytes=1 << 16)
        b.stg("o", r2)
        prog = b.build(iterations=8)
        c = _sim(turing, prog).counters
        assert c.state_cycles[WarpState.SHORT_SCOREBOARD] > 0
        assert c.state_cycles[WarpState.LONG_SCOREBOARD] == 0 or (
            c.state_cycles[WarpState.SHORT_SCOREBOARD]
            > c.state_cycles[WarpState.LONG_SCOREBOARD]
        )

    def test_drain_stall_after_trailing_store(self, turing):
        b = ProgramBuilder("drain")
        b.pattern("o", AccessKind.STREAM, working_set_bytes=1 << 22)
        r = b.iadd()
        b.stg("o", r)
        prog = b.build(iterations=1)
        c = _sim(turing, prog).counters
        assert c.state_cycles[WarpState.DRAIN] > 0


class TestComputeBehaviour:
    def test_compute_kernel_high_ipc(self, turing, compute_kernel):
        launch = LaunchConfig(blocks=72, threads_per_block=256)
        c = _sim(turing, compute_kernel, launch).counters
        ipc = c.inst_executed / c.cycles_active
        assert ipc > 0.45 * turing.ipc_max

    def test_math_pipe_throttle_on_compute(self, turing, compute_kernel):
        c = _sim(turing, compute_kernel).counters
        assert c.state_cycles[WarpState.MATH_PIPE_THROTTLE] > 0

    def test_fp64_throttles_harder_than_fp32(self, turing):
        def kern(double: bool):
            b = ProgramBuilder("fp")
            b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 14)
            r = b.ldg("x")
            for _ in range(16):
                r = b.dfma(r, r) if double else b.ffma(r, r)
            b.stg("x", r)
            return b.build(iterations=4)

        fp64 = _sim(turing, kern(True))
        fp32 = _sim(turing, kern(False))
        assert fp64.duration_cycles > fp32.duration_cycles
        assert (
            fp64.counters.state_cycles[WarpState.MATH_PIPE_THROTTLE]
            > fp32.counters.state_cycles[WarpState.MATH_PIPE_THROTTLE]
        )

    def test_low_ilp_waits_on_dependencies(self, turing):
        def kern(ilp: int):
            b = ProgramBuilder("ilp")
            b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 14)
            regs = [b.ldg("x") for _ in range(ilp)]
            for i in range(24):
                regs[i % ilp] = b.ffma(regs[i % ilp], regs[i % ilp])
            b.stg("x", regs[0])
            return b.build(iterations=4)

        serial = _sim(turing, kern(1),
                      LaunchConfig(blocks=2, threads_per_block=64))
        parallel = _sim(turing, kern(6),
                        LaunchConfig(blocks=2, threads_per_block=64))
        s = serial.counters.state_cycles[WarpState.WAIT]
        p = parallel.counters.state_cycles[WarpState.WAIT]
        assert s > p


class TestControlFlow:
    def test_divergence_reduces_warp_efficiency(self, turing):
        b = ProgramBuilder("div")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
        r = b.ldg("x")
        b.branch(if_length=4, else_length=4, taken_fraction=0.5, src=r)
        for _ in range(8):
            r = b.ffma(r, r)
        b.stg("x", r)
        prog = b.build(iterations=8)
        c = _sim(turing, prog).counters
        eff = c.thread_inst_executed / (32 * c.inst_executed)
        assert eff < 0.95
        assert c.divergent_branches > 0
        assert c.state_cycles[WarpState.BRANCH_RESOLVING] > 0

    def test_uniform_branch_no_divergence(self, turing):
        b = ProgramBuilder("uni")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
        r = b.ldg("x")
        b.branch(if_length=4, taken_fraction=1.0, src=r)
        for _ in range(4):
            r = b.ffma(r, r)
        b.stg("x", r)
        prog = b.build(iterations=4)
        c = _sim(turing, prog).counters
        assert c.divergent_branches == 0
        eff = c.thread_inst_executed / (32 * c.inst_executed)
        assert eff == pytest.approx(1.0)

    def test_barrier_synchronizes_block(self, turing):
        b = ProgramBuilder("bar")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 18)
        r = b.ldg("x")
        r = b.ffma(r, r)
        b.barrier()
        b.stg("x", r)
        prog = b.build(iterations=6)
        c = _sim(turing, prog).counters
        assert c.barriers_executed > 0
        assert c.state_cycles[WarpState.BARRIER] > 0

    def test_membar_stalls(self, turing):
        b = ProgramBuilder("membar")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
        r = b.ldg("x")
        b.stg("x", r)
        b.membar()
        b.nop()
        prog = b.build(iterations=4)
        c = _sim(turing, prog).counters
        assert c.state_cycles[WarpState.MEMBAR] > 0


class TestFetchModel:
    def test_large_footprint_fetch_stalls(self, pascal):
        small = build_stream_kernel()
        big = build_stream_kernel()
        big = type(big)(
            name=big.name, body=big.body, patterns=big.patterns,
            iterations=big.iterations, static_instructions=4000,
        )
        cs = _sim(pascal, small).counters
        cb = _sim(pascal, big).counters
        frac_small = cs.stall_fraction(WarpState.NO_INSTRUCTION)
        frac_big = cb.stall_fraction(WarpState.NO_INSTRUCTION)
        assert frac_big > frac_small

    def test_pascal_more_fetch_sensitive_than_turing(self, pascal, turing):
        """Smaller i-cache + slower refill: the Fig.-5 asymmetry."""
        prog = build_stream_kernel()
        prog = type(prog)(
            name=prog.name, body=prog.body, patterns=prog.patterns,
            iterations=prog.iterations, static_instructions=1500,
        )
        cp = _sim(pascal, prog).counters
        ct = _sim(turing, prog).counters
        assert cp.stall_fraction(WarpState.NO_INSTRUCTION) > \
            ct.stall_fraction(WarpState.NO_INSTRUCTION)


class TestBlockScheduling:
    def test_blocks_for_sm_roundrobin(self):
        assert _blocks_for_sm(10, 4, 0) == 3
        assert _blocks_for_sm(10, 4, 1) == 3
        assert _blocks_for_sm(10, 4, 2) == 2
        assert _blocks_for_sm(10, 4, 3) == 2
        assert sum(_blocks_for_sm(10, 4, i) for i in range(4)) == 10

    def test_more_blocks_longer_duration(self, turing, stream_kernel):
        few = _sim(turing, stream_kernel,
                   LaunchConfig(blocks=36, threads_per_block=128))
        many = _sim(turing, stream_kernel,
                    LaunchConfig(blocks=36 * 8, threads_per_block=128))
        assert many.duration_cycles > few.duration_cycles

    def test_zero_blocks_for_this_sm(self, turing, stream_kernel):
        sim = SMSimulator(
            turing, stream_kernel,
            LaunchConfig(blocks=1, threads_per_block=64),
            SimConfig(seed=0), sm_index=5,
        )
        counters = sim.run()
        assert counters.inst_executed == 0

    def test_counter_validation_passes(self, turing, stream_kernel):
        c = _sim(turing, stream_kernel).counters
        c.validate()  # should not raise


class TestMultiSM:
    def test_simulated_sms_merge(self, turing, stream_kernel):
        launch = LaunchConfig(blocks=72, threads_per_block=128)
        one = simulate_kernel(turing, stream_kernel, launch,
                              SimConfig(seed=1, simulated_sms=1))
        two = simulate_kernel(turing, stream_kernel, launch,
                              SimConfig(seed=1, simulated_sms=2))
        assert two.simulated_sm_count == 2
        assert two.counters.inst_executed > one.counters.inst_executed

    def test_duration_seconds_positive(self, turing, stream_kernel):
        res = _sim(turing, stream_kernel)
        assert res.duration_seconds > 0
