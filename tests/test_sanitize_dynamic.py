"""Dynamic-confirmation layer: verdicts, report annotation, and the
pure-observer guarantee.

The load-bearing property is the last one: ``SanitizingSimulator`` must
be a bit-identical observer — watching every shared access and barrier
of a kernel must leave its :class:`EventCounters` exactly equal to an
uninstrumented run, pinned against the same golden fixture the
event-loop equivalence suite uses."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.arch import get_gpu
from repro.io.counters_json import counters_to_doc
from repro.isa import AccessKind, LaunchConfig, Opcode, ProgramBuilder
from repro.lint import bundled_suites
from repro.sanitize import (
    CONFIRMED,
    NOT_OBSERVED,
    SanitizingSimulator,
    confirm_candidates,
    divergent_barrier_candidates,
    race_candidates,
    sanitize_application,
    sanitize_program,
)
from repro.sim import SimConfig
from repro.sim.counters import EventCounters
from repro.sim.sm import SMSimulator

SPEC = get_gpu("rtx4000")
MULTI_WARP = LaunchConfig(blocks=2, threads_per_block=64,
                          shared_bytes_per_block=1 << 14)
CONFIG = SimConfig(seed=0)
GOLDEN_SIM = (Path(__file__).resolve().parent / "data"
              / "golden_sim_counters.json")
GOLDEN_SANITIZE = (Path(__file__).resolve().parent / "data"
                   / "golden_sanitize.json")


def _racy(tile_bytes: int, iterations: int = 2):
    """STS then LDS on one tile, no fence.  A tiny tile makes every
    warp's cursor wrap onto the same sectors (a real overlap); a large
    one gives each warp a private slice (candidate never observed)."""
    b = ProgramBuilder("racy")
    b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
    b.pattern("tile", AccessKind.STREAM, working_set_bytes=tile_bytes)
    r = b.ldg("x")       # pc 0
    b.sts("tile", r)     # pc 1
    t = b.lds("tile")    # pc 2
    b.stg("x", t)        # pc 3
    return b.build(iterations=iterations)


def _divergent_bar():
    b = ProgramBuilder("divbar")
    b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
    r = b.ldg("x")                                       # pc 0
    b.branch(if_length=1, taken_fraction=0.5, src=r)     # pc 1
    b.barrier()                                          # pc 2
    b.stg("x", r)                                        # pc 3
    return b.build()


# ----------------------------------------------------------------------
# verdicts
# ----------------------------------------------------------------------
class TestVerdicts:
    def test_overlapping_tile_confirms_both_hazards(self):
        prog = _racy(tile_bytes=128)
        race = race_candidates(prog, MULTI_WARP)
        verdicts, _ = confirm_candidates(
            SPEC, prog, MULTI_WARP, CONFIG, race, [])
        assert [v.status for v in verdicts] == [CONFIRMED, CONFIRMED]
        assert "overlapping sectors" in verdicts[0].detail

    def test_private_slices_stay_not_observed(self):
        prog = _racy(tile_bytes=1 << 12)
        race = race_candidates(prog, MULTI_WARP)
        verdicts, _ = confirm_candidates(
            SPEC, prog, MULTI_WARP, CONFIG, race, [])
        assert [v.status for v in verdicts] == [NOT_OBSERVED, NOT_OBSERVED]

    def test_divergent_barrier_confirmed(self):
        prog = _divergent_bar()
        bars = divergent_barrier_candidates(prog)
        assert bars == [2]
        _, verdicts = confirm_candidates(
            SPEC, prog, MULTI_WARP, CONFIG, [], bars)
        assert [v.status for v in verdicts] == [CONFIRMED]
        assert "divergent" in verdicts[0].detail

    def test_verdicts_are_deterministic_per_seed(self):
        prog = _racy(tile_bytes=128)
        race = race_candidates(prog, MULTI_WARP)
        runs = [
            [str(v) for v in confirm_candidates(
                SPEC, prog, MULTI_WARP, SimConfig(seed=13), race, [])[0]]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestReportAnnotation:
    def test_dynamic_report_appends_verdicts(self):
        report = sanitize_program(
            _racy(tile_bytes=128), MULTI_WARP, SPEC, dynamic=True)
        race_msgs = [d.message for d in report.diagnostics
                     if d.rule == "SAN-RACE"]
        assert len(race_msgs) == 2
        assert all(f"[dynamic: {CONFIRMED}" in m for m in race_msgs)

    def test_static_report_has_no_verdicts(self):
        report = sanitize_program(
            _racy(tile_bytes=128), MULTI_WARP, SPEC, dynamic=False)
        assert all("[dynamic:" not in d.message
                   for d in report.diagnostics)

    def test_every_bundled_candidate_gets_a_verdict(self):
        # acceptance criterion: each static race / divergent-barrier
        # candidate across the bundled suites ends CONFIRMED or
        # NOT-OBSERVED after the dynamic replay.
        for suite in bundled_suites().values():
            for app in suite:
                report = sanitize_application(app, SPEC, dynamic=True)
                for diag in report.diagnostics:
                    if diag.rule in ("SAN-RACE", "SAN-SYNC-DIVERGENT"):
                        assert (f"[dynamic: {CONFIRMED}" in diag.message
                                or f"[dynamic: {NOT_OBSERVED}"
                                in diag.message), diag.message


# ----------------------------------------------------------------------
# pure-observer guarantee
# ----------------------------------------------------------------------
def _all_watchpoints(program):
    shared = frozenset(
        pc for pc, inst in enumerate(program.body)
        if inst.opcode in (Opcode.LDS, Opcode.STS)
    )
    bars = frozenset(
        pc for pc, inst in enumerate(program.body)
        if inst.opcode is Opcode.BAR
    )
    return shared, bars


class TestPureObserver:
    def test_watched_run_matches_unwatched_counters(self):
        prog = _racy(tile_bytes=128, iterations=4)
        shared, bars = _all_watchpoints(prog)
        plain = SMSimulator(SPEC, prog, MULTI_WARP, CONFIG).run()
        watched_sim = SanitizingSimulator(
            SPEC, prog, MULTI_WARP, CONFIG,
            watch_shared=shared, watch_bars=bars)
        watched = watched_sim.run()
        assert counters_to_doc(watched) == counters_to_doc(plain)
        assert watched_sim.accesses  # it really did observe something

    @pytest.mark.parametrize("suite_name", ("rodinia", "synth"))
    def test_sanitize_replay_reproduces_golden_fixture(self, suite_name):
        golden = json.loads(GOLDEN_SIM.read_text(encoding="utf-8"))
        apps_doc = golden["gpus"]["rtx4000"][suite_name]
        suite = bundled_suites()[suite_name]
        for app in suite:
            merged = EventCounters()
            for inv in app.invocations:
                shared, bars = _all_watchpoints(inv.program)
                sim = SanitizingSimulator(
                    SPEC, inv.program, inv.launch, CONFIG,
                    watch_shared=shared, watch_bars=bars)
                merged.merge(sim.run())
            assert counters_to_doc(merged) == apps_doc[app.name], (
                f"{suite_name}/{app.name}: sanitizing replay drifted "
                "from the golden counters"
            )


# ----------------------------------------------------------------------
# golden sanitize reports
# ----------------------------------------------------------------------
def test_golden_sanitize_reports():
    golden = json.loads(GOLDEN_SANITIZE.read_text(encoding="utf-8"))
    spec = get_gpu(golden["gpu"])
    suites = bundled_suites()
    assert len(golden["apps"]) == 3
    for key, expected in golden["apps"].items():
        suite_name, app_name = key.split("/")
        app = suites[suite_name].get(app_name)
        report = sanitize_application(app, spec)
        assert report.payload() == expected, f"{key}: report drifted"
