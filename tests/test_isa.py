"""Tests for the synthetic ISA: opcodes, instructions, programs,
builder DSL."""

import pytest

from repro.errors import ProgramError
from repro.isa import (
    LONG_SCOREBOARD_OPS,
    SHORT_SCOREBOARD_OPS,
    AccessKind,
    AccessPattern,
    BranchInfo,
    Instruction,
    KernelProgram,
    LaunchConfig,
    MemoryRef,
    OpClass,
    Opcode,
    ProgramBuilder,
)


class TestOpcodes:
    def test_memory_classification(self):
        assert Opcode.LDG.is_memory and Opcode.LDG.is_load
        assert Opcode.STG.is_memory and Opcode.STG.is_store
        assert not Opcode.FADD.is_memory

    def test_functional_unit_mapping(self):
        assert Opcode.FFMA.functional_unit == "fp32"
        assert Opcode.DFMA.functional_unit == "fp64"
        assert Opcode.IMAD.functional_unit == "int"
        assert Opcode.MUFU.functional_unit == "sfu"
        assert Opcode.BRA.functional_unit == "ctrl"
        assert Opcode.LDG.functional_unit is None

    def test_scoreboard_partition(self):
        """Global/texture loads wake via the long scoreboard, shared
        loads via the short one (Table VIII semantics)."""
        assert Opcode.LDG in LONG_SCOREBOARD_OPS
        assert Opcode.TEX in LONG_SCOREBOARD_OPS
        assert Opcode.LDS in SHORT_SCOREBOARD_OPS
        assert not (LONG_SCOREBOARD_OPS & SHORT_SCOREBOARD_OPS)

    def test_control_ops(self):
        for op in (Opcode.BRA, Opcode.BAR, Opcode.MEMBAR, Opcode.EXIT):
            assert op.is_control


class TestInstruction:
    def test_memory_requires_ref(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.LDG, dst=0)

    def test_non_memory_rejects_ref(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.FADD, dst=0, mem=MemoryRef("x"))

    def test_branch_requires_info(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.BRA)
        with pytest.raises(ProgramError):
            Instruction(Opcode.FADD, branch=BranchInfo(if_length=1))

    def test_negative_register_rejected(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.FADD, dst=-1)

    def test_str_rendering(self):
        inst = Instruction(Opcode.FFMA, dst=3, srcs=(1, 2))
        assert str(inst) == "FFMA R3 R1 R2"

    def test_branch_info_validation(self):
        with pytest.raises(ProgramError):
            BranchInfo(if_length=1, taken_fraction=1.5)
        with pytest.raises(ProgramError):
            BranchInfo(if_length=-1)


class TestAccessPattern:
    def test_valid(self):
        p = AccessPattern("x", AccessKind.STREAM, working_set_bytes=4096)
        assert p.element_bytes == 4

    @pytest.mark.parametrize("kwargs", [
        dict(working_set_bytes=0),
        dict(working_set_bytes=64, element_bytes=3),
        dict(working_set_bytes=64, stride_elements=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ProgramError):
            AccessPattern("x", AccessKind.STREAM, **kwargs)


class TestKernelProgram:
    def _inst(self):
        return Instruction(Opcode.FADD, dst=0)

    def test_empty_body_rejected(self):
        with pytest.raises(ProgramError):
            KernelProgram(name="k", body=())

    def test_explicit_exit_rejected(self):
        with pytest.raises(ProgramError):
            KernelProgram(name="k", body=(Instruction(Opcode.EXIT),))

    def test_undeclared_pattern_rejected(self):
        inst = Instruction(Opcode.LDG, dst=0, mem=MemoryRef("nope"))
        with pytest.raises(ProgramError, match="undeclared pattern"):
            KernelProgram(name="k", body=(inst,))

    def test_divergence_region_must_fit(self):
        bra = Instruction(Opcode.BRA, branch=BranchInfo(if_length=3))
        with pytest.raises(
            ProgramError, match=r"overruns the 2-instruction body by 2"
        ):
            KernelProgram(name="k", body=(bra, self._inst()))

    def test_nested_divergence_rejected(self):
        bra1 = Instruction(Opcode.BRA, branch=BranchInfo(if_length=3))
        bra2 = Instruction(Opcode.BRA, branch=BranchInfo(if_length=1))
        body = (bra1, bra2, self._inst(), self._inst(), self._inst())
        with pytest.raises(ProgramError, match="nested"):
            KernelProgram(name="k", body=body)

    def test_dynamic_length_includes_exit(self):
        prog = KernelProgram(name="k", body=(self._inst(),) * 3,
                             iterations=4)
        assert prog.dynamic_length == 3 * 4 + 1

    def test_footprint_default_and_override(self):
        body = (self._inst(),) * 5
        assert KernelProgram(name="k", body=body).footprint_instructions == 5
        assert KernelProgram(
            name="k", body=body, static_instructions=999
        ).footprint_instructions == 999

    def test_listing(self):
        prog = KernelProgram(name="k", body=(self._inst(),))
        listing = prog.listing()
        assert "FADD" in listing and "EXIT" in listing


class TestLaunchConfig:
    def test_warp_math(self):
        lc = LaunchConfig(blocks=3, threads_per_block=100)
        assert lc.warps_per_block == 4
        assert lc.total_warps == 12

    @pytest.mark.parametrize("kwargs", [
        dict(blocks=0, threads_per_block=128),
        dict(blocks=1, threads_per_block=0),
        dict(blocks=1, threads_per_block=2048),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ProgramError):
            LaunchConfig(**kwargs)


class TestProgramBuilder:
    def test_fluent_construction(self):
        b = ProgramBuilder("k")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=4096)
        r = b.ldg("x")
        r2 = b.ffma(r, r)
        b.stg("x", r2)
        prog = b.build(iterations=2)
        assert prog.dynamic_length == 3 * 2 + 1
        assert [i.opcode for i in prog.body] == [
            Opcode.LDG, Opcode.FFMA, Opcode.STG
        ]

    def test_registers_unique(self):
        b = ProgramBuilder("k")
        assert b.reg() != b.reg()

    def test_empty_build_rejected(self):
        with pytest.raises(ProgramError):
            ProgramBuilder("k").build()

    def test_pattern_bases_do_not_alias(self):
        b = ProgramBuilder("k")
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 20)
        b.pattern("y", AccessKind.STREAM, working_set_bytes=1 << 20)
        prog = b.nop().build()
        px, py = prog.patterns
        assert px.base_address + px.working_set_bytes <= py.base_address

    def test_branch_and_barrier_emission(self):
        b = ProgramBuilder("k")
        b.branch(if_length=2, else_length=1, taken_fraction=0.5)
        b.nop().nop().nop()
        b.barrier()
        prog = b.build()
        assert prog.body[0].opcode is Opcode.BRA
        assert prog.body[-1].opcode is Opcode.BAR

    def test_all_alu_helpers(self):
        b = ProgramBuilder("k")
        for helper in (b.fadd, b.fmul, b.ffma, b.dadd, b.dfma, b.iadd,
                       b.imad, b.mufu):
            helper()
        prog = b.build()
        assert len(prog.body) == 8
