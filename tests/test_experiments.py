"""Tests of the experiment modules — fast variants assert the paper's
*shape* claims hold on reduced workloads; full-suite checks run on the
real suites but only on Turing (the cheaper suite passes)."""

import pytest

from repro.core import Node
from repro.experiments import (
    fig04,
    fig11_12,
    fig13,
    table9,
    tables_metrics,
)
from repro.experiments.runner import profile_suite
from repro.workloads.altis import altis
from repro.workloads.base import Suite
from repro.workloads.rodinia import rodinia


@pytest.fixture(scope="module")
def rodinia_turing():
    return profile_suite("NVIDIA Quadro RTX 4000", rodinia())


@pytest.fixture(scope="module")
def rodinia_pascal():
    return profile_suite("NVIDIA GTX 1070", rodinia())


@pytest.fixture(scope="module")
def altis_turing():
    return profile_suite("NVIDIA Quadro RTX 4000", altis())


class TestTable9:
    def test_matches_paper(self):
        rows = table9.run()
        assert rows == table9.PAPER_TABLE9

    def test_render(self):
        text = table9.render()
        assert "Compute Capability" in text
        assert "2304" in text


class TestMetricTables:
    def test_all_metrics_resolvable(self):
        grouped = tables_metrics.run()
        assert set(grouped) == set(tables_metrics.TABLE_TITLES)
        assert all(grouped.values())

    def test_render_contains_metric_names(self):
        text = tables_metrics.render()
        assert "warp_execution_efficiency" in text
        assert "smsp__inst_issued.avg.per_cycle_active" in text


class TestFig4Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04.run()

    def test_retire_degrades_with_tile_size(self, result):
        retire = result.series(Node.RETIRE)
        assert retire == sorted(retire, reverse=True)

    def test_divergence_shrinks_with_tile_size(self, result):
        div = result.series(Node.DIVERGENCE)
        assert div == sorted(div, reverse=True)
        assert div[0] > 2 * div[-1]

    def test_memory_grows_until_dominant(self, result):
        mem = result.series(Node.MEMORY)
        assert mem == sorted(mem)
        last = result.results[4]
        assert last.ipc(Node.MEMORY) > last.ipc(Node.DIVERGENCE)
        assert last.ipc(Node.BACKEND) > last.ipc(Node.RETIRE)


class TestFig5Shape:
    def test_backend_dominates_both(self, rodinia_turing, rodinia_pascal):
        for run in (rodinia_turing, rodinia_pascal):
            assert run.mean_fraction(Node.BACKEND) > \
                run.mean_fraction(Node.FRONTEND)
            assert run.mean_fraction(Node.BACKEND) > \
                run.mean_fraction(Node.RETIRE)

    def test_divergence_negligible(self, rodinia_turing, rodinia_pascal):
        assert rodinia_turing.mean_fraction(Node.DIVERGENCE) < 0.05
        assert rodinia_pascal.mean_fraction(Node.DIVERGENCE) < 0.05

    def test_pascal_frontend_much_larger(self, rodinia_turing,
                                         rodinia_pascal):
        """Paper: ~20% frontend loss on Pascal, <10% on Turing."""
        fe_pascal = rodinia_pascal.mean_fraction(Node.FRONTEND)
        fe_turing = rodinia_turing.mean_fraction(Node.FRONTEND)
        assert fe_turing < 0.10
        assert fe_pascal > 2 * fe_turing
        assert fe_pascal > 0.10

    def test_good_apps_same_on_both(self, rodinia_turing, rodinia_pascal):
        """srad_v2, heartwall, hotspot3D, pathfinder lead on both."""
        for run in (rodinia_turing, rodinia_pascal):
            ranked = sorted(
                run.results,
                key=lambda a: -run.results[a].fraction(Node.RETIRE),
            )
            top6 = set(ranked[:6])
            hits = len(set(
                ("srad_v2", "heartwall", "hotspot3D", "pathfinder")
            ) & top6)
            assert hits >= 3, ranked[:6]


class TestFig6Fig7Shape:
    def test_memory_dominates_degradation(self, rodinia_turing):
        mem = rodinia_turing.mean_degradation_share(Node.MEMORY)
        assert mem > 0.55
        assert mem > 3 * rodinia_turing.mean_degradation_share(Node.CORE)

    def test_l1_dependency_dominates_level3(self, rodinia_turing):
        results = list(rodinia_turing.results.values())
        l1 = sum(
            r.degradation_share(r.level3(), level=3).get(
                Node.L3_L1_DEPENDENCY, 0.0
            ) for r in results
        ) / len(results)
        const = sum(
            r.degradation_share(r.level3(), level=3).get(
                Node.L3_CONSTANT_MEMORY, 0.0
            ) for r in results
        ) / len(results)
        assert l1 > 0.4
        assert l1 > 4 * const

    def test_myocyte_nn_constant_pressure(self, rodinia_turing):
        for app in ("myocyte", "nn"):
            r = rodinia_turing.results[app]
            share = r.degradation_share(r.level3(), level=3)
            assert share.get(Node.L3_CONSTANT_MEMORY, 0.0) > 0.10, app

    def test_mio_throttle_minor(self, rodinia_turing):
        results = list(rodinia_turing.results.values())
        mio = sum(
            r.degradation_share(r.level3(), level=3).get(
                Node.L3_MIO_THROTTLE, 0.0
            ) for r in results
        ) / len(results)
        assert mio < 0.05


class TestFig8Fig9Fig10Shape:
    def test_backend_dominates(self, altis_turing):
        assert altis_turing.mean_fraction(Node.BACKEND) > \
            altis_turing.mean_fraction(Node.FRONTEND) > 0

    def test_altis_retire_higher_than_rodinia(self, altis_turing,
                                              rodinia_turing):
        assert altis_turing.mean_fraction(Node.RETIRE) > \
            rodinia_turing.mean_fraction(Node.RETIRE)

    def test_mandelbrot_near_70pct(self, altis_turing):
        retire = altis_turing.results["mandelbrot"].fraction(Node.RETIRE)
        assert 0.6 < retire < 0.95

    def test_bfs_nw_match_rodinia(self, altis_turing, rodinia_turing):
        """Paper: bfs and nw perform practically the same across suites."""
        for app in ("bfs", "nw"):
            a = altis_turing.results[app].fraction(Node.RETIRE)
            r = rodinia_turing.results[app].fraction(Node.RETIRE)
            assert abs(a - r) < 0.05, app

    def test_cfd_improves_in_altis(self, altis_turing, rodinia_turing):
        assert altis_turing.results["cfd"].fraction(Node.RETIRE) > \
            rodinia_turing.results["cfd"].fraction(Node.RETIRE)

    def test_memory_dominates_level2(self, altis_turing):
        assert altis_turing.mean_degradation_share(Node.MEMORY) > 0.45

    def test_constant_pressure_much_higher_than_rodinia(
        self, altis_turing, rodinia_turing
    ):
        def const_share(run):
            results = list(run.results.values())
            return sum(
                r.degradation_share(r.level3(), level=3).get(
                    Node.L3_CONSTANT_MEMORY, 0.0
                ) for r in results
            ) / len(results)

        assert const_share(altis_turing) > 2.5 * const_share(rodinia_turing)

    def test_ml_apps_constant_dominant(self, altis_turing):
        """Within the ML apps, constant beats every other memory leaf."""
        for app in ("gemm", "kmeans"):
            r = altis_turing.results[app]
            share = r.degradation_share(r.level3(), level=3)
            const = share.get(Node.L3_CONSTANT_MEMORY, 0.0)
            assert const > share.get(Node.L3_L1_DEPENDENCY, 0.0), app


class TestFig11_12Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_12.run(invocations=60)  # phase break at 30

    def test_two_phases_detected(self, result):
        for kernel in fig11_12.KERNELS:
            assert len(result.phases[kernel]) == 2, kernel

    def test_phase_break_near_half(self, result):
        for kernel in fig11_12.KERNELS:
            cut = result.phases[kernel][0].end
            assert 25 <= cut <= 35

    def test_backend_dominates_phase1_then_recovers(self, result):
        for kernel in fig11_12.KERNELS:
            be = result.phase_means(kernel, Node.BACKEND)
            ret = result.phase_means(kernel, Node.RETIRE)
            assert be[0] > be[1]
            assert ret[1] > ret[0]

    def test_frontend_rises_phase2(self, result):
        for kernel in fig11_12.KERNELS:
            fe = result.phase_means(kernel, Node.FRONTEND)
            assert fe[1] > fe[0]

    def test_srad1_improves_more(self, result):
        gain1 = (result.phase_means("srad_cuda_1", Node.RETIRE)[1]
                 - result.phase_means("srad_cuda_1", Node.RETIRE)[0])
        gain2 = (result.phase_means("srad_cuda_2", Node.RETIRE)[1]
                 - result.phase_means("srad_cuda_2", Node.RETIRE)[0])
        assert gain1 > gain2


class TestFig13Shape:
    @pytest.fixture(scope="class")
    def result(self):
        # one small suite keeps this fast; overhead is per-application
        mini = Suite(name="mini",
                     applications=tuple(rodinia().applications[:4]))
        return fig13.run(suites=(mini,))

    def test_eight_passes(self, result):
        assert result.passes == fig13.PAPER_PASSES

    def test_overhead_near_13x(self, result):
        assert 9.0 < result.mean < 17.0

    def test_every_app_overhead_reasonable(self, result):
        for record in result.records:
            assert 5.0 < record.overhead < 25.0

    def test_render(self, result):
        text = fig13.render(result)
        assert "mean overhead" in text


class TestRenderers:
    """Figure renderers must produce the rows the paper's figures show
    (reusing the already-profiled module fixtures)."""

    def test_fig5_render(self, rodinia_turing, rodinia_pascal):
        from repro.experiments.fig05 import Fig5Result, render

        text = render(Fig5Result(pascal=rodinia_pascal,
                                 turing=rodinia_turing))
        assert "Pascal" in text and "Turing" in text
        assert "srad_v2" in text and "average:" in text

    def test_fig6_render(self, rodinia_turing):
        from repro.experiments.fig06 import Fig6Result, render

        text = render(Fig6Result(run=rodinia_turing))
        assert "normalized" in text and "Memory" in text

    def test_fig7_render(self, rodinia_turing):
        from repro.experiments.fig07 import Fig7Result, render

        text = render(Fig7Result(run=rodinia_turing))
        assert "L1-dependency" in text and "constant" in text

    def test_fig8_render(self, altis_turing):
        from repro.experiments.fig08 import Fig8Result, render

        text = render(Fig8Result(run=altis_turing))
        assert "mandelbrot" in text

    def test_fig9_render(self, altis_turing):
        from repro.experiments.fig09 import Fig9Result, render

        text = render(Fig9Result(run=altis_turing))
        assert "Memory" in text

    def test_fig10_render(self, altis_turing):
        from repro.experiments.fig10 import Fig10Result, render

        text = render(Fig10Result(run=altis_turing))
        assert "constant share within ML apps" in text

    def test_fig11_12_render(self):
        from repro.experiments import fig11_12

        result = fig11_12.run(invocations=24)
        text = fig11_12.render(result, stride=8)
        assert "Figure 11" in text and "Figure 12" in text
        assert "detected phases" in text
        assert "|" in text  # timeseries chart present


class TestFig3:
    def test_availability_derived_from_tables(self):
        from repro.core import Node
        from repro.experiments import fig03

        res = fig03.run()
        # available everywhere (both generations have feeding metrics)
        for node in (Node.RETIRE, Node.DIVERGENCE, Node.FRONTEND,
                     Node.BACKEND, Node.L3_INSTRUCTION_FETCH,
                     Node.L3_SYNC_BARRIER, Node.L3_MATH_PIPE,
                     Node.L3_L1_DEPENDENCY, Node.L3_CONSTANT_MEMORY):
            assert res.available_everywhere(node), node
        # ncu-only leaves (the paper's shaded nodes)
        for node in (Node.L3_MEMBAR, Node.L3_BRANCH_RESOLVING,
                     Node.L3_SLEEPING, Node.L3_DISPATCH,
                     Node.L3_MIO_THROTTLE, Node.L3_LG_THROTTLE,
                     Node.L3_SHORT_SCOREBOARD, Node.L3_DRAIN,
                     Node.L3_TEX_THROTTLE):
            assert res.unified_only(node), node

    def test_render_shows_shading(self):
        from repro.experiments import fig03

        text = fig03.render()
        assert "Peak IPC" in text
        assert "[CC >= 7.2 only]" in text
        assert "[legacy only]" in text
