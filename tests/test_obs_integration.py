"""End-to-end observability tests through the engine and the CLI.

Pins the acceptance properties of the observability layer:

* ``--trace`` produces a valid Chrome trace-event file whose span tree
  covers engine dispatch, per-cell simulation, cache traffic and (under
  fault injection) retry/quarantine episodes — across worker processes;
* ``--metrics-out`` exports a counters section that is bit-identical
  across ``-j1`` and ``-j4`` for the same inputs and seed, including
  the worker-spill merge path;
* with no observability flags nothing is installed and no files appear.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.isa import LaunchConfig
from repro.obs import active_obs, load_trace, obs_context
from repro.sim import SimConfig, engine_context

from tests.conftest import build_compute_kernel, build_stream_kernel

LAUNCH = LaunchConfig(blocks=12, threads_per_block=128)


def _batch_items(turing, n_dups: int = 2):
    config = SimConfig(seed=0)
    items = [
        (turing, build_stream_kernel(), LAUNCH, config),
        (turing, build_compute_kernel(), LAUNCH, config),
    ]
    items += [(turing, build_stream_kernel(), LAUNCH, config)] * n_dups
    return items


class TestEngineTracing:
    def test_span_tree_covers_engine_sim_cache(self, turing, tmp_path):
        trace = tmp_path / "run.trace.json"
        with obs_context(trace=trace), \
                engine_context(jobs=2, cache_dir=tmp_path / "cache"):
            from repro.sim.engine import current_engine

            current_engine().simulate_batch(_batch_items(turing))
        events = load_trace(trace)
        # valid Chrome trace-event objects throughout.
        for event in events:
            assert {"name", "ph", "pid"} <= set(event)
        names = {e["name"] for e in events}
        assert {"engine", "engine.batch", "engine.dispatch",
                "sim.cell", "cache.load", "cache.store"} <= names
        cats = {e.get("cat") for e in events if "cat" in e}
        assert {"engine", "sim", "cache"} <= cats
        # worker events landed in the same file (distinct pids).
        sim_pids = {e["pid"] for e in events if e["name"] == "sim.cell"}
        parent_pids = {e["pid"] for e in events if e["name"] == "engine"}
        assert sim_pids and parent_pids
        assert sim_pids != parent_pids
        # the parent's trace is a cleanly closed JSON array.
        assert json.loads(trace.read_text())[-1]["name"] == "trace.end"
        # dispatch span encloses nothing before the engine span opened.
        engine_span = next(e for e in events if e["name"] == "engine")
        dispatch = next(e for e in events if e["name"] == "engine.dispatch")
        assert engine_span["ts"] <= dispatch["ts"]

    def test_cache_hit_outcome_recorded(self, turing, tmp_path):
        items = _batch_items(turing, n_dups=0)
        with obs_context(enabled=True) as warm:
            with engine_context(cache_dir=tmp_path / "cache"):
                from repro.sim.engine import current_engine

                current_engine().simulate_batch(items)
        assert warm.metrics.counter("cache.misses") == 2
        with obs_context(enabled=True) as obs:
            with engine_context(cache_dir=tmp_path / "cache"):
                from repro.sim.engine import current_engine

                current_engine().simulate_batch(items)
        assert obs.metrics.counter("cache.hits") == 2
        assert obs.metrics.counter("cache.misses") == 0
        outcomes = [
            e["args"]["outcome"] for e in obs.tracer.events
            if e["name"] == "cache.load"
        ]
        assert outcomes == ["hit", "hit"]

    def test_retry_and_quarantine_events(self, turing):
        # rate 1.0: every attempt fails — each distinct cell records
        # (attempts - 1) retry instants, then a quarantine instant, and
        # simulate_batch degrades its slot to None instead of raising.
        with obs_context(enabled=True) as obs:
            with engine_context(jobs=1, faults="engine.transient,seed=3",
                                retries=2):
                from repro.sim.engine import current_engine

                out = current_engine().simulate_batch(
                    _batch_items(turing, 0)
                )
        assert out == [None, None]
        retries = [e for e in obs.tracer.events if e["name"] == "retry"]
        assert len(retries) == 2  # one failed first attempt per cell
        assert all(e["cat"] == "resilience" for e in retries)
        assert {e["args"]["error"] for e in retries} == {
            "TransientFaultError"
        }
        assert obs.metrics.counter(
            "resilience.retries.TransientFaultError"
        ) == 2
        quarantines = [
            e for e in obs.tracer.events if e["name"] == "quarantine"
        ]
        assert len(quarantines) == 2
        assert obs.metrics.counter("resilience.quarantined_cells") == 2

    def test_quarantine_raise_path_records_instant(self, turing):
        from repro.errors import QuarantineError
        from repro.sim import DEFAULT_CONFIG

        prog = build_stream_kernel()
        with obs_context(enabled=True) as obs:
            with engine_context(jobs=1, faults="engine.transient,seed=3",
                                retries=1):
                from repro.sim.engine import current_engine

                with pytest.raises(QuarantineError):
                    current_engine().simulate(
                        turing, prog, LAUNCH, DEFAULT_CONFIG
                    )
        assert obs.metrics.counter("resilience.quarantined_cells") == 1
        assert any(
            e["name"] == "quarantine" for e in obs.tracer.events
        )


class TestMetricsDeterminism:
    def _run(self, turing, tmp_path, jobs, tag):
        out = tmp_path / f"metrics-{tag}.json"
        with obs_context(metrics_out=out):
            with engine_context(jobs=jobs,
                                cache_dir=tmp_path / f"cache-{tag}"):
                from repro.sim.engine import current_engine

                current_engine().simulate_batch(_batch_items(turing))
        return json.loads(out.read_text())

    def test_counters_bit_identical_across_jobs(self, turing, tmp_path):
        serial = self._run(turing, tmp_path, 1, "j1")
        parallel = self._run(turing, tmp_path, 4, "j4")
        # the deterministic section: schema + counters, bit-identical.
        assert serial["counters"] == parallel["counters"]
        assert serial["schema"] == parallel["schema"]
        # worker-side counts really crossed the process boundary.
        assert parallel["counters"]["sim.cells_executed"] == 2
        # pool shape is visible — but only in the gauges section.
        assert serial["gauges"]["engine.jobs"] == 1
        assert parallel["gauges"]["engine.jobs"] == 4

    def test_repeat_run_bit_identical(self, turing, tmp_path):
        one = self._run(turing, tmp_path, 2, "a")
        two = self._run(turing, tmp_path, 2, "b")
        assert one["counters"] == two["counters"]


class TestCliObservability:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        trace = tmp_path / "cli.trace.json"
        metrics = tmp_path / "cli-metrics.json"
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "1",
                   "--trace", str(trace), "--metrics-out", str(metrics)])
        assert rc == 0
        events = load_trace(trace)
        names = {e["name"] for e in events}
        assert {"engine", "sim.cell", "profiler.app"} <= names
        doc = json.loads(metrics.read_text())
        assert doc["schema"] == "repro/obs-metrics@1"
        assert doc["counters"]["profiler.apps"] == 1
        assert doc["counters"]["sim.cells_executed"] >= 1

    def test_no_flags_no_files(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
                   "--app", "nn", "--level", "1"])
        assert rc == 0
        assert list(tmp_path.iterdir()) == []

    def test_profile_self_reports_overheads(self, capsys):
        rc = main(["profile-self", "--suite", "rodinia", "--level", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "self-profile: wall" in out
        assert "self-overhead:" in out
        assert "modeled replay overhead:" in out

    def test_obs_not_installed_after_cli_run(self, capsys):
        from repro.obs import DISABLED_OBS

        main(["analyze", "--gpu", "rtx4000", "--suite", "rodinia",
              "--app", "nn", "--level", "1"])
        assert active_obs() is DISABLED_OBS


class TestGenerateAllObservability:
    def test_runhealth_contains_self_profile(self, tmp_path, capsys):
        from repro.experiments.generate_all import main as gen_main

        out = tmp_path / "bundle"
        rc = gen_main(["--output", str(out), "--srad-invocations", "4"])
        assert rc == 0
        health = (out / "RUNHEALTH.txt").read_text()
        assert "self-profile: wall" in health
        assert "self-overhead:" in health
