"""Tests for behaviour profiles, the synthesizer, and the suite models."""

import pytest

from repro.errors import WorkloadError
from repro.isa import Opcode
from repro.workloads import (
    Application,
    KernelBehavior,
    KernelInvocation,
    Suite,
    altis,
    binary_partition_behavior,
    binary_partition_cg,
    binary_partition_sweep,
    launch_for,
    materialize,
    rodinia,
    srad_application,
    synthesize,
)
from repro.workloads.cuda_samples import BINARY_PARTITION_TILES


class TestKernelBehavior:
    def test_defaults_valid(self):
        b = KernelBehavior(name="k")
        assert 0.0 <= b.int_fraction <= 1.0

    @pytest.mark.parametrize("kwargs", [
        dict(fp32_fraction=1.5),
        dict(fp32_fraction=0.7, fp64_fraction=0.4),
        dict(loads_per_iter=-1),
        dict(ilp=0),
        dict(iterations=0),
        dict(blocks=0),
        dict(threads_per_block=16),
        dict(branch_taken_fraction=2.0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            KernelBehavior(name="k", **kwargs)

    def test_scaled_copy(self):
        b = KernelBehavior(name="k", loads_per_iter=2)
        b2 = b.scaled(loads_per_iter=5)
        assert b2.loads_per_iter == 5
        assert b.loads_per_iter == 2  # original untouched

    def test_int_fraction_complement(self):
        b = KernelBehavior(name="k", fp32_fraction=0.5, fp64_fraction=0.1,
                           sfu_fraction=0.1)
        assert b.int_fraction == pytest.approx(0.3)


class TestSynthesizer:
    def test_instruction_mix_respected(self):
        b = KernelBehavior(name="k", fp32_fraction=0.5, sfu_fraction=0.25,
                           loads_per_iter=1, alu_per_mem=16, ilp=4)
        prog = synthesize(b)
        alu = [i for i in prog.body
               if i.opcode in (Opcode.FFMA, Opcode.MUFU, Opcode.IMAD,
                               Opcode.DFMA)]
        fp32 = sum(1 for i in alu if i.opcode is Opcode.FFMA)
        sfu = sum(1 for i in alu if i.opcode is Opcode.MUFU)
        # within 15% of targets (setup IADDs excluded)
        assert abs(fp32 / len(alu) - 0.5) < 0.15
        assert abs(sfu / len(alu) - 0.25) < 0.15

    def test_memory_op_counts(self):
        b = KernelBehavior(name="k", loads_per_iter=3, stores_per_iter=2,
                           alu_per_mem=2)
        prog = synthesize(b)
        loads = sum(1 for i in prog.body if i.opcode is Opcode.LDG)
        stores = sum(1 for i in prog.body if i.opcode is Opcode.STG)
        assert loads == 3
        assert stores == 2

    def test_constant_loads_emitted(self):
        b = KernelBehavior(name="k", loads_per_iter=1,
                           constant_loads_per_iter=3)
        prog = synthesize(b)
        assert sum(1 for i in prog.body if i.opcode is Opcode.LDC) == 3

    def test_shared_fraction_materializes_lds(self):
        b = KernelBehavior(name="k", loads_per_iter=4, shared_fraction=0.5)
        prog = synthesize(b)
        lds = sum(1 for i in prog.body if i.opcode is Opcode.LDS)
        ldg = sum(1 for i in prog.body if i.opcode is Opcode.LDG)
        assert lds == 2 and ldg == 2

    def test_barrier_emitted(self):
        prog = synthesize(KernelBehavior(name="k", barrier_per_iter=True))
        assert prog.body[-1].opcode is Opcode.BAR

    def test_branches_emitted_with_regions(self):
        b = KernelBehavior(name="k", loads_per_iter=2, branch_every=1,
                           branch_if_length=3, branch_else_length=2,
                           branch_taken_fraction=0.5)
        prog = synthesize(b)
        branches = [i for i in prog.body if i.opcode is Opcode.BRA]
        assert len(branches) == 2
        assert branches[0].branch.if_length == 3
        assert branches[0].branch.else_length == 2

    def test_deterministic(self):
        b = KernelBehavior(name="k", loads_per_iter=2, alu_per_mem=5)
        assert synthesize(b).body == synthesize(b).body

    def test_launch_for(self):
        b = KernelBehavior(name="k", blocks=64, threads_per_block=128)
        launch = launch_for(b)
        assert launch.blocks == 64
        assert launch.warps_per_block == 4

    def test_materialize_pair(self):
        prog, launch = materialize(KernelBehavior(name="k"))
        assert prog.name == "k"
        assert launch.blocks >= 1

    def test_static_footprint_propagates(self):
        b = KernelBehavior(name="k", static_instructions=1234)
        assert synthesize(b).footprint_instructions == 1234


class TestSuites:
    def test_rodinia_app_roster(self):
        suite = rodinia()
        names = suite.names
        # the paper's figures include these Rodinia 3.1 applications
        for app in ("backprop", "bfs", "b+tree", "cfd", "heartwall",
                    "hotspot", "hotspot3D", "kmeans", "lavaMD", "lud",
                    "myocyte", "nn", "nw", "particlefilter", "pathfinder",
                    "srad_v1", "srad_v2", "streamcluster"):
            assert app in names
        assert len(suite) >= 20

    def test_altis_app_roster(self):
        names = altis().names
        for app in ("bfs", "cfd", "gemm", "gups", "kmeans", "mandelbrot",
                    "maxflops", "nw", "raytracing", "sort", "srad",
                    "where"):
            assert app in names

    def test_suite_get(self):
        suite = rodinia()
        assert suite.get("srad_v2").name == "srad_v2"
        with pytest.raises(WorkloadError):
            suite.get("doom")

    def test_applications_have_kernels(self):
        for suite in (rodinia(), altis()):
            for app in suite:
                assert len(app.invocations) >= 1
                for inv in app:
                    assert inv.program.dynamic_length > 1

    def test_constant_pressure_apps(self):
        """myocyte and nn must actually read constant memory (Fig. 7)."""
        suite = rodinia()
        for name in ("myocyte", "nn"):
            app = suite.get(name)
            has_ldc = any(
                i.opcode is Opcode.LDC
                for inv in app for i in inv.program.body
            )
            assert has_ldc, name

    def test_ml_apps_constant_pressure(self):
        """Altis ML apps carry heavy constant traffic (Fig. 10)."""
        suite = altis()
        for name in ("gemm", "kmeans", "raytracing"):
            app = suite.get(name)
            ldc = sum(
                1 for inv in app for i in inv.program.body
                if i.opcode is Opcode.LDC
            )
            assert ldc >= 4, name

    def test_kernel_names_deduplicated(self):
        app = rodinia().get("srad_v2")
        assert app.kernel_names == ["srad_cuda_1", "srad_cuda_2"]
        assert len(app.invocations_of("srad_cuda_1")) == 2

    def test_empty_application_rejected(self):
        with pytest.raises(WorkloadError):
            Application(name="x", suite="s", invocations=())


class TestSradApplication:
    def test_invocation_count(self):
        app = srad_application(10)
        assert len(app.invocations) == 20  # two kernels
        assert set(app.kernel_names) == {"srad_cuda_1", "srad_cuda_2"}

    def test_phase_changes_program(self):
        app = srad_application(4, phase_break=2)
        first = app.invocations_of("srad_cuda_1")
        assert first[0].program is not first[2].program
        ws_early = sum(p.working_set_bytes
                       for p in first[0].program.patterns)
        ws_late = sum(p.working_set_bytes
                      for p in first[2].program.patterns)
        assert ws_late < ws_early

    def test_programs_reused_within_phase(self):
        """The jitter has period 3, so invocation 0 and 3 share one
        program object (simulation cache friendliness)."""
        app = srad_application(6, phase_break=100)
        invs = app.invocations_of("srad_cuda_1")
        assert invs[0].program is invs[3].program


class TestBinaryPartition:
    def test_tile_sweep_values(self):
        assert BINARY_PARTITION_TILES == (32, 16, 8, 4)
        apps = binary_partition_sweep()
        assert [a.name for a in apps] == [
            f"binaryPartitionCG_tile{t}" for t in (32, 16, 8, 4)
        ]

    def test_smaller_tiles_more_traffic(self):
        b32 = binary_partition_behavior(32)
        b4 = binary_partition_behavior(4)
        assert b4.loads_per_iter > b32.loads_per_iter
        assert b4.branch_if_length < b32.branch_if_length

    def test_divergent_branch_present(self):
        app = binary_partition_cg(16)
        body = app.invocations[0].program.body
        branches = [i for i in body if i.opcode is Opcode.BRA]
        assert branches
        assert all(0.0 < i.branch.taken_fraction < 1.0 for i in branches)

    def test_invalid_tile_rejected(self):
        with pytest.raises(WorkloadError):
            binary_partition_behavior(0)
        with pytest.raises(WorkloadError):
            binary_partition_behavior(64)


class TestKmeansConvergence:
    def test_invocation_count_and_name(self):
        from repro.workloads import kmeans_convergence_application

        app = kmeans_convergence_application(12)
        assert len(app.invocations) == 12
        assert app.kernel_names == ["kmeansPoint"]

    def test_divergence_decays(self, turing):
        from repro.core import (
            Node, TopDownAnalyzer, dynamic_analysis,
            metric_names_for_level,
        )
        from repro.profilers import tool_for
        from repro.workloads import kmeans_convergence_application

        tool = tool_for(turing)
        app = kmeans_convergence_application(24)
        profile = tool.profile_application(
            app, metric_names_for_level("7.5", 3)
        )
        series = dynamic_analysis(
            TopDownAnalyzer(turing), profile, "kmeansPoint"
        )
        div = series.series(Node.DIVERGENCE)
        # gradual monotone-ish decay: last clearly below first
        assert div[-1] < 0.5 * div[0]
        first_half = sum(div[:12]) / 12
        second_half = sum(div[12:]) / 12
        assert second_half < first_half
