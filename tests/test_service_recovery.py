"""Crash recovery: journal replay, torn tails, re-queueing and
byte-identical recomputation after an unclean death.

The subprocess ``kill -9`` variant (real signals, real sockets) lives
in ``tools/service_smoke.py`` and runs as its own CI job; these tests
pin the same invariants in-process where they are cheap and debuggable.
"""

from __future__ import annotations

import json

from repro.service import ServiceConfig, ServiceManager
from repro.service.journal import (
    SERVICE_JOURNAL_SCHEMA,
    ServiceJournal,
)

NN_JOB = {
    "kind": "app",
    "suite": "rodinia",
    "app": "nn",
    "gpu": "NVIDIA Quadro RTX 4000",
    "level": 1,
    "seed": 0,
}
BACKPROP_JOB = dict(NN_JOB, app="backprop")


def _manager(tmp_path, **overrides) -> ServiceManager:
    defaults = dict(
        state_dir=tmp_path / "state",
        workers=1,
        queue_cap=16,
        tenant_quota=16,
        hang_timeout_s=None,
    )
    defaults.update(overrides)
    return ServiceManager(ServiceConfig(**defaults))


SPEC_DOC = {"kind": "app", "gpu": "g", "suite": "s", "app": "a",
            "level": 1, "seed": 0}


class TestJournalReplay:
    def test_submit_without_done_is_incomplete(self, tmp_path):
        journal = ServiceJournal(tmp_path / "j.jsonl")
        journal.record_submit("j1", "alice", SPEC_DOC)
        journal.record_done("j1", "done")
        journal.record_submit("j2", "bob", SPEC_DOC | {"seed": 1})
        journal.close()
        replayed = ServiceJournal(tmp_path / "j.jsonl")
        assert replayed.jobs["j1"].outcome == "done"
        assert replayed.jobs["j2"].outcome is None  # must re-run
        assert replayed.jobs["j2"].tenant == "bob"

    def test_attempts_survive_restart(self, tmp_path):
        """A crash-looping job cannot reset its poison budget by
        taking the daemon down with it."""
        journal = ServiceJournal(tmp_path / "j.jsonl")
        journal.record_submit("j1", "alice", SPEC_DOC)
        journal.record_attempt("j1", 1, "WorkerCrashError: injected")
        journal.record_attempt("j1", 2, "WorkerCrashError: injected")
        journal.close()
        replayed = ServiceJournal(tmp_path / "j.jsonl")
        assert replayed.jobs["j1"].attempts == 2
        assert replayed.jobs["j1"].outcome is None

    def test_torn_tail_is_dropped(self, tmp_path):
        journal = ServiceJournal(tmp_path / "j.jsonl")
        journal.record_submit("j1", "alice", SPEC_DOC)
        journal.record_done("j1", "done")
        journal.close()
        with open(tmp_path / "j.jsonl", "a") as fh:
            fh.write('{"event": "submit", "job": "j2", "ten')  # killed
        replayed = ServiceJournal(tmp_path / "j.jsonl")
        assert "j2" not in replayed.jobs
        assert replayed.jobs["j1"].outcome == "done"

    def test_rewrite_on_open_removes_torn_tail(self, tmp_path):
        journal = ServiceJournal(tmp_path / "j.jsonl")
        journal.record_submit("j1", "alice", SPEC_DOC)
        journal.close()
        with open(tmp_path / "j.jsonl", "a") as fh:
            fh.write('{"torn')
        resumed = ServiceJournal(tmp_path / "j.jsonl")
        resumed.record_submit("j2", "bob", SPEC_DOC | {"seed": 1})
        resumed.close()
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        for line in lines:  # every surviving line parses
            json.loads(line)
        assert json.loads(lines[0])["schema"] == SERVICE_JOURNAL_SCHEMA

    def test_wrong_schema_journal_is_ignored(self, tmp_path):
        (tmp_path / "j.jsonl").write_text(
            '{"schema": "someone/else@9"}\n'
            '{"event": "submit", "job": "j1", "tenant": "x", '
            '"spec": {}}\n'
        )
        replayed = ServiceJournal(tmp_path / "j.jsonl")
        assert replayed.jobs == {}


class TestManagerRecovery:
    def test_unfinished_jobs_are_requeued_and_recomputed(self, tmp_path):
        # "crash": submit jobs but never start workers, then abandon
        # the manager.  The journal has submits without dones.
        crashed = _manager(tmp_path)
        a, _ = crashed.submit(NN_JOB)
        b, _ = crashed.submit(BACKPROP_JOB)
        crashed.journal.close()
        restarted = _manager(tmp_path)
        assert restarted.recovered_incomplete == 2
        assert restarted.recovered_complete == 0
        # recovery preserves submission order.
        assert list(restarted._queue) == [a.job_id, b.job_id]
        restarted.start()
        assert restarted.wait_idle(timeout_s=60)
        assert restarted.jobs[a.job_id].state == "done"
        assert restarted.jobs[b.job_id].state == "done"
        assert restarted.drain(timeout_s=10)

    def test_completed_jobs_served_without_recompute(self, tmp_path):
        first = _manager(tmp_path)
        first.start()
        record, _ = first.submit(NN_JOB)
        assert first.wait_idle(timeout_s=60)
        first.drain(timeout_s=10)
        original = first.result_doc(record.job_id)
        restarted = _manager(tmp_path)
        assert restarted.recovered_complete == 1
        recovered = restarted.jobs[record.job_id]
        assert recovered.state == "done"
        assert recovered.recovered
        assert restarted.result_doc(record.job_id) == original
        # resubmitting the same spec dedupes onto the recovered job.
        again, created = restarted.submit(NN_JOB)
        assert not created and again is recovered

    def test_recovered_result_is_byte_identical(self, tmp_path):
        interrupted = _manager(tmp_path / "killed")
        record, _ = interrupted.submit(NN_JOB)
        interrupted.journal.close()  # died before any worker ran
        restarted = _manager(tmp_path / "killed")
        restarted.start()
        assert restarted.wait_idle(timeout_s=60)
        restarted.drain(timeout_s=10)
        recovered_bytes = (
            restarted._result_path(record.job_id).read_bytes()
        )
        fresh = _manager(tmp_path / "fresh")
        fresh.start()
        fresh.submit(NN_JOB)
        assert fresh.wait_idle(timeout_s=60)
        fresh.drain(timeout_s=10)
        fresh_bytes = fresh._result_path(record.job_id).read_bytes()
        assert recovered_bytes == fresh_bytes

    def test_done_with_missing_result_file_reruns(self, tmp_path):
        first = _manager(tmp_path)
        first.start()
        record, _ = first.submit(NN_JOB)
        assert first.wait_idle(timeout_s=60)
        first.drain(timeout_s=10)
        first._result_path(record.job_id).unlink()
        restarted = _manager(tmp_path)
        assert restarted.recovered_incomplete == 1
        assert restarted.jobs[record.job_id].state == "queued"
        restarted.start()
        assert restarted.wait_idle(timeout_s=60)
        assert restarted.jobs[record.job_id].state == "done"
        assert restarted.result_doc(record.job_id) is not None
        restarted.drain(timeout_s=10)

    def test_terminal_failures_survive_restart(self, tmp_path):
        from repro.resilience.faults import install_faults

        with install_faults("service.worker"):
            first = _manager(tmp_path, retries=2)
            first.start()
            record, _ = first.submit(NN_JOB)
            assert first.wait_idle(timeout_s=60)
            assert record.state == "quarantined"
            first.drain(timeout_s=10)
        restarted = _manager(tmp_path)
        recovered = restarted.jobs[record.job_id]
        assert recovered.state == "quarantined"
        assert recovered.error_kind == "WorkerCrashError"
        # a quarantined job is terminal: it is not re-queued.
        assert restarted.recovered_incomplete == 0
