"""Unit tests for the simulator's building blocks: rng, caches,
address generation, pipes and drain queues."""

import pytest

from repro.arch import CacheSpec, FunctionalUnitSpec, SMSpec
from repro.isa import AccessKind, AccessPattern
from repro.sim import DrainQueue, PipeSet, SectorCache
from repro.sim.address_gen import SECTOR_BYTES, AddressGenerator
from repro.sim.caches import MemoryHierarchy
from repro.sim.rng import hash_u64, mix64, randint, uniform


class TestRng:
    def test_mix64_is_deterministic(self):
        assert mix64(42) == mix64(42)

    def test_mix64_avalanche(self):
        assert mix64(1) != mix64(2)

    def test_hash_order_sensitive(self):
        assert hash_u64(1, 2) != hash_u64(2, 1)

    def test_uniform_range(self):
        for i in range(200):
            assert 0.0 <= uniform(7, i) < 1.0

    def test_uniform_roughly_uniform(self):
        n = 2000
        mean = sum(uniform(3, i) for i in range(n)) / n
        assert 0.45 < mean < 0.55

    def test_randint_range_and_determinism(self):
        vals = [randint(10, 5, i) for i in range(100)]
        assert all(0 <= v < 10 for v in vals)
        assert vals == [randint(10, 5, i) for i in range(100)]

    def test_randint_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            randint(0, 1)


class TestSectorCache:
    def _cache(self, size=4096, ways=4):
        return SectorCache(CacheSpec("t", size_bytes=size, ways=ways))

    def test_first_access_misses_second_hits(self):
        c = self._cache()
        assert c.probe(100) is False
        assert c.probe(100) is True
        assert c.accesses == 2 and c.hits == 1

    def test_sectors_share_lines(self):
        """Sectors of the same 128B line hit after one fill."""
        c = self._cache()
        assert c.probe(0) is False
        assert c.probe(1) is True  # same line (4 sectors/line)
        assert c.probe(3) is True
        assert c.probe(4) is False  # next line

    def test_lru_eviction(self):
        c = self._cache(size=4096, ways=2)  # 8 sets at 128B lines x2 ways
        sets = c.spec.num_sets
        line_sectors = c.spec.sectors_per_line
        # three distinct lines mapping to set 0
        lines = [0, sets, 2 * sets]
        sids = [ln * line_sectors for ln in lines]
        c.probe(sids[0])
        c.probe(sids[1])
        c.probe(sids[2])          # evicts line 0 (LRU)
        assert c.probe(sids[0]) is False
        assert c.probe(sids[2]) is True

    def test_flush_empties(self):
        c = self._cache()
        c.probe(1)
        c.flush()
        assert c.probe(1) is False

    def test_capacity_miss_on_big_working_set(self):
        c = self._cache(size=4096)
        sectors = 4 * (4096 // 32)  # 4x capacity
        for s in range(sectors):
            c.probe(s * 4)  # one sector per line
        c.reset_stats()
        for s in range(sectors):
            c.probe(s * 4)
        assert c.hit_rate == 0.0  # streaming working set 4x cache: all miss

    def test_hit_rate_resident_working_set(self):
        c = self._cache(size=4096)
        for _ in range(3):
            for s in range(16):
                c.probe(s)
        assert c.hit_rate > 0.5


class TestMemoryHierarchy:
    def _hier(self):
        return MemoryHierarchy(
            l1=SectorCache(CacheSpec("l1", size_bytes=4096, hit_latency=20,
                                     miss_latency=100)),
            l2=SectorCache(CacheSpec("l2", size_bytes=64 * 1024, ways=16,
                                     hit_latency=100, miss_latency=300)),
            constant=SectorCache(CacheSpec("c", size_bytes=2048,
                                           line_bytes=64, hit_latency=4,
                                           miss_latency=120)),
            dram_latency=400,
        )

    def test_l1_hit_is_fast(self):
        h = self._hier()
        h.access_global([5])
        assert h.access_global([5]) == 20

    def test_miss_goes_to_dram_first_time(self):
        h = self._hier()
        assert h.access_global([123]) == 400
        assert h.dram_accesses == 1

    def test_l2_hit_after_l1_eviction(self):
        h = self._hier()
        h.access_global([7])
        # blow out L1 only (4 KiB), stay inside L2 (64 KiB)
        for s in range(4 * 4096 // 32):
            h.access_global([1000 + s])
        latency = h.access_global([7])
        assert latency == 100  # L2 hit latency

    def test_constant_miss_flagged(self):
        h = self._hier()
        missed, lat = h.access_constant([9])
        assert missed and lat >= 120
        missed2, lat2 = h.access_constant([9])
        assert not missed2 and lat2 == 4

    def test_worst_sector_dominates(self):
        h = self._hier()
        h.access_global([1])          # fills sector 1
        latency = h.access_global([1, 99])  # 99 misses to DRAM
        assert latency == 400


class TestAddressGenerator:
    def _gen(self, kind, ws=1 << 16, stride=1, elem=4):
        p = AccessPattern("p", kind, working_set_bytes=ws,
                          element_bytes=elem, stride_elements=stride,
                          base_address=1 << 20)
        return AddressGenerator(p, seed=3)

    def test_stream_coalesces_to_four_sectors(self):
        g = self._gen(AccessKind.STREAM)
        sectors = g.sectors(0, 0, 0, 32)
        assert len(sectors) == 4  # 32 threads x 4B = 128B = 4 sectors

    def test_strided_spreads_sectors(self):
        g = self._gen(AccessKind.STRIDED, stride=16)
        sectors = g.sectors(0, 0, 0, 32)
        assert len(sectors) > 16

    def test_fully_strided_one_sector_per_lane(self):
        g = self._gen(AccessKind.STRIDED, stride=32, ws=1 << 22)
        assert len(g.sectors(0, 0, 0, 32)) == 32

    def test_uniform_single_sector(self):
        g = self._gen(AccessKind.UNIFORM)
        assert len(g.sectors(0, 0, 0, 32)) == 1

    def test_random_bounded_by_active_threads(self):
        g = self._gen(AccessKind.RANDOM)
        assert len(g.sectors(0, 0, 0, 8)) <= 8

    def test_deterministic(self):
        g1 = self._gen(AccessKind.RANDOM)
        g2 = self._gen(AccessKind.RANDOM)
        assert g1.sectors(1, 2, 3, 32) == g2.sectors(1, 2, 3, 32)

    def test_sectors_stay_in_working_set(self):
        g = self._gen(AccessKind.RANDOM, ws=4096)
        base = (1 << 20) // SECTOR_BYTES
        for it in range(20):
            for sid in g.sectors(0, it, 0, 32):
                assert base <= sid < base + 4096 // SECTOR_BYTES

    def test_stream_advances_with_iteration(self):
        g = self._gen(AccessKind.STREAM, ws=1 << 20)
        assert g.sectors(0, 0, 0, 32) != g.sectors(0, 1, 0, 32)

    def test_partial_mask_fewer_sectors(self):
        g = self._gen(AccessKind.STREAM)
        full = g.sectors(0, 0, 0, 32)
        partial = g.sectors(0, 0, 0, 8)
        assert len(partial) <= len(full)


class TestPipeSet:
    def _pipes(self):
        sm = SMSpec(
            subpartitions=1, warps_per_subpartition=8,
            dispatch_units_per_subpartition=1,
            functional_units=(
                FunctionalUnitSpec("fp32", issue_interval=2, latency=6),
                FunctionalUnitSpec("fp64", issue_interval=32, latency=16),
            ),
        )
        return PipeSet(sm)

    def test_issue_occupies_pipe(self):
        p = self._pipes()
        assert p.available("fp32", 0)
        latency = p.issue("fp32", 0)
        assert latency == 6
        assert not p.available("fp32", 1)
        assert p.available("fp32", 2)

    def test_slow_pipe_long_occupancy(self):
        p = self._pipes()
        p.issue("fp64", 0)
        assert not p.available("fp64", 31)
        assert p.available("fp64", 32)

    def test_pipes_independent(self):
        p = self._pipes()
        p.issue("fp64", 0)
        assert p.available("fp32", 1)


class TestDrainQueue:
    def test_accepts_until_capacity(self):
        q = DrainQueue(capacity=2, drain_interval=10)
        q.push(0, 1)
        q.push(0, 1)
        assert q.full(0, 1)

    def test_drains_over_time(self):
        q = DrainQueue(capacity=2, drain_interval=10)
        q.push(0, 2)
        assert q.full(0, 1)
        assert not q.full(25, 1)

    def test_pipelined_delay(self):
        q = DrainQueue(capacity=8, drain_interval=1)
        assert q.push(0, 4) == 4
        # next burst queues behind the first
        assert q.push(0, 2) == 6

    def test_empty_queue_accepts_oversized_burst(self):
        q = DrainQueue(capacity=2)
        assert not q.full(0, 5)

    def test_next_drain(self):
        q = DrainQueue(capacity=4, drain_interval=3)
        q.push(0, 1)
        assert q.next_drain(0) == 3
        assert q.next_drain(10) == 11  # drained; fallback cycle+1

    def test_occupancy(self):
        q = DrainQueue(capacity=4, drain_interval=5)
        q.push(0, 3)
        assert q.occupancy(0) == 3
        assert q.occupancy(100) == 0

    def test_reset(self):
        q = DrainQueue(capacity=2, drain_interval=100)
        q.push(0, 2)
        q.reset()
        assert not q.full(0, 2)
