"""Tests for per-kernel attribution and profile validation."""

import pytest

from repro.arch import ComputeCapability
from repro.core import (
    DeviceModel,
    Node,
    TopDownAnalyzer,
    attribute_node,
    attribution_report,
)
from repro.pmu import ncu_stall_metric_name
from repro.profilers import (
    ApplicationProfile,
    KernelProfile,
    Severity,
    validate_profile,
)
from repro.sim import WarpState


def _device():
    return DeviceModel(
        name="T", compute_capability=ComputeCapability(7, 5),
        ipc_max=2.0, subpartitions=2,
    )


def _kernel(name, invocation, ipc, stall_pct, duration):
    return KernelProfile(name, invocation, {
        "smsp__inst_executed.avg.per_cycle_active": ipc,
        "smsp__thread_inst_executed_per_inst_executed.ratio": 32.0,
        "smsp__inst_issued.avg.per_cycle_active": ipc,
        ncu_stall_metric_name(WarpState.LONG_SCOREBOARD): stall_pct,
    }, duration_cycles=duration)


def _profile(kernels):
    return ApplicationProfile(
        application="app", device_name="T",
        compute_capability=ComputeCapability(7, 5),
        kernels=tuple(kernels),
    )


class TestAttribution:
    def test_heavier_kernel_dominates(self):
        profile = _profile([
            _kernel("hot", 0, ipc=0.1, stall_pct=60.0, duration=900),
            _kernel("cold", 0, ipc=0.9, stall_pct=60.0, duration=100),
        ])
        contributions = attribute_node(
            TopDownAnalyzer(_device()), profile, Node.MEMORY
        )
        assert contributions[0].kernel_name == "hot"
        assert contributions[0].node_share > 0.8
        assert contributions[0].time_share == pytest.approx(0.9)

    def test_shares_sum_to_one(self):
        profile = _profile([
            _kernel("a", 0, 0.2, 50.0, 300),
            _kernel("b", 0, 0.4, 30.0, 500),
            _kernel("c", 0, 0.1, 70.0, 200),
        ])
        contributions = attribute_node(
            TopDownAnalyzer(_device()), profile, Node.MEMORY
        )
        assert sum(c.node_share for c in contributions) == pytest.approx(1.0)
        assert sum(c.time_share for c in contributions) == pytest.approx(1.0)

    def test_invocations_grouped(self):
        profile = _profile([
            _kernel("k", 0, 0.2, 50.0, 100),
            _kernel("k", 1, 0.3, 50.0, 100),
        ])
        contributions = attribute_node(
            TopDownAnalyzer(_device()), profile, Node.MEMORY
        )
        assert len(contributions) == 1
        assert contributions[0].invocations == 2

    def test_report_renders(self):
        profile = _profile([_kernel("k", 0, 0.2, 50.0, 100)])
        contributions = attribute_node(
            TopDownAnalyzer(_device()), profile, Node.MEMORY
        )
        text = attribution_report(contributions, Node.MEMORY)
        assert "Memory" in text and "k" in text


class TestValidation:
    def test_clean_profile_ok(self):
        report = validate_profile(
            _profile([_kernel("k", 0, 0.2, 50.0, 100)])
        )
        assert report.ok
        assert not report.errors

    def test_missing_core_metric_is_error(self):
        broken = KernelProfile("k", 0, {
            "smsp__thread_inst_executed_per_inst_executed.ratio": 32.0,
        })
        report = validate_profile(_profile([broken]))
        assert not report.ok
        assert any("IPC_REPORTED" in str(f) for f in report.errors)

    def test_missing_stalls_is_error(self):
        broken = KernelProfile("k", 0, {
            "smsp__inst_executed.avg.per_cycle_active": 0.2,
            "smsp__thread_inst_executed_per_inst_executed.ratio": 32.0,
            "smsp__inst_issued.avg.per_cycle_active": 0.2,
        })
        report = validate_profile(_profile([broken]))
        assert any("no stall metrics" in str(f) for f in report.errors)

    def test_partial_stalls_is_warning(self):
        report = validate_profile(
            _profile([_kernel("k", 0, 0.2, 50.0, 100)])
        )
        assert report.ok
        assert any("stall metric(s) missing" in str(f)
                   for f in report.warnings)

    def test_negative_value_is_error(self):
        k = _kernel("k", 0, 0.2, 50.0, 100)
        bad = KernelProfile("k", 0, {**k.metrics, "extra_metric": -1.0})
        report = validate_profile(_profile([bad]))
        assert any("negative" in str(f) for f in report.errors)

    def test_over_100_pct_is_warning(self):
        k = _kernel("k", 0, 0.2, 130.0, 100)
        report = validate_profile(_profile([k]))
        assert report.ok
        assert any("above 100%" in str(f) for f in report.warnings)

    def test_unknown_metric_is_info(self):
        k = _kernel("k", 0, 0.2, 50.0, 100)
        odd = KernelProfile("k", 0, {**k.metrics, "my_custom_thing": 5.0})
        report = validate_profile(_profile([odd]))
        assert report.ok
        assert any(f.severity is Severity.INFO for f in report.findings)

    def test_duplicate_invocations_is_error(self):
        report = validate_profile(_profile([
            _kernel("k", 0, 0.2, 50.0, 100),
            _kernel("k", 0, 0.3, 50.0, 100),
        ]))
        assert any("duplicate" in str(f) for f in report.errors)

    def test_inconsistent_overhead_warning(self):
        profile = ApplicationProfile(
            application="app", device_name="T",
            compute_capability=ComputeCapability(7, 5),
            kernels=(_kernel("k", 0, 0.2, 50.0, 100),),
            native_cycles=1000, profiled_cycles=500,
        )
        report = validate_profile(profile)
        assert any("overhead accounting" in str(f)
                   for f in report.warnings)

    def test_render(self):
        report = validate_profile(
            _profile([_kernel("k", 0, 0.2, 50.0, 100)])
        )
        assert "warning" in report.render()
