"""Resilient-execution tests: fault injection, retry/deadline policies,
quarantine-and-degrade, run health, and crash-consistent caching.

The fault injector is deterministic — every decision is a pure function
of ``(seed, site, key, attempt)`` — so these tests assert exact
schedules and bit-identical health summaries, not probabilities.
"""

from __future__ import annotations

import os

import pytest

from repro.core.analyzer import TopDownAnalyzer
from repro.core.report import level1_report
from repro.core.tables import metric_names_for_level
from repro.errors import (
    CellTimeoutError,
    QuarantineError,
    ResilienceError,
    TransientFaultError,
    UsageError,
    WorkerCrashError,
)
from repro.isa import LaunchConfig
from repro.profilers import tool_for
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    RunHealth,
    install_faults,
    is_retryable,
)
from repro.sim import (
    DEFAULT_CONFIG,
    GPUSimulator,
    SimResultCache,
    engine_context,
    sim_fingerprint,
)
from repro.sim.engine import (
    JOBS_ENV,
    ExecutionEngine,
    _timeout_own_fault,
    max_jobs,
    resolve_jobs,
)
from repro.workloads.base import Application, KernelInvocation, Suite

from tests.conftest import build_stream_kernel

LAUNCH = LaunchConfig(blocks=4, threads_per_block=128)


def _kernel(name="rk", *, iterations=2, working_set=1 << 16):
    return build_stream_kernel(
        name, iterations=iterations, working_set=working_set
    )


def _fast_retry(**kw):
    """A retry policy that never sleeps (tests stay fast)."""
    kw.setdefault("max_attempts", 3)
    kw.setdefault("base_delay_s", 0.0)
    return RetryPolicy(**kw)


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7,engine.worker@0.5,sim.hang,cache.entry@0.25,hang=0.2"
        )
        assert plan.seed == 7
        assert plan.hang_s == 0.2
        assert plan.rates == {
            "engine.worker": 0.5, "sim.hang": 1.0, "cache.entry": 0.25,
        }

    def test_bare_site_means_always(self):
        plan = FaultPlan.parse("engine.transient")
        assert plan.rates["engine.transient"] == 1.0
        assert not plan.empty

    def test_empty_spec_is_empty_plan(self):
        assert FaultPlan.parse("").empty
        assert FaultPlan.parse("seed=3").empty

    @pytest.mark.parametrize("spec", [
        "nonsense.site", "engine.transient@2.0", "engine.transient@x",
        "seed=abc", "hang=-1",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ResilienceError):
            FaultPlan.parse(spec)

    def test_spec_string_round_trips(self):
        plan = FaultPlan.parse("seed=9,engine.worker@0.5,hang=0.1,sim.hang")
        assert FaultPlan.parse(plan.spec_string()) == plan


class TestInjectorDeterminism:
    def test_decisions_pure_in_plan(self):
        plan = FaultPlan(seed=11, rates={"engine.transient": 0.5})
        a, b = FaultInjector(plan), FaultInjector(plan)
        keys = [f"cell-{i}" for i in range(64)]
        schedule = [a.decide("engine.transient", k, 0) for k in keys]
        assert schedule == [b.decide("engine.transient", k, 0) for k in keys]
        assert any(schedule) and not all(schedule)

    def test_seed_changes_schedule(self):
        keys = [f"cell-{i}" for i in range(64)]
        one = FaultInjector(FaultPlan(seed=1, rates={"sim.hang": 0.5}))
        two = FaultInjector(FaultPlan(seed=2, rates={"sim.hang": 0.5}))
        assert [one.decide("sim.hang", k) for k in keys] != \
            [two.decide("sim.hang", k) for k in keys]

    def test_attempts_reroll_the_decision(self):
        inj = FaultInjector(
            FaultPlan(seed=0, rates={"engine.transient": 0.5})
        )
        decisions = {
            inj.decide("engine.transient", "k", attempt)
            for attempt in range(32)
        }
        assert decisions == {True, False}

    def test_corrupt_metrics_deterministic_partial_drop(self):
        inj = FaultInjector(
            FaultPlan(seed=4, rates={"profiler.metrics": 1.0})
        )
        metrics = {f"metric_{i}": float(i) for i in range(20)}
        once = inj.corrupt_metrics("k#0", metrics)
        assert once == inj.corrupt_metrics("k#0", metrics)
        assert 0 < len(once) < len(metrics)
        assert all(metrics[name] == value for name, value in once.items())

    def test_corrupt_text_keeps_header_and_is_deterministic(self):
        inj = FaultInjector(FaultPlan(seed=2, rates={"profiler.csv": 1.0}))
        text = "header\n" + "\n".join(
            f"row-{i},value-{i}" for i in range(40)
        ) + "\n"
        once = inj.corrupt_text("export", text)
        assert once == inj.corrupt_text("export", text)
        assert once.splitlines()[0] == "header"
        assert once != text

    def test_null_sites_never_fire(self):
        inj = FaultInjector(FaultPlan())
        assert not inj.decide("engine.transient", "k")
        inj.fire_transient("k")
        inj.fire_worker_crash("k")
        inj.maybe_hang("k")


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.3, jitter=0.0)
        delays = [policy.backoff_s("k", a) for a in range(1, 6)]
        assert delays == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.3),
            pytest.approx(0.3), pytest.approx(0.3),
        ]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        d1 = policy.backoff_s("cell-a", 1)
        assert d1 == policy.backoff_s("cell-a", 1)
        assert 0.05 <= d1 <= 0.1
        assert d1 != policy.backoff_s("cell-b", 1)

    def test_retryable_classification(self):
        assert is_retryable(TransientFaultError("x"))
        assert is_retryable(WorkerCrashError("x"))
        assert is_retryable(CellTimeoutError("x"))
        assert not is_retryable(QuarantineError("c", "r"))
        assert not is_retryable(ResilienceError("x"))


# ---------------------------------------------------------------------------
# run health
# ---------------------------------------------------------------------------

class TestRunHealth:
    def test_counters_and_rendering(self):
        health = RunHealth()
        assert not health.degraded
        health.record_attempt()
        health.record_attempt()
        health.record_retry("TransientFaultError")
        health.record_quarantine("k@gpu", "gave up", attempts=3)
        text = health.render()
        assert "2 attempt(s)" in text
        assert "1 retr(y/ies)" in text
        assert "QUARANTINED k@gpu after 3 attempt(s): gave up" in text
        assert health.degraded

    def test_payload_is_stable(self):
        health = RunHealth()
        health.record_retry("B")
        health.record_retry("A")
        payload = health.payload()
        assert list(payload["retries"]) == ["A", "B"]
        assert payload["attempts"] == 0


# ---------------------------------------------------------------------------
# engine: serial retry / quarantine / deadline
# ---------------------------------------------------------------------------

class TestSerialResilience:
    def test_permanent_transient_fault_quarantines(self, turing):
        prog = _kernel("always_flaky")
        engine = ExecutionEngine(jobs=1, retry=_fast_retry())
        with install_faults("engine.transient"):
            with pytest.raises(QuarantineError):
                engine.simulate(turing, prog, LAUNCH, DEFAULT_CONFIG)
        assert engine.health.attempts == 3
        assert engine.health.retries == {"TransientFaultError": 2}
        assert engine.health.degraded
        # hitting the cell again raises immediately: no fresh attempts.
        with pytest.raises(QuarantineError):
            engine.simulate(turing, prog, LAUNCH, DEFAULT_CONFIG)
        assert engine.health.attempts == 3

    def test_in_process_worker_crash_quarantines(self, turing):
        prog = _kernel("crashy")
        engine = ExecutionEngine(jobs=1, retry=_fast_retry(max_attempts=2))
        with install_faults("engine.worker"):
            with pytest.raises(QuarantineError):
                engine.simulate(turing, prog, LAUNCH, DEFAULT_CONFIG)
        assert engine.health.retries == {"WorkerCrashError": 1}

    def test_fractional_fault_recovers_bit_identically(self, turing):
        prog = _kernel("flaky_once")
        key = sim_fingerprint(prog, LAUNCH, turing, DEFAULT_CONFIG)
        # find a seed whose schedule is fail-then-succeed for this cell.
        seed = next(
            s for s in range(500)
            if FaultInjector(
                FaultPlan(seed=s, rates={"engine.transient": 0.5})
            ).decide("engine.transient", key, 0)
            and not FaultInjector(
                FaultPlan(seed=s, rates={"engine.transient": 0.5})
            ).decide("engine.transient", key, 1)
        )
        baseline = GPUSimulator(turing).launch_uncached(prog, LAUNCH)
        engine = ExecutionEngine(jobs=1, retry=_fast_retry())
        with install_faults(f"seed={seed},engine.transient@0.5"):
            result = engine.simulate(turing, prog, LAUNCH, DEFAULT_CONFIG)
        assert engine.health.attempts == 2
        assert engine.health.retries == {"TransientFaultError": 1}
        assert not engine.health.degraded
        # the retried result is bit-identical to an unfaulted run.
        assert result.duration_cycles == baseline.duration_cycles
        assert result.counters.inst_issued == baseline.counters.inst_issued

    def test_deadline_overrun_detected_serially(self, turing):
        prog = _kernel("runaway")
        engine = ExecutionEngine(
            jobs=1,
            retry=_fast_retry(max_attempts=2, deadline_s=0.01),
        )
        with install_faults("sim.hang,hang=0.05"):
            with pytest.raises(QuarantineError, match="deadline"):
                engine.simulate(turing, prog, LAUNCH, DEFAULT_CONFIG)
        assert engine.health.retries == {"CellTimeoutError": 1}

    def test_simulate_batch_marks_quarantined_as_none(self, turing):
        flaky = _kernel("doomed")
        healthy = _kernel("healthy")
        flaky_key = sim_fingerprint(flaky, LAUNCH, turing, DEFAULT_CONFIG)
        healthy_key = sim_fingerprint(
            healthy, LAUNCH, turing, DEFAULT_CONFIG
        )
        # seed where the flaky cell always fails and the healthy never.
        def doomed_only(s):
            inj = FaultInjector(
                FaultPlan(seed=s, rates={"engine.transient": 0.5})
            )
            return (
                all(inj.decide("engine.transient", flaky_key, a)
                    for a in range(3))
                and not any(inj.decide("engine.transient", healthy_key, a)
                            for a in range(3))
            )
        seed = next(s for s in range(2000) if doomed_only(s))
        engine = ExecutionEngine(jobs=1, retry=_fast_retry())
        items = [
            (turing, flaky, LAUNCH, DEFAULT_CONFIG),
            (turing, healthy, LAUNCH, DEFAULT_CONFIG),
            (turing, flaky, LAUNCH, DEFAULT_CONFIG),  # duplicate cell
        ]
        with install_faults(f"seed={seed},engine.transient@0.5"):
            out = engine.simulate_batch(items)
        assert out[0] is None and out[2] is None
        assert out[1] is not None
        assert list(engine.health.quarantined) == [
            f"doomed@{turing.name}"
        ]
        # later simulate of the same content raises, not re-retries.
        with install_faults(f"seed={seed},engine.transient@0.5"):
            with pytest.raises(QuarantineError):
                engine.simulate(turing, flaky, LAUNCH, DEFAULT_CONFIG)

    def test_health_is_deterministic_across_runs(self, turing):
        items = [
            (turing, _kernel(f"cell{i}"), LAUNCH, DEFAULT_CONFIG)
            for i in range(6)
        ]
        payloads = []
        for _ in range(2):
            engine = ExecutionEngine(jobs=1, retry=_fast_retry())
            with install_faults("seed=5,engine.transient@0.5"):
                engine.simulate_batch(items)
            payloads.append(engine.health.payload())
        assert payloads[0] == payloads[1]


# ---------------------------------------------------------------------------
# engine: parallel dispatch under faults
# ---------------------------------------------------------------------------

class TestParallelResilience:
    @pytest.mark.parametrize("spec", [
        "seed=3,engine.transient@0.4",
        "seed=3,engine.worker@0.4",
    ])
    def test_parallel_faulted_batch_completes(self, turing, spec):
        kernels = [_kernel(f"pcell{i}") for i in range(4)]
        items = [(turing, k, LAUNCH, DEFAULT_CONFIG) for k in kernels]
        serial = {
            k.name: GPUSimulator(turing).launch_uncached(k, LAUNCH)
            for k in kernels
        }
        engine = ExecutionEngine(jobs=2, retry=_fast_retry())
        try:
            with install_faults(spec):
                out = engine.simulate_batch(items)
        finally:
            engine.close()
        for kernel, result in zip(kernels, out):
            if result is None:  # quarantined by the schedule: legal
                assert f"{kernel.name}@{turing.name}" in \
                    engine.health.quarantined
                continue
            assert result.duration_cycles == \
                serial[kernel.name].duration_cycles

    def test_parallel_health_matches_fault_schedule(self, turing):
        """RunHealth must depend on the fault schedule only — not on
        pool scheduling order — so two identical runs agree exactly."""
        kernels = [_kernel(f"dcell{i}") for i in range(4)]
        items = [(turing, k, LAUNCH, DEFAULT_CONFIG) for k in kernels]
        payloads = []
        for _ in range(2):
            engine = ExecutionEngine(jobs=2, retry=_fast_retry())
            try:
                with install_faults("seed=9,engine.worker@0.4"):
                    engine.simulate_batch(items)
            finally:
                engine.close()
            payloads.append(engine.health.payload())
        assert payloads[0] == payloads[1]


# ---------------------------------------------------------------------------
# jobs resolution hardening (satellite)
# ---------------------------------------------------------------------------

class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_override_applies_without_flag(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(2) == 2

    def test_non_integer_env_warns_and_falls_back(self, monkeypatch,
                                                  capsys):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert resolve_jobs(None) == 1
        assert "GPU_TOPDOWN_JOBS" in capsys.readouterr().err

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected_as_usage_error(self):
        # a clean usage failure, catchable both as ReproError (CLI
        # exit-code mapping) and as ValueError (API compatibility).
        with pytest.raises(UsageError):
            resolve_jobs(-2)
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_negative_env_warns_and_falls_back(self, monkeypatch,
                                               capsys):
        monkeypatch.setenv(JOBS_ENV, "-3")
        assert resolve_jobs(None) == 1
        assert "negative" in capsys.readouterr().err

    def test_absurd_values_clamped(self):
        assert resolve_jobs(10**6) == max_jobs()
        assert max_jobs() >= 64


# ---------------------------------------------------------------------------
# deadline-timeout fault attribution
# ---------------------------------------------------------------------------

class _StubFuture:
    def __init__(self, running=False, done=False):
        self._running, self._done = running, done

    def running(self):
        return self._running

    def done(self):
        return self._done


class TestTimeoutOwnFault:
    """Only cells that actually ran (or were scheduled to hang) are
    charged for a deadline overrun; cells still queued behind a runaway
    cell are collateral and keep their retry budget."""

    def test_queued_cell_is_collateral(self):
        injector = FaultInjector(FaultPlan())  # no hang injection
        assert not _timeout_own_fault(
            injector, _StubFuture(running=False), "k", 0
        )

    def test_running_cell_is_charged(self):
        injector = FaultInjector(FaultPlan())
        assert _timeout_own_fault(
            injector, _StubFuture(running=True), "k", 0
        )

    def test_hang_injection_decides_regardless_of_pool_state(self):
        injector = FaultInjector(
            FaultPlan(seed=7, rates={"sim.hang": 1.0})
        )
        # scheduled to hang: charged even if it never got a worker.
        assert _timeout_own_fault(
            injector, _StubFuture(running=False), "k", 0
        )
        # not scheduled to hang: innocent even though it was running.
        flaky = FaultInjector(
            FaultPlan(seed=7, rates={"sim.hang": 0.5})
        )
        key = next(
            k for k in (f"k{i}" for i in range(100))
            if not flaky.decide("sim.hang", k, 0)
        )
        assert not _timeout_own_fault(
            flaky, _StubFuture(running=True), key, 0
        )


# ---------------------------------------------------------------------------
# cache crash consistency (satellite)
# ---------------------------------------------------------------------------

class TestCacheCrashConsistency:
    def _result(self, turing, prog):
        return GPUSimulator(turing).launch_uncached(prog, LAUNCH)

    def test_mid_write_crash_leaves_no_visible_entry(self, tmp_path,
                                                     turing):
        prog = _kernel("cachecrash")
        result = self._result(turing, prog)
        cache = SimResultCache(tmp_path)
        key = sim_fingerprint(prog, LAUNCH, turing, DEFAULT_CONFIG)
        with install_faults("cache.write"):
            with pytest.raises(ResilienceError):
                cache.store(key, result)
        # the atomic-rename protocol: the entry is simply absent — a
        # reader can never observe a half-written shard.
        assert not cache.path_for(key).exists()
        assert cache.load(key, prog, LAUNCH, turing) is None
        assert cache.stats.corrupt == 0
        cache.store(key, result)  # healthy retry
        loaded = cache.load(key, prog, LAUNCH, turing)
        assert loaded is not None
        assert loaded.duration_cycles == result.duration_cycles

    def test_mid_write_crash_preserves_previous_entry(self, tmp_path,
                                                      turing):
        prog = _kernel("cachekeep")
        result = self._result(turing, prog)
        cache = SimResultCache(tmp_path)
        key = sim_fingerprint(prog, LAUNCH, turing, DEFAULT_CONFIG)
        cache.store(key, result)
        before = cache.path_for(key).read_bytes()
        with install_faults("cache.write"):
            with pytest.raises(ResilienceError):
                cache.store(key, result)
        # old entry untouched, still loadable.
        assert cache.path_for(key).read_bytes() == before
        assert cache.load(key, prog, LAUNCH, turing) is not None

    def test_torn_entry_is_a_miss_then_heals(self, tmp_path, turing):
        prog = _kernel("cachetorn")
        result = self._result(turing, prog)
        cache = SimResultCache(tmp_path)
        key = sim_fingerprint(prog, LAUNCH, turing, DEFAULT_CONFIG)
        with install_faults("cache.entry"):
            cache.store(key, result)  # entry truncated post-rename
        assert cache.load(key, prog, LAUNCH, turing) is None
        assert cache.stats.corrupt == 1
        cache.store(key, result)  # heal
        assert cache.load(key, prog, LAUNCH, turing) is not None

    def test_engine_treats_cache_write_faults_as_non_fatal(self, tmp_path,
                                                           turing):
        prog = _kernel("cacheflaky")
        baseline = self._result(turing, prog)
        with engine_context(jobs=1, cache_dir=tmp_path,
                            faults="cache.write") as engine:
            result = engine.simulate(
                turing, prog, LAUNCH, DEFAULT_CONFIG
            )
        assert result.duration_cycles == baseline.duration_cycles
        assert engine.health.cache_write_failures == 1
        assert not engine.health.degraded


# ---------------------------------------------------------------------------
# quarantine-and-degrade through profiles, analysis and reports
# ---------------------------------------------------------------------------

def _two_kernel_app(name="mixed"):
    return Application(
        name=name,
        suite="test",
        invocations=(
            KernelInvocation(_kernel("alpha"), LAUNCH),
            KernelInvocation(_kernel("beta"), LAUNCH),
        ),
    )


def _metrics_fault_seed(metrics, fire_key="alpha#0", spare_key="beta#0"):
    """A seed whose ``profiler.metrics`` schedule corrupts ``fire_key``
    (dropping at least one required metric) and spares ``spare_key``."""
    probe = {name: 1.0 for name in metrics}
    for seed in range(2000):
        inj = FaultInjector(
            FaultPlan(seed=seed, rates={"profiler.metrics": 0.5})
        )
        if (inj.decide("profiler.metrics", fire_key)
                and not inj.decide("profiler.metrics", spare_key)
                and len(inj.corrupt_metrics(fire_key, probe)) < len(probe)):
            return seed
    raise AssertionError("no suitable seed found")


class TestDegradedProfiles:
    def test_partial_metrics_quarantine_the_invocation(self, turing):
        metrics = metric_names_for_level(turing.compute_capability, 3)
        seed = _metrics_fault_seed(metrics)
        app = _two_kernel_app()
        tool = tool_for(turing)
        with install_faults(f"seed={seed},profiler.metrics@0.5"):
            profile = tool.profile_application(app, metrics)
        assert profile.quarantined == ("alpha#0",)
        assert profile.degraded
        assert [k.kernel_name for k in profile.kernels] == ["beta"]

    def test_degraded_result_is_annotated_in_reports(self, turing):
        metrics = metric_names_for_level(turing.compute_capability, 3)
        seed = _metrics_fault_seed(metrics)
        tool = tool_for(turing)
        with install_faults(f"seed={seed},profiler.metrics@0.5"):
            profile = tool.profile_application(_two_kernel_app(), metrics)
        result = TopDownAnalyzer(turing).analyze_application(profile)
        assert result.degraded
        assert result.quarantined == ("alpha#0",)
        text = level1_report([result])
        assert "mixed [DEGRADED]" in text
        assert "invocation alpha#0 skipped" in text

    def test_fully_failed_app_raises_quarantine_error(self, turing):
        metrics = metric_names_for_level(turing.compute_capability, 3)
        app = Application(
            name="solo", suite="test",
            invocations=(KernelInvocation(_kernel("gamma"), LAUNCH),),
        )
        tool = tool_for(turing)
        with install_faults("engine.transient"):
            with pytest.raises(QuarantineError, match="quarantined"):
                tool.profile_application(app, metrics)

    def test_profile_suite_degrades_per_app(self, turing):
        from repro.experiments.runner import profile_suite

        metrics = metric_names_for_level(turing.compute_capability, 3)
        seed = _metrics_fault_seed(
            metrics, fire_key="alpha#0", spare_key="beta#0"
        )
        suite = Suite(name="testsuite", applications=(
            Application(
                name="doomed_app", suite="testsuite",
                invocations=(KernelInvocation(_kernel("alpha"), LAUNCH),),
            ),
            Application(
                name="fine_app", suite="testsuite",
                invocations=(KernelInvocation(_kernel("beta"), LAUNCH),),
            ),
        ))
        with install_faults(f"seed={seed},profiler.metrics@0.5"):
            run = profile_suite(turing, suite)
        assert run.degraded
        assert list(run.quarantined) == ["doomed_app"]
        assert "all 1 invocation(s) quarantined" in \
            run.quarantined["doomed_app"]
        assert run.app_names == ["fine_app"]

    def test_all_apps_quarantined_raises(self, turing):
        from repro.experiments.runner import profile_suite

        suite = Suite(name="deadsuite", applications=(
            Application(
                name="only", suite="deadsuite",
                invocations=(KernelInvocation(_kernel("delta"), LAUNCH),),
            ),
        ))
        with install_faults("engine.transient"):
            with pytest.raises(QuarantineError, match="1 application"):
                profile_suite(turing, suite)
