"""Unit tests for Warp state transitions and EventCounters."""

import pytest

from repro.isa.opcodes import OpClass
from repro.sim.counters import EventCounters
from repro.sim.stall_reasons import ALL_STATES, STALL_STATES, WarpState
from repro.sim.warp import SB_FIXED, SB_LONG, SB_SHORT, Warp


class TestWarpScoreboard:
    def _warp(self):
        return Warp(warp_id=1, block_id=0, smsp=0)

    def test_no_pending_no_block(self):
        w = self._warp()
        assert w.scoreboard_block((1, 2), 3, cycle=10) is None

    def test_raw_blocks_until_ready(self):
        w = self._warp()
        w.pending_regs[5] = (20, SB_LONG)
        kind, ready = w.scoreboard_block((5,), None, cycle=10)
        assert kind == SB_LONG and ready == 20
        # expired entries are dropped and no longer block
        assert w.scoreboard_block((5,), None, cycle=20) is None
        assert 5 not in w.pending_regs

    def test_waw_blocks(self):
        w = self._warp()
        w.pending_regs[7] = (15, SB_SHORT)
        blocked = w.scoreboard_block((), 7, cycle=10)
        assert blocked == (SB_SHORT, 15)

    def test_latest_producer_wins(self):
        w = self._warp()
        w.pending_regs[1] = (12, SB_FIXED)
        w.pending_regs[2] = (30, SB_LONG)
        kind, ready = w.scoreboard_block((1, 2), None, cycle=10)
        assert (kind, ready) == (SB_LONG, 30)


class TestWarpDivergence:
    def _warp(self):
        return Warp(warp_id=1, block_id=0, smsp=0)

    def test_if_only_region(self):
        w = self._warp()
        w.pc = 4
        w.enter_region(4, if_length=3, else_length=0, taken_fraction=0.25)
        assert w.active_threads == 8
        for expected in (8, 8, 8, 32):
            w.advance_pc(body_len=100, iterations=1)
            # mask applies through the region, reconverges after
            assert w.active_threads == expected or w.pc <= 5

    def test_if_else_region_phases(self):
        w = self._warp()
        w.pc = 0
        w.enter_region(0, if_length=2, else_length=2, taken_fraction=0.75)
        assert w.active_threads == 24
        w.advance_pc(100, 1)  # pc 1 (if)
        assert w.active_threads == 24
        w.advance_pc(100, 1)  # pc 2 (if done)
        w.advance_pc(100, 1)  # pc 3 -> else phase
        assert w.active_threads == 8
        w.advance_pc(100, 1)
        w.advance_pc(100, 1)
        assert w.active_threads == 32

    def test_zero_taken_clamps_to_one_thread(self):
        w = self._warp()
        w.enter_region(0, if_length=2, else_length=0, taken_fraction=0.0)
        assert w.active_threads == 1

    def test_wraparound_resets_region(self):
        w = self._warp()
        w.pc = 3
        w.enter_region(3, if_length=1, else_length=0, taken_fraction=0.5)
        at_exit = False
        for _ in range(10):
            at_exit = w.advance_pc(body_len=5, iterations=2)
            if at_exit:
                break
        assert at_exit
        assert w.active_threads == 32

    def test_advance_signals_exit(self):
        w = self._warp()
        assert not w.advance_pc(body_len=2, iterations=1)
        assert w.advance_pc(body_len=2, iterations=1)


class TestEventCounters:
    def test_state_taxonomy_complete(self):
        c = EventCounters()
        assert set(c.state_cycles) == set(ALL_STATES)
        assert WarpState.SELECTED not in STALL_STATES
        assert WarpState.NOT_SELECTED not in STALL_STATES
        assert len(STALL_STATES) == len(ALL_STATES) - 2

    def test_stall_fraction(self):
        c = EventCounters()
        c.warp_active_cycles = 200
        c.state_cycles[WarpState.BARRIER] = 50
        assert c.stall_fraction(WarpState.BARRIER) == pytest.approx(0.25)
        empty = EventCounters()
        assert empty.stall_fraction(WarpState.BARRIER) == 0.0

    def test_merge_accumulates(self):
        a, b = EventCounters(), EventCounters()
        a.inst_executed, b.inst_executed = 10, 20
        a.cycles_elapsed, b.cycles_elapsed = 100, 80
        a.state_cycles[WarpState.WAIT] = 5
        b.state_cycles[WarpState.WAIT] = 7
        a.inst_by_class[OpClass.FP32] = 3
        b.inst_by_class[OpClass.FP32] = 4
        a.merge(b)
        assert a.inst_executed == 30
        assert a.cycles_elapsed == 100   # max, not sum
        assert a.state_cycles[WarpState.WAIT] == 12
        assert a.inst_by_class[OpClass.FP32] == 7

    def test_validate_catches_inconsistency(self):
        c = EventCounters()
        c.inst_executed = 10
        c.inst_issued = 5      # issued < executed: impossible
        with pytest.raises(AssertionError):
            c.validate()

    def test_validate_state_conservation(self):
        c = EventCounters()
        c.warp_active_cycles = 10
        c.state_cycles[WarpState.SELECTED] = 4  # only 4 of 10 accounted
        with pytest.raises(AssertionError):
            c.validate()

    def test_total_stall_cycles(self):
        c = EventCounters()
        c.state_cycles[WarpState.SELECTED] = 100
        c.state_cycles[WarpState.NOT_SELECTED] = 50
        c.state_cycles[WarpState.WAIT] = 30
        c.state_cycles[WarpState.BARRIER] = 20
        assert c.total_stall_cycles == 50  # wait + barrier only
