"""Tests for the tools' default report modes (paper §II.B) and the
warp-scheduler policies."""

import pytest

from repro.errors import SimulationError
from repro.isa import LaunchConfig
from repro.profilers import NcuTool, NvprofTool
from repro.sim import SimConfig, simulate_kernel
from repro.workloads import rodinia

from tests.conftest import build_compute_kernel, build_stream_kernel


class TestNcuSections:
    @pytest.fixture(scope="class")
    def report(self, ):
        from repro.arch import get_gpu

        tool = NcuTool(get_gpu("rtx4000"))
        app = rodinia().get("hotspot")
        inv = app.invocations[0]
        return tool.details_report(inv.program, inv.launch), inv

    def test_three_sections_present(self, report):
        text, _ = report
        assert "Section: GPU Speed Of Light Throughput" in text
        assert "Section: Launch Statistics" in text
        assert "Section: Occupancy" in text

    def test_launch_statistics_values(self, report):
        text, inv = report
        assert f"{inv.launch.blocks:12d}" in text
        assert f"{inv.launch.threads_per_block:12d}" in text

    def test_occupancy_bounded(self, report):
        text, _ = report
        for line in text.splitlines():
            if "Achieved Occupancy" in line:
                value = float(line.split()[-1])
                assert 0.0 <= value <= 100.0
                return
        pytest.fail("Achieved Occupancy line missing")


class TestNvprofSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        from repro.arch import get_gpu

        tool = NvprofTool(get_gpu("gtx1070"))
        return tool.summary_report(rodinia().get("srad_v2"))

    def test_kernel_rows_present(self, summary):
        assert "srad_cuda_1" in summary
        assert "srad_cuda_2" in summary
        assert "GPU activities" in summary

    def test_memcpy_rows_present(self, summary):
        assert "[CUDA memcpy HtoD]" in summary
        assert "[CUDA memcpy DtoH]" in summary

    def test_percentages_sum_to_100(self, summary):
        pcts = [
            float(line.split()[2].rstrip("%"))
            for line in summary.splitlines()
            if line.strip().startswith("GPU activities")
        ]
        assert sum(pcts) == pytest.approx(100.0, abs=0.1)

    def test_calls_match_invocations(self, summary):
        row = next(l for l in summary.splitlines() if "srad_cuda_1" in l)
        assert row.split()[4] == "2"  # two invocations in the suite


class TestSchedulers:
    def _run(self, turing, prog, scheduler):
        launch = LaunchConfig(blocks=36, threads_per_block=256)
        return simulate_kernel(
            turing, prog, launch, SimConfig(seed=1, scheduler=scheduler)
        ).counters

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            SimConfig(scheduler="fifo")

    def test_both_schedulers_complete_work(self, turing):
        prog = build_stream_kernel(iterations=6)
        lrr = self._run(turing, prog, "lrr")
        gto = self._run(turing, prog, "gto")
        assert lrr.inst_executed == gto.inst_executed
        assert lrr.thread_inst_executed == gto.thread_inst_executed

    def test_schedulers_differ_in_timing(self, turing):
        prog = build_stream_kernel(iterations=8, working_set=1 << 22)
        lrr = self._run(turing, prog, "lrr")
        gto = self._run(turing, prog, "gto")
        # different policies make different interleavings; identical
        # elapsed time on a contended kernel would be suspicious.
        assert lrr.cycles_elapsed != gto.cycles_elapsed

    def test_gto_preserves_counter_invariants(self, turing):
        prog = build_compute_kernel()
        counters = self._run(turing, prog, "gto")
        counters.validate()
        assert sum(counters.state_cycles.values()) == \
            counters.warp_active_cycles


class TestNvprofEventsMode:
    """nvprof --events (paper §II.A: events vs metrics below CC 7.2)."""

    def _tool(self):
        from repro.arch import get_gpu
        from repro.sim import SimConfig

        return NvprofTool(get_gpu("gtx1070"), SimConfig(seed=2))

    def test_collect_raw_events(self):
        tool = self._tool()
        prog = build_stream_kernel(iterations=4)
        events = tool.collect_events(
            prog, LaunchConfig(blocks=15, threads_per_block=128),
            ["inst_executed", "inst_issued", "active_cycles",
             "warps_launched"],
        )
        assert events["inst_issued"] >= events["inst_executed"] > 0
        assert events["active_cycles"] > 0
        assert events["warps_launched"] == 4  # one block on SM 0

    def test_events_are_counts_not_ratios(self):
        """Events must be raw counters: executed instructions equal the
        program's dynamic length times the warps that ran."""
        tool = self._tool()
        prog = build_stream_kernel(iterations=4)
        launch = LaunchConfig(blocks=15, threads_per_block=128)
        events = tool.collect_events(
            prog, launch, ["inst_executed", "warps_launched"]
        )
        assert events["inst_executed"] == \
            events["warps_launched"] * prog.dynamic_length

    def test_unknown_event_rejected(self):
        from repro.errors import ProfilerError

        tool = self._tool()
        prog = build_stream_kernel(iterations=2)
        with pytest.raises(ProfilerError, match="unknown nvprof event"):
            tool.collect_events(
                prog, LaunchConfig(blocks=4, threads_per_block=64),
                ["flux_capacitor_charge"],
            )

    def test_available_events_listed(self):
        names = self._tool().available_events()
        assert "inst_executed" in names
        assert "divergent_branch" in names
