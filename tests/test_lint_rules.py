"""Unit tests for the lint subsystem: one positive and one negative
case per rule, the registry configuration knobs, the static predictor
and the bundled-workload cleanliness guarantee."""

import dataclasses

import pytest

from repro.arch.registry import get_gpu
from repro.core.nodes import Node
from repro.errors import CounterError, LintError, ProgramError
from repro.isa.builder import ProgramBuilder
from repro.isa.instruction import (
    AccessKind,
    BranchInfo,
    Instruction,
    MemoryRef,
)
from repro.isa.opcodes import Opcode
from repro.isa.program import KernelProgram, LaunchConfig
from repro.lint import (
    Diagnostic,
    DriftContext,
    DriftRule,
    LintReport,
    Severity,
    StallPrediction,
    bundled_suites,
    cross_check,
    default_registry,
    lint_application,
    lint_model,
    lint_program,
    lint_suite,
    predict_stalls,
)
from repro.lint import model_rules as mr
from repro.lint import program_rules as pr
from repro.lint.registry import ModelContext, ProgramContext

SPEC = get_gpu("NVIDIA Quadro RTX 4000")
LAUNCH = LaunchConfig(blocks=72, threads_per_block=256)


def _clean_program(name="clean"):
    """A kernel no program rule complains about: coalesced streaming
    loads feeding independent FFMA chains."""
    b = ProgramBuilder(name)
    b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 16)
    regs = [b.ldg("x") for _ in range(4)]
    for i in range(8):
        regs[i % 4] = b.ffma(regs[i % 4], regs[(i + 1) % 4])
    b.stg("x", regs[0])
    return b.build(iterations=4)


def _check(rule, program, launch=LAUNCH, spec=SPEC):
    return list(rule.check(ProgramContext(program, launch, spec)))


def _force_body(program, body):
    """Swap in a body that KernelProgram validation would reject —
    what a buggy frontend (parser, deserializer) could produce."""
    object.__setattr__(program, "body", body)
    return program


class TestProgramRules:
    def test_clean_program_passes_all_rules(self):
        report = lint_program(_clean_program(), LAUNCH, SPEC)
        assert report.diagnostics == ()
        assert report.ok and report.exit_code() == 0

    # -- PROG-UNDEF-PATTERN -------------------------------------------
    def test_undefined_pattern_fires(self):
        program = _clean_program()
        object.__setattr__(program, "patterns", ())
        diags = _check(pr.UndefinedPatternRule(), program)
        assert [d.rule for d in diags] == ["PROG-UNDEF-PATTERN"]
        assert diags[0].severity is Severity.ERROR
        assert diags[0].location.pattern == "x"

    def test_undefined_pattern_silent_on_declared(self):
        assert _check(pr.UndefinedPatternRule(), _clean_program()) == []

    # -- PROG-UNUSED-PATTERN ------------------------------------------
    def test_unused_pattern_fires(self):
        b = ProgramBuilder("k")
        b.pattern("ghost", AccessKind.STREAM, working_set_bytes=4096)
        r = b.iadd()
        b.ffma(r, r)
        diags = _check(pr.UnusedPatternRule(), b.build())
        assert [d.rule for d in diags] == ["PROG-UNUSED-PATTERN"]
        assert "ghost" in diags[0].message

    def test_unused_pattern_silent_when_referenced(self):
        assert _check(pr.UnusedPatternRule(), _clean_program()) == []

    # -- PROG-BRANCH-OVERRUN ------------------------------------------
    def test_branch_overrun_fires(self):
        program = _clean_program()
        bra = Instruction(Opcode.BRA, branch=BranchInfo(if_length=5))
        alu = Instruction(Opcode.FADD, dst=0)
        _force_body(program, (bra, alu, alu))
        diags = _check(pr.BranchOverrunRule(), program)
        assert [d.rule for d in diags] == ["PROG-BRANCH-OVERRUN"]
        assert "overruns the 3-instruction body by 3" in diags[0].message

    def test_branch_overrun_silent_when_region_fits(self):
        b = ProgramBuilder("k")
        r = b.iadd()
        b.branch(if_length=2, taken_fraction=0.5, src=r)
        b.ffma(r, r)
        b.ffma(r, r)
        assert _check(pr.BranchOverrunRule(), b.build()) == []

    # -- PROG-DEAD-CODE -----------------------------------------------
    def test_dead_code_fires_on_uniform_branch(self):
        b = ProgramBuilder("k")
        r = b.iadd()
        b.branch(if_length=1, else_length=2, taken_fraction=1.0, src=r)
        for _ in range(3):
            r = b.ffma(r, r)
        diags = _check(pr.DeadCodeRule(), b.build())
        assert [d.rule for d in diags] == ["PROG-DEAD-CODE"]
        assert "else region (2 instruction(s))" in diags[0].message

    def test_dead_code_silent_on_divergent_branch(self):
        b = ProgramBuilder("k")
        r = b.iadd()
        b.branch(if_length=1, else_length=2, taken_fraction=0.5, src=r)
        for _ in range(3):
            r = b.ffma(r, r)
        assert _check(pr.DeadCodeRule(), b.build()) == []

    # -- PROG-LOW-ILP -------------------------------------------------
    def test_low_ilp_fires_on_serial_chain(self):
        b = ProgramBuilder("k")
        r = b.iadd()
        for _ in range(12):
            r = b.ffma(r, r)
        diags = _check(pr.LowIlpRule(), b.build())
        assert [d.rule for d in diags] == ["PROG-LOW-ILP"]
        assert "Core.ExecDependency" in diags[0].message

    def test_low_ilp_silent_on_wide_program(self):
        assert _check(pr.LowIlpRule(), _clean_program()) == []

    # -- PROG-STRIDED-SECTORS -----------------------------------------
    def test_strided_sectors_fires(self):
        b = ProgramBuilder("k")
        b.pattern("m", AccessKind.STRIDED, working_set_bytes=1 << 20,
                  stride_elements=16)
        r = b.ldg("m")
        b.ffma(r, r)
        diags = _check(pr.StridedSectorsRule(), b.build())
        assert [d.rule for d in diags] == ["PROG-STRIDED-SECTORS"]
        assert "Memory.L1" in diags[0].message

    def test_strided_sectors_silent_on_stream(self):
        assert _check(pr.StridedSectorsRule(), _clean_program()) == []

    def test_strided_sectors_ignores_shared_only_use(self):
        b = ProgramBuilder("k")
        b.pattern("tile", AccessKind.STRIDED, working_set_bytes=1 << 14,
                  stride_elements=16)
        r = b.lds("tile")
        b.ffma(r, r)
        assert _check(pr.StridedSectorsRule(), b.build()) == []

    # -- PROG-LDC-NONUNIFORM ------------------------------------------
    def test_ldc_nonuniform_fires(self):
        b = ProgramBuilder("k")
        b.pattern("c", AccessKind.STREAM, working_set_bytes=4096)
        r = b.ldc("c")
        b.ffma(r, r)
        diags = _check(pr.LdcNonUniformRule(), b.build())
        assert [d.rule for d in diags] == ["PROG-LDC-NONUNIFORM"]
        assert "Memory.IMC" in diags[0].message

    def test_ldc_uniform_is_fine(self):
        b = ProgramBuilder("k")
        b.pattern("c", AccessKind.UNIFORM, working_set_bytes=4096)
        r = b.ldc("c")
        b.ffma(r, r)
        assert _check(pr.LdcNonUniformRule(), b.build()) == []

    # -- PROG-OCC-LIMITER ---------------------------------------------
    def test_occupancy_limiter_fires_on_register_pressure(self):
        program = dataclasses.replace(
            _clean_program(), registers_per_thread=255
        )
        diags = _check(pr.OccupancyLimiterRule(), program)
        assert [d.rule for d in diags] == ["PROG-OCC-LIMITER"]
        assert "registers" in diags[0].message

    def test_occupancy_limiter_silent_on_full_occupancy(self):
        assert _check(pr.OccupancyLimiterRule(), _clean_program()) == []

    # -- PROG-LAUNCH-UNFIT --------------------------------------------
    def test_launch_unfit_fires(self):
        launch = LaunchConfig(blocks=36, threads_per_block=256,
                              shared_bytes_per_block=1 << 20)
        diags = _check(pr.LaunchUnfitRule(), _clean_program(), launch)
        assert [d.rule for d in diags] == ["PROG-LAUNCH-UNFIT"]
        assert diags[0].severity is Severity.ERROR

    def test_launch_unfit_silent_on_sane_launch(self):
        assert _check(pr.LaunchUnfitRule(), _clean_program()) == []

    # -- PROG-GRID-UNDERFILL ------------------------------------------
    def test_grid_underfill_fires(self):
        launch = LaunchConfig(blocks=4, threads_per_block=256)
        diags = _check(pr.GridUnderfillRule(), _clean_program(), launch)
        assert [d.rule for d in diags] == ["PROG-GRID-UNDERFILL"]

    def test_grid_underfill_silent_when_filled(self):
        assert _check(pr.GridUnderfillRule(), _clean_program()) == []

    # -- PROG-ICACHE-SPILL --------------------------------------------
    def test_icache_spill_fires(self):
        program = dataclasses.replace(
            _clean_program(), static_instructions=4096
        )
        diags = _check(pr.ICacheSpillRule(), program)
        assert [d.rule for d in diags] == ["PROG-ICACHE-SPILL"]
        assert "Frontend.Fetch" in diags[0].message

    def test_icache_spill_silent_when_resident(self):
        assert _check(pr.ICacheSpillRule(), _clean_program()) == []


class TestModelRules:
    @pytest.mark.parametrize("gpu", [
        "NVIDIA GTX 1070",           # legacy / nvprof generation
        "NVIDIA Quadro RTX 4000",    # unified / ncu generation
        "NVIDIA Tesla V100",
        "NVIDIA A100",
    ])
    def test_model_is_clean_on_every_device(self, gpu):
        report = lint_model(get_gpu(gpu))
        assert report.diagnostics == (), [
            d.render() for d in report.diagnostics
        ]

    def test_hierarchy_rule_catches_level_skew(self, monkeypatch):
        bad = dict(mr.PARENT)
        # a level-3 leaf hung directly under a level-1 root
        bad[Node.L3_EXEC_DEPENDENCY] = Node.BACKEND
        monkeypatch.setattr(mr, "PARENT", bad)
        diags = list(
            mr.HierarchyPartitionRule().check(ModelContext(SPEC))
        )
        assert any("one level below" in d.message for d in diags)

    def test_table_catalog_rule_catches_unknown_metric(self, monkeypatch):
        bogus = dataclasses.replace(
            mr.tables.METRIC_TABLES[0], metric="no_such_metric"
        )
        monkeypatch.setattr(
            mr.tables, "METRIC_TABLES",
            (*mr.tables.METRIC_TABLES, bogus),
        )
        diags = list(mr.TableCatalogRule().check(ModelContext(SPEC)))
        assert [d.rule for d in diags] == ["MET-TABLE-CATALOG"]
        assert "no_such_metric" in diags[0].message

    def test_variable_coverage_catches_missing_binding(self, monkeypatch):
        pruned = tuple(
            e for e in mr.tables.METRIC_TABLES
            if not (e.generation == "legacy"
                    and e.variable == "STALL_MEMORY")
        )
        monkeypatch.setattr(mr.tables, "METRIC_TABLES", pruned)
        diags = list(mr.VariableCoverageRule().check(ModelContext(SPEC)))
        assert [d.rule for d in diags] == ["MET-VARIABLE-COVERAGE"]
        assert "STALL_MEMORY" in diags[0].message

    def test_leaf_consistency_catches_misplaced_leaf(self, monkeypatch):
        tampered = list(mr.tables.METRIC_TABLES)
        idx = next(i for i, e in enumerate(tampered)
                   if e.variable == "STALL_MEMORY")
        # a Memory stall metric attributed to a Fetch leaf
        tampered[idx] = dataclasses.replace(
            tampered[idx], leaf=Node.L3_INSTRUCTION_FETCH
        )
        monkeypatch.setattr(mr.tables, "METRIC_TABLES", tuple(tampered))
        diags = list(mr.LeafConsistencyRule().check(ModelContext(SPEC)))
        assert [d.rule for d in diags] == ["MET-LEAF-CONSISTENT"]
        assert "instruction_fetch" in diags[0].message

    def test_pass_capacity_reports_scheduling_failure(self, monkeypatch):
        def boom(metrics, pmu):
            raise CounterError("no counters left")

        monkeypatch.setattr(mr, "schedule_passes", boom)
        diags = list(mr.PassCapacityRule().check(ModelContext(SPEC)))
        assert [d.rule for d in diags] == ["PMU-PASS-CAPACITY"]


class _FakeResult:
    """Stands in for a TopDownResult: only ``ipc(node)`` is consumed."""

    def __init__(self, values):
        self._values = values

    def ipc(self, node):
        return self._values.get(node, 0.0)


def _prediction(shares):
    return StallPrediction(
        kernel="k", device=SPEC.name, shares=dict(shares),
        weights=dict(shares),
    )


class TestDriftRule:
    def test_fires_on_decisive_disagreement(self):
        prediction = _prediction({Node.CORE: 0.9, Node.MEMORY: 0.1})
        measured = _FakeResult({Node.MEMORY: 0.8, Node.CORE: 0.1})
        diags = cross_check(prediction, measured)
        assert [d.rule for d in diags] == ["TD-DRIFT"]
        assert "memory_bound" in diags[0].message

    def test_silent_on_agreement(self):
        prediction = _prediction({Node.MEMORY: 0.9, Node.CORE: 0.1})
        measured = _FakeResult({Node.MEMORY: 0.8, Node.CORE: 0.1})
        assert cross_check(prediction, measured) == []

    def test_silent_when_measurement_ambiguous(self):
        prediction = _prediction({Node.CORE: 0.9, Node.MEMORY: 0.1})
        measured = _FakeResult({Node.MEMORY: 0.40, Node.CORE: 0.35})
        assert cross_check(prediction, measured) == []

    def test_silent_on_empty_measurement(self):
        prediction = _prediction({Node.CORE: 1.0})
        assert cross_check(prediction, _FakeResult({})) == []


class TestPredictor:
    def test_shares_sum_to_one(self):
        p = predict_stalls(_clean_program(), LAUNCH, SPEC)
        assert sum(p.shares.values()) == pytest.approx(1.0)

    def test_random_gather_predicts_memory(self):
        b = ProgramBuilder("gather")
        b.pattern("d", AccessKind.RANDOM, working_set_bytes=1 << 23)
        for _ in range(4):
            r = b.ldg("d")
        b.ffma(r, r)
        p = predict_stalls(b.build(), LAUNCH, SPEC)
        assert p.top is Node.MEMORY

    def test_serial_compute_predicts_core(self):
        b = ProgramBuilder("serial")
        r = b.iadd()
        for _ in range(16):
            r = b.ffma(r, r)
        p = predict_stalls(b.build(), LAUNCH, SPEC)
        assert p.top is Node.CORE

    def test_icache_spill_shifts_weight_to_fetch(self):
        base = _clean_program()
        spilled = dataclasses.replace(base, static_instructions=8192)
        lo = predict_stalls(base, LAUNCH, SPEC)
        hi = predict_stalls(spilled, LAUNCH, SPEC)
        assert hi.shares[Node.FETCH] > lo.shares[Node.FETCH]


class TestRegistryConfiguration:
    def test_catalog_has_stable_rule_ids(self):
        registry = default_registry()
        assert len(registry.rule_ids()) >= 8
        assert "PROG-LOW-ILP" in registry.rule_ids()
        assert "TD-DRIFT" in registry.rule_ids()

    def test_disable_skips_rule(self):
        program = _clean_program()
        object.__setattr__(program, "patterns", ())
        registry = default_registry()
        registry.disable("PROG-UNDEF-PATTERN")
        report = lint_program(program, LAUNCH, SPEC, registry=registry)
        assert all(d.rule != "PROG-UNDEF-PATTERN"
                   for d in report.diagnostics)

    def test_severity_override_restamps_findings(self):
        b = ProgramBuilder("k")
        r = b.iadd()
        for _ in range(12):
            r = b.ffma(r, r)
        registry = default_registry()
        registry.override_severity("PROG-LOW-ILP", "error")
        report = lint_program(b.build(), LAUNCH, SPEC, registry=registry)
        assert report.errors and report.exit_code() == 1

    def test_unknown_rule_rejected(self):
        registry = default_registry()
        with pytest.raises(LintError, match="unknown rule"):
            registry.disable("NO-SUCH-RULE")


class TestWorkloadsClean:
    @pytest.mark.parametrize("name", sorted(bundled_suites()))
    def test_bundled_suite_lints_clean(self, name):
        report = lint_suite(bundled_suites()[name], SPEC)
        noisy = [d.render() for d in report.active()
                 if d.severity >= Severity.WARNING]
        assert noisy == []
        assert report.exit_code(strict=True) == 0

    def test_waivers_do_not_hide_foreign_rules(self):
        app = bundled_suites()["synth"].get("serial_chain")
        report = lint_application(app, SPEC)
        suppressed = [d.rule for d in report.diagnostics if d.suppressed]
        assert suppressed == ["PROG-LOW-ILP"]


class TestProgramValidation:
    def test_overrun_error_names_extent(self):
        bra = Instruction(Opcode.BRA, branch=BranchInfo(if_length=4))
        filler = Instruction(Opcode.FADD, dst=0)
        with pytest.raises(
            ProgramError,
            match=r"region \[1, 4\] at branch 0 .* overruns the "
                  r"3-instruction body by 2",
        ):
            KernelProgram(name="k", body=(bra, filler, filler))

    def test_fitting_region_accepted(self):
        bra = Instruction(Opcode.BRA, branch=BranchInfo(if_length=2))
        filler = Instruction(Opcode.FADD, dst=0)
        program = KernelProgram(name="k", body=(bra, filler, filler))
        assert len(program.body) == 3


class TestPropertyBased:
    """Any program the builder accepts lints without ERROR findings —
    the ERROR rules only catch states valid construction rules out
    (undeclared patterns, overrunning regions, unlaunchable blocks)."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @staticmethod
    @st.composite
    def programs(draw):
        from hypothesis import strategies as st

        b = ProgramBuilder("generated")
        kind = draw(st.sampled_from(list(AccessKind)))
        b.pattern(
            "d", kind,
            working_set_bytes=draw(st.integers(1024, 1 << 22)),
            stride_elements=draw(st.integers(1, 32)),
        )
        regs = [b.ldg("d") for _ in range(draw(st.integers(1, 4)))]
        for _ in range(draw(st.integers(0, 24))):
            i = draw(st.integers(0, len(regs) - 1))
            j = draw(st.integers(0, len(regs) - 1))
            regs[i] = b.ffma(regs[i], regs[j])
        if draw(st.booleans()):
            b.branch(
                if_length=2, else_length=1,
                taken_fraction=draw(st.sampled_from([0.0, 0.5, 1.0])),
                src=regs[0],
            )
            for _ in range(3):
                regs[0] = b.iadd(regs[0])
        b.stg("d", regs[0])
        return b.build(iterations=draw(st.integers(1, 8)))

    @given(program=programs(), blocks=st.integers(1, 256),
           warps=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_valid_programs_never_error(self, program, blocks, warps):
        launch = LaunchConfig(blocks=blocks,
                              threads_per_block=32 * warps)
        report = lint_program(program, launch, SPEC)
        assert report.errors == (), [d.render() for d in report.errors]


class TestReportMechanics:
    def test_merged_with_unions_rules_and_findings(self):
        a = LintReport(
            diagnostics=(Diagnostic("R-A", Severity.INFO, "a"),),
            rules=(("R-A", "info", "t", "program"),),
            subject="a", device="d",
        )
        b = LintReport(
            diagnostics=(Diagnostic("R-B", Severity.ERROR, "b"),),
            rules=(("R-B", "error", "t", "model"),),
        )
        merged = a.merged_with(b)
        assert len(merged.diagnostics) == 2
        assert [r[0] for r in merged.rules] == ["R-A", "R-B"]
        assert merged.exit_code() == 1

    def test_suppressed_findings_never_fail_the_run(self):
        diag = Diagnostic("R", Severity.ERROR, "m").suppress("intended")
        report = LintReport(diagnostics=(diag,))
        assert report.ok and report.exit_code(strict=True) == 0
        assert report.summary()["suppressed"] == 1
