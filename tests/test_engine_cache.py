"""Content fingerprints, the aliasing regression, and the persistent
simulation-result cache (write → reload → identical, corruption → miss).
"""

from __future__ import annotations

import json

import pytest

from repro.arch import get_gpu
from repro.core.analyzer import TopDownAnalyzer
from repro.core.tables import metric_names_for_level
from repro.errors import SimulationError
from repro.io.counters_json import counters_from_doc, counters_to_doc
from repro.isa import AccessKind, LaunchConfig, ProgramBuilder
from repro.profilers import tool_for
from repro.sim import (
    DEFAULT_CONFIG,
    GPUSimulator,
    SimConfig,
    SimResultCache,
    engine_context,
    sim_fingerprint,
)
from repro.sim.result_cache import RESULT_SCHEMA

from tests.conftest import build_stream_kernel


def _kernel(name="k", *, iterations=4, working_set=1 << 18):
    b = ProgramBuilder(name)
    b.pattern("x", AccessKind.STREAM, working_set_bytes=working_set)
    r0 = b.ldg("x")
    b.stg("x", b.ffma(r0, r0))
    return b.build(iterations=iterations)


LAUNCH = LaunchConfig(blocks=8, threads_per_block=128)


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_equal_content(self, turing):
        a = _kernel()
        b = _kernel()
        assert a is not b
        assert sim_fingerprint(a, LAUNCH, turing, DEFAULT_CONFIG) == \
            sim_fingerprint(b, LAUNCH, turing, DEFAULT_CONFIG)

    @pytest.mark.parametrize("variant", [
        lambda: _kernel(iterations=5),
        lambda: _kernel(working_set=1 << 19),
        lambda: _kernel(name="other"),
    ])
    def test_differs_for_different_programs(self, turing, variant):
        base = sim_fingerprint(_kernel(), LAUNCH, turing, DEFAULT_CONFIG)
        assert sim_fingerprint(
            variant(), LAUNCH, turing, DEFAULT_CONFIG
        ) != base

    def test_differs_for_launch_spec_and_config(self, turing, pascal):
        prog = _kernel()
        base = sim_fingerprint(prog, LAUNCH, turing, DEFAULT_CONFIG)
        assert sim_fingerprint(
            prog, LaunchConfig(blocks=9, threads_per_block=128),
            turing, DEFAULT_CONFIG,
        ) != base
        assert sim_fingerprint(prog, LAUNCH, pascal, DEFAULT_CONFIG) != base
        assert sim_fingerprint(
            prog, LAUNCH, turing, SimConfig(seed=1)
        ) != base


# ---------------------------------------------------------------------------
# the id(program) aliasing regression (satellite fix)
# ---------------------------------------------------------------------------

class TestCacheAliasing:
    def test_equal_shaped_distinct_programs_do_not_collide(self, turing):
        """Two different programs with identical shape (same instruction
        count, same launch) must never serve each other's cached result
        — the failure mode of the old ``id(program)`` key after the
        allocator reuses a freed address."""
        sim = GPUSimulator(turing)
        small = sim.launch(_kernel(working_set=1 << 14), LAUNCH)
        large = sim.launch(_kernel(working_set=1 << 22), LAUNCH)
        # same geometry, very different working sets: hit rates differ.
        assert small.counters.l1_sector_hits != large.counters.l1_sector_hits

    def test_content_equal_programs_share_the_cached_result(
        self, turing, monkeypatch
    ):
        sim = GPUSimulator(turing)
        first = sim.launch(_kernel(), LAUNCH)

        def boom(*_a, **_k):  # any re-simulation is a cache failure
            raise AssertionError("content-equal launch re-simulated")

        monkeypatch.setattr(GPUSimulator, "launch_uncached", boom)
        again = sim.launch(_kernel(), LAUNCH)  # distinct object, equal content
        assert again is first

    def test_id_reuse_cannot_alias(self, turing):
        """Simulate the GC scenario directly: a program dies, a different
        program is allocated (possibly at the same address), and the
        simulator must re-simulate rather than reuse the stale entry."""
        sim = GPUSimulator(turing)
        results = []
        for ws in (1 << 14, 1 << 22, 1 << 14, 1 << 22):
            prog = _kernel(working_set=ws)  # old object freed each turn
            results.append(sim.launch(prog, LAUNCH).counters.l1_sector_hits)
            del prog
        assert results[0] == results[2]
        assert results[1] == results[3]
        assert results[0] != results[1]


# ---------------------------------------------------------------------------
# counters codec
# ---------------------------------------------------------------------------

class TestCountersCodec:
    def test_round_trip_exact(self, turing):
        result = GPUSimulator(turing).launch(build_stream_kernel(), LAUNCH)
        counters = result.per_sm[0]
        doc = json.loads(json.dumps(counters_to_doc(counters)))
        assert counters_from_doc(doc) == counters

    def test_malformed_docs_raise(self):
        with pytest.raises(SimulationError):
            counters_from_doc("not a dict")
        with pytest.raises(SimulationError):
            counters_from_doc({"inst_executed": 1})
        good = counters_to_doc(
            GPUSimulator(get_gpu("NVIDIA GTX 1070")).launch(
                _kernel(), LAUNCH
            ).per_sm[0]
        )
        bad = dict(good)
        bad["state_cycles"] = {"NO_SUCH_STATE": 3}
        with pytest.raises(SimulationError):
            counters_from_doc(bad)


# ---------------------------------------------------------------------------
# persistent result cache
# ---------------------------------------------------------------------------

class TestPersistentCache:
    def test_store_then_load_identical(self, turing, tmp_path):
        cache = SimResultCache(tmp_path)
        prog = build_stream_kernel()
        key = sim_fingerprint(prog, LAUNCH, turing, DEFAULT_CONFIG)
        result = GPUSimulator(turing).launch(prog, LAUNCH)
        cache.store(key, result)
        loaded = cache.load(key, prog, LAUNCH, turing)
        assert loaded is not None
        assert loaded.per_sm == result.per_sm
        assert loaded.duration_cycles == result.duration_cycles
        assert loaded.working_set_bytes == result.working_set_bytes
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_miss_on_unknown_key(self, turing, tmp_path):
        cache = SimResultCache(tmp_path)
        assert cache.load("ab" * 32, _kernel(), LAUNCH, turing) is None
        assert cache.stats.misses == 1

    def test_corrupted_entry_is_ignored(self, turing, tmp_path):
        cache = SimResultCache(tmp_path)
        prog = build_stream_kernel()
        key = sim_fingerprint(prog, LAUNCH, turing, DEFAULT_CONFIG)
        cache.store(key, GPUSimulator(turing).launch(prog, LAUNCH))
        cache.path_for(key).write_text("{ truncated garbage")
        assert cache.load(key, prog, LAUNCH, turing) is None
        assert cache.stats.corrupt == 1

    def test_old_schema_version_is_ignored(self, turing, tmp_path):
        cache = SimResultCache(tmp_path)
        prog = build_stream_kernel()
        key = sim_fingerprint(prog, LAUNCH, turing, DEFAULT_CONFIG)
        cache.store(key, GPUSimulator(turing).launch(prog, LAUNCH))
        path = cache.path_for(key)
        doc = json.loads(path.read_text())
        assert doc["schema"] == RESULT_SCHEMA
        doc["schema"] = "repro/sim-result@0"
        path.write_text(json.dumps(doc))
        assert cache.load(key, prog, LAUNCH, turing) is None
        assert cache.stats.corrupt == 1

    def test_engine_resimulates_and_heals_corrupt_entry(
        self, turing, tmp_path
    ):
        prog = build_stream_kernel()
        key = sim_fingerprint(prog, LAUNCH, turing, DEFAULT_CONFIG)
        with engine_context(cache_dir=tmp_path) as engine:
            baseline = GPUSimulator(turing).launch(prog, LAUNCH)
            assert engine.cache.stats.stores == 1
            engine.cache.path_for(key).write_text("garbage")
        with engine_context(cache_dir=tmp_path) as engine:
            healed = GPUSimulator(turing).launch(prog, LAUNCH)
            assert engine.cache.stats.corrupt == 1
            assert engine.cache.stats.stores == 1  # rewritten
        assert healed.per_sm == baseline.per_sm
        with engine_context(cache_dir=tmp_path) as engine:
            reloaded = GPUSimulator(turing).launch(prog, LAUNCH)
            assert engine.cache.stats.hits == 1
        assert reloaded.per_sm == baseline.per_sm


# ---------------------------------------------------------------------------
# cached analysis round trip (cache write → reload → identical result)
# ---------------------------------------------------------------------------

class TestWarmRunEquivalence:
    def test_topdown_result_identical_from_warm_cache(
        self, turing, tmp_path
    ):
        from repro.lint import bundled_suites

        app = bundled_suites()["synth"].get("stream_dram")
        metrics = metric_names_for_level(turing.compute_capability, 3)
        analyzer = TopDownAnalyzer(turing)

        def analyze():
            tool = tool_for(turing, config=SimConfig(seed=0))
            return analyzer.analyze_application(
                tool.profile_application(app, metrics)
            )

        baseline = analyze()
        with engine_context(cache_dir=tmp_path) as engine:
            cold = analyze()
            assert engine.cache.stats.stores > 0
        with engine_context(cache_dir=tmp_path) as engine:
            warm = analyze()
            assert engine.cache.stats.hits > 0
            assert engine.stats.sim_calls == 0
        assert cold.values == baseline.values
        assert warm.values == baseline.values
