"""Docs stay honest: no broken references, no tracked bytecode.

The slow half of the checker (executing the docs/OBSERVABILITY.md
examples) runs in the CI docs job via
``python tools/check_docs.py --run-examples``; here we pin the fast
invariants on every test run.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_docs  # noqa: E402


def test_no_broken_doc_references():
    assert check_docs.check_links() == []


def test_no_dangling_anchors():
    assert check_docs.check_anchors() == []


def test_docs_are_clean_utf8():
    assert check_docs.check_encoding() == []


def test_mojibake_regex_catches_double_encoding():
    # "→" and "—" read as cp1252 — the exact corruption the SNIPPETS.md
    # sweep repaired; the regex must keep catching it without flagging
    # the clean characters themselves.
    assert check_docs._MOJIBAKE.search("→".encode().decode("cp1252"))
    assert check_docs._MOJIBAKE.search("—".encode().decode("cp1252"))
    assert check_docs._MOJIBAKE.search("�")
    assert not check_docs._MOJIBAKE.search("plain text → arrow — dash")


def test_heading_slugs_follow_github_rules():
    slugs = check_docs._heading_slugs(
        "# Launch / sync\n"
        "## `code` *emph* heading\n"
        "## Repeat\n"
        "```\n# not a heading\n```\n"
        "## Repeat\n"
    )
    assert slugs == {"launch--sync", "code-emph-heading", "repeat", "repeat-1"}


def test_no_tracked_bytecode():
    assert check_docs.check_no_tracked_bytecode() == []


def test_observability_examples_are_extractable():
    # the CI job would silently check nothing if the fence markers or
    # command prefixes drifted — pin that extraction finds them.
    doc = check_docs.REPO / "docs" / "OBSERVABILITY.md"
    commands = check_docs.extract_bash_commands(doc.read_text("utf-8"))
    assert any(c.startswith("gpu-topdown analyze") for c in commands)
    assert any(c.startswith("gpu-topdown profile-self") for c in commands)
    # continuation lines must have been joined into one command.
    assert all("\\" not in c for c in commands)
