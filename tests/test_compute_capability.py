"""Unit tests for ComputeCapability parsing, ordering and the 7.2
unified-metrics boundary (paper §II.A)."""

import pytest

from repro.arch import UNIFIED_METRICS_CC, ComputeCapability
from repro.errors import ArchitectureError


class TestParse:
    def test_parse_string(self):
        cc = ComputeCapability.parse("7.5")
        assert (cc.major, cc.minor) == (7, 5)

    def test_parse_float(self):
        assert ComputeCapability.parse(6.1) == ComputeCapability(6, 1)

    def test_parse_passthrough(self):
        cc = ComputeCapability(8, 0)
        assert ComputeCapability.parse(cc) is cc

    def test_parse_whitespace(self):
        assert ComputeCapability.parse(" 7.0 ") == ComputeCapability(7, 0)

    @pytest.mark.parametrize("bad", ["7", "a.b", "7.5.1", ""])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ArchitectureError):
            ComputeCapability.parse(bad)

    def test_invalid_values_rejected(self):
        with pytest.raises(ArchitectureError):
            ComputeCapability(0, 0)
        with pytest.raises(ArchitectureError):
            ComputeCapability(7, 12)


class TestOrdering:
    def test_total_order(self):
        assert ComputeCapability(6, 1) < ComputeCapability(7, 0)
        assert ComputeCapability(7, 0) < ComputeCapability(7, 5)
        assert ComputeCapability(7, 5) <= ComputeCapability(7, 5)
        assert ComputeCapability(8, 0) > ComputeCapability(7, 5)

    def test_equality_and_hash(self):
        a, b = ComputeCapability(7, 5), ComputeCapability(7, 5)
        assert a == b
        assert hash(a) == hash(b)

    def test_comparison_with_other_types(self):
        assert ComputeCapability(7, 5) != "7.5"


class TestUnifiedBoundary:
    """The paper puts the events+metrics -> unified split at CC 7.2."""

    @pytest.mark.parametrize("cc,unified", [
        ("3.0", False), ("6.1", False), ("7.0", False),
        ("7.2", True), ("7.5", True), ("8.0", True), ("9.0", True),
    ])
    def test_boundary(self, cc, unified):
        assert ComputeCapability.parse(cc).uses_unified_metrics is unified

    def test_boundary_constant(self):
        assert UNIFIED_METRICS_CC == ComputeCapability(7, 2)


class TestGeneration:
    @pytest.mark.parametrize("cc,name", [
        ("6.1", "Pascal"), ("7.0", "Volta"), ("7.5", "Turing"),
        ("8.0", "Ampere/Ada"), ("8.9", "Ada"), ("9.0", "Hopper"),
    ])
    def test_generation_names(self, cc, name):
        assert ComputeCapability.parse(cc).generation == name

    def test_str(self):
        assert str(ComputeCapability(7, 5)) == "7.5"
