"""Figure 7 benchmark — Rodinia level-3 on Turing (normalized)."""

from repro.core import Node
from repro.experiments import fig07


def test_bench_fig07(benchmark, once, capsys):
    result = once(benchmark, fig07.run)
    with capsys.disabled():
        print()
        print(fig07.render(result))
    # L1 dependencies dominate; myocyte/nn press the constant cache;
    # MIO throttle is minor (paper §V.B).
    assert result.mean_share(Node.L3_L1_DEPENDENCY) > 0.4
    assert result.mean_share(Node.L3_MIO_THROTTLE) < 0.05
    shares = result.shares()
    for app in fig07.CONSTANT_PRESSURE_APPS:
        assert shares[app].get(Node.L3_CONSTANT_MEMORY, 0.0) > 0.10
