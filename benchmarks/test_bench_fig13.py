"""Figure 13 benchmark — level-3 profiling overhead on Turing, Rodinia
plus Altis (paper: ~13x, 8 passes per kernel)."""

from repro.experiments import fig13


def test_bench_fig13(benchmark, once, capsys):
    result = once(benchmark, fig13.run)
    with capsys.disabled():
        print()
        print(fig13.render(result))
    assert result.passes == fig13.PAPER_PASSES
    assert 9.0 < result.mean < 17.0
