"""Figure 6 benchmark — Rodinia level-2 on Turing (normalized)."""

from repro.core import Node
from repro.experiments import fig06


def test_bench_fig06(benchmark, once, capsys):
    result = once(benchmark, fig06.run)
    with capsys.disabled():
        print()
        print(fig06.render(result))
    # memory dominates total degradation (paper: ~70% on average).
    assert result.mean_share(Node.MEMORY) > 0.55
    assert result.mean_share(Node.MEMORY) > \
        3 * result.mean_share(Node.CORE)
