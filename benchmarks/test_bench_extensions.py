"""Benchmarks for the extension experiments (paper §VII future work
and breadth beyond the evaluated configurations)."""

from repro.experiments import ext_cross_arch, ext_sampling, ext_suites


def test_bench_ext_sampling(benchmark, once, capsys):
    result = once(benchmark, ext_sampling.run)
    with capsys.disabled():
        print()
        print(ext_sampling.render(result))
    full = result.outcomes[0]
    periodic = result.outcomes[1]          # every_4th
    assert full.policy == "full"
    assert periodic.overhead < full.overhead / 2
    assert periodic.max_error < 0.05


def test_bench_ext_cross_arch(benchmark, once, capsys):
    result = once(benchmark, ext_cross_arch.run)
    with capsys.disabled():
        print()
        print(ext_cross_arch.render(result))
    # Turing vs Pascal mirrors the paper's Fig.-5 asymmetry on the subset
    turing_cmp = result.versus_pascal["NVIDIA Quadro RTX 4000"]
    from repro.core import Node

    assert turing_cmp.delta(Node.FRONTEND) < 0  # frontend loss shrinks


def test_bench_ext_suites(benchmark, once, capsys):
    result = once(benchmark, ext_suites.run)
    with capsys.disabled():
        print()
        print(ext_suites.render(result))
    # suite evolution: constant-cache pressure appears with Altis
    assert result.constant_share("altis") > result.constant_share("rodinia")
    assert result.constant_share("rodinia") > result.constant_share("shoc")
