"""Figure 5 benchmark — Rodinia level-1 Top-Down, Pascal and Turing."""

from repro.core import Node
from repro.experiments import fig05


def test_bench_fig05(benchmark, once, capsys):
    result = once(benchmark, fig05.run)
    with capsys.disabled():
        print()
        print(fig05.render(result))
    # backend dominates on both devices; divergence negligible; Pascal
    # loses far more in the frontend (paper: ~20% vs <10%).
    for run in (result.pascal, result.turing):
        assert run.mean_fraction(Node.BACKEND) > run.mean_fraction(
            Node.FRONTEND
        )
        assert run.mean_fraction(Node.DIVERGENCE) < 0.05
    assert result.pascal.mean_fraction(Node.FRONTEND) > \
        2 * result.turing.mean_fraction(Node.FRONTEND)
