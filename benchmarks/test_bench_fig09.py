"""Figure 9 benchmark — Altis level-2 on Turing (normalized)."""

from repro.core import Node
from repro.experiments import fig09


def test_bench_fig09(benchmark, once, capsys):
    result = once(benchmark, fig09.run)
    with capsys.disabled():
        print()
        print(fig09.render(result))
    # consistent with Rodinia: memory dominates degradation.
    assert result.mean_share(Node.MEMORY) > 0.4
    assert result.mean_share(Node.MEMORY) > result.mean_share(Node.CORE)
    assert result.mean_share(Node.MEMORY) > result.mean_share(Node.FETCH)
