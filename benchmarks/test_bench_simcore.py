"""Simulator-core throughput: the three backends against each other.

Times the three ``test_bench_simulator.py`` kernel shapes through all
three cycle-loop implementations — the frozen seed scan
(``repro.sim.sm_reference``), the wake-queue event loop
(``repro.sim.sm``) and the per-program specialized driver
(``repro.sim.specialize``) — and records the measurement as one entry
of the ``BENCH_SIMCORE.json`` *trajectory* (the ISSUE-5/ISSUE-7
acceptance artifact).

The trajectory format keeps history instead of overwriting it: the
first entry is the preserved ISSUE-5 snapshot (event loop vs seed
scan, pre-specializer), later entries are appended per run, newest
last, with the middle truncated so the file stays small.  Each entry
carries per-backend seconds, cycles/sec, speedup over the reference
scan, and the bit-identity verdict re-asserted on every repetition.

The timing protocol is deliberately conservative: the loops run
interleaved (same cache/thermal conditions), each triple is repeated
and the best ``time.process_time`` taken, and every repetition
re-asserts that all backends produced bit-identical counters.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_simcore.py -q
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from test_bench_simulator import _kernel

from repro.arch import get_gpu
from repro.io.counters_json import counters_to_doc
from repro.isa import LaunchConfig
from repro.sim import SimConfig
from repro.sim.sm import SMSimulator
from repro.sim.sm_reference import ReferenceSMSimulator
from repro.sim.specialize import SpecializedSMSimulator, check_supported

GPU = "rtx4000"
LAUNCH = LaunchConfig(blocks=288, threads_per_block=128)
SEED = 1
ROUNDS = {"memory_bound": 6, "compute_bound": 3, "irregular": 4}
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_SIMCORE.json"

#: acceptance floors: the ISSUE-5 event-loop bars still hold, and the
#: specialized driver (ISSUE 7) must clear ≥10x over the seed scan on
#: every kernel shape, bit-identical.
MEMORY_BOUND_MIN_SPEEDUP = 3.0
COMPUTE_BOUND_MIN_SPEEDUP = 0.95
SPECIALIZED_MIN_SPEEDUP = 10.0

#: trajectory length cap: first (preserved ISSUE-5 snapshot) + most
#: recent entries; the middle is dropped.
MAX_TRAJECTORY = 8


def _best_of(kind: str) -> dict:
    spec = get_gpu(GPU)
    program = _kernel(kind)
    config = SimConfig(seed=SEED)
    assert check_supported(program, spec, config) is None
    best = {"reference": float("inf"), "event": float("inf"),
            "specialized": float("inf")}
    cycles = 0
    identical = True
    for _ in range(ROUNDS[kind]):
        t0 = time.process_time()
        ref = ReferenceSMSimulator(spec, program, LAUNCH, config).run()
        t1 = time.process_time()
        event = SMSimulator(spec, program, LAUNCH, config).run()
        t2 = time.process_time()
        spz = SpecializedSMSimulator(
            spec, program, LAUNCH, config
        ).run()
        t3 = time.process_time()
        best["reference"] = min(best["reference"], t1 - t0)
        best["event"] = min(best["event"], t2 - t1)
        best["specialized"] = min(best["specialized"], t3 - t2)
        cycles = ref.cycles_elapsed
        ref_doc = counters_to_doc(ref)
        identical = identical and (
            counters_to_doc(event) == ref_doc
            and counters_to_doc(spz) == ref_doc
        )
    entry = {"simulated_cycles": cycles, "bit_identical": identical,
             "backends": {}}
    for name, seconds in best.items():
        entry["backends"][name] = {
            "seconds": round(seconds, 6),
            "cycles_per_sec": round(cycles / seconds, 1),
            "speedup_x": round(best["reference"] / seconds, 2),
        }
    return entry


def _load_trajectory() -> list:
    """Existing entries; a legacy single-snapshot file becomes the
    preserved first entry of the new trajectory format."""
    try:
        old = json.loads(OUTPUT.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    if "trajectory" in old:
        return list(old["trajectory"])
    # legacy ISSUE-5 snapshot: event loop vs reference scan.
    return [{"entry": "ISSUE-5 event loop (preserved snapshot)",
             "bench": old.get("bench"),
             "workload": old.get("workload"),
             "kernels": old.get("kernels")}]


def test_bench_simcore_backend_speedups():
    results = {
        kind: _best_of(kind)
        for kind in ("memory_bound", "compute_bound", "irregular")
    }
    trajectory = _load_trajectory()
    trajectory.append({
        "entry": "backend comparison",
        "kernels": results,
    })
    if len(trajectory) > MAX_TRAJECTORY:
        trajectory = trajectory[:1] + trajectory[-(MAX_TRAJECTORY - 1):]
    doc = {
        "bench": "simcore_backends",
        "workload": (
            f"test_bench_simulator kernel shapes on {GPU}, "
            f"blocks={LAUNCH.blocks}, tpb={LAUNCH.threads_per_block}, "
            f"seed={SEED}, one SM, best of N interleaved process_time; "
            "entries appended per run, newest last"
        ),
        "trajectory": trajectory,
    }
    OUTPUT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    for kind, r in results.items():
        assert r["bit_identical"], (
            f"{kind}: a backend diverged from the reference scan"
        )
        spx = r["backends"]["specialized"]["speedup_x"]
        assert spx >= SPECIALIZED_MIN_SPEEDUP, (
            f"{kind}: specialized driver {spx}x below "
            f"{SPECIALIZED_MIN_SPEEDUP}x: {r}"
        )
    ev = {k: r["backends"]["event"]["speedup_x"]
          for k, r in results.items()}
    assert ev["memory_bound"] >= MEMORY_BOUND_MIN_SPEEDUP, (
        f"memory_bound event loop below {MEMORY_BOUND_MIN_SPEEDUP}x: {ev}"
    )
    assert ev["compute_bound"] >= COMPUTE_BOUND_MIN_SPEEDUP, (
        f"compute_bound event loop slowed down >5%: {ev}"
    )
