"""Simulator-core throughput: event-driven loop vs the frozen seed scan.

Times the three ``test_bench_simulator.py`` kernel shapes through both
implementations — the wake-queue event loop (``repro.sim.sm``) and the
pinned pre-change per-cycle scan (``repro.sim.sm_reference``) — and
records simulated-cycles-per-host-second for each in
``BENCH_SIMCORE.json`` (the ISSUE-5 acceptance artifact).

The timing protocol is deliberately conservative: the two loops run
interleaved (same cache/thermal conditions), each pair is repeated and
the best ``time.process_time`` taken, and every repetition re-asserts
the two loops produced bit-identical counters.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_simcore.py -q
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from test_bench_simulator import _kernel

from repro.arch import get_gpu
from repro.io.counters_json import counters_to_doc
from repro.isa import LaunchConfig
from repro.sim import SimConfig
from repro.sim.sm import SMSimulator
from repro.sim.sm_reference import ReferenceSMSimulator

GPU = "rtx4000"
LAUNCH = LaunchConfig(blocks=288, threads_per_block=128)
SEED = 1
ROUNDS = {"memory_bound": 8, "compute_bound": 4, "irregular": 5}
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_SIMCORE.json"

#: acceptance floors (ISSUE 5): ≥3x on memory_bound, and compute_bound
#: must not be slower than 95% of the reference loop's throughput.
MEMORY_BOUND_MIN_SPEEDUP = 3.0
COMPUTE_BOUND_MIN_SPEEDUP = 0.95


def _best_of(kind: str) -> dict:
    spec = get_gpu(GPU)
    program = _kernel(kind)
    best_ref = best_event = float("inf")
    cycles = 0
    identical = True
    for _ in range(ROUNDS[kind]):
        t0 = time.process_time()
        ref = ReferenceSMSimulator(
            spec, program, LAUNCH, SimConfig(seed=SEED)
        ).run()
        t1 = time.process_time()
        event = SMSimulator(
            spec, program, LAUNCH, SimConfig(seed=SEED)
        ).run()
        t2 = time.process_time()
        best_ref = min(best_ref, t1 - t0)
        best_event = min(best_event, t2 - t1)
        cycles = event.cycles_elapsed
        identical = identical and (
            counters_to_doc(ref) == counters_to_doc(event)
        )
    return {
        "simulated_cycles": cycles,
        "reference_seconds": round(best_ref, 6),
        "event_seconds": round(best_event, 6),
        "reference_cycles_per_sec": round(cycles / best_ref, 1),
        "event_cycles_per_sec": round(cycles / best_event, 1),
        "speedup_x": round(best_ref / best_event, 2),
        "bit_identical": identical,
    }


def test_bench_simcore_event_loop_speedup():
    results = {
        kind: _best_of(kind)
        for kind in ("memory_bound", "compute_bound", "irregular")
    }
    doc = {
        "bench": "simcore_event_loop",
        "workload": (
            f"test_bench_simulator kernel shapes on {GPU}, "
            f"blocks={LAUNCH.blocks}, tpb={LAUNCH.threads_per_block}, "
            f"seed={SEED}, one SM, best of N interleaved process_time"
        ),
        "kernels": results,
    }
    OUTPUT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")

    for kind, r in results.items():
        assert r["bit_identical"], (
            f"{kind}: event loop diverged from the reference scan"
        )
    assert results["memory_bound"]["speedup_x"] >= (
        MEMORY_BOUND_MIN_SPEEDUP
    ), f"memory_bound below {MEMORY_BOUND_MIN_SPEEDUP}x: {results}"
    assert results["compute_bound"]["speedup_x"] >= (
        COMPUTE_BOUND_MIN_SPEEDUP
    ), f"compute_bound slowed down >5%: {results}"
