"""Figure 10 benchmark — Altis level-3 on Turing (normalized)."""

from repro.core import Node
from repro.experiments import fig10


def test_bench_fig10(benchmark, once, capsys):
    result = once(benchmark, fig10.run)
    with capsys.disabled():
        print()
        print(fig10.render(result))
    # Altis stresses the constant cache far more than Rodinia; within
    # the ML apps it is the dominant memory component (paper §V.C).
    assert result.mean_share(Node.L3_CONSTANT_MEMORY) > 0.10
    assert result.ml_constant_share() > 0.20
    shares = result.shares()
    for app in fig10.ML_APPS[:2]:   # gemm, kmeans
        assert shares[app].get(Node.L3_CONSTANT_MEMORY, 0.0) > \
            shares[app].get(Node.L3_L1_DEPENDENCY, 0.0), app
