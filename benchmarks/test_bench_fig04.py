"""Figure 4 benchmark — binaryPartitionCG tile sweep on Turing."""

from repro.core import Node
from repro.experiments import fig04


def test_bench_fig04(benchmark, once, capsys):
    result = once(benchmark, fig04.run)
    with capsys.disabled():
        print()
        print(fig04.render(result))
    retire = result.series(Node.RETIRE)
    divergence = result.series(Node.DIVERGENCE)
    memory = result.series(Node.MEMORY)
    # the paper's shape: smaller tiles -> worse Retire, less Divergence,
    # more Memory pressure.
    assert retire == sorted(retire, reverse=True)
    assert divergence == sorted(divergence, reverse=True)
    assert memory == sorted(memory)
