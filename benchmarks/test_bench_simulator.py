"""Simulator-throughput benchmarks (proper multi-round timings).

These track the cost of the hardware substrate itself — useful when
optimizing the cycle loop, and a regression guard for the fast-forward
optimization that keeps memory-bound kernels cheap.
"""

import pytest

from repro.arch import get_gpu
from repro.isa import AccessKind, LaunchConfig, ProgramBuilder
from repro.sim import SimConfig
from repro.sim.sm import SMSimulator


def _kernel(kind: str):
    b = ProgramBuilder(kind)
    if kind == "memory_bound":
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 23)
        r = b.ldg("x")
        r = b.ffma(r, r)
        b.stg("x", r)
        return b.build(iterations=16)
    if kind == "compute_bound":
        b.pattern("x", AccessKind.STREAM, working_set_bytes=1 << 14)
        regs = [b.ldg("x") for _ in range(4)]
        for i in range(24):
            regs[i % 4] = b.ffma(regs[i % 4], regs[(i + 1) % 4])
        b.stg("x", regs[0])
        return b.build(iterations=8)
    if kind == "irregular":
        b.pattern("x", AccessKind.RANDOM, working_set_bytes=1 << 22)
        r = b.ldg("x")
        b.branch(if_length=3, else_length=2, taken_fraction=0.5, src=r)
        for _ in range(5):
            r = b.ffma(r, r)
        b.stg("x", r)
        return b.build(iterations=8)
    raise ValueError(kind)


@pytest.mark.parametrize("kind", ["memory_bound", "compute_bound",
                                  "irregular"])
def test_bench_sim_throughput(benchmark, kind):
    spec = get_gpu("rtx4000")
    prog = _kernel(kind)
    launch = LaunchConfig(blocks=72, threads_per_block=128)

    def run():
        sim = SMSimulator(spec, prog, launch, SimConfig(seed=1))
        return sim.run()

    counters = benchmark(run)
    assert counters.inst_executed > 0
    # report simulated cycles per host second via the extra info channel
    benchmark.extra_info["simulated_cycles"] = counters.cycles_elapsed
