"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation varies one modelling decision and prints how the
Top-Down outcome (or its cost) responds, demonstrating that the
corresponding mechanism is load-bearing rather than decorative.
"""

import dataclasses

from repro.arch import get_gpu
from repro.core import (
    Node,
    TopDownAnalyzer,
    format_table,
    metric_names_for_level,
    passes_for_level,
)
from repro.experiments.runner import profile_application
from repro.isa import AccessKind
from repro.profilers import tool_for
from repro.sim import SimConfig
from repro.workloads import KernelBehavior, materialize, rodinia
from repro.workloads.base import Application, KernelInvocation


def test_bench_ablation_stall_normalization(benchmark, once, capsys):
    """Design choice: normalize Frontend/Backend over IPC_STALL (figure
    mode) vs reporting the raw unattributed residue."""

    def run():
        spec = get_gpu("rtx4000")
        tool = tool_for(spec)
        metrics = metric_names_for_level(spec.compute_capability, 3)
        profile = tool.profile_application(rodinia().get("hotspot"),
                                           metrics)
        out = {}
        for normalize in (True, False):
            analyzer = TopDownAnalyzer(spec, normalize_stalls=normalize)
            out[normalize] = analyzer.analyze_application(profile)
        return out

    results = once(benchmark, run)
    with capsys.disabled():
        rows = []
        for normalize, r in results.items():
            rows.append([
                "normalized" if normalize else "raw",
                f"{r.fraction(Node.FRONTEND) * 100:6.2f}%",
                f"{r.fraction(Node.BACKEND) * 100:6.2f}%",
                f"{r.fraction(Node.UNATTRIBUTED) * 100:6.2f}%",
            ])
        print()
        print("Ablation: stall-attribution normalization (hotspot/Turing)")
        print(format_table(
            ["Mode", "Frontend", "Backend", "Unattributed"], rows
        ))
    raw = results[False]
    norm = results[True]
    assert norm.fraction(Node.UNATTRIBUTED) == 0.0
    assert raw.fraction(Node.UNATTRIBUTED) > 0.0
    assert norm.fraction(Node.BACKEND) >= raw.fraction(Node.BACKEND)


def test_bench_ablation_counter_capacity(benchmark, once, capsys):
    """Design choice: PMU counter registers per pass — drives the
    pass count and therefore the Fig.-13 overhead."""

    def run():
        base = get_gpu("rtx4000")
        out = []
        for capacity in (1, 2, 3, 4, 8, 16):
            spec = dataclasses.replace(
                base,
                pmu=dataclasses.replace(base.pmu,
                                        counters_per_pass=capacity),
            )
            out.append((capacity, passes_for_level(spec, 3)))
        return out

    rows = once(benchmark, run)
    with capsys.disabled():
        print()
        print("Ablation: counter capacity vs level-3 replay passes")
        print(format_table(
            ["Counters/pass", "Passes"],
            [[str(c), str(p)] for c, p in rows],
        ))
    by_capacity = dict(rows)
    assert by_capacity[3] == 8      # the calibrated paper configuration
    assert by_capacity[1] > by_capacity[3] > by_capacity[16]


def test_bench_ablation_lsu_width(benchmark, once, capsys):
    """Design choice: LSU sectors per wavefront — controls how strongly
    uncoalesced accesses replay (equation (4))."""

    def run():
        base = get_gpu("rtx4000")
        behavior = KernelBehavior(
            name="strided", loads_per_iter=2, alu_per_mem=2,
            access_kind=AccessKind.STRIDED, stride_elements=32,
            working_set_bytes=1 << 22, iterations=6,
        )
        out = []
        for width in (2, 4, 8, 16):
            spec = dataclasses.replace(
                base,
                memory=dataclasses.replace(
                    base.memory, lsu_sectors_per_cycle=width
                ),
            )
            _, result = profile_application(spec, _one_app(behavior))
            out.append((width, result.fraction(Node.REPLAY)))
        return out

    rows = once(benchmark, run)
    with capsys.disabled():
        print()
        print("Ablation: LSU wavefront width vs Replay divergence "
              "(fully strided kernel)")
        print(format_table(
            ["Sectors/wavefront", "Replay share"],
            [[str(w), f"{r * 100:6.2f}%"] for w, r in rows],
        ))
    replays = [r for _, r in rows]
    assert replays[0] >= replays[-1]   # wider LSU -> fewer replays


def test_bench_ablation_simulated_sms(benchmark, once, capsys):
    """Design choice: one representative SM vs several — per-SM
    averages must be stable across the choice (SMPC fidelity)."""

    def run():
        spec = get_gpu("rtx4000")
        behavior = KernelBehavior(
            name="avg", loads_per_iter=2, alu_per_mem=4,
            working_set_bytes=1 << 21, iterations=6,
        )
        out = []
        for n_sms in (1, 2, 4):
            tool = tool_for(spec, config=SimConfig(seed=0,
                                                   simulated_sms=n_sms))
            metrics = metric_names_for_level(spec.compute_capability, 3)
            profile = tool.profile_application(_one_app(behavior), metrics)
            result = TopDownAnalyzer(spec).analyze_application(profile)
            out.append((n_sms, result.fraction(Node.RETIRE),
                        result.fraction(Node.MEMORY)))
        return out

    rows = once(benchmark, run)
    with capsys.disabled():
        print()
        print("Ablation: explicitly simulated SMs vs breakdown stability")
        print(format_table(
            ["SMs", "Retire", "Memory"],
            [[str(n), f"{r * 100:6.2f}%", f"{m * 100:6.2f}%"]
             for n, r, m in rows],
        ))
    retires = [r for _, r, _ in rows]
    assert max(retires) - min(retires) < 0.05


def _one_app(behavior: KernelBehavior) -> Application:
    program, launch = materialize(behavior)
    return Application(behavior.name, "ablation",
                       (KernelInvocation(program, launch),))


def test_bench_ablation_scheduler(benchmark, once, capsys):
    """Design choice: warp scheduling policy (LRR vs GTO) — affects
    latency hiding on memory-bound kernels."""

    def run():
        spec = get_gpu("rtx4000")
        behavior = KernelBehavior(
            name="sched", loads_per_iter=3, alu_per_mem=3,
            working_set_bytes=1 << 22, ilp=3, iterations=6,
        )
        out = []
        for scheduler in ("lrr", "gto"):
            tool = tool_for(spec, config=SimConfig(seed=0,
                                                   scheduler=scheduler))
            metrics = metric_names_for_level(spec.compute_capability, 3)
            profile = tool.profile_application(_one_app(behavior), metrics)
            result = TopDownAnalyzer(spec).analyze_application(profile)
            out.append((
                scheduler,
                result.fraction(Node.RETIRE),
                profile.native_cycles,
            ))
        return out

    rows = once(benchmark, run)
    with capsys.disabled():
        print()
        print("Ablation: warp scheduler policy (memory-bound kernel)")
        print(format_table(
            ["Scheduler", "Retire", "Native cycles"],
            [[s, f"{r * 100:6.2f}%", str(c)] for s, r, c in rows],
        ))
    # both policies must finish the same kernel; timing may differ
    retires = [r for _, r, _ in rows]
    assert all(r > 0 for r in retires)


def test_bench_ablation_measurement_noise(benchmark, once, capsys):
    """Robustness: the Top-Down breakdown must degrade gracefully as
    PMU measurement noise grows (pass-to-pass collection skew)."""
    from repro.pmu import CuptiSession
    from repro.profilers import KernelProfile
    from repro.isa import LaunchConfig

    def run():
        spec = get_gpu("rtx4000")
        analyzer = TopDownAnalyzer(spec)
        prog, _ = materialize(KernelBehavior(
            name="noise_probe", loads_per_iter=2, alu_per_mem=2,
            working_set_bytes=1 << 22, ilp=3, iterations=6,
        ))
        launch = LaunchConfig(blocks=72, threads_per_block=128)
        metrics = metric_names_for_level(spec.compute_capability, 3)
        out = []
        reference = None
        for noise in (0.0, 0.02, 0.05, 0.10):
            session = CuptiSession(spec, SimConfig(seed=3),
                                   measurement_noise=noise)
            collected = session.collect(prog, launch, metrics)
            result = analyzer.analyze_kernel(
                KernelProfile("k", 0, dict(collected.metrics))
            )
            if reference is None:
                reference = result
            err = max(
                abs(result.fraction(n) - reference.fraction(n))
                for n in (Node.RETIRE, Node.MEMORY, Node.FRONTEND)
            )
            out.append((noise, err))
        return out

    rows = once(benchmark, run)
    with capsys.disabled():
        print()
        print("Ablation: PMU measurement noise vs breakdown error")
        print(format_table(
            ["Noise", "Max L1-node error"],
            [[f"{n * 100:.0f}%", f"{e * 100:5.2f}%"] for n, e in rows],
        ))
    errors = [e for _, e in rows]
    assert errors[0] == 0.0
    assert errors == sorted(errors) or errors[-1] < 0.15
    assert errors[-1] < 0.15  # 10% counter noise -> bounded output error
