"""Figure 8 benchmark — Altis level-1 Top-Down on Turing."""

from repro.core import Node
from repro.experiments import fig08


def test_bench_fig08(benchmark, once, capsys):
    result = once(benchmark, fig08.run)
    with capsys.disabled():
        print()
        print(fig08.render(result))
    run = result.run
    assert run.mean_fraction(Node.BACKEND) > run.mean_fraction(
        Node.FRONTEND
    )
    # mandelbrot near 70% of peak; average retire well above Rodinia's.
    assert 0.6 < result.retire("mandelbrot") < 0.95
    assert run.mean_fraction(Node.RETIRE) > 0.3
