"""Smoke bench for the parallel engine and the persistent result cache.

Times the same workload (the synthetic suite on the Turing device)
four ways — serial cold, parallel cold, cache-cold and cache-warm —
asserts the warm run actually skipped simulation, and writes the
timing trajectory to ``BENCH_PARALLEL.json`` so CI keeps a record of
the speedup (the ISSUE-2 acceptance artifact).

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_parallel.py -q

or via pytest-benchmark along with the figure benches.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.runner import profile_suite
from repro.lint import bundled_suites
from repro.sim.engine import engine_context

GPU = "NVIDIA Quadro RTX 4000"
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PARALLEL.json"


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def _fractions(run):
    """Flat, comparable view of every Top-Down fraction of a run."""
    from repro.core.nodes import LEVEL1

    return {
        name: [round(result.fraction(n), 12) for n in LEVEL1]
        for name, result in run.results.items()
    }


def test_bench_parallel_and_cache(tmp_path):
    suite = bundled_suites()["synth"]
    jobs = os.cpu_count() or 1
    cache_dir = tmp_path / "sim-cache"

    serial, t_serial = _timed(lambda: profile_suite(GPU, suite, seed=0))

    with engine_context(jobs=jobs):
        parallel, t_parallel = _timed(
            lambda: profile_suite(GPU, suite, seed=0)
        )

    with engine_context(jobs=jobs, cache_dir=cache_dir) as engine:
        cold, t_cold = _timed(lambda: profile_suite(GPU, suite, seed=0))
        cold_stores = engine.cache.stats.stores

    with engine_context(jobs=jobs, cache_dir=cache_dir) as engine:
        warm, t_warm = _timed(lambda: profile_suite(GPU, suite, seed=0))
        warm_hits = engine.cache.stats.hits
        warm_sims = engine.stats.sim_calls

    # correctness first: all four runs bit-identical.
    base = _fractions(serial)
    assert _fractions(parallel) == base
    assert _fractions(cold) == base
    assert _fractions(warm) == base

    # the warm run must not have simulated anything …
    assert warm_sims == 0
    assert warm_hits >= cold_stores > 0
    # … and skipping simulation must actually pay off.
    assert t_warm < t_serial, (
        f"warm cache ({t_warm:.2f}s) not faster than serial cold "
        f"({t_serial:.2f}s)"
    )

    OUTPUT.write_text(json.dumps({
        "bench": "parallel_engine_and_cache",
        "workload": f"synth suite on {GPU}",
        "jobs": jobs,
        "seconds": {
            "serial_cold": round(t_serial, 3),
            "parallel_cold": round(t_parallel, 3),
            "cache_cold": round(t_cold, 3),
            "cache_warm": round(t_warm, 3),
        },
        "speedup_warm_vs_serial": round(t_serial / t_warm, 2),
        "cache": {"stores_cold": cold_stores, "hits_warm": warm_hits},
        "bit_identical": True,
    }, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
