"""Figures 11 & 12 benchmark — srad kernels' temporal evolution on
Turing (120 invocations, phase break near 50)."""

from repro.core import Node
from repro.experiments import fig11_12


def test_bench_fig11_12(benchmark, once, capsys):
    result = once(benchmark, fig11_12.run, invocations=120)
    with capsys.disabled():
        print()
        print(fig11_12.render(result))
    for kernel in fig11_12.KERNELS:
        phases = result.phases[kernel]
        assert len(phases) == 2, kernel
        # transition detected near invocation 50, as in the paper
        assert 40 <= phases[0].end <= 60
        be = result.phase_means(kernel, Node.BACKEND)
        ret = result.phase_means(kernel, Node.RETIRE)
        assert be[0] > be[1]          # backend dominates phase 1
        assert ret[1] > ret[0]        # performance improves in phase 2
