"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures end to
end (workloads → simulator → profiler → Top-Down analysis) and prints
the same rows/series the paper reports.  Figure regeneration is
seconds-scale, so benches run pedantic single-round timings.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full regeneration of an experiment."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture()
def once():
    return run_once
