"""Benchmarks for the paper's specification tables (IX and I–VIII)."""

from repro.experiments import table9, tables_metrics


def test_bench_table9(benchmark, once, capsys):
    rows = once(benchmark, table9.run)
    with capsys.disabled():
        print()
        print(table9.render(rows))
    assert rows == table9.PAPER_TABLE9


def test_bench_metric_tables(benchmark, once, capsys):
    grouped = once(benchmark, tables_metrics.run)
    with capsys.disabled():
        print()
        print(tables_metrics.render(grouped))
    assert set(grouped) == {"I", "II", "III", "IV", "V", "VI", "VII",
                            "VIII"}


def test_bench_fig03(benchmark, once, capsys):
    from repro.experiments import fig03

    result = once(benchmark, fig03.run)
    with capsys.disabled():
        print()
        print(fig03.render(result))
    from repro.core import Node

    assert result.available_everywhere(Node.RETIRE)
    assert result.unified_only(Node.L3_DRAIN)
