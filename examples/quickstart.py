#!/usr/bin/env python3
"""Quickstart: Top-Down analysis of one application in ~20 lines.

Profiles Rodinia's ``srad_v2`` on the (simulated) Quadro RTX 4000 with
the emulated ``ncu`` tool and prints the full hierarchy breakdown.

Run:  python examples/quickstart.py
"""

from repro import Node, TopDownAnalyzer, get_gpu, hierarchy_report, tool_for
from repro.core import metric_names_for_level
from repro.workloads import rodinia


def main() -> None:
    spec = get_gpu("NVIDIA Quadro RTX 4000")

    # 1. pick the profiler the paper would use for this device (ncu for
    #    CC >= 7.2, nvprof below) ...
    tool = tool_for(spec)

    # 2. ... collect the metric set a level-3 Top-Down analysis needs
    #    (Tables II/IV/VI/VIII) ...
    metrics = metric_names_for_level(spec.compute_capability, level=3)
    app = rodinia().get("srad_v2")
    profile = tool.profile_application(app, metrics)

    # 3. ... and run the methodology (equations (1)-(14)).
    analyzer = TopDownAnalyzer(spec)
    result = analyzer.analyze_application(profile)

    print(hierarchy_report(result))
    print(f"profiling took {profile.passes} passes per kernel, "
          f"{profile.overhead:.1f}x the native runtime")
    print(f"srad_v2 achieves {result.fraction(Node.RETIRE) * 100:.1f}% "
          f"of the device's peak IPC")


if __name__ == "__main__":
    main()
