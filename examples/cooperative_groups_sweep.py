#!/usr/bin/env python3
"""Evaluating one CUDA feature with Top-Down (the paper's §V.A use
case): sweep the cooperative-group tile size of ``binaryPartitionCG``
from 32 threads down to 4 and watch the bottleneck migrate from
Divergence to the memory hierarchy.

Run:  python examples/cooperative_groups_sweep.py
"""

from repro.core import Node
from repro.experiments import fig04
from repro.workloads import BINARY_PARTITION_TILES


def main() -> None:
    result = fig04.run()
    print(fig04.render(result))

    div = result.series(Node.DIVERGENCE)
    mem = result.series(Node.MEMORY)
    ret = result.series(Node.RETIRE)
    tiles = BINARY_PARTITION_TILES

    print("Reading the sweep (compare with paper §V.A):")
    print(f"  * Retire falls from {ret[0] * 100:.1f}% (tile 32) to "
          f"{ret[-1] * 100:.1f}% (tile 4): smaller groups hurt overall "
          "performance.")
    print(f"  * Divergence shrinks {div[0] * 100:.1f}% -> "
          f"{div[-1] * 100:.1f}%: narrower tiles mean shorter divergent "
          "regions per branch.")
    print(f"  * Memory grows {mem[0] * 100:.1f}% -> {mem[-1] * 100:.1f}%:"
          " every extra group adds counter updates and reduction "
          "traffic, and this loss outweighs the branch win.")
    worst = tiles[mem.index(max(mem))]
    print(f"  * by tile {worst} the memory hierarchy is the clear "
          "bottleneck — the branch improvement cannot compensate.")


if __name__ == "__main__":
    main()
