#!/usr/bin/env python3
"""Sampling-based collection (paper §VII future work): when a kernel
runs 100k+ times, replaying every invocation 8x is impractical.
Instrument a subset, inherit metrics for the rest, and compare
overhead/accuracy against full profiling.

Run:  python examples/sampled_profiling.py
"""

from repro import Node, TopDownAnalyzer, get_gpu, tool_for
from repro.core import LEVEL1, metric_names_for_level
from repro.core.report import NODE_LABELS, format_table
from repro.profilers import SamplingPolicy, profile_application_sampled
from repro.workloads import srad_application


def main() -> None:
    spec = get_gpu("NVIDIA Quadro RTX 4000")
    tool = tool_for(spec)
    metrics = metric_names_for_level(spec.compute_capability, 3)
    analyzer = TopDownAnalyzer(spec)
    app = srad_application(invocations_per_kernel=100)

    policies = [
        SamplingPolicy.full(),
        SamplingPolicy.every_nth(4),
        SamplingPolicy.every_nth(10),
        SamplingPolicy.first_k(8),
        SamplingPolicy.window(45, 60),   # zoom into the phase change
    ]

    reference = None
    rows = []
    for policy in policies:
        run = profile_application_sampled(tool, app, metrics, policy)
        result = analyzer.analyze_application(run.profile)
        if reference is None:
            reference = result
        error = max(
            abs(result.fraction(n) - reference.fraction(n)) for n in LEVEL1
        )
        rows.append([
            policy.name,
            f"{run.sampling_rate * 100:5.1f}%",
            f"{run.overhead:5.1f}x",
            f"{run.overhead_reduction:4.1f}x",
            f"{error * 100:5.2f}%",
        ])
    print("Sampling policies on Altis srad "
          "(200 invocations total, level-3 metrics):")
    print(format_table(
        ["Policy", "Instrumented", "Overhead", "Saving", "Max L1 error"],
        rows,
    ))
    print(
        "Periodic sampling keeps both phases represented, so the\n"
        "application-level breakdown stays accurate at a fraction of the\n"
        "cost; `first_k` samples only the warm-up phase and misestimates\n"
        "the run — the failure mode the paper's sampling caveat warns "
        "about\n('large enough to provide statistically sound results')."
    )


if __name__ == "__main__":
    main()
