#!/usr/bin/env python3
"""Top-Down in a feedback loop: automated launch tuning.

Sweeps block sizes for a shared-memory stencil and for a
register-heavy kernel.  The tuner ranks candidates by measured
duration, and the per-candidate breakdown explains the ranking —
tiny blocks drown in barrier overhead, huge blocks lose occupancy
to register pressure.

Run:  python examples/launch_tuning.py
"""

import dataclasses

from repro import get_gpu
from repro.tuner import tune_launch
from repro.tuner.search import tuning_report
from repro.workloads import KernelBehavior, synthesize

GPU = "NVIDIA Quadro RTX 4000"


def main() -> None:
    spec = get_gpu(GPU)

    stencil = synthesize(KernelBehavior(
        name="shared_stencil", loads_per_iter=2, alu_per_mem=5,
        shared_fraction=0.4, barrier_per_iter=True,
        working_set_bytes=1 << 21, ilp=4, iterations=6,
    ))
    print("== shared-memory stencil (barrier every iteration)")
    print(tuning_report(tune_launch(spec, stencil,
                                    total_threads=36 * 2048)))

    heavy = dataclasses.replace(
        synthesize(KernelBehavior(
            name="register_hog", loads_per_iter=2, alu_per_mem=10,
            working_set_bytes=1 << 21, ilp=8, iterations=6,
        )),
        registers_per_thread=96,
    )
    print("== register-heavy kernel (96 registers per thread)")
    print(tuning_report(tune_launch(spec, heavy,
                                    total_threads=36 * 2048)))

    print("The breakdown column explains each ranking: the stencil "
          "wants blocks large\nenough to amortize barriers but small "
          "enough to co-schedule several CTAs;\nthe register hog loses "
          "occupancy (and latency hiding) when blocks grow.")


if __name__ == "__main__":
    main()
