#!/usr/bin/env python3
"""Using Top-Down to steer an optimization journey.

Walks the classic CUDA `transpose` tutorial (naive → shared-memory
coalesced → padded tile) and `matrixMul` (naive → tiled) through the
Top-Down pipeline: at every stage the breakdown names the bottleneck,
the advisor suggests the next move, and the comparison quantifies the
win of the step just taken.

Run:  python examples/optimization_journey.py
"""

from repro import Node, TopDownAnalyzer, get_gpu
from repro.core import compare_results, comparison_report
from repro.core.advisor import advise
from repro.experiments.runner import profile_application
from repro.workloads.cuda_samples import (
    MATMUL_VARIANTS,
    TRANSPOSE_VARIANTS,
    matmul_variant,
    transpose_variant,
)

GPU = "NVIDIA Quadro RTX 4000"


def walk(title, variants, make_app):
    print(f"== {title}")
    results = []
    for variant in variants:
        _, result = profile_application(GPU, make_app(variant))
        results.append((variant, result))
        retire = result.fraction(Node.RETIRE)
        print(f"\n-- {variant}: retire {retire * 100:.1f}% of peak")
        for i, advice in enumerate(advise(result, limit=2)):
            print(f"   advice {i + 1}: {advice.render()}")
    for (va, ra), (vb, rb) in zip(results, results[1:]):
        cmp = compare_results(ra, rb)
        print()
        print(comparison_report(cmp, level=2))
    return results


def main() -> None:
    transpose = walk("Matrix transpose", TRANSPOSE_VARIANTS,
                     transpose_variant)
    print()
    matmul = walk("Matrix multiply", MATMUL_VARIANTS, matmul_variant)

    first = transpose[0][1].fraction(Node.RETIRE)
    last = transpose[-1][1].fraction(Node.RETIRE)
    print(f"\ntranspose journey: retire {first * 100:.1f}% -> "
          f"{last * 100:.1f}% of peak; the intermediate stage trades the "
          "uncoalesced-store Memory wall for shared-memory bank-conflict "
          "replays, and padding removes those — exactly what the "
          "Replay/ShortSB components flag at each step.")


if __name__ == "__main__":
    main()
