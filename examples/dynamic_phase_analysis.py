#!/usr/bin/env python3
"""Per-invocation (dynamic) Top-Down analysis — the paper's §V.D use
case: whole-application averages can hide phases.  Profiles 120
invocations of Altis srad's two kernels, prints the level-1 evolution,
and runs the automatic phase detector (the paper's future-work item).

Run:  python examples/dynamic_phase_analysis.py
"""

from repro import TopDownAnalyzer, detect_phases, dynamic_analysis, get_gpu, tool_for
from repro.core import LEVEL1, Node, metric_names_for_level
from repro.core.report import NODE_LABELS, format_table
from repro.workloads import srad_application


def spark(series: list[float], buckets: int = 60) -> str:
    """One-line unicode sparkline of a 0..1 series."""
    glyphs = " .:-=+*#%@"
    step = max(1, len(series) // buckets)
    cells = [
        glyphs[min(9, int(series[i] * 10))]
        for i in range(0, len(series), step)
    ]
    return "".join(cells)


def main() -> None:
    spec = get_gpu("NVIDIA Quadro RTX 4000")
    tool = tool_for(spec)
    metrics = metric_names_for_level(spec.compute_capability, 3)
    analyzer = TopDownAnalyzer(spec)

    app = srad_application(invocations_per_kernel=120)
    profile = tool.profile_application(app, metrics)

    for kernel in ("srad_cuda_1", "srad_cuda_2"):
        series = dynamic_analysis(analyzer, profile, kernel)
        print(f"== {kernel}: {len(series)} invocations")
        for node in LEVEL1:
            print(f"  {NODE_LABELS[node]:<11} "
                  f"|{spark(series.series(node))}|")

        phases = detect_phases(series)
        rows = []
        for p in phases:
            rows.append([
                f"[{p.start}, {p.end})",
                *(f"{p.summary.fraction(n) * 100:6.1f}%" for n in LEVEL1),
            ])
        print(format_table(
            ["Phase", *(NODE_LABELS[n] for n in LEVEL1)], rows
        ))

    print("The whole-run average would report a single memory-bound "
          "picture; the dynamic view shows the Backend-dominated warm-up "
          "phase ending near invocation 50 (as in paper Figs. 11-12) and "
          "a faster second phase with rising Frontend share.")


if __name__ == "__main__":
    main()
