#!/usr/bin/env python3
"""Extending the library: register a custom GPU spec and describe your
own kernel's behaviour, then see which hierarchy node it lands on.

This is the "hardware architect" workflow the paper motivates: tweak a
microarchitectural parameter (here: a much larger immediate-constant
cache) and check how a constant-heavy kernel's bottleneck moves.

Run:  python examples/custom_gpu_and_workload.py
"""

import dataclasses

from repro import (
    KernelBehavior,
    Node,
    TopDownAnalyzer,
    get_gpu,
    hierarchy_report,
    register_gpu,
    tool_for,
)
from repro.arch import CacheSpec
from repro.core import metric_names_for_level
from repro.workloads import materialize
from repro.workloads.base import Application, KernelInvocation


def analyze_on(spec, behavior):
    program, launch = materialize(behavior)
    app = Application(behavior.name, "custom",
                      (KernelInvocation(program, launch),))
    tool = tool_for(spec)
    metrics = metric_names_for_level(spec.compute_capability, 3)
    profile = tool.profile_application(app, metrics)
    return TopDownAnalyzer(spec).analyze_application(profile)


def main() -> None:
    base = get_gpu("NVIDIA Quadro RTX 4000")

    # a hypothetical Turing derivative with a 16x larger constant cache
    big_imc = dataclasses.replace(
        base,
        name="Turing-XL-IMC (hypothetical)",
        memory=dataclasses.replace(
            base.memory,
            constant=CacheSpec("constant", size_bytes=32 * 1024,
                               line_bytes=64, sector_bytes=32, ways=8,
                               hit_latency=4, miss_latency=195),
        ),
    )
    register_gpu(big_imc, "turing-xl-imc", overwrite=True)

    # a DNN-flavoured kernel that walks a 256 KiB coefficient table
    behavior = KernelBehavior(
        name="dnn_layer", fp32_fraction=0.7,
        loads_per_iter=1, constant_loads_per_iter=8,
        constant_working_set=256 * 1024,
        working_set_bytes=1 << 17, alu_per_mem=6, ilp=5, iterations=8,
    )

    for spec in (base, big_imc):
        result = analyze_on(spec, behavior)
        print(f"== {spec.name}")
        print(hierarchy_report(result))

    base_const = analyze_on(base, behavior).fraction(
        Node.L3_CONSTANT_MEMORY
    )
    big_const = analyze_on(big_imc, behavior).fraction(
        Node.L3_CONSTANT_MEMORY
    )
    print(f"constant-cache loss: {base_const * 100:.1f}% of peak on the "
          f"stock part vs {big_const * 100:.1f}% with the enlarged IMC — "
          "exactly the kind of what-if the paper proposes Top-Down for.")


if __name__ == "__main__":
    main()
