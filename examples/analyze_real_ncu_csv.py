#!/usr/bin/env python3
"""Analyzing profiler output captured on REAL hardware.

The Top-Down analyzer consumes profiler *records*, not the simulator:
point it at a CSV exported by Nsight Compute
(``ncu --csv --metrics <list> ./app``) and it computes the same
hierarchy.  This example first produces such a CSV (here via the
emulated ncu, standing in for a real capture), writes it to disk, then
runs the real-world path: file -> parser -> DeviceModel -> analysis.

Run:  python examples/analyze_real_ncu_csv.py
"""

import tempfile
from pathlib import Path

from repro import (
    DeviceModel,
    NcuTool,
    TopDownAnalyzer,
    get_gpu,
    hierarchy_report,
    parse_ncu_csv,
)
from repro.core import metric_names_for_level
from repro.workloads import rodinia


def capture_csv(path: Path) -> None:
    """Stand-in for `ncu --csv ... > path` on a real Turing machine."""
    spec = get_gpu("NVIDIA Quadro RTX 4000")
    tool = NcuTool(spec)
    metrics = metric_names_for_level(spec.compute_capability, 3)
    profile = tool.profile_application(rodinia().get("hotspot"), metrics)
    path.write_text(tool.to_csv(profile))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "hotspot_ncu.csv"
        capture_csv(csv_path)
        print(f"captured {csv_path.name} "
              f"({len(csv_path.read_text().splitlines())} rows)\n")

        # ---- the real-hardware workflow starts here -------------------
        # All the analyzer needs beyond the CSV are three device facts
        # (read them from `nvidia-smi` / the device query sample):
        device = DeviceModel(
            name="Quadro RTX 4000",
            compute_capability=get_gpu("rtx4000").compute_capability,
            ipc_max=2.0,        # dispatch units per SM
            subpartitions=2,    # SM sub-partitions
        )
        profile = parse_ncu_csv(
            csv_path.read_text(), application="hotspot",
        )
        result = TopDownAnalyzer(device).analyze_application(profile)
        print(hierarchy_report(result))
        print("Swap the capture step for a genuine "
              "`ncu --csv --metrics ...` export and nothing else "
              "changes.")


if __name__ == "__main__":
    main()
