#!/usr/bin/env python3
"""Cross-architecture bottleneck comparison (the paper's Figure-5 use
case): run the full Rodinia suite on Pascal and Turing, print the
level-1 breakdowns side by side, and point out where the two
microarchitectures lose performance differently.

Run:  python examples/rodinia_cross_architecture.py
"""

from repro.core import LEVEL1, Node, level1_report
from repro.experiments.runner import profile_suite
from repro.workloads import rodinia


def main() -> None:
    suite = rodinia()
    runs = {
        "Pascal (GTX 1070, nvprof)":
            profile_suite("NVIDIA GTX 1070", suite),
        "Turing (Quadro RTX 4000, ncu)":
            profile_suite("NVIDIA Quadro RTX 4000", suite),
    }

    for label, run in runs.items():
        print(f"== {label}")
        print(level1_report(list(run.results.values())))
        avg = {n: run.mean_fraction(n) for n in LEVEL1}
        print("suite average: " + "  ".join(
            f"{n.value}={v * 100:5.1f}%" for n, v in avg.items()
        ))
        print()

    pascal, turing = runs.values()
    fe_p = pascal.mean_fraction(Node.FRONTEND)
    fe_t = turing.mean_fraction(Node.FRONTEND)
    be_p = pascal.mean_fraction(Node.BACKEND)
    be_t = turing.mean_fraction(Node.BACKEND)
    print("Observations (compare with paper §V.B):")
    print(f"  * Pascal loses {fe_p * 100:.1f}% of peak in its Frontend "
          f"vs {fe_t * 100:.1f}% on Turing — the newer architecture "
          "fixed instruction delivery ...")
    print(f"  * ... but Turing's Backend share is larger "
          f"({be_t * 100:.1f}% vs {be_p * 100:.1f}%), so the improvement "
          "does not translate into proportionally better Retire.")

    ranked = sorted(
        turing.results,
        key=lambda a: -turing.results[a].fraction(Node.RETIRE),
    )
    print(f"  * best Retire on Turing: {', '.join(ranked[:4])} — the "
          "same set leads on Pascal, so the suites' friendly apps are "
          "architecture-stable.")


if __name__ == "__main__":
    main()
