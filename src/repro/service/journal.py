"""Crash-recoverable job journal for the profiling service.

The daemon's source of truth for *which jobs exist and how far they
got* is an append-only JSONL journal in the state directory, built on
the same invariants as :class:`repro.resilience.checkpoint.RunJournal`:

* a schema header pins the layout; a journal written by an
  incompatible daemon version is ignored rather than misread;
* every event line is flushed **and fsynced** before the operation it
  records is acknowledged — a ``submit`` is durable before the HTTP
  202/201 goes out, a ``done`` is durable only after the result file
  itself was durably written;
* a torn tail (daemon killed mid-append) invalidates exactly the torn
  line: replay stops there and the half-recorded event simply never
  happened;
* opening for writing rewrites the file from the validated replayed
  events (temp file + atomic rename + parent-directory fsync), so a
  torn tail can never corrupt events appended after a restart.

Event vocabulary (one JSON object per line after the header):

``{"event": "submit", "job": id, "tenant": t, "spec": {...}}``
    a job was admitted;
``{"event": "attempt", "job": id, "attempt": n, "error": "..."}``
    one execution attempt failed (keeps the poison budget honest
    across restarts — a crash-looping job cannot reset its count by
    crashing the daemon);
``{"event": "done", "job": id, "outcome": "done|failed|quarantined",
"error": ...}``
    the job reached a terminal state; for outcome ``done`` the result
    document already exists on disk.

Replay folds the event stream into per-job state: jobs with a
``submit`` but no ``done`` are *incomplete* and must be re-queued by
the restarted daemon; jobs with a ``done`` are served from the store.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ServiceError
from repro.fsutil import fsync_dir

#: bump when the event layout changes; old journals are not replayed.
SERVICE_JOURNAL_SCHEMA = "repro/service-journal@1"

#: attempt-failure messages kept per job during replay (bounded).
_MAX_FAILURES = 8


@dataclass
class ReplayedJob:
    """Folded journal state of one job after replay."""

    spec_doc: dict
    tenant: str
    attempts: int = 0
    outcome: str | None = None  # None ⇒ incomplete, must re-run
    error: str | None = None
    error_kind: str | None = None
    failures: list = field(default_factory=list)


class ServiceJournal:
    """Append-only, fsync-per-event journal of the job lifecycle."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: job id → folded state, in first-submission order (dicts
        #: preserve insertion order, so re-queueing after a restart
        #: follows the original submission order deterministically).
        self.jobs: dict[str, ReplayedJob] = {}
        self._fh = None
        self._replay()

    # -- replay -----------------------------------------------------------
    def _replay(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return  # first boot: nothing to recover
        lines = text.splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return  # torn header: an empty journal, not an error
        if (
            not isinstance(header, dict)
            or header.get("schema") != SERVICE_JOURNAL_SCHEMA
        ):
            return  # incompatible layout: never misread old events
        for line in lines[1:]:
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: the event never happened
            if not isinstance(event, dict) or "event" not in event:
                break
            if not self._apply(event):
                break

    def _apply(self, event: dict) -> bool:
        """Fold one event into :attr:`jobs`; False stops the replay."""
        kind = event.get("event")
        job = event.get("job")
        if not isinstance(job, str):
            return False
        if kind == "submit":
            spec_doc = event.get("spec")
            if not isinstance(spec_doc, dict):
                return False
            self.jobs.setdefault(
                job,
                ReplayedJob(
                    spec_doc=spec_doc,
                    tenant=str(event.get("tenant", "default")),
                ),
            )
            return True
        state = self.jobs.get(job)
        if state is None:
            # an attempt/done for a job never submitted can only be a
            # torn/duplicated region: stop trusting the tail.
            return False
        if kind == "attempt":
            state.attempts = max(state.attempts, int(event.get("attempt", 0)))
            err = event.get("error")
            if err is not None:
                state.failures.append(str(err))
                del state.failures[:-_MAX_FAILURES]
            return True
        if kind == "done":
            outcome = event.get("outcome")
            if outcome not in ("done", "failed", "quarantined"):
                return False
            state.outcome = outcome
            state.error = event.get("error")
            state.error_kind = event.get("error_kind")
            return True
        return False

    # -- writing ----------------------------------------------------------
    def _open(self):
        if self._fh is not None:
            return self._fh
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Rewrite from the validated replayed state so a torn tail left
        # by the previous (killed) daemon never pollutes our appends.
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w") as fh:
            fh.write(
                json.dumps(
                    {"schema": SERVICE_JOURNAL_SCHEMA}, sort_keys=True
                )
                + "\n"
            )
            for job, state in self.jobs.items():
                fh.write(
                    json.dumps(
                        {
                            "event": "submit",
                            "job": job,
                            "tenant": state.tenant,
                            "spec": state.spec_doc,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
                if state.attempts:
                    fh.write(
                        json.dumps(
                            {
                                "event": "attempt",
                                "job": job,
                                "attempt": state.attempts,
                                "error": (
                                    state.failures[-1]
                                    if state.failures
                                    else None
                                ),
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                if state.outcome is not None:
                    fh.write(
                        json.dumps(
                            {
                                "event": "done",
                                "job": job,
                                "outcome": state.outcome,
                                "error": state.error,
                                "error_kind": state.error_kind,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        fsync_dir(self.path.parent)
        self._fh = open(self.path, "a")
        return self._fh

    def _append(self, doc: dict) -> None:
        fh = self._open()
        fh.write(json.dumps(doc, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    def record_submit(self, job: str, tenant: str, spec_doc: dict) -> None:
        """Durably record an admission (before it is acknowledged)."""
        if job in self.jobs:
            raise ServiceError(f"job {job!r} submitted twice to the journal")
        self._append(
            {"event": "submit", "job": job, "tenant": tenant,
             "spec": spec_doc}
        )
        self.jobs[job] = ReplayedJob(spec_doc=spec_doc, tenant=tenant)

    def record_attempt(self, job: str, attempt: int, error: str) -> None:
        """Durably record one failed execution attempt."""
        self._append(
            {"event": "attempt", "job": job, "attempt": attempt,
             "error": error}
        )
        state = self.jobs[job]
        state.attempts = max(state.attempts, attempt)
        state.failures.append(error)
        del state.failures[:-_MAX_FAILURES]

    def record_done(
        self,
        job: str,
        outcome: str,
        *,
        error: str | None = None,
        error_kind: str | None = None,
    ) -> None:
        """Durably record a terminal state (result already on disk)."""
        self._append(
            {"event": "done", "job": job, "outcome": outcome,
             "error": error, "error_kind": error_kind}
        )
        state = self.jobs[job]
        state.outcome = outcome
        state.error = error
        state.error_kind = error_kind

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


__all__ = ["SERVICE_JOURNAL_SCHEMA", "ReplayedJob", "ServiceJournal"]
