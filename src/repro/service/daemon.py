"""Daemon lifecycle: ``gpu-topdown serve``.

Wires the pieces together for one daemon process:

* builds the :class:`~repro.service.manager.ServiceManager` (which
  replays the journal and re-queues interrupted jobs) inside an
  ``obs_context`` + ``engine_context(cache=<store>)`` so every job
  shares one engine, one memo and one eviction-aware store;
* serves the HTTP API on a :class:`ServiceHTTPServer` thread;
* handles **SIGTERM** as *graceful drain*: admissions start returning
  503 ``draining``, in-flight and queued jobs run to completion, the
  journal is closed, and the process exits ``0`` (every job done) or
  ``3`` (degraded — some job failed or was quarantined), per the CLI
  exit-code table.  SIGINT keeps its usual meaning (exit 130).

``--port 0`` binds an ephemeral port; ``--port-file`` publishes
whatever port was bound (written atomically, so a watching client
never reads a torn line) — that is how the CI kill-and-restart smoke
finds a daemon it just started.

``--selfcheck`` runs the whole stack against itself in-process:
start, submit a tiny job over real HTTP, poll it to completion, fetch
the result, drain, and exit with the drain status.  It is the runnable
documentation example and the cheapest possible end-to-end probe.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.errors import ServiceError
from repro.fsutil import atomic_write_text
from repro.service.httpd import ServiceHTTPServer
from repro.service.manager import ServiceConfig, ServiceManager

#: exit codes surfaced to the CLI (match repro.cli's table).
EXIT_CLEAN = 0
EXIT_DEGRADED = 3


def _build_manager(args) -> ServiceManager:
    return ServiceManager(
        ServiceConfig(
            state_dir=Path(args.state_dir),
            workers=args.workers,
            queue_cap=args.queue_cap,
            tenant_quota=args.tenant_quota,
            store_max_bytes=args.store_max_bytes,
            hang_timeout_s=args.hang_timeout,
            retries=args.retries if args.retries is not None else 3,
        )
    )


def run_serve(args) -> int:
    """Entry point of ``gpu-topdown serve`` (returns the exit code)."""
    from repro.obs.runtime import obs_context
    from repro.sim.engine import engine_context

    if getattr(args, "cache_dir", None):
        raise ServiceError(
            "serve: --cache-dir is not accepted; the store lives at "
            "<state-dir>/store (cap it with --store-max-bytes)"
        )
    if args.workers < 1:
        raise ServiceError("serve: --workers must be >= 1")
    if args.queue_cap < 1:
        raise ServiceError("serve: --queue-cap must be >= 1")
    if args.tenant_quota < 1:
        raise ServiceError("serve: --tenant-quota must be >= 1")
    manager = _build_manager(args)
    with obs_context(
        trace=args.trace, metrics_out=args.metrics_out, enabled=True
    ), engine_context(
        jobs=args.jobs,
        no_cache=args.no_cache,
        faults=args.inject_faults,
        retries=args.retries,
        deadline_s=args.deadline,
        backend=args.backend,
        cache=None if args.no_cache else manager.store,
    ):
        server = ServiceHTTPServer((args.host, args.port), manager)
        host, port = server.server_address[:2]
        if args.port_file:
            atomic_write_text(Path(args.port_file), f"{port}\n")
        manager.start()
        serving = threading.Thread(
            target=server.serve_forever,
            name="service-http",
            daemon=True,
        )
        serving.start()
        print(
            f"serving on http://{host}:{port} "
            f"(state: {manager.state_dir}, workers: "
            f"{manager.config.workers}, recovered: "
            f"{manager.recovered_incomplete} requeued / "
            f"{manager.recovered_complete} served)",
            file=sys.stderr,
        )
        drain_requested = threading.Event()
        previous = signal.signal(
            signal.SIGTERM, lambda *_: drain_requested.set()
        )
        try:
            if args.selfcheck:
                code = _selfcheck(host, port, args)
                clean = manager.drain(timeout_s=60.0)
                return code if code else (
                    EXIT_CLEAN if clean else EXIT_DEGRADED
                )
            while not drain_requested.is_set():
                drain_requested.wait(timeout=0.2)
            print("SIGTERM: draining...", file=sys.stderr)
            clean = manager.drain(timeout_s=args.drain_timeout)
            return EXIT_CLEAN if clean else EXIT_DEGRADED
        finally:
            signal.signal(signal.SIGTERM, previous)
            server.shutdown()
            server.server_close()


# -- selfcheck ------------------------------------------------------------
def _http_json(url: str, body: dict | None = None) -> tuple[int, dict]:
    """One JSON request against the daemon (stdlib urllib only)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _selfcheck(host: str, port: int, args) -> int:
    """Submit a tiny job over real HTTP and verify the full lifecycle."""
    base = f"http://{host}:{port}"
    spec = {
        "kind": "app",
        "suite": "rodinia",
        "app": "nn",
        "gpu": "NVIDIA Quadro RTX 4000",
        "level": 1,
        "seed": 0,
    }
    status, doc = _http_json(f"{base}/jobs", spec)
    if status not in (200, 201):
        print(f"selfcheck: submit failed: {status} {doc}", file=sys.stderr)
        return 1
    job = doc["job"]
    deadline = time.monotonic() + 120.0
    while True:
        status, doc = _http_json(f"{base}/jobs/{job}")
        if status != 200:
            print(f"selfcheck: poll failed: {status} {doc}", file=sys.stderr)
            return 1
        if doc["state"] == "done":
            break
        if doc["state"] in ("failed", "quarantined"):
            print(f"selfcheck: job ended {doc['state']}: "
                  f"{doc.get('error')}", file=sys.stderr)
            return 1
        if time.monotonic() > deadline:
            print("selfcheck: job did not finish in time", file=sys.stderr)
            return 1
        time.sleep(0.05)
    status, result = _http_json(f"{base}/jobs/{job}/result")
    if status != 200 or "result" not in result:
        print(f"selfcheck: result fetch failed: {status}", file=sys.stderr)
        return 1
    status, health = _http_json(f"{base}/healthz")
    if status != 200 or health.get("status") not in ("ok", "draining"):
        print(f"selfcheck: healthz failed: {status}", file=sys.stderr)
        return 1
    status, metrics = _http_json(f"{base}/metrics")
    if status != 200 or "counters" not in metrics:
        print(f"selfcheck: metrics failed: {status}", file=sys.stderr)
        return 1
    print(
        f"selfcheck ok: job {job} done; store "
        f"{health['store']['entries']} entries / "
        f"{health['store']['bytes']} bytes",
    )
    return 0


__all__ = ["EXIT_CLEAN", "EXIT_DEGRADED", "run_serve"]
