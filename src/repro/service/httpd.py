"""Stdlib-only HTTP/JSON front end of the profiling service.

Routes (all bodies are JSON; errors carry a machine-readable code):

========================  =================================================
``POST /jobs``            submit a job spec; ``201`` created / ``200``
                          deduplicated, ``400`` bad spec, ``429``
                          ``queue_full``/``quota_exceeded``, ``503``
                          ``draining``/``transient``
``GET /jobs``             job ids and states, sorted by id
``GET /jobs/<id>``        status document (``404`` unknown)
``GET /jobs/<id>/result`` stored result (``409`` not ready, ``410``
                          failed/quarantined)
``GET /healthz``          daemon + store health (always ``200``)
``GET /metrics``          the metrics registry payload
========================  =================================================

Error envelope — every non-2xx body has the same shape, so clients can
branch on ``code`` without parsing prose::

    {"error": {"code": "queue_full", "message": "...", "retryable": true}}

Backpressure responses (429/503) also set ``Retry-After: 1``.  The
handler deliberately contains no business logic: it parses, calls the
:class:`~repro.service.manager.ServiceManager`, and maps exceptions to
status codes — all admission decisions live in the manager where the
unit tests exercise them directly.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    AdmissionError,
    ReproError,
    TransientFaultError,
    UsageError,
)
from repro.obs.runtime import active_obs

#: largest accepted request body (a job spec is tiny; anything bigger
#: is a client bug or abuse).
MAX_BODY_BYTES = 64 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """One listening socket bound to one :class:`ServiceManager`."""

    daemon_threads = True
    # after a kill -9 the restarted daemon must be able to rebind the
    # port immediately (the CI smoke job does exactly this).
    allow_reuse_address = True

    def __init__(self, address, manager) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.manager = manager


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "gpu-topdown-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        # access logs go to the tracer (visible in --trace timelines),
        # never to stderr — the daemon's stderr is for operators.
        active_obs().tracer.instant(
            "http.request", cat="service", line=format % args
        )

    def _send_json(self, status: int, doc: dict, *, retry_after=None):
        body = (
            json.dumps(doc, sort_keys=True, indent=2) + "\n"
        ).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retryable: bool,
    ) -> None:
        active_obs().metrics.inc(f"service.http_{status}")
        self._send_json(
            status,
            {
                "error": {
                    "code": code,
                    "message": message,
                    "retryable": retryable,
                }
            },
            retry_after=1 if status in (429, 503) else None,
        )

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise UsageError(
                f"request body too large ({length} > {MAX_BODY_BYTES})"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise UsageError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise UsageError(f"request body is not valid JSON: {exc}") from exc

    # -- routes -----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        if self.path.rstrip("/") != "/jobs":
            self._send_error_json(
                404, "unknown_route", f"no such route: POST {self.path}",
                retryable=False,
            )
            return
        try:
            doc = self._read_body()
            tenant = self.headers.get("X-Tenant") or "default"
            if isinstance(doc, dict) and "tenant" in doc:
                tenant = str(doc["tenant"])
            record, created = self.server.manager.submit(doc, tenant)
        except UsageError as exc:
            self._send_error_json(
                400, "bad_request", str(exc), retryable=False
            )
        except AdmissionError as exc:
            status = 503 if exc.code == "draining" else 429
            self._send_error_json(
                status, exc.code, str(exc), retryable=exc.retryable
            )
        except TransientFaultError as exc:
            self._send_error_json(
                503, "transient", str(exc), retryable=True
            )
        except ReproError as exc:
            self._send_error_json(
                500, "internal", str(exc), retryable=False
            )
        else:
            self._send_json(
                201 if created else 200,
                {
                    "job": record.job_id,
                    "state": record.state,
                    "created": created,
                },
            )

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        manager = self.server.manager
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, manager.describe())
            return
        if path == "/metrics":
            self._send_json(200, active_obs().metrics.payload())
            return
        if path == "/jobs":
            with manager._cv:
                jobs = {
                    job_id: record.state
                    for job_id, record in sorted(manager.jobs.items())
                }
            self._send_json(200, {"jobs": jobs})
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, tail = rest.partition("/")
            record = manager.get(job_id)
            if record is None:
                self._send_error_json(
                    404, "unknown_job", f"no such job: {job_id}",
                    retryable=False,
                )
                return
            if tail == "":
                self._send_json(200, record.status_doc())
                return
            if tail == "result":
                if record.state in ("queued", "running"):
                    self._send_error_json(
                        409, "not_ready",
                        f"job {job_id} is {record.state}; poll "
                        "/jobs/<id> until state is done",
                        retryable=True,
                    )
                    return
                if record.state in ("failed", "quarantined"):
                    self._send_error_json(
                        410, record.state,
                        record.error or f"job {job_id} {record.state}",
                        retryable=False,
                    )
                    return
                doc = manager.result_doc(job_id)
                if doc is None:
                    # result file vanished; the manager re-queued it.
                    self._send_error_json(
                        409, "not_ready",
                        f"result of {job_id} is being recomputed",
                        retryable=True,
                    )
                    return
                self._send_json(200, doc)
                return
        self._send_error_json(
            404, "unknown_route", f"no such route: GET {self.path}",
            retryable=False,
        )


__all__ = ["MAX_BODY_BYTES", "ServiceHTTPServer", "ServiceRequestHandler"]
