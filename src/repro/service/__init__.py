"""Profiling-as-a-service: a supervised job daemon over the simulator.

``gpu-topdown serve`` turns the profiling pipeline into a long-running
service: clients POST job specs (app/suite × GPU × level × seed) to a
stdlib-only HTTP/JSON API and poll for content-addressed results.  The
layer cake, bottom-up:

* :mod:`repro.service.jobs` — the content-addressed job model;
* :mod:`repro.service.journal` — the fsync-per-event job journal that
  makes ``kill -9`` recoverable;
* :mod:`repro.service.manager` — admission control (bounded queue,
  per-tenant quotas), the supervised worker pool (heartbeats, hang
  abandonment, retry/quarantine) and the eviction-aware result store;
* :mod:`repro.service.httpd` — the HTTP façade;
* :mod:`repro.service.daemon` — process lifecycle (SIGTERM drain,
  port publication, selfcheck).

See ``docs/SERVICE.md`` for the API contract and recovery semantics.
"""

from repro.service.jobs import JobRecord, JobSpec
from repro.service.journal import ServiceJournal
from repro.service.manager import (
    ServiceConfig,
    ServiceHangError,
    ServiceManager,
)

__all__ = [
    "JobRecord",
    "JobSpec",
    "ServiceConfig",
    "ServiceHangError",
    "ServiceJournal",
    "ServiceManager",
]
