"""Job model of the profiling service.

A *job* is one profiling request — an application or a whole suite on
one GPU at one hierarchy level — identified by the content hash of its
canonical spec.  Content addressing gives the service idempotent
submission for free: two clients posting the same work get the same
job id, the simulation runs once, and both read the same stored
result.  The id is stable across daemon restarts (it hashes only the
spec, never the tenant or submission time), which is what lets the
journal replay of a killed daemon re-adopt its jobs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import UsageError

#: job kinds accepted by the submit endpoint.
JOB_KINDS = ("app", "suite")

#: job lifecycle states (terminal: done / failed / quarantined).
JOB_STATES = ("queued", "running", "done", "failed", "quarantined")

#: states in which a job will never run again.
TERMINAL_STATES = ("done", "failed", "quarantined")

#: schema of the per-job result documents in ``<state>/results/``.
JOB_RESULT_SCHEMA = "repro/service-result@1"


@dataclass(frozen=True)
class JobSpec:
    """The immutable, content-addressed description of one job."""

    #: ``"app"`` (one application) or ``"suite"`` (every app of a suite).
    kind: str
    #: device name as known to :func:`repro.arch.registry.get_gpu`.
    gpu: str
    #: bundled suite name (see ``repro.cli.SUITES``).
    suite: str
    #: application name within the suite (``None`` for suite jobs).
    app: str | None
    #: Top-Down hierarchy level to analyze (1..3).
    level: int = 1
    #: simulation seed (same seed ⇒ bit-identical result bytes).
    seed: int = 0

    # -- identity ---------------------------------------------------------
    def canonical(self) -> dict:
        """The canonical spec document (hashed for the job id)."""
        doc = {
            "kind": self.kind,
            "gpu": self.gpu,
            "suite": self.suite,
            "level": self.level,
            "seed": self.seed,
        }
        if self.kind == "app":
            doc["app"] = self.app
        return doc

    @property
    def job_id(self) -> str:
        text = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return "j" + hashlib.sha256(text.encode()).hexdigest()[:16]

    @property
    def label(self) -> str:
        target = f"{self.suite}/{self.app}" if self.kind == "app" else self.suite
        return f"{target}@{self.gpu}/L{self.level}"

    # -- parsing / validation ---------------------------------------------
    @classmethod
    def from_doc(cls, doc: Any) -> "JobSpec":
        """Parse and *fully validate* a submission document.

        Validation happens at admission, not execution, so a bad
        request is a 400 to the submitting client — never a job that
        burns a worker slot only to fail.
        """
        if not isinstance(doc, Mapping):
            raise UsageError("job spec must be a JSON object")
        unknown = set(doc) - {
            "kind", "gpu", "suite", "app", "level", "seed", "tenant"
        }
        if unknown:
            raise UsageError(
                f"job spec: unknown field(s) {sorted(unknown)}"
            )
        kind = doc.get("kind", "app")
        if kind not in JOB_KINDS:
            raise UsageError(
                f"job spec: kind must be one of {'|'.join(JOB_KINDS)}, "
                f"got {kind!r}"
            )
        from repro.arch.registry import get_gpu, list_gpus

        gpu = doc.get("gpu", "NVIDIA Quadro RTX 4000")
        if not isinstance(gpu, str):
            raise UsageError("job spec: gpu must be a string")
        try:
            get_gpu(gpu)
        except Exception:
            raise UsageError(
                f"job spec: unknown gpu {gpu!r} "
                f"(known: {', '.join(list_gpus())})"
            ) from None
        from repro.lint import bundled_suites

        suites = bundled_suites()
        suite = doc.get("suite", "rodinia")
        if suite not in suites:
            raise UsageError(
                f"job spec: unknown suite {suite!r} "
                f"(known: {', '.join(suites)})"
            )
        app = doc.get("app")
        if kind == "app":
            names = [a.name for a in suites[suite]]
            if app is None:
                raise UsageError(
                    "job spec: kind 'app' requires an 'app' field "
                    f"(suite {suite!r} has: {', '.join(names)})"
                )
            if app not in names:
                raise UsageError(
                    f"job spec: unknown app {app!r} in suite {suite!r} "
                    f"(known: {', '.join(names)})"
                )
        elif app is not None:
            raise UsageError("job spec: 'app' is invalid for kind 'suite'")
        level = doc.get("level", 1)
        if not isinstance(level, int) or level not in (1, 2, 3):
            raise UsageError(
                f"job spec: level must be 1, 2 or 3, got {level!r}"
            )
        seed = doc.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise UsageError(f"job spec: seed must be an int, got {seed!r}")
        return cls(
            kind=kind,
            gpu=gpu,
            suite=suite,
            app=app if kind == "app" else None,
            level=level,
            seed=seed,
        )


@dataclass
class JobRecord:
    """Mutable server-side state of one submitted job."""

    spec: JobSpec
    #: the tenant whose quota this job counts against (first submitter).
    tenant: str
    state: str = "queued"
    #: execution attempts so far (survives restarts via the journal).
    attempts: int = 0
    #: terminal failure description (``failed``/``quarantined`` only).
    error: str | None = None
    #: machine-readable terminal error family (exception type name).
    error_kind: str | None = None
    #: set when the job's result was recovered from disk at startup
    #: rather than computed by this process.
    recovered: bool = False
    #: attempt-level failure messages (most recent last, bounded).
    failures: list[str] = field(default_factory=list)

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def active(self) -> bool:
        """Counts against the tenant quota (queued or running)."""
        return self.state not in TERMINAL_STATES

    def status_doc(self) -> dict:
        """The JSON document served by ``GET /jobs/<id>``."""
        doc = {
            "job": self.job_id,
            "state": self.state,
            "spec": self.spec.canonical(),
            "tenant": self.tenant,
            "attempts": self.attempts,
            "recovered": self.recovered,
        }
        if self.error is not None:
            doc["error"] = self.error
            doc["error_kind"] = self.error_kind
        return doc


__all__ = [
    "JOB_KINDS",
    "JOB_RESULT_SCHEMA",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobSpec",
]
