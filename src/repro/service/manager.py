"""Supervised job manager: admission control, workers, recovery.

This is the heart of the profiling service.  It owns

* the **journal** (:class:`~repro.service.journal.ServiceJournal`) —
  what exists and how far it got, durable per event;
* the **store** (:class:`~repro.sim.result_cache.EvictingResultCache`
  for kernel-level shards, plus ``<state>/results/`` for final job
  documents) — what has been computed;
* a **bounded queue** with per-tenant quotas — admission control with
  explicit backpressure (a refused submission is an
  :class:`~repro.errors.AdmissionError` the HTTP layer maps to 429;
  nothing is ever silently dropped);
* a pool of **worker threads** under a supervisor that detects hung
  workers by heartbeat age, abandons them (lease invalidation — a
  stale worker's result is discarded when it eventually returns) and
  re-dispatches the job under the configured
  :class:`~repro.resilience.policy.RetryPolicy`, quarantining poison
  jobs once the budget is exhausted.

Crash recovery: construction replays the journal.  Jobs with a
terminal outcome whose result document still exists are re-adopted and
served from disk; anything else (journalled ``submit`` without
``done``, or a ``done`` whose result file vanished) is re-queued in
original submission order.  ``kill -9`` at any instant therefore loses
at most in-flight work, never acknowledged submissions or completed
results — the CI smoke job (``tools/service_smoke.py``) enforces
exactly this, byte-for-byte.

Execution runs through whatever execution engine is current
(:func:`repro.sim.engine.current_engine`); the daemon installs one
`engine_context(cache=<the store>)`` around the manager so overlapping
jobs share memoized simulations and every kernel result lands in the
eviction-aware store.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.errors import (
    AdmissionError,
    CellTimeoutError,
    QuarantineError,
    QueueFullError,
    QuotaExceededError,
    ReproError,
    ServiceError,
    UsageError,
)
from repro.fsutil import atomic_write_json
from repro.obs.runtime import active_obs
from repro.resilience.policy import RetryPolicy, is_retryable
from repro.service.jobs import (
    JOB_RESULT_SCHEMA,
    JobRecord,
    JobSpec,
)
from repro.service.journal import ServiceJournal


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one daemon instance."""

    state_dir: Path
    #: worker threads executing jobs.
    workers: int = 2
    #: queued-job capacity; submissions beyond it get 429 queue_full.
    queue_cap: int = 16
    #: max active (queued+running) jobs per tenant; beyond it 429
    #: quota_exceeded.  The quota counts *owned* jobs — deduplicated
    #: resubmissions of another tenant's job are free.
    tenant_quota: int = 8
    #: byte cap of the kernel-result store (None ⇒ unbounded).
    store_max_bytes: int | None = None
    #: a job running longer than this is declared hung, its worker
    #: abandoned and the job re-dispatched (None ⇒ no hang detection).
    hang_timeout_s: float | None = 60.0
    #: supervisor poll interval.
    poll_interval_s: float = 0.05
    #: execution attempts per job before quarantine.
    retries: int = 3


class ServiceManager:
    """Owns jobs, queue, workers and persistence for one daemon."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.results_dir = self.state_dir / "results"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        from repro.sim.result_cache import EvictingResultCache

        self.store = EvictingResultCache(
            self.state_dir / "store", max_bytes=config.store_max_bytes
        )
        self.journal = ServiceJournal(self.state_dir / "journal.jsonl")
        self.retry = RetryPolicy(max_attempts=config.retries)
        self._cv = threading.Condition()
        self.jobs: dict[str, JobRecord] = {}
        self._queue: deque[str] = deque()
        self._draining = False
        self._stopped = False
        #: per-job submission counter: a resubmission after an injected
        #: ``service.submit`` fault re-rolls the decision.
        self._submit_attempts: dict[str, int] = {}
        #: worker name → (job id, monotonic start, lease).  A worker's
        #: lease is bumped when the supervisor abandons it; completions
        #: carrying a stale lease are discarded.
        self._running: dict[str, tuple[str, float, int]] = {}
        self._leases: dict[str, int] = {}
        self._threads: list[threading.Thread] = []
        self._worker_seq = 0
        #: lifetime counters (also exported as metrics).
        self.hangs_detected = 0
        self.recovered_incomplete = 0
        self.recovered_complete = 0
        self._recover()

    # -- recovery ---------------------------------------------------------
    def _result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    def _recover(self) -> None:
        """Replay the journal into live records; re-queue unfinished work.

        Ordering matters for determinism: dict iteration preserves the
        journal's original submission order, so a restarted daemon
        drains its backlog in the same order the clients submitted it.
        """
        obs = active_obs()
        for job_id, replayed in self.journal.jobs.items():
            try:
                spec = JobSpec.from_doc(replayed.spec_doc)
            except UsageError:
                continue  # journalled by an older workload set: skip
            if spec.job_id != job_id:
                continue  # id no longer matches the spec hash: skip
            record = JobRecord(
                spec=spec,
                tenant=replayed.tenant,
                attempts=replayed.attempts,
                failures=list(replayed.failures),
                recovered=True,
            )
            if (
                replayed.outcome is not None
                and (
                    replayed.outcome != "done"
                    or self._result_path(job_id).exists()
                )
            ):
                record.state = replayed.outcome
                record.error = replayed.error
                record.error_kind = replayed.error_kind
                self.jobs[job_id] = record
                self.recovered_complete += 1
            else:
                # incomplete (or a "done" whose result file vanished):
                # the work happens again — results are deterministic,
                # so the bytes come out identical.
                record.state = "queued"
                self.jobs[job_id] = record
                self._queue.append(job_id)
                self.recovered_incomplete += 1
        if self.recovered_incomplete or self.recovered_complete:
            obs.tracer.instant(
                "service.recover", cat="service",
                requeued=self.recovered_incomplete,
                served=self.recovered_complete,
            )
        obs.metrics.set_gauge(
            "service.recovered_incomplete", self.recovered_incomplete
        )
        obs.metrics.set_gauge(
            "service.recovered_complete", self.recovered_complete
        )

    # -- admission --------------------------------------------------------
    def submit(self, doc, tenant: str = "default") -> tuple[JobRecord, bool]:
        """Admit one submission; returns ``(record, created)``.

        Raises :class:`~repro.errors.UsageError` on a malformed spec,
        :class:`~repro.errors.AdmissionError` subclasses on
        backpressure, and :class:`~repro.errors.TransientFaultError`
        when the ``service.submit`` fault site fires — every refusal is
        explicit and mapped to a documented HTTP response.
        """
        from repro.resilience.faults import active_injector

        spec = JobSpec.from_doc(doc)  # outside the lock: pure
        job_id = spec.job_id
        obs = active_obs()
        with self._cv:
            if self._draining:
                raise AdmissionError(
                    "draining",
                    "service is draining; submissions are closed",
                    retryable=True,
                )
            existing = self.jobs.get(job_id)
            if existing is not None:
                # idempotent dedupe: same spec ⇒ same job, shared work.
                obs.metrics.inc("service.submit_dedup")
                return existing, False
            active = sum(
                1
                for r in self.jobs.values()
                if r.tenant == tenant and r.active
            )
            if active >= self.config.tenant_quota:
                obs.metrics.inc("service.quota_refusals")
                raise QuotaExceededError(
                    f"tenant {tenant!r} has {active} active job(s); "
                    f"quota is {self.config.tenant_quota}"
                )
            if len(self._queue) >= self.config.queue_cap:
                obs.metrics.inc("service.queue_refusals")
                raise QueueFullError(
                    f"job queue is full ({len(self._queue)}/"
                    f"{self.config.queue_cap}); retry later"
                )
            attempt = self._submit_attempts.get(job_id, 0)
            self._submit_attempts[job_id] = attempt + 1
            # may raise TransientFaultError (HTTP 503): nothing has
            # been journalled yet, so a refused submission leaves no
            # trace and a resubmission re-rolls the fault decision.
            active_injector().fire_service_submit(job_id, attempt)
            self.journal.record_submit(job_id, tenant, spec.canonical())
            record = JobRecord(spec=spec, tenant=tenant)
            self.jobs[job_id] = record
            self._queue.append(job_id)
            obs.metrics.inc("service.submitted")
            self._cv.notify()
            return record, True

    # -- worker pool ------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool and the supervisor."""
        with self._cv:
            for _ in range(self.config.workers):
                self._spawn_worker()
            supervisor = threading.Thread(
                target=self._supervise, name="service-supervisor",
                daemon=True,
            )
            supervisor.start()
            self._threads.append(supervisor)

    def _spawn_worker(self) -> None:
        """Start one worker thread (caller holds the lock)."""
        name = f"service-worker-{self._worker_seq}"
        self._worker_seq += 1
        self._leases[name] = 0
        thread = threading.Thread(
            target=self._worker_loop, name=name, daemon=True
        )
        thread.start()
        self._threads.append(thread)

    def _worker_loop(self) -> None:
        name = threading.current_thread().name
        while True:
            with self._cv:
                while not self._queue and not self._stopped:
                    self._cv.wait(timeout=self.config.poll_interval_s)
                if self._stopped:
                    return
                if name not in self._leases:
                    return  # abandoned while waiting
                job_id = self._queue.popleft()
                record = self.jobs[job_id]
                record.state = "running"
                lease = self._leases[name]
                self._running[name] = (job_id, time.monotonic(), lease)
            try:
                self._execute_one(name, job_id, record, lease)
            finally:
                with self._cv:
                    if self._running.get(name, (None, 0, -1))[2] == lease:
                        self._running.pop(name, None)

    def _execute_one(
        self, worker: str, job_id: str, record: JobRecord, lease: int
    ) -> None:
        from repro.resilience.faults import active_injector

        obs = active_obs()
        try:
            with obs.tracer.span(
                "service.job", cat="service", job=job_id,
                label=record.spec.label, attempt=record.attempts,
            ):
                active_injector().fire_service_worker(
                    job_id, record.attempts
                )
                doc = self._run_job(record.spec)
        except BaseException as exc:  # noqa: BLE001 — triaged below
            self._finish_failure(worker, job_id, record, lease, exc)
        else:
            self._finish_success(worker, job_id, record, lease, doc)

    # -- job execution ----------------------------------------------------
    def _run_job(self, spec: JobSpec) -> dict:
        """Compute the result document for one job (deterministic)."""
        from repro.experiments.runner import (
            profile_application,
            profile_suite,
        )
        from repro.io.results_json import result_to_json
        from repro.lint import bundled_suites

        suite = bundled_suites()[spec.suite]
        if spec.kind == "app":
            app = next(a for a in suite if a.name == spec.app)
            _, result = profile_application(
                spec.gpu, app, level=spec.level, seed=spec.seed
            )
            return {
                "schema": JOB_RESULT_SCHEMA,
                "job": spec.job_id,
                "kind": "app",
                "spec": spec.canonical(),
                "result": json.loads(result_to_json(result)),
                "degraded": result.degraded,
            }
        run = profile_suite(
            spec.gpu, suite, level=spec.level, seed=spec.seed
        )
        return {
            "schema": JOB_RESULT_SCHEMA,
            "job": spec.job_id,
            "kind": "suite",
            "spec": spec.canonical(),
            "results": {
                name: json.loads(result_to_json(res))
                for name, res in sorted(run.results.items())
            },
            "quarantined": dict(sorted(run.quarantined.items())),
            "degraded": run.degraded,
        }

    # -- completion -------------------------------------------------------
    def _finish_success(
        self,
        worker: str,
        job_id: str,
        record: JobRecord,
        lease: int,
        doc: dict,
    ) -> None:
        obs = active_obs()
        with self._cv:
            if self._leases.get(worker) != lease:
                # abandoned mid-run: the job was re-dispatched (or
                # quarantined); this result is from a worker the
                # supervisor gave up on — discard it.
                obs.metrics.inc("service.stale_results")
                return
            if record.state != "running":
                return
            # result first (durable), then the journal event that makes
            # it official — a crash between the two re-runs the job,
            # which re-produces byte-identical output.
            atomic_write_json(self._result_path(job_id), doc)
            self.journal.record_done(job_id, "done")
            record.state = "done"
            obs.metrics.inc("service.jobs_done")
            self._cv.notify_all()

    def _finish_failure(
        self,
        worker: str,
        job_id: str,
        record: JobRecord,
        lease: int,
        exc: BaseException,
    ) -> None:
        obs = active_obs()
        with self._cv:
            if self._leases.get(worker) != lease:
                obs.metrics.inc("service.stale_results")
                return
            if record.state != "running":
                return
            self._record_failure(job_id, record, exc)

    def _record_failure(
        self, job_id: str, record: JobRecord, exc: BaseException
    ) -> None:
        """Retry, quarantine or fail ``record`` (caller holds the lock)."""
        obs = active_obs()
        record.attempts += 1
        message = f"{type(exc).__name__}: {exc}"
        record.failures.append(message)
        del record.failures[:-8]
        self.journal.record_attempt(job_id, record.attempts, message)
        retryable = isinstance(exc, ReproError) and is_retryable(exc)
        if retryable and record.attempts < self.retry.max_attempts:
            record.state = "queued"
            self._queue.append(job_id)
            obs.metrics.inc("service.retries")
            self._cv.notify()
            return
        if retryable or isinstance(exc, QuarantineError):
            # poison job: the retry budget is spent (or the execution
            # layer already quarantined it) — park it permanently so it
            # cannot wedge the queue, but keep serving its status.
            outcome = "quarantined"
            obs.metrics.inc("service.quarantined")
        else:
            outcome = "failed"
            obs.metrics.inc("service.failed")
        record.state = outcome
        record.error = message
        record.error_kind = type(exc).__name__
        self.journal.record_done(
            job_id, outcome, error=message, error_kind=record.error_kind
        )
        self._cv.notify_all()

    # -- supervision ------------------------------------------------------
    def _supervise(self) -> None:
        """Heartbeat scan: abandon hung workers, re-dispatch their jobs."""
        timeout = self.config.hang_timeout_s
        while True:
            with self._cv:
                if self._stopped:
                    return
                if timeout is not None:
                    now = time.monotonic()
                    for worker, (job_id, started, lease) in list(
                        self._running.items()
                    ):
                        if now - started < timeout:
                            continue
                        if self._leases.get(worker) != lease:
                            continue
                        # a worker thread cannot be killed; invalidate
                        # its lease (its eventual result is discarded),
                        # forget it, and spawn a replacement so the
                        # pool keeps its configured width.
                        self.hangs_detected += 1
                        active_obs().metrics.inc("service.hangs")
                        del self._leases[worker]
                        del self._running[worker]
                        record = self.jobs[job_id]
                        self._record_failure(
                            job_id,
                            record,
                            ServiceHangError(
                                f"worker {worker} exceeded the "
                                f"{timeout:g}s hang timeout on job "
                                f"{job_id}"
                            ),
                        )
                        self._spawn_worker()
                self._cv.wait(timeout=self.config.poll_interval_s)

    # -- drain / shutdown -------------------------------------------------
    def drain(self, timeout_s: float | None = None) -> bool:
        """Stop admissions, wait for in-flight work, stop the pool.

        Returns ``True`` when every job this daemon ever saw ended in
        ``done`` (clean), ``False`` when any failed or was quarantined
        (the CLI maps that to the degraded exit code).
        """
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        with self._cv:
            self._draining = True
            while self._queue or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cv.wait(
                    timeout=min(
                        self.config.poll_interval_s,
                        remaining
                        if remaining is not None
                        else self.config.poll_interval_s,
                    )
                )
            self._stopped = True
            self._cv.notify_all()
        self.journal.close()
        return all(
            record.state == "done" for record in self.jobs.values()
        )

    # -- queries ----------------------------------------------------------
    def get(self, job_id: str) -> JobRecord | None:
        with self._cv:
            return self.jobs.get(job_id)

    def result_doc(self, job_id: str) -> dict | None:
        """The stored result document of a ``done`` job, or ``None``."""
        with self._cv:
            record = self.jobs.get(job_id)
            if record is None or record.state != "done":
                return None
        try:
            return json.loads(self._result_path(job_id).read_text())
        except (OSError, json.JSONDecodeError):
            # the result file vanished or was mangled after completion:
            # re-queue the job (deterministic recompute) and report
            # not-ready instead of serving garbage.
            with self._cv:
                record = self.jobs.get(job_id)
                if record is not None and record.state == "done":
                    record.state = "queued"
                    record.recovered = True
                    self._queue.append(job_id)
                    self._cv.notify()
            return None

    def describe(self) -> dict:
        """The ``/healthz`` document."""
        with self._cv:
            states: dict[str, int] = {}
            for record in self.jobs.values():
                states[record.state] = states.get(record.state, 0) + 1
            return {
                "status": "draining" if self._draining else "ok",
                "jobs": dict(sorted(states.items())),
                "queue": {
                    "depth": len(self._queue),
                    "cap": self.config.queue_cap,
                },
                "workers": {
                    "configured": self.config.workers,
                    "busy": len(self._running),
                    "hangs_detected": self.hangs_detected,
                },
                "recovered": {
                    "requeued": self.recovered_incomplete,
                    "served": self.recovered_complete,
                },
                "store": self.store.describe(),
            }

    def wait_idle(self, timeout_s: float | None = None) -> bool:
        """Block until the queue is empty and no job is running."""
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        with self._cv:
            while self._queue or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cv.wait(
                    timeout=min(
                        self.config.poll_interval_s,
                        remaining
                        if remaining is not None
                        else self.config.poll_interval_s,
                    )
                )
            return True


class ServiceHangError(ServiceError, CellTimeoutError):
    """A worker blew the hang timeout.  Also a
    :class:`~repro.errors.CellTimeoutError`, so the shared retry policy
    treats an abandoned worker exactly like a cell deadline overrun:
    re-dispatch until the budget is spent, then quarantine."""


__all__ = [
    "ServiceConfig",
    "ServiceHangError",
    "ServiceManager",
]
