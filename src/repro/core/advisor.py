"""Turning breakdowns into advice.

The paper positions Top-Down as a complement that tells developers
"what should be the target of any code improvement" (§I).  This module
maps a :class:`TopDownResult` onto the standard optimization guidance
for each hierarchy node, ranked by how much IPC the node costs.

Heuristic by design: thresholds choose *which* advice is worth
surfacing, the result's own numbers say *how much* is at stake.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nodes import Node
from repro.core.report import NODE_LABELS
from repro.core.result import TopDownResult

#: advice per hierarchy node, ordered roughly by specificity.
_ADVICE: dict[Node, str] = {
    Node.L3_L1_DEPENDENCY:
        "Loads stall consumers for L1/L2/DRAM latencies: improve "
        "locality (tiling, shared-memory staging), raise occupancy or "
        "ILP so the scheduler can hide latency, and check coalescing.",
    Node.L3_CONSTANT_MEMORY:
        "The immediate constant cache is thrashing: shrink per-kernel "
        "constant tables, move large read-only data to global memory "
        "with __ldg/texture paths, or restructure uniform reads.",
    Node.L3_MIO_THROTTLE:
        "The MIO queue is saturated: reduce shared-memory instruction "
        "density or stage wider accesses.",
    Node.L3_LG_THROTTLE:
        "The local/global queue is saturated: batch or widen global "
        "accesses (vectorized loads) to cut instruction count.",
    Node.L3_SHORT_SCOREBOARD:
        "Shared-memory results are consumed too eagerly: add ILP "
        "between LDS and its consumers, or resolve bank conflicts.",
    Node.L3_DRAIN:
        "Warps wait at EXIT for outstanding stores: overlap the final "
        "stores with computation or split the epilogue.",
    Node.L3_TEX_THROTTLE:
        "Texture queue pressure: spread texture fetches or lower their "
        "rate per warp.",
    Node.L3_MATH_PIPE:
        "Execution pipes are oversubscribed: rebalance the instruction "
        "mix (fp32 vs int), or move work to underused pipes; check for "
        "unnecessary double-precision.",
    Node.L3_EXEC_DEPENDENCY:
        "Fixed-latency dependency chains dominate: increase ILP "
        "(unroll, restructure reductions) so independent instructions "
        "cover ALU latency.",
    Node.L3_INSTRUCTION_FETCH:
        "Instruction delivery stalls: the kernel's code footprint "
        "exceeds the instruction cache — split giant kernels or reduce "
        "unrolling.",
    Node.L3_SYNC_BARRIER:
        "Warps idle at __syncthreads(): balance work between barriers "
        "or reduce barrier frequency.",
    Node.L3_MEMBAR:
        "Memory fences serialize execution: weaken fence scopes where "
        "correctness allows.",
    Node.L3_BRANCH_RESOLVING:
        "Frequent branches keep warps waiting on target resolution: "
        "flatten control flow or hoist loop-invariant conditions.",
    Node.L3_MISC:
        "Register-bank conflicts and misc stalls: vary operand "
        "registers (compiler flags, manual scheduling).",
    Node.L3_DISPATCH:
        "Dispatch stalls: usually secondary — revisit after the larger "
        "components.",
    Node.L3_SLEEPING:
        "Warps sleep via nanosleep/yield: reduce backoff waits.",
    Node.BRANCH:
        "Warp divergence wastes lanes: sort/partition work so warps "
        "take uniform paths, or use warp-level primitives (the paper's "
        "binaryPartitionCG study).",
    Node.REPLAY:
        "Instructions replay: fix uncoalesced global accesses and "
        "shared-memory bank conflicts.",
}


@dataclass(frozen=True)
class Advice:
    node: Node
    #: IPC fraction of peak this node costs.
    cost: float
    text: str

    def render(self) -> str:
        label = NODE_LABELS.get(self.node, self.node.value)
        return f"[{label}: {self.cost * 100:.1f}% of peak] {self.text}"


def advise(result: TopDownResult, *, threshold: float = 0.03,
           limit: int = 5) -> list[Advice]:
    """Ranked advice for every node costing more than ``threshold`` of
    peak IPC (most expensive first, at most ``limit`` items)."""
    candidates: list[Advice] = []
    for node, text in _ADVICE.items():
        cost = result.fraction(node)
        if cost >= threshold:
            candidates.append(Advice(node=node, cost=cost, text=text))
    candidates.sort(key=lambda a: -a.cost)
    return candidates[:limit]


def advice_report(result: TopDownResult, **kwargs) -> str:
    items = advise(result, **kwargs)
    if not items:
        return (
            f"{result.name}: no hierarchy node above threshold — "
            f"retire is {result.fraction(Node.RETIRE) * 100:.1f}% of peak.\n"
        )
    lines = [f"Optimization guidance for {result.name} "
             f"(retire {result.fraction(Node.RETIRE) * 100:.1f}% of peak):"]
    lines += [f"  {i + 1}. {a.render()}" for i, a in enumerate(items)]
    return "\n".join(lines) + "\n"
