"""Profiling-overhead accounting — paper §V.E / Figure 13.

The number of replay passes a Top-Down collection needs follows from
the metric set and the PMU's counter capacity; overhead is the ratio of
instrumented to native runtime.  The paper observes ~13x on Turing for
a level-3 analysis with 8 executions per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.spec import GPUSpec
from repro.core import tables
from repro.pmu.catalog import catalog_for
from repro.pmu.passes import schedule_passes
from repro.profilers.records import ApplicationProfile


@dataclass(frozen=True)
class OverheadRecord:
    """Overhead measurement for one application."""

    application: str
    native_cycles: int
    profiled_cycles: int
    passes: int

    @property
    def overhead(self) -> float:
        if self.native_cycles <= 0:
            return 1.0
        return self.profiled_cycles / self.native_cycles


def passes_for_level(spec: GPUSpec, level: int = 3) -> int:
    """Kernel executions a level-``level`` Top-Down collection needs."""
    names = tables.metric_names_for_level(spec.compute_capability, level)
    catalog = catalog_for(spec.compute_capability)
    metrics = [catalog[n] for n in names]
    return schedule_passes(metrics, spec.pmu).num_passes


def overhead_record(profile: ApplicationProfile) -> OverheadRecord:
    """Overhead of a profiled application run."""
    return OverheadRecord(
        application=profile.application,
        native_cycles=profile.native_cycles,
        profiled_cycles=profile.profiled_cycles,
        passes=profile.passes,
    )


def mean_overhead(records: list[OverheadRecord]) -> float:
    """Average overhead across applications (the Fig.-13 headline)."""
    if not records:
        return 1.0
    return sum(r.overhead for r in records) / len(records)
