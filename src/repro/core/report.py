"""Text rendering of Top-Down results: tables and ASCII stacked bars.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that presentation consistent everywhere (CLI,
examples, bench output).
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence

from repro.core.nodes import LEVEL1, LEVEL2, Node, children
from repro.core.result import TopDownResult

#: display labels used in figures and reports.
NODE_LABELS: dict[Node, str] = {
    Node.RETIRE: "Retire",
    Node.DIVERGENCE: "Divergence",
    Node.FRONTEND: "Frontend",
    Node.BACKEND: "Backend",
    Node.UNATTRIBUTED: "Unattributed",
    Node.BRANCH: "Branch",
    Node.REPLAY: "Replay",
    Node.FETCH: "Fetch",
    Node.DECODE: "Decode",
    Node.CORE: "Core",
    Node.MEMORY: "Memory",
    Node.L3_INSTRUCTION_FETCH: "InstFetch",
    Node.L3_SYNC_BARRIER: "Barrier",
    Node.L3_MEMBAR: "Membar",
    Node.L3_BRANCH_RESOLVING: "BranchResolve",
    Node.L3_SLEEPING: "Sleeping",
    Node.L3_MISC: "Misc",
    Node.L3_DISPATCH: "Dispatch",
    Node.L3_MATH_PIPE: "MathPipe",
    Node.L3_EXEC_DEPENDENCY: "ExecDep",
    Node.L3_L1_DEPENDENCY: "L1 Data",
    Node.L3_CONSTANT_MEMORY: "Constant",
    Node.L3_MIO_THROTTLE: "MIO Throttle",
    Node.L3_LG_THROTTLE: "LG Throttle",
    Node.L3_SHORT_SCOREBOARD: "ShortSB",
    Node.L3_DRAIN: "Drain",
    Node.L3_TEX_THROTTLE: "TexThrottle",
    Node.L3_MEMORY_THROTTLE: "MemThrottle",
}


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Plain monospace table with aligned columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    sep = "  "
    out.write(sep.join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write(sep.join("-" * w for w in widths) + "\n")
    for row in str_rows:
        out.write(sep.join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def stacked_bar(
    shares: Mapping[Node, float], width: int = 50
) -> str:
    """One-line ASCII stacked bar; shares are fractions of the bar."""
    glyphs = "#=+:*%@o~^"
    cells: list[str] = []
    for idx, (node, share) in enumerate(shares.items()):
        n = int(round(max(0.0, share) * width))
        cells.append(glyphs[idx % len(glyphs)] * n)
    bar = "".join(cells)[:width]
    return "[" + bar.ljust(width) + "]"


def _result_label(result: TopDownResult) -> str:
    """Row label; degraded results (quarantined invocations) say so."""
    if getattr(result, "degraded", False):
        return f"{result.name} [DEGRADED]"
    return result.name


def quarantine_footer(
    quarantined: "Mapping[str, str] | None",
    results: Sequence[TopDownResult] = (),
) -> str:
    """Lines describing what a degraded run had to leave out.

    ``quarantined`` maps fully-failed application names to the failure
    reason; degraded ``results`` contribute their skipped invocations.
    Empty when the run was healthy, so healthy output is unchanged.
    """
    lines = []
    for r in results:
        for cell in getattr(r, "quarantined", ()):
            lines.append(f"DEGRADED {r.name}: invocation {cell} skipped")
    for name, reason in (quarantined or {}).items():
        lines.append(f"QUARANTINED {name}: {reason}")
    return ("\n".join(lines) + "\n") if lines else ""


def level1_report(
    results: Sequence[TopDownResult],
    quarantined: "Mapping[str, str] | None" = None,
) -> str:
    """Paper-Fig.-5-style table: level-1 fractions of peak per app."""
    headers = ["Application"] + [NODE_LABELS[n] for n in LEVEL1] + ["Bar"]
    rows = []
    for r in results:
        shares = {n: r.fraction(n) for n in LEVEL1}
        rows.append(
            [_result_label(r)]
            + [f"{shares[n] * 100:6.2f}%" for n in LEVEL1]
            + [stacked_bar(shares, width=40)]
        )
    return format_table(headers, rows) + quarantine_footer(
        quarantined, results
    )


def level2_report(
    results: Sequence[TopDownResult],
    quarantined: "Mapping[str, str] | None" = None,
) -> str:
    """Fig.-6/9-style table: level-2 shares of total degradation."""
    headers = ["Application"] + [NODE_LABELS[n] for n in LEVEL2]
    rows = []
    for r in results:
        shares = r.degradation_share(level=2)
        rows.append(
            [_result_label(r)]
            + [f"{shares.get(n, 0.0) * 100:6.2f}%" for n in LEVEL2]
        )
    return format_table(headers, rows) + quarantine_footer(
        quarantined, results
    )


def level3_report(
    results: Sequence[TopDownResult],
    nodes: Sequence[Node] | None = None,
    quarantined: "Mapping[str, str] | None" = None,
) -> str:
    """Fig.-7/10-style table: level-3 shares of total degradation."""
    if nodes is None:
        seen: dict[Node, None] = {}
        for r in results:
            for n in r.level3():
                seen.setdefault(n)
        nodes = list(seen)
    headers = ["Application"] + [NODE_LABELS[n] for n in nodes]
    rows = []
    for r in results:
        shares = r.degradation_share(r.level3(), level=3)
        rows.append(
            [_result_label(r)]
            + [f"{shares.get(n, 0.0) * 100:6.2f}%" for n in nodes]
        )
    return format_table(headers, rows) + quarantine_footer(
        quarantined, results
    )


def timeseries_chart(
    series: Mapping[Node, Sequence[float]],
    *,
    width: int = 64,
    height_levels: int = 10,
) -> str:
    """Multi-row ASCII chart of fraction-of-peak series over invocations.

    Each hierarchy node becomes one sparkline row; values map onto ten
    intensity glyphs.  Used by the dynamic-analysis views (Figs. 11-12).
    """
    glyphs = " .:-=+*#%@"
    lines: list[str] = []
    label_width = max(
        (len(NODE_LABELS.get(n, n.value)) for n in series), default=0
    )
    for node, values in series.items():
        if not values:
            continue
        step = max(1, len(values) // width)
        cells = []
        for i in range(0, len(values), step):
            level = int(min(1.0, max(0.0, values[i])) * height_levels)
            cells.append(glyphs[min(height_levels - 1, level)])
        label = NODE_LABELS.get(node, node.value).ljust(label_width)
        lines.append(f"{label} |{''.join(cells)}|")
    return "\n".join(lines) + ("\n" if lines else "")


def hierarchy_report(result: TopDownResult) -> str:
    """Indented full-hierarchy dump of one result."""
    out = io.StringIO()
    out.write(
        f"Top-Down breakdown: {result.name} on {result.device} "
        f"(IPC_MAX={result.ipc_max:g})\n"
    )

    def frac(node: Node) -> str:
        return f"{result.fraction(node) * 100:6.2f}%"

    def leaves_of(parent: Node) -> str:
        chunk = io.StringIO()
        for node in children(parent):
            if node in result.values and result.ipc(node) > 0:
                label = NODE_LABELS.get(node, node.value)
                chunk.write(f"      {label:<14}{frac(node)}\n")
        return chunk.getvalue()

    out.write(f"  Retire            {frac(Node.RETIRE)}\n")
    out.write(f"  Divergence        {frac(Node.DIVERGENCE)}\n")
    out.write(f"    Branch          {frac(Node.BRANCH)}\n")
    out.write(f"    Replay          {frac(Node.REPLAY)}\n")
    out.write(f"  Frontend          {frac(Node.FRONTEND)}\n")
    out.write(f"    Fetch           {frac(Node.FETCH)}\n")
    out.write(leaves_of(Node.FETCH))
    out.write(f"    Decode          {frac(Node.DECODE)}\n")
    out.write(leaves_of(Node.DECODE))
    out.write(f"  Backend           {frac(Node.BACKEND)}\n")
    out.write(f"    Core            {frac(Node.CORE)}\n")
    out.write(leaves_of(Node.CORE))
    out.write(f"    Memory          {frac(Node.MEMORY)}\n")
    out.write(leaves_of(Node.MEMORY))
    if result.ipc(Node.UNATTRIBUTED) > 0:
        out.write(f"  Unattributed      {frac(Node.UNATTRIBUTED)}\n")
    return out.getvalue()
