"""Per-kernel attribution of application-level bottlenecks.

Paper §VII: "Currently the application can offer the results at a
kernel level, making possible to increase the information provided by
the tool."  Application breakdowns are duration-weighted means over
kernels, so every hierarchy node's loss can be attributed back: which
kernels are responsible for the app being memory-bound?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import TopDownAnalyzer
from repro.core.nodes import Node
from repro.core.report import NODE_LABELS, format_table
from repro.core.result import TopDownResult
from repro.errors import AnalysisError
from repro.profilers.records import ApplicationProfile


@dataclass(frozen=True)
class KernelContribution:
    """One kernel's share of an application-level hierarchy node."""

    kernel_name: str
    #: number of invocations aggregated into this row.
    invocations: int
    #: share of the application's total runtime.
    time_share: float
    #: the kernel's own breakdown (duration-weighted over invocations).
    result: TopDownResult
    #: fraction of the app-level node IPC this kernel accounts for.
    node_share: float


def attribute_node(
    analyzer: TopDownAnalyzer,
    profile: ApplicationProfile,
    node: Node,
) -> list[KernelContribution]:
    """Rank kernels by their contribution to ``node`` at app level.

    The application value of a node is the duration-weighted mean of
    the kernels' values; each kernel's contribution is therefore
    ``weight_k * value_k / Σ weight * value``.
    """
    from repro.core.analyzer import combine_results

    per_kernel: list[tuple[str, int, float, TopDownResult]] = []
    total_time = 0
    for kernel_name in profile.kernel_names:
        invs = profile.invocations_of(kernel_name)
        results = [analyzer.analyze_kernel(k) for k in invs]
        weights = [max(1, k.duration_cycles) for k in invs]
        time = sum(weights)
        total_time += time
        combined = combine_results(
            results, weights,
            name=kernel_name,
            device=analyzer.device.name,
            ipc_max=analyzer.device.ipc_max,
        )
        per_kernel.append((kernel_name, len(invs), float(time), combined))
    if total_time <= 0:
        raise AnalysisError("profile has no runtime to attribute")

    weighted_total = sum(
        time * result.ipc(node) for _, _, time, result in per_kernel
    )
    out: list[KernelContribution] = []
    for kernel_name, n_invs, time, result in per_kernel:
        contribution = (
            time * result.ipc(node) / weighted_total
            if weighted_total > 0 else 0.0
        )
        out.append(KernelContribution(
            kernel_name=kernel_name,
            invocations=n_invs,
            time_share=time / total_time,
            result=result,
            node_share=contribution,
        ))
    out.sort(key=lambda c: -c.node_share)
    return out


def attribution_report(
    contributions: list[KernelContribution], node: Node
) -> str:
    """Tabular rendering of a per-kernel attribution."""
    rows = [
        [
            c.kernel_name,
            str(c.invocations),
            f"{c.time_share * 100:6.2f}%",
            f"{c.result.fraction(node) * 100:6.2f}%",
            f"{c.node_share * 100:6.2f}%",
        ]
        for c in contributions
    ]
    label = NODE_LABELS.get(node, node.value)
    return (
        f"Per-kernel attribution of the {label} component\n"
        + format_table(
            ["Kernel", "Invocations", "Time", f"{label} (own)",
             f"{label} (share of app)"],
            rows,
        )
    )
