"""The paper's equations (1)–(14) as pure functions.

All IPC quantities are in per-SM units; all ``stall_*`` arguments are
percentages as reported by the profiler metric tables.  Functions are
tiny on purpose — the tests pin each one to the paper's formula.
"""

from __future__ import annotations

from dataclasses import dataclass


def ipc_retire(ipc_reported: float, warp_efficiency: float) -> float:
    """Equation (2): IPC_RETIRE = IPC_REPORTED × Warp_Efficiency."""
    return ipc_reported * warp_efficiency


def ipc_branch(ipc_reported: float, warp_efficiency: float) -> float:
    """Equation (3): IPC_BRANCH = IPC_REPORTED × (1 − Warp_Efficiency)."""
    return ipc_reported * (1.0 - warp_efficiency)


def ipc_replay(ipc_issued: float, ipc_reported: float) -> float:
    """Equation (4): IPC_REPLAY = IPC_ISSUED − IPC_REPORTED.

    Clamped at zero: measurement noise can make issued marginally
    smaller than executed, and a negative replay loss is meaningless.
    """
    return max(0.0, ipc_issued - ipc_reported)


def ipc_divergence(branch: float, replay: float) -> float:
    """Equation (5): IPC_DIVERGENCE = IPC_BRANCH + IPC_REPLAY."""
    return branch + replay


def stall_frontend(stall_fetch: float, stall_decode: float) -> float:
    """Equation (6): STALL_FRONTEND = STALL_FETCH + STALL_DECODE [%]."""
    return stall_fetch + stall_decode


def ipc_stall(ipc_max: float, divergence: float, retire: float) -> float:
    """Equation (7): IPC_STALL = IPC_MAX − IPC_DIVERGENCE − IPC_RETIRE.

    Clamped at zero for the same robustness reason as equation (4).
    """
    return max(0.0, ipc_max - divergence - retire)


def stall_share_to_ipc(stall_pct: float, ipc_stall_value: float) -> float:
    """Equations (8)–(10), (12)–(14): IPC_X = STALL_X/100 × IPC_STALL."""
    return stall_pct / 100.0 * ipc_stall_value


def stall_backend(stall_core: float, stall_memory: float) -> float:
    """Equation (11): STALL_BACKEND = STALL_CORE + STALL_MEMORY [%]."""
    return stall_core + stall_memory


@dataclass(frozen=True)
class Level1Inputs:
    """The five measured quantities level 1 needs (§IV.A–§IV.C)."""

    ipc_max: float
    ipc_reported: float
    warp_efficiency: float  # 0..1
    ipc_issued: float

    def compute(self) -> "Level1Breakdown":
        retire = ipc_retire(self.ipc_reported, self.warp_efficiency)
        branch = ipc_branch(self.ipc_reported, self.warp_efficiency)
        replay = ipc_replay(self.ipc_issued, self.ipc_reported)
        # keep equation (1) an identity even under measurement noise:
        # retire is trusted first, then divergence.
        retire = min(retire, self.ipc_max)
        divergence = min(ipc_divergence(branch, replay),
                         self.ipc_max - retire)
        if branch + replay > 0 and divergence < branch + replay:
            scale = divergence / (branch + replay)
            branch *= scale
            replay *= scale
        stall = ipc_stall(self.ipc_max, divergence, retire)
        return Level1Breakdown(
            retire=retire, branch=branch, replay=replay,
            divergence=divergence, stall=stall,
        )


@dataclass(frozen=True)
class Level1Breakdown:
    """Output of the level-1 equations: eq. (1) holds by construction."""

    retire: float
    branch: float
    replay: float
    divergence: float
    stall: float
