"""Comparing Top-Down results — the cross-architecture workflow.

The paper's second use case (§V.B) compares where two microarchitectures
lose performance.  :func:`compare_results` computes per-node deltas in
fraction-of-peak units (so devices with different IPC_MAX compare
fairly) and :func:`comparison_report` renders them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nodes import LEVEL1, LEVEL2, Node
from repro.core.report import NODE_LABELS, format_table
from repro.core.result import TopDownResult


@dataclass(frozen=True)
class NodeDelta:
    """Fraction-of-peak values of one node in two results."""

    node: Node
    a: float
    b: float

    @property
    def delta(self) -> float:
        """b - a, in fraction-of-peak units."""
        return self.b - self.a


@dataclass(frozen=True)
class Comparison:
    """Per-node comparison of two Top-Down results."""

    name_a: str
    name_b: str
    deltas: dict[Node, NodeDelta]

    def delta(self, node: Node) -> float:
        return self.deltas[node].delta if node in self.deltas else 0.0

    def biggest_shifts(self, n: int = 3) -> list[NodeDelta]:
        """Level-2 nodes with the largest absolute movement."""
        lvl2 = [self.deltas[x] for x in LEVEL2 if x in self.deltas]
        return sorted(lvl2, key=lambda d: -abs(d.delta))[:n]

    @property
    def retire_gain(self) -> float:
        """How much more of its peak result B retires than A."""
        return self.delta(Node.RETIRE)


def compare_results(a: TopDownResult, b: TopDownResult) -> Comparison:
    """Compare two breakdowns node by node (fractions of each peak)."""
    nodes = set(a.values) | set(b.values)
    deltas = {
        node: NodeDelta(node=node, a=a.fraction(node), b=b.fraction(node))
        for node in nodes
    }
    return Comparison(name_a=a.name, name_b=b.name, deltas=deltas)


def comparison_report(cmp: Comparison, *, level: int = 2) -> str:
    """Tabular rendering of a comparison."""
    nodes = LEVEL1 if level == 1 else (*LEVEL1, *LEVEL2)
    rows = []
    for node in nodes:
        if node not in cmp.deltas:
            continue
        d = cmp.deltas[node]
        rows.append([
            NODE_LABELS.get(node, node.value),
            f"{d.a * 100:7.2f}%",
            f"{d.b * 100:7.2f}%",
            f"{d.delta * 100:+7.2f}%",
        ])
    header = f"Top-Down comparison: {cmp.name_a} -> {cmp.name_b}\n"
    return header + format_table(
        ["Node", cmp.name_a, cmp.name_b, "Delta"], rows
    )
