"""The paper's contribution: Top-Down methodology for NVIDIA GPUs.

Hierarchy (Figure 3), metric tables (Tables I–VIII), equations
(1)–(14), the analyzer, application roll-up, dynamic per-invocation
analysis with phase detection, and the overhead model (§V.E).
"""

from repro.core.advisor import Advice, advice_report, advise
from repro.core.analyzer import DeviceModel, TopDownAnalyzer, combine_results
from repro.core.attribution import (
    KernelContribution,
    attribute_node,
    attribution_report,
)
from repro.core.compare import (
    Comparison,
    NodeDelta,
    compare_results,
    comparison_report,
)
from repro.core.dynamic import (
    DynamicSeries,
    Phase,
    detect_phases,
    dynamic_analysis,
)
from repro.core.equations import (
    Level1Breakdown,
    Level1Inputs,
    ipc_branch,
    ipc_divergence,
    ipc_replay,
    ipc_retire,
    ipc_stall,
    stall_backend,
    stall_frontend,
    stall_share_to_ipc,
)
from repro.core.markdown_report import markdown_report
from repro.core.nodes import (
    LEVEL1,
    LEVEL2,
    LEVEL3,
    PARENT,
    Node,
    children,
    level_of,
)
from repro.core.overhead import (
    OverheadRecord,
    mean_overhead,
    overhead_record,
    passes_for_level,
)
from repro.core.report import (
    NODE_LABELS,
    format_table,
    hierarchy_report,
    level1_report,
    level2_report,
    level3_report,
    stacked_bar,
    timeseries_chart,
)
from repro.core.result import TopDownResult
from repro.core.tables import (
    METRIC_TABLES,
    TableEntry,
    entries_for,
    entries_for_variable,
    generation_for,
    ipc_scale,
    metric_names_for_level,
    warp_efficiency_scale,
)

__all__ = [
    "Advice",
    "Comparison",
    "advice_report",
    "advise",
    "KernelContribution",
    "attribute_node",
    "attribution_report",
    "DeviceModel",
    "DynamicSeries",
    "LEVEL1",
    "LEVEL2",
    "LEVEL3",
    "Level1Breakdown",
    "Level1Inputs",
    "METRIC_TABLES",
    "NODE_LABELS",
    "Node",
    "OverheadRecord",
    "PARENT",
    "Phase",
    "TableEntry",
    "TopDownAnalyzer",
    "TopDownResult",
    "children",
    "combine_results",
    "compare_results",
    "comparison_report",
    "NodeDelta",
    "detect_phases",
    "dynamic_analysis",
    "entries_for",
    "entries_for_variable",
    "format_table",
    "generation_for",
    "hierarchy_report",
    "ipc_branch",
    "ipc_divergence",
    "ipc_replay",
    "ipc_retire",
    "ipc_scale",
    "ipc_stall",
    "level1_report",
    "level2_report",
    "level3_report",
    "level_of",
    "markdown_report",
    "mean_overhead",
    "metric_names_for_level",
    "overhead_record",
    "passes_for_level",
    "stacked_bar",
    "timeseries_chart",
    "stall_backend",
    "stall_frontend",
    "stall_share_to_ipc",
    "warp_efficiency_scale",
]
