"""Dynamic (per-invocation) Top-Down analysis — paper §V.D.

The paper shows that a single whole-application average can hide
distinct execution *phases* (Figs. 11 and 12: ``srad_cuda_1/2`` switch
behaviour around invocation 50).  This module produces the
per-invocation series behind those figures and adds the phase
segmentation the paper proposes as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import TopDownAnalyzer, combine_results
from repro.core.nodes import LEVEL1, Node
from repro.core.result import TopDownResult
from repro.errors import AnalysisError
from repro.profilers.records import ApplicationProfile


@dataclass(frozen=True)
class Phase:
    """A contiguous run of invocations with homogeneous behaviour."""

    start: int          # first invocation index (inclusive)
    end: int            # last invocation index (exclusive)
    summary: TopDownResult

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class DynamicSeries:
    """Per-invocation Top-Down evolution of one kernel."""

    kernel_name: str
    results: tuple[TopDownResult, ...]

    def series(self, node: Node) -> list[float]:
        """Fraction-of-peak trajectory of one hierarchy node."""
        return [r.fraction(node) for r in self.results]

    def level1_series(self) -> dict[Node, list[float]]:
        return {n: self.series(n) for n in LEVEL1}

    def __len__(self) -> int:
        return len(self.results)


def dynamic_analysis(
    analyzer: TopDownAnalyzer,
    profile: ApplicationProfile,
    kernel_name: str,
) -> DynamicSeries:
    """Analyze every invocation of ``kernel_name`` in order."""
    results = analyzer.analyze_invocations(profile, kernel_name)
    return DynamicSeries(kernel_name=kernel_name, results=tuple(results))


def detect_phases(
    series: DynamicSeries,
    *,
    max_phases: int = 4,
    min_length: int = 8,
    threshold: float = 0.08,
) -> list[Phase]:
    """Segment a series into phases by recursive binary splitting.

    A split point is the invocation that maximizes the difference
    between the mean level-1 signatures (retire/frontend/backend
    fractions) of the two sides; splits are kept while the distance
    exceeds ``threshold``.  This is deliberately simple — the paper
    leaves phase splitting as future work, and a transparent heuristic
    is easier to validate than an opaque one.
    """
    n = len(series)
    if n == 0:
        raise AnalysisError("empty dynamic series")
    signatures = [
        (
            r.fraction(Node.RETIRE),
            r.fraction(Node.FRONTEND),
            r.fraction(Node.BACKEND),
            r.fraction(Node.DIVERGENCE),
        )
        for r in series.results
    ]

    segments: list[tuple[int, int]] = [(0, n)]
    changed = True
    while changed and len(segments) < max_phases:
        changed = False
        best: tuple[float, int, int, int] | None = None  # (dist, seg, cut)
        for seg_idx, (lo, hi) in enumerate(segments):
            if hi - lo < 2 * min_length:
                continue
            for cut in range(lo + min_length, hi - min_length + 1):
                d = _signature_distance(
                    _mean(signatures, lo, cut), _mean(signatures, cut, hi)
                )
                if best is None or d > best[0]:
                    best = (d, seg_idx, cut, 0)
        if best is not None and best[0] >= threshold:
            _, seg_idx, cut, _ = best
            lo, hi = segments[seg_idx]
            segments[seg_idx:seg_idx + 1] = [(lo, cut), (cut, hi)]
            segments.sort()
            changed = True

    phases: list[Phase] = []
    for lo, hi in segments:
        chunk = list(series.results[lo:hi])
        summary = combine_results(
            chunk,
            name=f"{series.kernel_name}[{lo}:{hi}]",
            device=chunk[0].device,
            ipc_max=chunk[0].ipc_max,
        )
        phases.append(Phase(start=lo, end=hi, summary=summary))
    return phases


def _mean(signatures: list[tuple[float, ...]], lo: int, hi: int
          ) -> tuple[float, ...]:
    k = len(signatures[0])
    count = hi - lo
    return tuple(
        sum(sig[i] for sig in signatures[lo:hi]) / count for i in range(k)
    )


def _signature_distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return max(abs(x - y) for x, y in zip(a, b))
