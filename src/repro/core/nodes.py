"""Node identifiers of the GPU Top-Down hierarchy (paper Figure 3).

Level 1 splits peak IPC into what was achieved (Retire), what
divergence wasted, and what stalls wasted.  Level 2 refines Divergence
into Branch/Replay and the stall side into Frontend (Fetch/Decode) and
Backend (Core/Memory).  Level 3 attributes each level-2 stall category
to individual warp-stall reasons (availability depends on the compute
capability, as the figure's shading indicates).
"""

from __future__ import annotations

import enum


class Node(enum.Enum):
    """All hierarchy nodes, across levels."""

    # level 1
    RETIRE = "retire"
    DIVERGENCE = "divergence"
    FRONTEND = "frontend_bound"
    BACKEND = "backend_bound"
    #: stall share the available metrics cannot attribute to FE/BE
    #: (e.g. eligible-but-not-selected cycles); reported explicitly in
    #: raw mode, redistributed in normalized mode.
    UNATTRIBUTED = "unattributed"

    # level 2
    BRANCH = "branch"
    REPLAY = "replay"
    FETCH = "fetch_bound"
    DECODE = "decode_bound"
    CORE = "core_bound"
    MEMORY = "memory_bound"

    # level 3 — frontend/fetch detail
    L3_INSTRUCTION_FETCH = "instruction_fetch"
    L3_SYNC_BARRIER = "sync_barrier"
    L3_MEMBAR = "membar"
    L3_BRANCH_RESOLVING = "branch_resolving"
    L3_SLEEPING = "sleeping"
    # level 3 — frontend/decode detail
    L3_MISC = "misc"
    L3_DISPATCH = "dispatch"
    # level 3 — backend/core detail
    L3_MATH_PIPE = "math_pipe"
    L3_EXEC_DEPENDENCY = "exec_dependency"
    # level 3 — backend/memory detail
    L3_L1_DEPENDENCY = "l1_dependency"
    L3_CONSTANT_MEMORY = "constant_memory"
    L3_MIO_THROTTLE = "mio_throttle"
    L3_LG_THROTTLE = "lg_throttle"
    L3_SHORT_SCOREBOARD = "short_scoreboard"
    L3_DRAIN = "drain"
    L3_TEX_THROTTLE = "tex_throttle"
    L3_MEMORY_THROTTLE = "memory_throttle"  # legacy aggregate bucket


#: parent relationships in the hierarchy (child -> parent).
PARENT: dict[Node, Node] = {
    Node.BRANCH: Node.DIVERGENCE,
    Node.REPLAY: Node.DIVERGENCE,
    Node.FETCH: Node.FRONTEND,
    Node.DECODE: Node.FRONTEND,
    Node.CORE: Node.BACKEND,
    Node.MEMORY: Node.BACKEND,
    Node.L3_INSTRUCTION_FETCH: Node.FETCH,
    Node.L3_SYNC_BARRIER: Node.FETCH,
    Node.L3_MEMBAR: Node.FETCH,
    Node.L3_BRANCH_RESOLVING: Node.FETCH,
    Node.L3_SLEEPING: Node.FETCH,
    Node.L3_MISC: Node.DECODE,
    Node.L3_DISPATCH: Node.DECODE,
    Node.L3_MATH_PIPE: Node.CORE,
    Node.L3_EXEC_DEPENDENCY: Node.CORE,
    Node.L3_L1_DEPENDENCY: Node.MEMORY,
    Node.L3_CONSTANT_MEMORY: Node.MEMORY,
    Node.L3_MIO_THROTTLE: Node.MEMORY,
    Node.L3_LG_THROTTLE: Node.MEMORY,
    Node.L3_SHORT_SCOREBOARD: Node.MEMORY,
    Node.L3_DRAIN: Node.MEMORY,
    Node.L3_TEX_THROTTLE: Node.MEMORY,
    Node.L3_MEMORY_THROTTLE: Node.MEMORY,
}

LEVEL1: tuple[Node, ...] = (
    Node.RETIRE, Node.DIVERGENCE, Node.FRONTEND, Node.BACKEND
)
LEVEL2: tuple[Node, ...] = (
    Node.BRANCH, Node.REPLAY, Node.FETCH, Node.DECODE, Node.CORE, Node.MEMORY
)
LEVEL3: tuple[Node, ...] = tuple(
    n for n, p in PARENT.items()
    if p in (Node.FETCH, Node.DECODE, Node.CORE, Node.MEMORY)
)


def children(node: Node) -> tuple[Node, ...]:
    return tuple(c for c, p in PARENT.items() if p is node)


def level_of(node: Node) -> int:
    if node in LEVEL1 or node is Node.UNATTRIBUTED:
        return 1
    if node in LEVEL2:
        return 2
    return 3
