"""Top-Down analysis results.

A :class:`TopDownResult` stores the hierarchy as IPC values (all in
"per-SM IPC" units, so they stack to ``ipc_max``) and offers level
views, fraction views, and the normalization used by the paper's
level-2/3 figures ("results normalized to Total IPC degradation").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.nodes import (
    LEVEL1,
    LEVEL2,
    LEVEL3,
    PARENT,
    Node,
    children,
)
from repro.errors import AnalysisError


@dataclass(frozen=True)
class TopDownResult:
    """One Top-Down breakdown (a kernel, an invocation, or an app)."""

    name: str
    device: str
    ipc_max: float
    #: IPC attributed to every node present in this analysis.
    values: dict[Node, float]
    #: highest level the available metrics supported.
    max_level: int = 3
    #: kernel invocations excluded from this breakdown because their
    #: collection failed (see resilient execution, docs/RESILIENCE.md).
    #: Non-empty marks the result DEGRADED: it summarizes only the
    #: invocations that survived.
    quarantined: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)

    # ------------------------------------------------------------------
    def ipc(self, node: Node) -> float:
        return self.values.get(node, 0.0)

    def fraction(self, node: Node) -> float:
        """Node IPC as a fraction of peak IPC (level-1 figure units)."""
        if self.ipc_max <= 0:
            raise AnalysisError(f"{self.name}: non-positive ipc_max")
        return self.ipc(node) / self.ipc_max

    @property
    def ipc_retire(self) -> float:
        return self.ipc(Node.RETIRE)

    @property
    def ipc_degradation(self) -> float:
        """Total IPC lost versus peak (divergence + stalls)."""
        return self.ipc_max - self.ipc_retire

    # -- level views ------------------------------------------------------
    def level1(self) -> dict[Node, float]:
        """Level-1 IPC values (stacking to ipc_max with unattributed)."""
        out = {n: self.ipc(n) for n in LEVEL1}
        out[Node.UNATTRIBUTED] = self.ipc(Node.UNATTRIBUTED)
        return out

    def level2(self) -> dict[Node, float]:
        return {n: self.ipc(n) for n in LEVEL2}

    def level3(self) -> dict[Node, float]:
        return {n: self.ipc(n) for n in LEVEL3 if n in self.values}

    def level(self, level: int) -> dict[Node, float]:
        if level == 1:
            return self.level1()
        if level == 2:
            return self.level2()
        if level == 3:
            return self.level3()
        raise AnalysisError(f"level must be 1, 2 or 3, got {level}")

    # -- normalized views -------------------------------------------------
    def degradation_share(self, nodes: dict[Node, float] | None = None,
                          level: int = 2) -> dict[Node, float]:
        """Node values normalized to total IPC degradation.

        This is the paper's Figs. 6, 7, 9, 10 normalization: each
        component's share of everything that was lost.
        """
        nodes = nodes if nodes is not None else self.level(level)
        degradation = self.ipc_degradation
        if degradation <= 0:
            return {n: 0.0 for n in nodes}
        return {n: v / degradation for n, v in nodes.items()}

    # -- invariants ----------------------------------------------------------
    def check_conservation(self, tolerance: float = 1e-6) -> None:
        """Verify the hierarchy identities (eq. 1 and child sums)."""
        import math

        for node, value in self.values.items():
            if not math.isfinite(value):
                raise AnalysisError(
                    f"{self.name}: non-finite IPC for {node.value}"
                )
        lvl1 = (
            self.ipc(Node.RETIRE)
            + self.ipc(Node.DIVERGENCE)
            + self.ipc(Node.FRONTEND)
            + self.ipc(Node.BACKEND)
            + self.ipc(Node.UNATTRIBUTED)
        )
        if abs(lvl1 - self.ipc_max) > tolerance * max(1.0, self.ipc_max):
            raise AnalysisError(
                f"{self.name}: level-1 components sum to {lvl1:.6f}, "
                f"expected ipc_max={self.ipc_max:.6f}"
            )
        for parent in (Node.DIVERGENCE, Node.FRONTEND, Node.BACKEND):
            kid_sum = sum(self.ipc(k) for k in children(parent))
            if kid_sum and abs(kid_sum - self.ipc(parent)) > tolerance * max(
                1.0, self.ipc_max
            ):
                raise AnalysisError(
                    f"{self.name}: children of {parent.value} sum to "
                    f"{kid_sum:.6f} != {self.ipc(parent):.6f}"
                )
        for parent in (Node.FETCH, Node.DECODE, Node.CORE, Node.MEMORY):
            kids = [k for k in children(parent) if k in self.values]
            if not kids:
                continue
            kid_sum = sum(self.ipc(k) for k in kids)
            if abs(kid_sum - self.ipc(parent)) > tolerance * max(
                1.0, self.ipc_max
            ):
                raise AnalysisError(
                    f"{self.name}: level-3 leaves of {parent.value} sum "
                    f"to {kid_sum:.6f} != {self.ipc(parent):.6f}"
                )

    # -- rendering helper ---------------------------------------------------
    def summary_row(self) -> dict[str, float]:
        """Flat dict for CSV/table output (fractions of peak)."""
        row = {"retire": self.fraction(Node.RETIRE)}
        for node in (Node.DIVERGENCE, Node.FRONTEND, Node.BACKEND,
                     Node.UNATTRIBUTED):
            row[node.value] = self.fraction(node)
        return row
