"""Markdown report generation for suite runs.

Produces a self-contained document (tables + per-app hierarchies +
advice) from a profiled suite — the artifact a performance team would
circulate after an analysis session.  Used by ``gpu-topdown report``.
"""

from __future__ import annotations

import io
from typing import Mapping

from repro.core.advisor import advise
from repro.core.nodes import LEVEL1, LEVEL2, Node
from repro.core.report import NODE_LABELS
from repro.core.result import TopDownResult


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    out = io.StringIO()
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(row) + " |\n")
    return out.getvalue()


def markdown_report(
    results: Mapping[str, TopDownResult],
    *,
    title: str = "Top-Down analysis report",
    device: str | None = None,
    advice_threshold: float = 0.1,
) -> str:
    """Render a full markdown report for a set of application results."""
    out = io.StringIO()
    if not results:
        return f"# {title}\n\n_No results._\n"
    first = next(iter(results.values()))
    device = device or first.device
    out.write(f"# {title}\n\n")
    out.write(f"Device: **{device}** (IPC_MAX = {first.ipc_max:g})  \n")
    out.write(f"Applications analyzed: **{len(results)}**\n\n")

    # -- level-1 overview --------------------------------------------------
    out.write("## Level 1 — where the cycles went\n\n")
    rows = []
    for name, result in results.items():
        rows.append(
            [name]
            + [f"{result.fraction(n) * 100:.1f}%" for n in LEVEL1]
        )
    mean = {
        n: sum(r.fraction(n) for r in results.values()) / len(results)
        for n in LEVEL1
    }
    rows.append(
        ["**average**"] + [f"**{mean[n] * 100:.1f}%**" for n in LEVEL1]
    )
    out.write(_md_table(
        ["Application", *(NODE_LABELS[n] for n in LEVEL1)], rows
    ))
    out.write("\n")

    # -- level-2 degradation shares --------------------------------------------
    out.write("## Level 2 — share of total degradation\n\n")
    rows = []
    for name, result in results.items():
        shares = result.degradation_share(level=2)
        rows.append(
            [name]
            + [f"{shares.get(n, 0.0) * 100:.1f}%" for n in LEVEL2]
        )
    out.write(_md_table(
        ["Application", *(NODE_LABELS[n] for n in LEVEL2)], rows
    ))
    out.write("\n")

    # -- worst offenders + advice ------------------------------------------------
    out.write("## Hot spots and guidance\n\n")
    ranked = sorted(
        results.items(), key=lambda kv: kv[1].fraction(Node.RETIRE)
    )
    for name, result in ranked:
        retire = result.fraction(Node.RETIRE)
        if retire > 0.6:
            continue
        items = advise(result, threshold=advice_threshold, limit=2)
        if not items:
            continue
        out.write(f"### {name} — retire {retire * 100:.1f}% of peak\n\n")
        for advice in items:
            label = NODE_LABELS.get(advice.node, advice.node.value)
            out.write(
                f"* **{label}** costs {advice.cost * 100:.1f}% of peak: "
                f"{advice.text}\n"
            )
        out.write("\n")
    return out.getvalue()
