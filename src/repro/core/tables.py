"""The paper's metric tables (Tables I–VIII) as data.

Each entry maps one profiler metric to a Top-Down variable.  The
analyzer uses these tables to know which metrics to request and how to
fold them into the equations; the ``tables`` experiment prints them.

Legacy rows (``generation == "legacy"``) are nvprof metrics for
CC < 7.2; unified rows are ncu metrics for CC >= 7.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.arch.compute_capability import ComputeCapability
from repro.core.nodes import Node
from repro.errors import AnalysisError
from repro.pmu.catalog import ncu_stall_metric_name
from repro.sim.stall_reasons import WarpState

Generation = Literal["legacy", "unified"]

#: Top-Down variables of the equations in §IV.
Variable = Literal[
    "IPC_REPORTED", "WARP_EFFICIENCY", "IPC_ISSUED",
    "STALL_FETCH", "STALL_DECODE", "STALL_CORE", "STALL_MEMORY",
]


@dataclass(frozen=True)
class TableEntry:
    """One row of a paper metric table."""

    table: str            # paper table number, e.g. "I"
    generation: Generation
    metric: str           # profiler metric name
    variable: Variable    # Top-Down variable it contributes to
    #: level-3 leaf this metric's contribution lands on (stall metrics).
    leaf: Node | None = None
    description: str = ""


def _ncu(state: WarpState, variable: Variable, leaf: Node,
         table: str, description: str) -> TableEntry:
    return TableEntry(
        table=table,
        generation="unified",
        metric=ncu_stall_metric_name(state),
        variable=variable,
        leaf=leaf,
        description=description,
    )


METRIC_TABLES: tuple[TableEntry, ...] = (
    # ---- Table I: Retire metrics (CC < 7.2) --------------------------------
    TableEntry("I", "legacy", "ipc", "IPC_REPORTED",
               description="Average number of executed instructions per "
                           "cycle, per SM."),
    TableEntry("I", "legacy", "warp_execution_efficiency", "WARP_EFFICIENCY",
               description="Ratio of average active threads per warp to "
                           "the maximum."),
    # ---- Table II: Retire metrics (CC >= 7.2) -------------------------------
    TableEntry("II", "unified", "smsp__inst_executed.avg.per_cycle_active",
               "IPC_REPORTED",
               description="Average number of instructions per cycle, "
                           "per SM sub-partition."),
    TableEntry("II", "unified",
               "smsp__thread_inst_executed_per_inst_executed.ratio",
               "WARP_EFFICIENCY",
               description="Ratio of average active threads per warp to "
                           "the maximum."),
    # ---- Table III: Replay metrics (CC < 7.2) --------------------------------
    TableEntry("III", "legacy", "issued_ipc", "IPC_ISSUED",
               description="Average number of instructions issued per "
                           "cycle, per SM, including replays."),
    # ---- Table IV: Replay metrics (CC >= 7.2) ---------------------------------
    TableEntry("IV", "unified", "smsp__inst_issued.avg.per_cycle_active",
               "IPC_ISSUED",
               description="Average number of instructions issued per "
                           "cycle, per SM sub-partition, including "
                           "replays."),
    # ---- Table V: Frontend metrics (CC < 7.2) ----------------------------------
    TableEntry("V", "legacy", "stall_inst_fetch", "STALL_FETCH",
               leaf=Node.L3_INSTRUCTION_FETCH,
               description="Stalls because the next instruction has not "
                           "yet been fetched."),
    TableEntry("V", "legacy", "stall_sync", "STALL_FETCH",
               leaf=Node.L3_SYNC_BARRIER,
               description="Stalls because the warp is blocked at a "
                           "__syncthreads() call."),
    TableEntry("V", "legacy", "stall_other", "STALL_DECODE",
               leaf=Node.L3_MISC,
               description="Stalls due to miscellaneous reasons, "
                           "including register bank conflicts."),
    # ---- Table VI: Frontend metrics (CC >= 7.2) -----------------------------------
    _ncu(WarpState.NO_INSTRUCTION, "STALL_FETCH", Node.L3_INSTRUCTION_FETCH,
         "VI", "Waiting to be selected to fetch, or on an instruction "
               "cache miss."),
    _ncu(WarpState.BARRIER, "STALL_FETCH", Node.L3_SYNC_BARRIER,
         "VI", "Waiting for sibling warps at a CTA barrier."),
    _ncu(WarpState.MEMBAR, "STALL_FETCH", Node.L3_MEMBAR,
         "VI", "Waiting on a memory barrier."),
    _ncu(WarpState.BRANCH_RESOLVING, "STALL_FETCH", Node.L3_BRANCH_RESOLVING,
         "VI", "Waiting for a branch target to be computed and the warp "
               "PC to be updated."),
    _ncu(WarpState.SLEEPING, "STALL_FETCH", Node.L3_SLEEPING,
         "VI", "All threads in the warp blocked, yielded, or asleep."),
    _ncu(WarpState.MISC, "STALL_DECODE", Node.L3_MISC,
         "VI", "Miscellaneous reasons, including register bank "
               "conflicts."),
    _ncu(WarpState.DISPATCH_STALL, "STALL_DECODE", Node.L3_DISPATCH,
         "VI", "Waiting on a dispatch stall."),
    # ---- Table VII: Backend metrics (CC < 7.2) -----------------------------------------
    TableEntry("VII", "legacy", "stall_exec_dependency", "STALL_CORE",
               leaf=Node.L3_EXEC_DEPENDENCY,
               description="Stalls because an input is not yet "
                           "available."),
    TableEntry("VII", "legacy", "stall_pipe_busy", "STALL_CORE",
               leaf=Node.L3_MATH_PIPE,
               description="Stalls because the compute pipeline is "
                           "busy."),
    TableEntry("VII", "legacy", "stall_memory_dependency", "STALL_MEMORY",
               leaf=Node.L3_L1_DEPENDENCY,
               description="Stalls because a memory operation cannot be "
                           "performed."),
    TableEntry("VII", "legacy", "stall_constant_memory_dependency",
               "STALL_MEMORY", leaf=Node.L3_CONSTANT_MEMORY,
               description="Stalls because of immediate constant cache "
                           "miss."),
    TableEntry("VII", "legacy", "stall_memory_throttle", "STALL_MEMORY",
               leaf=Node.L3_MEMORY_THROTTLE,
               description="Stalls because of memory throttle."),
    # ---- Table VIII: Backend metrics (CC >= 7.2) --------------------------------------------
    _ncu(WarpState.MATH_PIPE_THROTTLE, "STALL_CORE", Node.L3_MATH_PIPE,
         "VIII", "Waiting for the execution pipe to be available."),
    _ncu(WarpState.LONG_SCOREBOARD, "STALL_MEMORY", Node.L3_L1_DEPENDENCY,
         "VIII", "Waiting for a scoreboard dependency on an L1TEX "
                 "operation."),
    _ncu(WarpState.IMC_MISS, "STALL_MEMORY", Node.L3_CONSTANT_MEMORY,
         "VIII", "Waiting for an immediate constant cache (IMC) miss."),
    _ncu(WarpState.MIO_THROTTLE, "STALL_MEMORY", Node.L3_MIO_THROTTLE,
         "VIII", "Waiting for the MIO instruction queue not to be "
                 "full."),
    _ncu(WarpState.DRAIN, "STALL_MEMORY", Node.L3_DRAIN,
         "VIII", "After EXIT, waiting for all memory instructions to "
                 "complete."),
    _ncu(WarpState.LG_THROTTLE, "STALL_MEMORY", Node.L3_LG_THROTTLE,
         "VIII", "Waiting for the L1 instruction queue for local/global "
                 "operations not to be full."),
    _ncu(WarpState.SHORT_SCOREBOARD, "STALL_MEMORY",
         Node.L3_SHORT_SCOREBOARD,
         "VIII", "Waiting for a scoreboard dependency on an MIO "
                 "operation (not to L1TEX)."),
    _ncu(WarpState.WAIT, "STALL_CORE", Node.L3_EXEC_DEPENDENCY,
         "VIII", "Waiting on a fixed-latency execution dependency."),
    _ncu(WarpState.TEX_THROTTLE, "STALL_MEMORY", Node.L3_TEX_THROTTLE,
         "VIII", "Waiting for the L1 instruction queue for texture "
                 "operations not to be full."),
)


def generation_for(cc: ComputeCapability | str | float) -> Generation:
    cc = ComputeCapability.parse(cc)
    return "unified" if cc.uses_unified_metrics else "legacy"


def entries_for(cc: ComputeCapability | str | float) -> list[TableEntry]:
    gen = generation_for(cc)
    return [e for e in METRIC_TABLES if e.generation == gen]


def entries_for_variable(
    cc: ComputeCapability | str | float, variable: Variable
) -> list[TableEntry]:
    return [e for e in entries_for(cc) if e.variable == variable]


def metric_names_for_level(
    cc: ComputeCapability | str | float, level: int
) -> list[str]:
    """Metrics a level-``level`` Top-Down collection must gather.

    Level 1 already needs every stall metric (eq. 6/11 feed eq. 8/12),
    so the sets are identical across levels for a given generation —
    exactly why the paper measures the full set once and derives every
    level from it.  Kept as a function of ``level`` for interface
    clarity and forward extension.
    """
    if level not in (1, 2, 3):
        raise AnalysisError(f"level must be 1, 2 or 3, got {level}")
    return list(dict.fromkeys(e.metric for e in entries_for(cc)))


def warp_efficiency_scale(cc: ComputeCapability | str | float) -> float:
    """Factor turning the raw warp-efficiency metric into a 0..1 ratio.

    nvprof reports a percentage (0..100); ncu reports average active
    threads per instruction (0..32).
    """
    return 32.0 if generation_for(cc) == "unified" else 100.0


def ipc_scale(cc: ComputeCapability | str | float, subpartitions: int) -> float:
    """Factor turning the raw IPC metric into per-SM IPC.

    nvprof ``ipc`` is already per SM; ncu ``smsp__...per_cycle_active``
    is per sub-partition, so it scales by the SM's sub-partition count.
    """
    return float(subpartitions) if generation_for(cc) == "unified" else 1.0
