"""The Top-Down analyzer: profiler records → hierarchy breakdowns.

This is the automation of paper §IV.  The analyzer is deliberately
agnostic about where its input comes from: the emulated tools, a parsed
real-hardware CSV, or hand-constructed records in tests all feed the
same :class:`~repro.profilers.records.KernelProfile` shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.compute_capability import ComputeCapability
from repro.arch.spec import GPUSpec
from repro.core import tables
from repro.core.equations import Level1Inputs, stall_share_to_ipc
from repro.core.nodes import Node
from repro.core.result import TopDownResult
from repro.errors import AnalysisError
from repro.profilers.records import ApplicationProfile, KernelProfile


@dataclass(frozen=True)
class DeviceModel:
    """The minimal device facts the equations need.

    When a full :class:`GPUSpec` is unavailable (e.g. analyzing a CSV
    captured on someone else's machine) these three values suffice.
    """

    name: str
    compute_capability: ComputeCapability
    ipc_max: float
    subpartitions: int

    @classmethod
    def from_spec(cls, spec: GPUSpec) -> "DeviceModel":
        return cls(
            name=spec.name,
            compute_capability=spec.compute_capability,
            ipc_max=spec.ipc_max,
            subpartitions=spec.sm.subpartitions,
        )


class TopDownAnalyzer:
    """Computes Top-Down breakdowns for kernels and applications."""

    def __init__(
        self,
        device: GPUSpec | DeviceModel,
        *,
        normalize_stalls: bool = True,
    ) -> None:
        """``normalize_stalls=True`` (paper-figure behaviour) rescales
        the Frontend/Backend attribution so it covers all of IPC_STALL;
        ``False`` keeps the raw equations (8)–(14) and reports the
        uncovered residue as :attr:`Node.UNATTRIBUTED`."""
        if isinstance(device, GPUSpec):
            device = DeviceModel.from_spec(device)
        self.device = device
        self.normalize_stalls = normalize_stalls
        self._cc = device.compute_capability
        self._ipc_scale = tables.ipc_scale(self._cc, device.subpartitions)
        self._weff_scale = tables.warp_efficiency_scale(self._cc)
        self._entries = tables.entries_for(self._cc)

    # ------------------------------------------------------------------
    def required_metrics(self, level: int = 3) -> list[str]:
        """Metric names to collect for a level-``level`` analysis."""
        return tables.metric_names_for_level(self._cc, level)

    # ------------------------------------------------------------------
    def analyze_kernel(self, profile: KernelProfile) -> TopDownResult:
        """Top-Down breakdown of one kernel invocation."""
        reported = self._variable(profile, "IPC_REPORTED") * self._ipc_scale
        weff_raw = self._variable(profile, "WARP_EFFICIENCY")
        weff = min(1.0, max(0.0, weff_raw / self._weff_scale))
        issued = self._variable(profile, "IPC_ISSUED") * self._ipc_scale

        lvl1 = Level1Inputs(
            ipc_max=self.device.ipc_max,
            ipc_reported=reported,
            warp_efficiency=weff,
            ipc_issued=issued,
        ).compute()

        # stall percentages per variable and per level-3 leaf
        var_pct = {"STALL_FETCH": 0.0, "STALL_DECODE": 0.0,
                   "STALL_CORE": 0.0, "STALL_MEMORY": 0.0}
        leaf_pct: dict[Node, float] = {}
        import math

        for entry in self._entries:
            if entry.variable not in var_pct:
                continue
            value = profile.metric_or(entry.metric, 0.0)
            if not math.isfinite(value):
                raise AnalysisError(
                    f"kernel {profile.kernel_name!r}: non-finite value "
                    f"for {entry.metric}"
                )
            var_pct[entry.variable] += value
            if entry.leaf is not None:
                leaf_pct[entry.leaf] = leaf_pct.get(entry.leaf, 0.0) + value

        # equations (8)-(14): percentages of IPC_STALL
        ipc_stall_value = lvl1.stall
        components = {
            var: stall_share_to_ipc(pct, ipc_stall_value)
            for var, pct in var_pct.items()
        }
        leaves = {
            leaf: stall_share_to_ipc(pct, ipc_stall_value)
            for leaf, pct in leaf_pct.items()
        }
        attributed = sum(components.values())

        # Rescale only when the attribution is meaningfully non-zero —
        # dividing by a denormal-tiny total would overflow to inf/NaN.
        negligible = attributed <= 1e-12 * max(1.0, ipc_stall_value)
        if negligible:
            factor = 1.0
        elif attributed > ipc_stall_value:
            # reported stall percentages exceeded 100%: rescale down.
            factor = ipc_stall_value / attributed
        elif self.normalize_stalls:
            # spread the unattributed residue proportionally (figure mode)
            factor = ipc_stall_value / attributed
        else:
            factor = 1.0
        components = {v: x * factor for v, x in components.items()}
        leaves = {n: x * factor for n, x in leaves.items()}
        attributed = sum(components.values())
        unattributed = max(0.0, ipc_stall_value - attributed)

        values: dict[Node, float] = {
            Node.RETIRE: lvl1.retire,
            Node.BRANCH: lvl1.branch,
            Node.REPLAY: lvl1.replay,
            Node.DIVERGENCE: lvl1.divergence,
            Node.FETCH: components["STALL_FETCH"],
            Node.DECODE: components["STALL_DECODE"],
            Node.CORE: components["STALL_CORE"],
            Node.MEMORY: components["STALL_MEMORY"],
            Node.UNATTRIBUTED: unattributed,
        }
        values[Node.FRONTEND] = values[Node.FETCH] + values[Node.DECODE]
        values[Node.BACKEND] = values[Node.CORE] + values[Node.MEMORY]
        values.update(leaves)

        result = TopDownResult(
            name=f"{profile.kernel_name}#{profile.invocation}",
            device=self.device.name,
            ipc_max=self.device.ipc_max,
            values=values,
            max_level=3,
        )
        result.check_conservation(tolerance=1e-6)
        return result

    # ------------------------------------------------------------------
    def analyze_application(
        self, profile: ApplicationProfile
    ) -> TopDownResult:
        """Duration-weighted application-level breakdown (§V.D intro:
        "average values, weighted by the length of each kernel").

        A degraded profile (quarantined invocations) yields a degraded
        result: the breakdown covers the surviving invocations and the
        quarantine annotations ride along for the report layer."""
        import dataclasses

        results = [self.analyze_kernel(k) for k in profile.kernels]
        weights = [max(1, k.duration_cycles) for k in profile.kernels]
        combined = combine_results(
            results, weights,
            name=profile.application,
            device=self.device.name,
            ipc_max=self.device.ipc_max,
        )
        quarantined = getattr(profile, "quarantined", ())
        if quarantined:
            combined = dataclasses.replace(
                combined, quarantined=tuple(quarantined)
            )
        return combined

    def analyze_invocations(
        self, profile: ApplicationProfile, kernel_name: str
    ) -> list[TopDownResult]:
        """Per-invocation breakdowns of one kernel (Figs. 11-12)."""
        invs = profile.invocations_of(kernel_name)
        if not invs:
            raise AnalysisError(
                f"application {profile.application!r} has no kernel "
                f"{kernel_name!r}"
            )
        return [self.analyze_kernel(k) for k in invs]

    # ------------------------------------------------------------------
    def _variable(self, profile: KernelProfile, variable: str) -> float:
        entries = [e for e in self._entries if e.variable == variable]
        if not entries:
            raise AnalysisError(
                f"no metric table entry provides {variable} at "
                f"CC {self._cc}"
            )
        total = 0.0
        found = False
        for entry in entries:
            if entry.metric in profile.metrics:
                total += profile.metrics[entry.metric]
                found = True
        if not found:
            raise AnalysisError(
                f"kernel {profile.kernel_name!r}: none of the metrics "
                f"for {variable} were collected "
                f"({[e.metric for e in entries]})"
            )
        import math

        if not math.isfinite(total):
            raise AnalysisError(
                f"kernel {profile.kernel_name!r}: non-finite value for "
                f"{variable} ({total})"
            )
        return total


def combine_results(
    results: list[TopDownResult],
    weights: list[float] | None = None,
    *,
    name: str,
    device: str,
    ipc_max: float,
) -> TopDownResult:
    """Weighted average of breakdowns (kernel → application roll-up)."""
    if not results:
        raise AnalysisError("cannot combine zero results")
    if weights is None:
        weights = [1.0] * len(results)
    if len(weights) != len(results):
        raise AnalysisError("weights and results length mismatch")
    total_w = float(sum(weights))
    if total_w <= 0:
        raise AnalysisError("weights sum to zero")
    nodes: set[Node] = set()
    for r in results:
        nodes.update(r.values)
    values = {
        node: sum(r.ipc(node) * w for r, w in zip(results, weights)) / total_w
        for node in nodes
    }
    combined = TopDownResult(
        name=name, device=device, ipc_max=ipc_max, values=values,
        max_level=min(r.max_level for r in results),
    )
    combined.check_conservation(tolerance=1e-6)
    return combined
