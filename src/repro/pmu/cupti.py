"""CUPTI-like profiling session.

:class:`CuptiSession` is the low-level measurement API the CLI-tool
emulators (:mod:`repro.profilers`) are built on, mirroring how the real
``nvprof``/``ncu`` sit on top of the CUPTI library (paper §II.A/§II.B).

Replay handling supports two modes:

* ``"model"`` (default) — the kernel is simulated once (it is
  deterministic, so replays would observe identical counters) and the
  time cost of every pass is *charged* analytically: each pass costs the
  kernel duration plus a setup fraction plus a cache-flush cost that
  grows with the kernel's working set (paper §V.E).
* ``"execute"`` — every pass genuinely re-runs the simulator; used by
  tests to prove replay determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.arch.spec import GPUSpec
from repro.errors import CounterError
from repro.isa.program import KernelProgram, LaunchConfig
from repro.pmu.catalog import catalog_for
from repro.pmu.events import EVENT_CATALOG
from repro.pmu.metrics import MetricContext, MetricDef
from repro.pmu.passes import PassPlan, schedule_passes
from repro.sim.config import DEFAULT_CONFIG, SimConfig
from repro.sim.counters import EventCounters
from repro.sim.gpu import GPUSimulator, KernelSimResult

ReplayMode = Literal["model", "execute"]


@dataclass
class CollectedKernel:
    """Result of profiling one kernel launch."""

    kernel_name: str
    metrics: dict[str, float]
    events: dict[str, float]
    plan: PassPlan
    #: duration of one un-instrumented execution, in device cycles.
    native_cycles: int
    #: total charged profiling time across all passes, in device cycles.
    profiled_cycles: int
    sim_result: KernelSimResult

    @property
    def overhead(self) -> float:
        """Profiled/native time ratio for this kernel."""
        return self.profiled_cycles / self.native_cycles if self.native_cycles else 1.0


class CuptiSession:
    """Collects metrics for kernel launches on one device."""

    def __init__(
        self,
        spec: GPUSpec,
        config: SimConfig = DEFAULT_CONFIG,
        replay: ReplayMode = "model",
        *,
        measurement_noise: float = 0.0,
    ) -> None:
        """``measurement_noise`` models PMU sampling error: each raw
        event value is perturbed multiplicatively by up to ±noise
        (deterministic per seed/kernel/event).  Real multi-pass
        collections exhibit exactly this kind of pass-to-pass skew; the
        Top-Down equations must stay stable under it (see the
        noise-robustness ablation)."""
        if replay not in ("model", "execute"):
            raise CounterError(f"unknown replay mode {replay!r}")
        if not 0.0 <= measurement_noise < 1.0:
            raise CounterError("measurement_noise must be in [0, 1)")
        self.spec = spec
        self.config = config
        self.replay = replay
        self.measurement_noise = measurement_noise
        self._gpu = GPUSimulator(spec, config)
        self._context = MetricContext(spec=spec)
        self._catalog = catalog_for(spec.compute_capability)

    # -- metric resolution ------------------------------------------------
    def resolve(self, metric_names: list[str]) -> list[MetricDef]:
        out: list[MetricDef] = []
        for name in metric_names:
            metric = self._catalog.get(name)
            if metric is None:
                raise CounterError(
                    f"metric {name!r} not available on "
                    f"{self.spec.name} (CC {self.spec.compute_capability})"
                )
            out.append(metric)
        return out

    def available_metrics(self) -> list[str]:
        return sorted(self._catalog)

    # -- collection ---------------------------------------------------------
    def collect(
        self,
        program: KernelProgram,
        launch: LaunchConfig,
        metric_names: list[str],
    ) -> CollectedKernel:
        """Profile one kernel launch, replaying as the plan requires."""
        metrics = self.resolve(metric_names)
        plan = schedule_passes(metrics, self.spec.pmu)

        result = self._gpu.launch(program, launch)
        if self.replay == "execute":
            from repro.sim.engine import current_engine

            # genuine re-executions — independent by construction, so
            # they fan out across the active engine's process pool
            # (and deliberately bypass every result cache).
            replays = current_engine().simulate_replicas(
                self.spec, program, launch, self.config,
                plan.num_passes - 1,
            )
            for replay_result in replays:
                if (
                    replay_result.counters.inst_executed
                    != result.counters.inst_executed
                ):
                    raise CounterError(
                        f"kernel {program.name!r}: replay diverged "
                        "(non-deterministic workload?)"
                    )

        counters = result.counters
        events = self._extract_events(counters, plan)
        values = {
            m.name: m.evaluate(events, self._context) for m in metrics
        }
        native = result.duration_cycles
        profiled = self.charge_passes(result, plan)
        return CollectedKernel(
            kernel_name=program.name,
            metrics=values,
            events=events,
            plan=plan,
            native_cycles=native,
            profiled_cycles=profiled,
            sim_result=result,
        )

    # -- internals -----------------------------------------------------------
    def _extract_events(
        self, counters: EventCounters, plan: PassPlan
    ) -> dict[str, float]:
        from repro.sim.rng import stable_str_hash, uniform

        out: dict[str, float] = {}
        for name in plan.all_events:
            value = EVENT_CATALOG[name].extract(counters)
            if self.measurement_noise > 0.0 and not EVENT_CATALOG[name].fixed:
                # symmetric multiplicative perturbation, deterministic
                # per (seed, event, kernel size) and across processes.
                u = uniform(self.config.seed, stable_str_hash(name),
                            counters.inst_executed)
                value *= 1.0 + self.measurement_noise * (2.0 * u - 1.0)
            out[name] = value
        return out

    def charge_passes(self, result: KernelSimResult, plan: PassPlan) -> int:
        """Total profiling cost in cycles (paper §V.E cost model)."""
        pmu = self.spec.pmu
        duration = result.duration_cycles
        # flushing grows with both kernel runtime (resident state) and the
        # working set that must be written back / refetched.
        flush = (
            pmu.flush_overhead_factor * duration
            + result.working_set_bytes / 4096.0
        )
        per_pass = duration * (1.0 + pmu.pass_setup_factor) + flush
        return int(round(per_pass * plan.num_passes))
