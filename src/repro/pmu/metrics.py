"""Metric definitions: arithmetic over raw events.

A *metric* is what the CLI tools report (``ipc``, ``stall_sync``,
``smsp__warp_issue_stalled_barrier_per_warp_active.pct``...).  Each
metric declares the raw events it needs; the pass scheduler uses those
requirements to decide how many replay passes a collection run takes
(paper §II.A: "the number of events required to calculate each metric
cannot be predicted" — here it *is* the declared set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.arch.spec import GPUSpec
from repro.errors import CounterError
from repro.pmu.events import EVENT_CATALOG


@dataclass(frozen=True)
class MetricContext:
    """Ambient information metric formulas may consult."""

    spec: GPUSpec


@dataclass(frozen=True)
class MetricDef:
    """One derivable metric."""

    name: str
    description: str
    unit: str
    events: tuple[str, ...]
    compute: Callable[[Mapping[str, float], MetricContext], float]

    def __post_init__(self) -> None:
        for ev in self.events:
            if ev not in EVENT_CATALOG:
                raise CounterError(
                    f"metric {self.name!r} requires unknown event {ev!r}"
                )

    def evaluate(self, events: Mapping[str, float],
                 context: MetricContext) -> float:
        missing = [e for e in self.events if e not in events]
        if missing:
            raise CounterError(
                f"metric {self.name!r}: missing events {missing}"
            )
        return self.compute(events, context)


def ratio(numer: str, denom: str) -> Callable[[Mapping[str, float], MetricContext], float]:
    def _compute(ev: Mapping[str, float], _ctx: MetricContext) -> float:
        d = ev[denom]
        return ev[numer] / d if d else 0.0
    return _compute


def pct_of(numer: str, denom: str) -> Callable[[Mapping[str, float], MetricContext], float]:
    def _compute(ev: Mapping[str, float], _ctx: MetricContext) -> float:
        d = ev[denom]
        return 100.0 * ev[numer] / d if d else 0.0
    return _compute


def pct_of_sum(
    numers: Iterable[str], denoms: Iterable[str]
) -> Callable[[Mapping[str, float], MetricContext], float]:
    numers = tuple(numers)
    denoms = tuple(denoms)

    def _compute(ev: Mapping[str, float], _ctx: MetricContext) -> float:
        d = sum(ev[x] for x in denoms)
        return 100.0 * sum(ev[x] for x in numers) / d if d else 0.0

    return _compute
