"""Raw hardware events.

An *event* is a single scalar a PMU counter register can accumulate
during one kernel execution.  This module defines the canonical event
namespace shared by both profiler generations; the per-CC *metric*
catalogs (:mod:`repro.pmu.metrics`) are arithmetic over these events.

The paper's §II.A distinction matters here: the number of counter
registers is limited, so collecting more events than
``PMUSpec.counters_per_pass`` forces kernel replay passes — the
mechanism behind the Figure-13 overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import CounterError
from repro.sim.counters import EventCounters
from repro.sim.stall_reasons import WarpState


@dataclass(frozen=True)
class EventDef:
    """One collectable raw event."""

    name: str
    description: str
    extract: Callable[[EventCounters], float]
    #: events marked fixed live in dedicated registers and do not consume
    #: programmable counter slots (clock/active counters on real PMUs).
    fixed: bool = False
    #: hardware unit owning the counter.  SM-unit events can be gathered
    #: through the SMPC mechanism (every SM observed at once); events of
    #: other units (L2, DRAM, ...) need the HWPM mechanism, which watches
    #: a subgroup of units per pass (paper §II.A).
    unit: str = "sm"


def _stall_event(state: WarpState, description: str) -> EventDef:
    return EventDef(
        name=f"warp_stall__{state.value}",
        description=description,
        extract=lambda c, _s=state: float(c.state_cycles[_s]),
    )


_EVENTS: list[EventDef] = [
    EventDef("sm__cycles_active", "Cycles with at least one resident warp",
             lambda c: float(c.cycles_active), fixed=True),
    EventDef("sm__cycles_elapsed", "Cycles from launch to completion",
             lambda c: float(c.cycles_elapsed), fixed=True),
    EventDef("sm__warps_active", "Resident warp-cycles",
             lambda c: float(c.warp_active_cycles), fixed=True),
    EventDef("sm__inst_executed", "Warp instructions executed",
             lambda c: float(c.inst_executed)),
    EventDef("sm__inst_issued", "Issue slots consumed (includes replays)",
             lambda c: float(c.inst_issued)),
    EventDef("sm__thread_inst_executed",
             "Thread-level instructions executed",
             lambda c: float(c.thread_inst_executed)),
    EventDef("sm__branches", "Branch instructions executed",
             lambda c: float(c.branches_executed)),
    EventDef("sm__branches_divergent", "Divergent branch executions",
             lambda c: float(c.divergent_branches)),
    EventDef("sm__barriers", "Barrier instructions executed",
             lambda c: float(c.barriers_executed)),
    EventDef("sm__replay_transactions",
             "Extra issue slots due to memory replays",
             lambda c: float(c.replay_transactions)),
    EventDef("l1tex__sectors", "L1 sector accesses",
             lambda c: float(c.l1_sector_accesses), unit="l1tex"),
    EventDef("l1tex__sectors_hit", "L1 sector hits",
             lambda c: float(c.l1_sector_hits), unit="l1tex"),
    EventDef("lts__sectors", "L2 sector accesses",
             lambda c: float(c.l2_sector_accesses), unit="lts"),
    EventDef("lts__sectors_hit", "L2 sector hits",
             lambda c: float(c.l2_sector_hits), unit="lts"),
    EventDef("imc__requests", "Immediate-constant cache requests",
             lambda c: float(c.constant_accesses), unit="imc"),
    EventDef("imc__requests_hit", "Immediate-constant cache hits",
             lambda c: float(c.constant_hits), unit="imc"),
    EventDef("dram__sectors", "DRAM sector transfers",
             lambda c: float(c.dram_accesses), unit="dram"),
    EventDef("launch__warps", "Warps launched",
             lambda c: float(c.warps_launched), fixed=True),
    EventDef("launch__blocks", "Blocks launched",
             lambda c: float(c.blocks_launched), fixed=True),
]

_STALL_DESCRIPTIONS: dict[WarpState, str] = {
    WarpState.SELECTED: "Warp-cycles in which the warp issued",
    WarpState.NOT_SELECTED: "Eligible warp-cycles without issue",
    WarpState.NO_INSTRUCTION:
        "Stalled waiting to fetch or on an instruction cache miss",
    WarpState.BARRIER: "Stalled waiting for sibling warps at a CTA barrier",
    WarpState.MEMBAR: "Stalled waiting on a memory barrier",
    WarpState.BRANCH_RESOLVING:
        "Stalled waiting for a branch target to be computed",
    WarpState.SLEEPING: "Stalled with all threads blocked/yielded/asleep",
    WarpState.MISC:
        "Stalled for miscellaneous reasons, incl. register bank conflicts",
    WarpState.DISPATCH_STALL: "Stalled waiting on a dispatch stall",
    WarpState.MATH_PIPE_THROTTLE:
        "Stalled waiting for the execution pipe to be available",
    WarpState.LONG_SCOREBOARD:
        "Stalled on a scoreboard dependency on an L1TEX operation",
    WarpState.SHORT_SCOREBOARD:
        "Stalled on a scoreboard dependency on an MIO operation",
    WarpState.WAIT: "Stalled on a fixed-latency execution dependency",
    WarpState.IMC_MISS: "Stalled on an immediate constant cache miss",
    WarpState.MIO_THROTTLE: "Stalled waiting for the MIO queue",
    WarpState.LG_THROTTLE:
        "Stalled waiting for the L1 local/global queue",
    WarpState.TEX_THROTTLE: "Stalled waiting for the texture queue",
    WarpState.DRAIN:
        "Stalled after EXIT waiting for memory instructions to complete",
}

_EVENTS.extend(
    _stall_event(state, desc) for state, desc in _STALL_DESCRIPTIONS.items()
)

EVENT_CATALOG: dict[str, EventDef] = {e.name: e for e in _EVENTS}


def get_event(name: str) -> EventDef:
    try:
        return EVENT_CATALOG[name]
    except KeyError:
        raise CounterError(f"unknown event {name!r}") from None


def stall_event_name(state: WarpState) -> str:
    return f"warp_stall__{state.value}"
