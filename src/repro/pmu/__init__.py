"""Performance-monitoring-unit model: events, metrics, replay passes and
the CUPTI-like session the profiler front-ends drive."""

from repro.pmu.catalog import (
    NCU_STALL_STATES,
    NVPROF_STALL_BUCKETS,
    catalog_for,
    get_metric,
    legacy_catalog,
    ncu_stall_metric_name,
    unified_catalog,
)
from repro.pmu.cupti import CollectedKernel, CuptiSession
from repro.pmu.events import EVENT_CATALOG, EventDef, get_event, stall_event_name
from repro.pmu.metrics import MetricContext, MetricDef
from repro.pmu.passes import PassPlan, required_events, schedule_passes

__all__ = [
    "CollectedKernel",
    "CuptiSession",
    "EVENT_CATALOG",
    "EventDef",
    "MetricContext",
    "MetricDef",
    "NCU_STALL_STATES",
    "NVPROF_STALL_BUCKETS",
    "PassPlan",
    "catalog_for",
    "get_event",
    "get_metric",
    "legacy_catalog",
    "ncu_stall_metric_name",
    "required_events",
    "schedule_passes",
    "stall_event_name",
    "unified_catalog",
]
