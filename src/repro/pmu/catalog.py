"""Per-generation metric catalogs.

Two catalogs mirror the two profiler generations the paper uses:

* :func:`legacy_catalog` — the ``nvprof`` names available below CC 7.2
  (events+metrics model, paper Tables I, III, V, VII);
* :func:`unified_catalog` — the ``ncu`` names available from CC 7.2
  (unified metrics, paper Tables II, IV, VI, VIII).

nvprof's ``stall_*`` metrics report each reason as a percentage of all
issue-stall cycles (they sum to ~100 together with
``stall_not_selected``), while ncu's ``..._per_warp_active.pct``
metrics are normalized by *all* warp-resident cycles.  Both conventions
are reproduced faithfully; the Top-Down equations account for the
difference.
"""

from __future__ import annotations

from functools import lru_cache

from repro.arch.compute_capability import ComputeCapability
from repro.errors import CounterError
from repro.pmu.events import stall_event_name
from repro.pmu.metrics import MetricContext, MetricDef, pct_of, pct_of_sum, ratio
from repro.sim.stall_reasons import ALL_STATES, STALL_STATES, WarpState

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

#: denominator of nvprof stall percentages: every non-issuing warp-cycle.
_NVPROF_STALL_DENOM: tuple[str, ...] = tuple(
    stall_event_name(s) for s in ALL_STATES if s is not WarpState.SELECTED
)

#: nvprof stall metric -> simulator warp states folded into it.
NVPROF_STALL_BUCKETS: dict[str, tuple[WarpState, ...]] = {
    "stall_inst_fetch": (WarpState.NO_INSTRUCTION, WarpState.BRANCH_RESOLVING),
    "stall_sync": (WarpState.BARRIER, WarpState.MEMBAR, WarpState.SLEEPING),
    "stall_other": (WarpState.MISC, WarpState.DISPATCH_STALL),
    "stall_exec_dependency": (WarpState.WAIT, WarpState.SHORT_SCOREBOARD),
    "stall_pipe_busy": (WarpState.MATH_PIPE_THROTTLE,),
    "stall_memory_dependency": (WarpState.LONG_SCOREBOARD,),
    "stall_constant_memory_dependency": (WarpState.IMC_MISS,),
    "stall_memory_throttle": (
        WarpState.LG_THROTTLE,
        WarpState.MIO_THROTTLE,
        WarpState.TEX_THROTTLE,
        WarpState.DRAIN,
    ),
    "stall_not_selected": (WarpState.NOT_SELECTED,),
}

_NVPROF_STALL_DESCRIPTIONS: dict[str, str] = {
    "stall_inst_fetch":
        "Percentage of stalls because the next assembly instruction has "
        "not yet been fetched",
    "stall_sync":
        "Percentage of stalls because the warp is blocked at a "
        "__syncthreads() call",
    "stall_other": "Percentage of stalls due to miscellaneous reasons",
    "stall_exec_dependency":
        "Percentage of stalls because an input required by the "
        "instruction is not yet available",
    "stall_pipe_busy":
        "Percentage of stalls because a compute operation cannot be "
        "performed because the compute pipeline is busy",
    "stall_memory_dependency":
        "Percentage of stalls because a memory operation cannot be "
        "performed due to required resources not being available",
    "stall_constant_memory_dependency":
        "Percentage of stalls because of immediate constant cache miss",
    "stall_memory_throttle":
        "Percentage of stalls because of memory throttle",
    "stall_not_selected":
        "Percentage of stalls because warp was not selected",
}


def _smsp_per_cycle(event: str):
    def _compute(ev, ctx: MetricContext) -> float:
        denom = ev["sm__cycles_active"] * ctx.spec.sm.subpartitions
        return ev[event] / denom if denom else 0.0
    return _compute


# ---------------------------------------------------------------------------
# legacy (nvprof, CC < 7.2)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1)
def legacy_catalog() -> dict[str, MetricDef]:
    """Metric catalog for the nvprof (events+metrics) generation."""
    metrics: list[MetricDef] = [
        MetricDef(
            "ipc",
            "Instructions executed per cycle (per SM)",
            "inst/cycle",
            ("sm__inst_executed", "sm__cycles_active"),
            ratio("sm__inst_executed", "sm__cycles_active"),
        ),
        MetricDef(
            "issued_ipc",
            "Instructions issued per cycle (per SM), including replays",
            "inst/cycle",
            ("sm__inst_issued", "sm__cycles_active"),
            ratio("sm__inst_issued", "sm__cycles_active"),
        ),
        MetricDef(
            "warp_execution_efficiency",
            "Ratio of average active threads per warp to the maximum "
            "number of threads per warp",
            "%",
            ("sm__thread_inst_executed", "sm__inst_executed"),
            lambda ev, _ctx: (
                100.0 * ev["sm__thread_inst_executed"]
                / (32.0 * ev["sm__inst_executed"])
                if ev["sm__inst_executed"] else 0.0
            ),
        ),
        MetricDef(
            "branch_efficiency",
            "Ratio of non-divergent branches to total branches",
            "%",
            ("sm__branches", "sm__branches_divergent"),
            lambda ev, _ctx: (
                100.0 * (ev["sm__branches"] - ev["sm__branches_divergent"])
                / ev["sm__branches"] if ev["sm__branches"] else 100.0
            ),
        ),
        MetricDef(
            "sm_efficiency",
            "Percentage of time at least one warp is active on the SM",
            "%",
            ("sm__cycles_active", "sm__cycles_elapsed"),
            pct_of("sm__cycles_active", "sm__cycles_elapsed"),
        ),
        MetricDef(
            "achieved_occupancy",
            "Ratio of average active warps to maximum supported warps",
            "ratio",
            ("sm__warps_active", "sm__cycles_active"),
            lambda ev, ctx: (
                ev["sm__warps_active"]
                / (ev["sm__cycles_active"] * ctx.spec.sm.max_warps)
                if ev["sm__cycles_active"] else 0.0
            ),
        ),
        MetricDef(
            "global_hit_rate",
            "Hit rate for global loads in L1",
            "%",
            ("l1tex__sectors_hit", "l1tex__sectors"),
            pct_of("l1tex__sectors_hit", "l1tex__sectors"),
        ),
        MetricDef(
            "l2_tex_hit_rate",
            "Hit rate at L2 for requests from the texture/L1 cache",
            "%",
            ("lts__sectors_hit", "lts__sectors"),
            pct_of("lts__sectors_hit", "lts__sectors"),
        ),
        MetricDef(
            "inst_replay_overhead",
            "Average replays per executed instruction",
            "ratio",
            ("sm__replay_transactions", "sm__inst_executed"),
            ratio("sm__replay_transactions", "sm__inst_executed"),
        ),
    ]
    for name, states in NVPROF_STALL_BUCKETS.items():
        numers = tuple(stall_event_name(s) for s in states)
        metrics.append(
            MetricDef(
                name,
                _NVPROF_STALL_DESCRIPTIONS[name],
                "%",
                tuple(dict.fromkeys(numers + _NVPROF_STALL_DENOM)),
                pct_of_sum(numers, _NVPROF_STALL_DENOM),
            )
        )
    return {m.name: m for m in metrics}


# ---------------------------------------------------------------------------
# unified (ncu, CC >= 7.2)
# ---------------------------------------------------------------------------

#: ncu stall-metric suffix per warp state (paper Tables VI and VIII).
NCU_STALL_STATES: tuple[WarpState, ...] = tuple(
    s for s in ALL_STATES if s is not WarpState.SELECTED
)


def ncu_stall_metric_name(state: WarpState) -> str:
    return f"smsp__warp_issue_stalled_{state.value}_per_warp_active.pct"


@lru_cache(maxsize=1)
def unified_catalog() -> dict[str, MetricDef]:
    """Metric catalog for the ncu (unified metrics) generation."""
    metrics: list[MetricDef] = [
        MetricDef(
            "smsp__inst_executed.avg.per_cycle_active",
            "Average number of instructions executed per cycle per "
            "SM sub-partition",
            "inst/cycle",
            ("sm__inst_executed", "sm__cycles_active"),
            _smsp_per_cycle("sm__inst_executed"),
        ),
        MetricDef(
            "smsp__inst_issued.avg.per_cycle_active",
            "Average number of instructions issued per cycle per "
            "SM sub-partition, including replays",
            "inst/cycle",
            ("sm__inst_issued", "sm__cycles_active"),
            _smsp_per_cycle("sm__inst_issued"),
        ),
        MetricDef(
            "smsp__thread_inst_executed_per_inst_executed.ratio",
            "Average number of active threads per executed warp "
            "instruction",
            "threads",
            ("sm__thread_inst_executed", "sm__inst_executed"),
            ratio("sm__thread_inst_executed", "sm__inst_executed"),
        ),
        MetricDef(
            "smsp__issue_active.avg.per_cycle_active",
            "Average issue-active fraction per sub-partition",
            "inst/cycle",
            (stall_event_name(WarpState.SELECTED), "sm__cycles_active"),
            _smsp_per_cycle(stall_event_name(WarpState.SELECTED)),
        ),
        MetricDef(
            "sm__cycles_active.avg",
            "Average active cycles per SM",
            "cycles",
            ("sm__cycles_active",),
            lambda ev, _ctx: ev["sm__cycles_active"],
        ),
        MetricDef(
            "gpc__cycles_elapsed.max",
            "Elapsed cycles",
            "cycles",
            ("sm__cycles_elapsed",),
            lambda ev, _ctx: ev["sm__cycles_elapsed"],
        ),
        MetricDef(
            "sm__warps_active.avg.per_cycle_active",
            "Average resident warps per active cycle",
            "warps",
            ("sm__warps_active", "sm__cycles_active"),
            ratio("sm__warps_active", "sm__cycles_active"),
        ),
        MetricDef(
            "sm__warps_active.avg.pct_of_peak_sustained_active",
            "Achieved occupancy",
            "%",
            ("sm__warps_active", "sm__cycles_active"),
            lambda ev, ctx: (
                100.0 * ev["sm__warps_active"]
                / (ev["sm__cycles_active"] * ctx.spec.sm.max_warps)
                if ev["sm__cycles_active"] else 0.0
            ),
        ),
        MetricDef(
            "l1tex__t_sector_hit_rate.pct",
            "L1/TEX sector hit rate",
            "%",
            ("l1tex__sectors_hit", "l1tex__sectors"),
            pct_of("l1tex__sectors_hit", "l1tex__sectors"),
        ),
        MetricDef(
            "lts__t_sector_hit_rate.pct",
            "L2 sector hit rate",
            "%",
            ("lts__sectors_hit", "lts__sectors"),
            pct_of("lts__sectors_hit", "lts__sectors"),
        ),
        MetricDef(
            "imc__request_hit_rate.pct",
            "Immediate constant cache hit rate",
            "%",
            ("imc__requests_hit", "imc__requests"),
            pct_of("imc__requests_hit", "imc__requests"),
        ),
        MetricDef(
            "smsp__branch_targets_threads_divergent.pct",
            "Share of divergent branch executions",
            "%",
            ("sm__branches_divergent", "sm__branches"),
            pct_of("sm__branches_divergent", "sm__branches"),
        ),
    ]
    for state in NCU_STALL_STATES:
        ev_name = stall_event_name(state)
        metrics.append(
            MetricDef(
                ncu_stall_metric_name(state),
                f"Warp-cycles per warp-active cycle spent "
                f"{state.value.replace('_', ' ')}",
                "%",
                (ev_name, "sm__warps_active"),
                pct_of(ev_name, "sm__warps_active"),
            )
        )
    return {m.name: m for m in metrics}


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------

def catalog_for(cc: ComputeCapability | str | float) -> dict[str, MetricDef]:
    """The metric catalog a device of capability ``cc`` exposes."""
    cc = ComputeCapability.parse(cc)
    return unified_catalog() if cc.uses_unified_metrics else legacy_catalog()


def get_metric(name: str, cc: ComputeCapability | str | float) -> MetricDef:
    cat = catalog_for(cc)
    try:
        return cat[name]
    except KeyError:
        raise CounterError(
            f"metric {name!r} not available at compute capability {cc}"
        ) from None
