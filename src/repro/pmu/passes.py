"""Replay-pass scheduling.

The PMU exposes a limited number of programmable counter registers per
kernel execution.  When a metric collection needs more raw events than
fit, the kernel is *replayed*: executed again with a different counter
configuration, after flushing caches so every pass observes similar
conditions (paper §II.A and §V.E).

Events are gathered through one of the two mechanisms the paper
describes:

* **SMPC** — streaming-multiprocessor performance counters: only
  SM-unit events, but every SM observed simultaneously;
* **HWPM** — hardware performance monitor: any unit (L2, DRAM, IMC,
  L1TEX), but only a subgroup of units per pass.

:func:`schedule_passes` packs each mechanism's events separately; pass
0 is the baseline timing pass that real tools always run (it only
reads fixed counters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.spec import PMUSpec
from repro.errors import CounterError
from repro.pmu.events import EVENT_CATALOG
from repro.pmu.metrics import MetricDef

#: event units served by the SMPC mechanism.
SMPC_UNITS = frozenset({"sm"})


@dataclass(frozen=True)
class PassPlan:
    """How one metric collection maps onto kernel replays."""

    #: SMPC passes (SM-unit programmable events).
    smpc_passes: tuple[tuple[str, ...], ...]
    #: HWPM passes (other-unit programmable events).
    hwpm_passes: tuple[tuple[str, ...], ...]
    #: fixed-counter events (collected for free in every pass).
    fixed_events: tuple[str, ...]

    @property
    def passes(self) -> tuple[tuple[str, ...], ...]:
        """All programmable passes, SMPC first."""
        return self.smpc_passes + self.hwpm_passes

    @property
    def num_passes(self) -> int:
        """Total kernel executions: baseline pass + programmable passes."""
        return 1 + len(self.smpc_passes) + len(self.hwpm_passes)

    @property
    def all_events(self) -> tuple[str, ...]:
        out: list[str] = list(self.fixed_events)
        for p in self.passes:
            out.extend(p)
        return tuple(out)


def required_events(metrics: list[MetricDef]) -> tuple[set[str], set[str]]:
    """Union of (programmable, fixed) events the metrics need."""
    programmable: set[str] = set()
    fixed: set[str] = set()
    for metric in metrics:
        for ev_name in metric.events:
            ev = EVENT_CATALOG.get(ev_name)
            if ev is None:
                raise CounterError(
                    f"metric {metric.name!r} requires unknown event "
                    f"{ev_name!r}"
                )
            (fixed if ev.fixed else programmable).add(ev_name)
    return programmable, fixed


def _pack(names: list[str], capacity: int) -> tuple[tuple[str, ...], ...]:
    return tuple(
        tuple(names[i:i + capacity]) for i in range(0, len(names), capacity)
    )


def schedule_passes(metrics: list[MetricDef], pmu: PMUSpec) -> PassPlan:
    """Greedy first-fit packing of programmable events into passes,
    separated by collection mechanism."""
    programmable, fixed = required_events(metrics)
    capacity = pmu.counters_per_pass
    if capacity < 1:
        raise CounterError("PMU exposes no programmable counters")
    smpc = sorted(
        e for e in programmable if EVENT_CATALOG[e].unit in SMPC_UNITS
    )
    hwpm = sorted(
        e for e in programmable if EVENT_CATALOG[e].unit not in SMPC_UNITS
    )
    return PassPlan(
        smpc_passes=_pack(smpc, capacity),
        hwpm_passes=_pack(hwpm, capacity),
        fixed_events=tuple(sorted(fixed)),
    )
