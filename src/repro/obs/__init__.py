"""repro.obs — structured observability for the reproduction itself.

The paper measures the cost of profiling (§VI: ~13x from multi-pass
replay); this package gives the reproduction the same self-awareness:

* :mod:`repro.obs.tracer` — span-based tracing to Chrome trace-event /
  Perfetto-compatible files (``--trace``), zero-cost when disabled;
* :mod:`repro.obs.metrics` — counters / gauges / histograms with a
  deterministic, cross-process-mergeable JSON export
  (``--metrics-out``);
* :mod:`repro.obs.runtime` — the active session (:func:`active_obs`,
  :func:`obs_context`) and worker-process plumbing;
* :mod:`repro.obs.selfprof` — the self-profiling breakdown behind
  ``gpu-topdown profile-self`` and ``RUNHEALTH.txt``.

See docs/OBSERVABILITY.md for the trace schema, metric catalog and
instrumentation conventions.
"""

from repro.obs.metrics import (
    METRICS_SCHEMA,
    NULL_METRICS,
    HistogramSummary,
    MetricsRegistry,
)
from repro.obs.runtime import (
    DISABLED_OBS,
    ObsSession,
    active_obs,
    obs_context,
    worker_obs_init,
)
from repro.obs.selfprof import SelfProfile, self_profile
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_CATEGORIES,
    TRACE_SCHEMA,
    Tracer,
    iter_spans,
    load_trace,
)

__all__ = [
    "DISABLED_OBS",
    "METRICS_SCHEMA",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "TRACE_CATEGORIES",
    "TRACE_SCHEMA",
    "HistogramSummary",
    "MetricsRegistry",
    "ObsSession",
    "SelfProfile",
    "Tracer",
    "active_obs",
    "iter_spans",
    "load_trace",
    "obs_context",
    "self_profile",
    "worker_obs_init",
]
