"""Active observability session plumbing.

Exactly one :class:`ObsSession` is consulted at a time, mirroring the
execution-engine convention: :func:`active_obs` returns the innermost
installed session or a process-wide **disabled** singleton whose tracer
and metrics are no-ops.  Library code therefore instruments
unconditionally::

    from repro.obs import active_obs

    obs = active_obs()
    with obs.tracer.span("cache.load", cat="cache") as sp:
        ...
        sp.set(outcome="hit")
    obs.metrics.inc("cache.hits")

and pays nothing when no session is installed (the disabled path hands
back shared singletons; no allocation, no I/O).

CLI entry points install a session around the engine context::

    with obs_context(trace="run.trace.json", metrics_out="metrics.json"):
        with engine_context(jobs=4):
            ...

**Worker processes.**  The engine's process pool initializes obs in
each worker (:func:`worker_init_args` → :func:`worker_obs_init`):
workers append their trace events to the same trace file (atomic
``O_APPEND`` line writes) and run their own metrics registry, spilled
to ``<spill-dir>/metrics-<pid>.json`` when the worker exits.  The
spill is registered through :class:`multiprocessing.util.Finalize`
(forked workers leave via ``os._exit``, which skips ``atexit``; the
multiprocessing finalizer table *is* run by ``_bootstrap``), with a
plain ``atexit`` hook as belt-and-braces for other start methods.
The parent merges all spills at session close — merge is commutative,
so the merged counters are independent of scheduling order and worker
count.  Workers that are *killed* (deadline overruns, injected
crashes) lose their unspilled metrics; the deterministic-counters
guarantee therefore applies to fault-free runs, while trace events are
never lost (they stream line by line).
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer


class ObsSession:
    """Tracer + metrics registry + export targets for one run."""

    def __init__(
        self,
        *,
        trace: str | os.PathLike | None = None,
        metrics_out: str | os.PathLike | None = None,
        process_name: str = "gpu-topdown",
        _worker: bool = False,
        _epoch: float | None = None,
    ) -> None:
        self.enabled = True
        self.trace_path = os.fspath(trace) if trace is not None else None
        self.metrics_path = (
            os.fspath(metrics_out) if metrics_out is not None else None
        )
        self._worker = _worker
        self._spill_dir: str | None = None
        if self.trace_path is not None:
            self.tracer: Any = Tracer(
                self.trace_path,
                epoch=_epoch,
                footer=not _worker,
                process_name=process_name,
            )
        elif not _worker:
            # in-memory tracer: spans still collected (profile-self and
            # the tests read them), just never written to disk.
            self.tracer = Tracer(None, epoch=_epoch,
                                 process_name=process_name)
        else:
            self.tracer = NULL_TRACER
        self.metrics = MetricsRegistry()

    # -- worker plumbing --------------------------------------------------
    def worker_init_args(self) -> tuple | None:
        """Arguments for :func:`worker_obs_init` in pool workers
        (``None`` when this session is itself a worker's)."""
        if self._worker:
            return None
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-obs-")
        return (self.trace_path, self.tracer.epoch, self._spill_dir)

    def _merge_spills(self) -> None:
        if self._spill_dir is None:
            return
        import json

        for name in sorted(os.listdir(self._spill_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self._spill_dir, name),
                          encoding="utf-8") as fh:
                    self.metrics.merge(json.load(fh))
            except (OSError, ValueError):
                # a worker died mid-spill: its counts are lost, the
                # run is not (mirrors the cache's corrupt→miss stance).
                continue
        shutil.rmtree(self._spill_dir, ignore_errors=True)
        self._spill_dir = None

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Merge worker spills, write exports, close the trace."""
        self._merge_spills()
        self._finalize_process_metrics()
        if self.metrics_path is not None:
            self.metrics.write(self.metrics_path)
        self.tracer.close()

    def _finalize_process_metrics(self) -> None:
        """Record this process's resource gauges just before export."""
        self.metrics.set_gauge("process.cpu_seconds",
                               round(time.process_time(), 6))
        try:
            import resource

            peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # ru_maxrss is KiB on Linux, bytes on macOS.
            scale = 1 if peak_kb > (1 << 30) else 1024
            self.metrics.set_gauge("process.peak_rss_bytes",
                                   int(peak_kb) * scale)
        except ImportError:  # pragma: no cover - non-POSIX
            pass


class _DisabledSession:
    """Process-wide default: observability off, everything a no-op."""

    enabled = False
    tracer = NULL_TRACER
    metrics = NULL_METRICS

    def worker_init_args(self) -> None:
        return None

    def close(self) -> None:
        return None


DISABLED_OBS = _DisabledSession()

_ACTIVE: list[Any] = []


def active_obs() -> Any:
    """The observability session in effect (else the disabled one)."""
    if _ACTIVE:
        return _ACTIVE[-1]
    return DISABLED_OBS


@contextmanager
def obs_context(
    trace: str | os.PathLike | None = None,
    metrics_out: str | os.PathLike | None = None,
    *,
    enabled: bool | None = None,
    process_name: str = "gpu-topdown",
) -> Iterator[Any]:
    """Install an observability session for the duration of the block.

    With neither export target nor ``enabled=True`` the block runs with
    the disabled singleton — zero overhead, same as no context at all.
    ``enabled=True`` without targets records in memory (used by
    ``gpu-topdown profile-self`` and the tests).
    """
    if enabled is None:
        enabled = trace is not None or metrics_out is not None
    if not enabled:
        yield DISABLED_OBS
        return
    session = ObsSession(trace=trace, metrics_out=metrics_out,
                         process_name=process_name)
    _ACTIVE.append(session)
    try:
        yield session
    finally:
        _ACTIVE.remove(session)
        session.close()


# ---------------------------------------------------------------------------
# worker-process side
# ---------------------------------------------------------------------------

def _spill_worker_metrics(session: ObsSession, spill_dir: str) -> None:
    if getattr(session, "_spilled", False):
        return
    session._spilled = True
    path = os.path.join(spill_dir, f"metrics-{os.getpid()}.json")
    try:
        session.metrics.write(path)
    except OSError:  # pragma: no cover - spill dir vanished
        pass
    session.tracer.close()


def worker_obs_init(trace_path: str | None, epoch: float,
                    spill_dir: str) -> None:
    """Install a worker-side session (runs in pool initializers).

    Replaces any state inherited by ``fork`` — the parent's session
    must never be mutated (or its trace footer written) from a worker.
    """
    _ACTIVE.clear()
    session = ObsSession(trace=trace_path, _worker=True, _epoch=epoch,
                         process_name="repro worker")
    _ACTIVE.append(session)
    # Forked pool workers exit through os._exit() (popen_fork), which
    # never runs atexit — but multiprocessing's own finalizer table is
    # run by BaseProcess._bootstrap before that, so register there.
    # The atexit hook covers non-multiprocessing embedding; the spill
    # itself is idempotent.
    from multiprocessing import util as _mp_util

    _mp_util.Finalize(None, _spill_worker_metrics,
                      args=(session, spill_dir), exitpriority=10)
    atexit.register(_spill_worker_metrics, session, spill_dir)


__all__ = [
    "DISABLED_OBS",
    "ObsSession",
    "active_obs",
    "obs_context",
    "worker_obs_init",
]
