"""Metrics registry: counters, gauges and histograms with a
deterministic, mergeable JSON export.

Three metric kinds, with deliberately different determinism contracts
(documented in docs/OBSERVABILITY.md and pinned by ``tests/test_obs*``):

* **Counters** (integer, monotonically increasing) count *events of the
  deterministic pipeline* — cache hits, cells simulated, retries under
  a seeded fault plan, replay passes.  For identical inputs and seeds
  their exported values are **bit-identical across runs and across
  worker counts** (``-j1`` vs ``-j4``): merging is commutative addition
  and nothing order- or clock-dependent may ever be counted.
* **Gauges** (latest/maximum value) hold run-shape and resource facts —
  worker count, peak RSS, CPU seconds.  Merging keeps the maximum.
  Excluded from the determinism guarantee.
* **Histograms** (count/sum/min/max summaries) hold wall-clock
  observations — per-stage seconds, per-cell simulation seconds.
  Excluded from the determinism guarantee.

Naming convention: dotted ``subsystem.event`` names, unit suffixes on
anything that is not a plain count (``_seconds``, ``_bytes``, ``_x``
for ratios).  Worker processes run their own registry; the parent
merges their exported payloads (:meth:`MetricsRegistry.merge`), which
is associative and commutative, so the merged export does not depend
on pool scheduling order.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any

#: bump when the export layout changes incompatibly.
METRICS_SCHEMA = "repro/obs-metrics@1"


@dataclass
class HistogramSummary:
    """Streaming count/sum/min/max summary of observed values."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def payload(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": round(self.min, 9) if self.count else 0.0,
            "max": round(self.max, 9) if self.count else 0.0,
        }


class _NullMetrics:
    """Disabled registry: every recording call is a no-op."""

    enabled = False

    def inc(self, name: str, n: int = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def counter(self, name: str) -> int:
        return 0

    def gauge(self, name: str) -> None:
        return None

    def histogram(self, name: str) -> None:
        return None


NULL_METRICS = _NullMetrics()


class MetricsRegistry:
    """One process's metric store; mergeable and JSON-exportable."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, HistogramSummary] = {}

    # -- recording --------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (deterministic events only)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = HistogramSummary()
        hist.observe(value)

    # -- queries ----------------------------------------------------------
    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> HistogramSummary | None:
        return self._hists.get(name)

    # -- merge ------------------------------------------------------------
    def merge(self, payload: "MetricsRegistry | dict[str, Any]") -> None:
        """Fold another registry (or its exported payload) into this one.

        Counters add, gauges keep the maximum, histograms combine their
        summaries.  Addition and max are commutative and associative,
        so merging N worker payloads yields the same result in any
        order — the cross-process determinism the tests pin.
        """
        if isinstance(payload, MetricsRegistry):
            payload = payload.payload()
        for name, value in payload.get("counters", {}).items():
            self.inc(name, int(value))
        for name, value in payload.get("gauges", {}).items():
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value
        for name, doc in payload.get("histograms", {}).items():
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = HistogramSummary()
            if doc.get("count", 0):
                hist.count += int(doc["count"])
                hist.total += float(doc["sum"])
                hist.min = min(hist.min, float(doc["min"]))
                hist.max = max(hist.max, float(doc["max"]))

    # -- export -----------------------------------------------------------
    def payload(self, *, deterministic_only: bool = False) -> dict[str, Any]:
        """Exported dict with sorted keys.

        ``deterministic_only=True`` keeps just the schema and the
        counters section — the portion guaranteed bit-identical for
        identical inputs + seed, regardless of ``--jobs``.
        """
        doc: dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "counters": {
                k: self._counters[k] for k in sorted(self._counters)
            },
        }
        if not deterministic_only:
            doc["gauges"] = {
                k: self._gauges[k] for k in sorted(self._gauges)
            }
            doc["histograms"] = {
                k: self._hists[k].payload() for k in sorted(self._hists)
            }
        return doc

    def to_json(self, *, deterministic_only: bool = False) -> str:
        """Canonical JSON (sorted keys, fixed separators, newline)."""
        return json.dumps(
            self.payload(deterministic_only=deterministic_only),
            sort_keys=True, separators=(",", ": "), indent=1,
        ) + "\n"

    def write(self, path: str | os.PathLike) -> None:
        """Atomically write the full export to ``path``."""
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        os.replace(tmp, path)


__all__ = [
    "METRICS_SCHEMA",
    "HistogramSummary",
    "MetricsRegistry",
    "NULL_METRICS",
]
