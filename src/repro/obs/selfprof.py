"""Self-profiling: measure the profiler with its own instruments.

The paper's evaluation (§VI, Fig. 13) reports what Top-Down collection
costs the *profiled application* — ~13x from multi-pass kernel replay.
This module reports the mirror-image number for the reproduction
itself: of the wall time one of our runs takes, how much is spent
actually simulating kernels (the payload) versus orchestrating —
scheduling, caching, retrying, rendering (the overhead).

The breakdown is computed from the always-on
:class:`~repro.sim.engine.EngineStats` plus the active observability
session's metrics, so it works with or without ``--trace``:

* ``simulated-kernel seconds`` — wall time inside kernel simulations
  (including pool wait, the honest cost of dispatch);
* ``cache I/O seconds`` — persistent result-cache loads/stores;
* ``orchestration seconds`` — everything else: scheduling, metric
  evaluation, analysis, rendering;
* ``self-overhead`` — ``wall / simulated`` (the analogue of the
  paper's profiled/native ratio; 1.0x would mean a tool that costs
  nothing beyond the kernels themselves);
* ``modeled replay overhead`` — the paper-side number for comparison:
  replay passes charged per profiled kernel by the PMU model.

``gpu-topdown profile-self`` runs a bundled suite under an in-memory
observability session and prints this report;
``repro.experiments.generate_all`` folds the same lines into the
bundle's ``RUNHEALTH.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.resilience.health import RunHealth
    from repro.sim.engine import EngineStats


@dataclass(frozen=True)
class SelfProfile:
    """Where one run's wall time went, payload vs orchestration."""

    wall_s: float
    sim_s: float
    cache_io_s: float
    kernels_simulated: int
    memo_hits: int
    retries: int
    quarantined: int
    #: profiled kernel invocations and total replay passes charged by
    #: the PMU model (0/0 when the run profiled nothing).
    kernels_profiled: int = 0
    replay_passes: int = 0

    @property
    def orchestration_s(self) -> float:
        return max(0.0, self.wall_s - self.sim_s - self.cache_io_s)

    @property
    def sim_share(self) -> float:
        """Fraction of wall time spent simulating kernels."""
        return self.sim_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def self_overhead_x(self) -> float:
        """Wall time per simulated-kernel second (>= 1.0; the tool's
        own analogue of the paper's profiled/native overhead)."""
        if self.sim_s <= 0:
            return float("inf") if self.wall_s > 0 else 1.0
        return self.wall_s / self.sim_s

    @property
    def modeled_replay_x(self) -> float:
        """Replay passes per profiled kernel (the paper-side overhead
        driver: 8 passes for a Turing level-3 collection)."""
        if self.kernels_profiled <= 0:
            return 0.0
        return self.replay_passes / self.kernels_profiled


def self_profile(
    stats: "EngineStats",
    wall_s: float,
    *,
    health: "RunHealth | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> SelfProfile:
    """Build the breakdown for one engine lifetime."""
    kernels_profiled = 0
    replay_passes = 0
    if metrics is not None and getattr(metrics, "enabled", False):
        kernels_profiled = metrics.counter("profiler.kernels")
        replay_passes = metrics.counter("profiler.replay_passes")
    return SelfProfile(
        wall_s=wall_s,
        sim_s=stats.sim_seconds,
        cache_io_s=stats.cache_seconds,
        kernels_simulated=stats.sim_calls,
        memo_hits=stats.memo_hits,
        retries=health.retry_count if health is not None else 0,
        quarantined=len(health.quarantined) if health is not None else 0,
        kernels_profiled=kernels_profiled,
        replay_passes=replay_passes,
    )


def render_lines(sp: SelfProfile) -> list[str]:
    """The report as plain lines (reused by ``RUNHEALTH.txt``)."""
    lines = [
        f"self-profile: wall {sp.wall_s:.2f}s = "
        f"simulate {sp.sim_s:.2f}s ({sp.sim_share * 100:.1f}%) "
        f"+ cache io {sp.cache_io_s:.2f}s "
        f"+ orchestration {sp.orchestration_s:.2f}s",
        f"  self-overhead: {sp.self_overhead_x:.2f}x wall per "
        f"simulated-kernel second "
        f"({sp.kernels_simulated} kernel(s) simulated, "
        f"{sp.memo_hits} memo hit(s))",
    ]
    if sp.kernels_profiled:
        lines.append(
            f"  modeled replay overhead: {sp.replay_passes} pass(es) "
            f"over {sp.kernels_profiled} profiled kernel(s) = "
            f"{sp.modeled_replay_x:.1f}x re-execution "
            f"(the paper's ~13x driver)"
        )
    if sp.retries or sp.quarantined:
        lines.append(
            f"  resilience: {sp.retries} retr(y/ies), "
            f"{sp.quarantined} quarantined cell(s) "
            f"(time spent inside retries is charged to simulate)"
        )
    return lines


def render(sp: SelfProfile) -> str:
    return "\n".join(render_lines(sp))


__all__ = ["SelfProfile", "render", "render_lines", "self_profile"]
