"""Span-based tracer emitting Chrome trace-event JSON.

One :class:`Tracer` belongs to one process.  Spans (:meth:`Tracer.span`)
record *complete* events (``"ph": "X"``) at exit; :meth:`Tracer.instant`
records point events (``"ph": "i"``) for things that happen rather than
last — a retry, a quarantine, a journal resume.  Events either stream
to a trace file (one JSON object per line, wrapped in a trace-event
array) or accumulate in memory (``path=None``), which is what the unit
tests and the self-profiling report use.

File format
-----------

The file is the Chrome trace-event *JSON array format*, written so it
is simultaneously line-oriented (JSONL-style: one event per line, each
terminated by ``,\\n``)::

    [
    {"name": "engine", "ph": "X", ...},
    {"name": "sim.cell", "ph": "X", ...},
    {"name": "trace.end", "ph": "M", ...}
    ]

Both ``chrome://tracing`` and Perfetto load it, *including* a file with
no closing bracket — which is exactly what a crashed run leaves behind,
and what worker processes produce: they append events to the same file
(``O_APPEND``; each event is one short ``write()``, atomic on POSIX)
and never write the footer.  Only the owning parent tracer closes the
array.  :func:`load_trace` parses either form back into event dicts.

Timestamps are microseconds of ``time.perf_counter()`` relative to a
shared *epoch* — ``perf_counter`` is ``CLOCK_MONOTONIC`` on the
platforms we support, so parent and (forked or epoch-initialized
spawned) workers share one timeline.

Zero cost when disabled: the module-level :data:`NULL_TRACER` answers
every ``span()`` with one shared no-op context manager and records
nothing — no allocation, no string formatting, no I/O on the fast path.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Iterator

#: bump when the event vocabulary changes incompatibly.
TRACE_SCHEMA = "repro/obs-trace@1"

#: event categories used by the bundled instrumentation (documented in
#: docs/OBSERVABILITY.md; tests assert coverage against this set).
TRACE_CATEGORIES = (
    "engine",      # dispatch batches, pool fan-out, engine lifetime
    "sim",         # per-cell kernel simulation
    "cache",       # persistent result-cache loads/stores
    "resilience",  # retries, quarantines, fault recovery
    "profiler",    # nvprof/ncu emulation passes over applications
    "stage",       # caller-labelled pipeline stages (experiment cells)
    "timeline",    # nsys-trace ingest and timeline analyses
)


class _NullSpan:
    """Shared do-nothing span: the whole disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **args: Any) -> None:
        """Ignore late-bound span arguments."""


NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records a complete ("X") event on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._complete(self)

    def set(self, **args: Any) -> None:
        """Attach arguments discovered after the span opened
        (e.g. whether a cache load turned out to be a hit)."""
        self.args.update(args)


class _NullTracer:
    """Disabled tracer: every operation is a no-op."""

    enabled = False
    events: list = []

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        return None

    def counter(self, name: str, values=None, cat: str = "") -> None:
        return None

    def close(self) -> None:
        return None


NULL_TRACER = _NullTracer()


class Tracer:
    """Records trace events for one process.

    ``path=None`` keeps events in :attr:`events` (in-memory mode);
    otherwise events stream to ``path``.  ``footer=True`` marks the
    array-owning parent: it writes the ``[`` header on open and the
    closing ``]`` in :meth:`close`.  Worker tracers open the same file
    with ``footer=False`` and only ever append event lines.
    """

    enabled = True

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        epoch: float | None = None,
        footer: bool = True,
        process_name: str = "gpu-topdown",
    ) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.pid = os.getpid()
        self._footer = footer
        self._fd: int | None = None
        self.events: list[dict[str, Any]] = []
        if self.path is not None:
            flags = os.O_WRONLY | os.O_APPEND | os.O_CREAT
            if footer:
                flags |= os.O_TRUNC
            self._fd = os.open(self.path, flags, 0o644)
            if footer:
                os.write(self._fd, b"[\n")
        self._emit({
            "name": "process_name", "ph": "M", "pid": self.pid, "tid": 0,
            "args": {"name": process_name, "schema": TRACE_SCHEMA},
        })

    # -- recording --------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self.epoch) * 1e6

    def _emit(self, event: dict[str, Any]) -> None:
        if self._fd is not None:
            line = json.dumps(event, separators=(",", ":")) + ",\n"
            os.write(self._fd, line.encode("utf-8"))
        else:
            self.events.append(event)

    def span(self, name: str, cat: str = "obs", **args: Any) -> _Span:
        """Context manager timing one operation as a complete event."""
        return _Span(self, name, cat, args)

    def _complete(self, span: _Span) -> None:
        t1 = time.perf_counter()
        start_us = (span._t0 - self.epoch) * 1e6
        event: dict[str, Any] = {
            "name": span.name, "cat": span.cat, "ph": "X",
            "ts": round(start_us, 3),
            "dur": round((t1 - span._t0) * 1e6, 3),
            "pid": self.pid, "tid": threading.get_native_id(),
        }
        if span.args:
            event["args"] = span.args
        self._emit(event)

    def instant(self, name: str, cat: str = "obs", **args: Any) -> None:
        """Record a point-in-time event (retry, quarantine, resume...)."""
        event: dict[str, Any] = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": round(self._now_us(), 3),
            "pid": self.pid, "tid": threading.get_native_id(),
        }
        if args:
            event["args"] = args
        self._emit(event)

    def counter(self, name: str, values: dict[str, float] | None = None,
                cat: str = "obs") -> None:
        """Record a counter sample (rendered as a track in Perfetto)."""
        self._emit({
            "name": name, "cat": cat, "ph": "C",
            "ts": round(self._now_us(), 3),
            "pid": self.pid, "tid": 0,
            "args": dict(values or {}),
        })

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Flush and close; the owning tracer terminates the array."""
        if self._fd is None:
            return
        if self._footer:
            tail = json.dumps({
                "name": "trace.end", "ph": "M",
                "pid": self.pid, "tid": 0,
                "args": {"schema": TRACE_SCHEMA},
            }, separators=(",", ":"))
            os.write(self._fd, (tail + "\n]\n").encode("utf-8"))
        os.close(self._fd)
        self._fd = None


def load_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Parse a trace file back into event dicts.

    Tolerates both a cleanly closed array and the unterminated form a
    crashed run (or a worker-only view) leaves behind — the same
    leniency ``chrome://tracing`` applies.
    """
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line in ("", "[", "]"):
                continue
            events.append(json.loads(line.rstrip(",")))
    return events


def iter_spans(events: list[dict[str, Any]]) -> Iterator[dict[str, Any]]:
    """The complete ("X") events of a parsed trace."""
    return (e for e in events if e.get("ph") == "X")


__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "TRACE_CATEGORIES",
    "TRACE_SCHEMA",
    "Tracer",
    "iter_spans",
    "load_trace",
]
