"""Sanitizer entry points: programs, applications, suites.

Mirrors :mod:`repro.lint.runner` — same registry configuration, waiver
and report machinery — with one addition: ``dynamic=True`` replays each
kernel through :class:`~repro.sanitize.dynamic.SanitizingSimulator` and
stamps every racecheck / divergent-barrier finding with its
CONFIRMED / NOT-OBSERVED verdict.
"""

from __future__ import annotations

from dataclasses import replace

from repro.arch.spec import GPUSpec
from repro.errors import LintError
from repro.isa.program import KernelProgram, LaunchConfig
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.registry import ProgramContext, RuleRegistry, build_registry
from repro.lint.runner import apply_waivers
from repro.sanitize.dynamic import confirm_candidates
from repro.sanitize.passes import (
    RacecheckRule,
    SynccheckDivergentRule,
    divergent_barrier_candidates,
    race_candidates,
    sanitize_rules,
)
from repro.sim.config import SimConfig
from repro.workloads.base import Application, LintWaiver, Suite


def sanitize_registry() -> RuleRegistry:
    """A fresh registry holding every sanitizer pass."""
    return build_registry(sanitize_rules())


def _annotate(
    diags: list[Diagnostic],
    program: KernelProgram,
    launch: LaunchConfig,
    spec: GPUSpec,
    registry: RuleRegistry,
    config: SimConfig,
) -> list[Diagnostic]:
    """Attach dynamic verdicts to racecheck / divergent-BAR findings.

    Each of the two rules emits exactly one diagnostic per candidate,
    in candidate order, so the verdict lists zip back positionally.
    """
    want_race = registry.is_enabled(RacecheckRule.id)
    want_bars = registry.is_enabled(SynccheckDivergentRule.id)
    race = race_candidates(program, launch) if want_race else []
    bars = divergent_barrier_candidates(program) if want_bars else []
    if not race and not bars:
        return diags
    race_verdicts, bar_verdicts = confirm_candidates(
        spec, program, launch, config, race, bars
    )
    queues = {
        RacecheckRule.id: list(race_verdicts),
        SynccheckDivergentRule.id: list(bar_verdicts),
    }
    out: list[Diagnostic] = []
    for diag in diags:
        queue = queues.get(diag.rule)
        if queue and diag.location.kernel == program.name:
            verdict = queue.pop(0)
            diag = replace(
                diag, message=f"{diag.message} [dynamic: {verdict}]"
            )
        out.append(diag)
    for rule_id, queue in queues.items():
        if queue:
            raise LintError(
                f"{rule_id}: {len(queue)} dynamic verdict(s) had no "
                "matching diagnostic"
            )
    return out


def sanitize_program(
    program: KernelProgram,
    launch: LaunchConfig,
    spec: GPUSpec,
    *,
    registry: RuleRegistry | None = None,
    waivers: tuple[LintWaiver, ...] = (),
    dynamic: bool = False,
    config: SimConfig | None = None,
) -> LintReport:
    """Run every sanitizer pass over one kernel + launch."""
    registry = registry or sanitize_registry()
    diags = registry.run("sanitize", ProgramContext(program, launch, spec))
    if dynamic:
        diags = _annotate(diags, program, launch, spec, registry,
                          config or SimConfig(seed=0))
    return LintReport(
        diagnostics=tuple(apply_waivers(diags, waivers)),
        rules=registry.catalog(),
        subject=program.name,
        device=spec.name,
    )


def sanitize_application(
    app: Application,
    spec: GPUSpec,
    *,
    registry: RuleRegistry | None = None,
    dynamic: bool = False,
    config: SimConfig | None = None,
) -> LintReport:
    """Sanitize every distinct kernel of an application.

    Waivers come from the same ``Application.lint_allow`` annotations
    the lint layer uses — one waiver vocabulary for both tools.
    """
    registry = registry or sanitize_registry()
    diags: list[Diagnostic] = []
    seen: set[tuple[int, int]] = set()
    for inv in app.invocations:
        key = (id(inv.program), id(inv.launch))
        if key in seen:
            continue
        seen.add(key)
        ctx = ProgramContext(inv.program, inv.launch, spec)
        kernel_diags = registry.run("sanitize", ctx)
        if dynamic:
            kernel_diags = _annotate(
                kernel_diags, inv.program, inv.launch, spec, registry,
                config or SimConfig(seed=0),
            )
        diags.extend(kernel_diags)
    unique = list(dict.fromkeys(diags))
    return LintReport(
        diagnostics=tuple(apply_waivers(unique, app.lint_allow)),
        rules=registry.catalog(),
        subject=f"{app.suite}/{app.name}",
        device=spec.name,
    )


def sanitize_suite(
    suite: Suite,
    spec: GPUSpec,
    *,
    registry: RuleRegistry | None = None,
    dynamic: bool = False,
    config: SimConfig | None = None,
) -> LintReport:
    """Sanitize every application of a suite."""
    registry = registry or sanitize_registry()
    report = LintReport(
        diagnostics=(), rules=registry.catalog(),
        subject=f"sanitize {suite.name}", device=spec.name,
    )
    for app in suite:
        report = report.merged_with(
            sanitize_application(
                app, spec, registry=registry, dynamic=dynamic,
                config=config,
            )
        )
    return report
