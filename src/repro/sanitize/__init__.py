"""Static-analysis framework and compute-sanitizer-style passes.

``repro.sanitize`` is the correctness counterpart of the perf-heuristic
lint layer: a per-thread CFG over :class:`~repro.isa.program.KernelProgram`
(:mod:`.cfg`), a fixed-point dataflow engine with reaching definitions,
liveness and barrier counting (:mod:`.dataflow`), four
compute-sanitizer-analogue passes — racecheck, synccheck, initcheck,
memcheck (:mod:`.passes`) — and a simulator-backed dynamic confirmation
layer that stamps each race / divergent-barrier candidate CONFIRMED or
NOT-OBSERVED (:mod:`.dynamic`).  See docs/SANITIZER.md.
"""

from repro.sanitize.cfg import (
    EXIT_BLOCK,
    BasicBlock,
    ControlFlowGraph,
    build_cfg,
    divergent_region_pcs,
)
from repro.sanitize.dataflow import (
    ReachingDefs,
    barrier_counts,
    barrier_free_reachable,
    exit_barrier_counts,
    liveness,
    reaching_definitions,
    solve,
    uninit_def,
)
from repro.sanitize.dynamic import (
    CONFIRMED,
    NOT_OBSERVED,
    SanitizingSimulator,
    Verdict,
    confirm_candidates,
)
from repro.sanitize.passes import (
    RaceCandidate,
    divergent_barrier_candidates,
    race_candidates,
    sanitize_rules,
)
from repro.sanitize.runner import (
    sanitize_application,
    sanitize_program,
    sanitize_registry,
    sanitize_suite,
)

__all__ = [
    "EXIT_BLOCK",
    "BasicBlock",
    "CONFIRMED",
    "ControlFlowGraph",
    "NOT_OBSERVED",
    "RaceCandidate",
    "ReachingDefs",
    "SanitizingSimulator",
    "Verdict",
    "barrier_counts",
    "barrier_free_reachable",
    "build_cfg",
    "confirm_candidates",
    "divergent_barrier_candidates",
    "divergent_region_pcs",
    "exit_barrier_counts",
    "liveness",
    "race_candidates",
    "reaching_definitions",
    "sanitize_application",
    "sanitize_program",
    "sanitize_registry",
    "sanitize_rules",
    "sanitize_suite",
    "solve",
    "uninit_def",
]
