"""Per-thread control-flow graph over a :class:`KernelProgram` body.

The simulator executes divergence *serially at warp level* (the if-arm
runs with the taken mask, then the else-arm with the complement — see
``Warp.enter_region``), but each individual *thread* follows exactly one
arm.  Correctness properties (reaching definitions, read-before-write,
barrier counts along a path) are therefore questions about the
**per-thread diamond**:

::

        [ ... BRA ]          branch block (ends with the BRA)
          /      \\
     [if-arm]  [else-arm]    one basic block each (regions cannot nest)
          \\      /
        [ join ... ]

``iterations > 1`` adds one back edge from every body-terminating block
to the body's first block.  Back edges are tagged so analyses can work
on the acyclic first-iteration view (initcheck severity, barrier
counting) or the full cyclic graph (racecheck reachability).

Degenerate branches keep their structure: a ``taken_fraction`` of
``1.0`` (or ``0.0``) makes the else-arm (or if-arm) *unreachable* — the
block still exists, with no incoming edge, which is exactly what the
path-aware :class:`~repro.lint.program_rules.DeadCodeRule` needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode
from repro.isa.program import KernelProgram

#: virtual successor id meaning "the implicit EXIT after the last
#: iteration"; never a valid block index.
EXIT_BLOCK = -1


@dataclass(frozen=True)
class BasicBlock:
    """Maximal single-entry single-exit run of body instructions."""

    index: int
    #: first body pc (inclusive).
    start: int
    #: one past the last body pc (exclusive); ``end > start`` always.
    end: int
    #: "linear", "branch" (ends with the BRA), "if_arm" or "else_arm".
    kind: str = "linear"
    #: pc of the guarding BRA for arm blocks, else ``None``.
    branch_pc: int | None = None

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"B{self.index}[{self.start}:{self.end}] {self.kind}"


@dataclass(frozen=True)
class ControlFlowGraph:
    """Blocks, edges and per-instruction successor relation."""

    program: KernelProgram
    blocks: tuple[BasicBlock, ...]
    #: successor block indices per block (``EXIT_BLOCK`` for kernel exit).
    succs: tuple[tuple[int, ...], ...]
    #: predecessor block indices per block (back edges included).
    preds: tuple[tuple[int, ...], ...]
    #: (src_block, dst_block) pairs that close the iteration loop.
    back_edges: frozenset[tuple[int, int]]
    #: pc -> owning block index.
    block_of: tuple[int, ...] = field(repr=False)

    # -- structural queries -------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block_at(self, pc: int) -> BasicBlock:
        return self.blocks[self.block_of[pc]]

    def forward_succs(self, index: int) -> tuple[int, ...]:
        """Successors with back edges removed (acyclic view)."""
        return tuple(
            s for s in self.succs[index]
            if s != EXIT_BLOCK and (index, s) not in self.back_edges
        )

    def reachable_blocks(self) -> frozenset[int]:
        """Block indices reachable from the entry (thread semantics)."""
        seen = {0}
        frontier = [0]
        while frontier:
            cur = frontier.pop()
            for nxt in self.succs[cur]:
                if nxt != EXIT_BLOCK and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def unreachable_blocks(self) -> tuple[BasicBlock, ...]:
        reachable = self.reachable_blocks()
        return tuple(b for b in self.blocks if b.index not in reachable)

    # -- instruction-level successors --------------------------------------

    def inst_succs(self, pc: int) -> tuple[int, ...]:
        """Per-thread successor pcs of ``pc`` (``EXIT_BLOCK`` = exit).

        Back edges are included: the pc after the body's last
        instruction is the body start again when ``iterations > 1``.
        """
        block = self.block_at(pc)
        if pc + 1 < block.end:
            return (pc + 1,)
        out: list[int] = []
        for succ in self.succs[block.index]:
            out.append(EXIT_BLOCK if succ == EXIT_BLOCK
                       else self.blocks[succ].start)
        return tuple(out)

    def topological_order(self) -> tuple[int, ...]:
        """Blocks in acyclic topological order (= start order here).

        Forward edges always point from lower ``start`` to higher
        ``start`` because the body is a linearised structured program,
        so sorting by ``start`` is a valid topological order of the
        graph without back edges.
        """
        return tuple(b.index for b in self.blocks)


def build_cfg(program: KernelProgram) -> ControlFlowGraph:
    """Construct the per-thread CFG of ``program``."""
    body = program.body
    n = len(body)

    # -- leaders: body start, arm starts, joins -----------------------------
    leaders = {0}
    # (branch_pc, if_range, else_range, join_pc) per BRA
    regions: list[tuple[int, range, range, int]] = []
    for pc, inst in enumerate(body):
        if inst.opcode is not Opcode.BRA:
            continue
        info = inst.branch
        if_rng = range(pc + 1, pc + 1 + info.if_length)
        else_rng = range(if_rng.stop, if_rng.stop + info.else_length)
        join = else_rng.stop
        regions.append((pc, if_rng, else_rng, join))
        leaders.add(pc + 1)
        if else_rng:
            leaders.add(else_rng.start)
        if join < n:
            leaders.add(join)
    # a BRA terminates its block, so the pc after it is a leader even
    # when both arms are empty (handled above by ``pc + 1``).
    ordered = sorted(x for x in leaders if x < n)

    # -- blocks -------------------------------------------------------------
    blocks: list[BasicBlock] = []
    block_of = [0] * n
    bounds = ordered + [n]
    arm_kind: dict[int, tuple[str, int]] = {}
    for bra, if_rng, else_rng, _ in regions:
        if if_rng:
            arm_kind[if_rng.start] = ("if_arm", bra)
        if else_rng:
            arm_kind[else_rng.start] = ("else_arm", bra)
    for i, start in enumerate(bounds[:-1]):
        end = bounds[i + 1]
        # split out the BRA terminator: a block containing a BRA ends
        # right after it (arms are branch-free, so at most the last
        # instruction of a chunk is a BRA -- but a chunk between
        # leaders may hold straight-line code followed by a BRA, which
        # is fine: the BRA is its last instruction by construction
        # since ``pc + 1`` is always a leader).
        kind, branch_pc = arm_kind.get(start, ("linear", None))
        if body[end - 1].opcode is Opcode.BRA:
            kind = "branch" if kind == "linear" else kind
        index = len(blocks)
        blocks.append(BasicBlock(index, start, end, kind, branch_pc))
        for pc in range(start, end):
            block_of[pc] = index

    by_start = {b.start: b.index for b in blocks}
    loops = program.iterations > 1

    def _after(join_pc: int) -> list[tuple[int, bool]]:
        """Targets for control reaching ``join_pc`` (may be body end)."""
        if join_pc < n:
            return [(by_start[join_pc], False)]
        out: list[tuple[int, bool]] = [(EXIT_BLOCK, False)]
        if loops:
            out.append((0, True))
        return out

    succs: list[list[int]] = [[] for _ in blocks]
    preds: list[list[int]] = [[] for _ in blocks]
    back: set[tuple[int, int]] = set()

    def _edge(src: int, dst: int, is_back: bool) -> None:
        if dst in succs[src]:
            return
        succs[src].append(dst)
        if dst != EXIT_BLOCK:
            preds[dst].append(src)
        if is_back:
            back.add((src, dst))

    region_by_bra = {bra: (if_rng, else_rng, join)
                     for bra, if_rng, else_rng, join in regions}
    for block in blocks:
        last = body[block.end - 1]
        if last.opcode is Opcode.BRA:
            if_rng, else_rng, join = region_by_bra[block.end - 1]
            frac = last.branch.taken_fraction
            taken_live = frac > 0.0
            fall_live = frac < 1.0
            # taken threads: if-arm (or straight to the join).
            taken_targets = ([(by_start[if_rng.start], False)] if if_rng
                             else _after(join))
            fall_targets = ([(by_start[else_rng.start], False)] if else_rng
                            else _after(join))
            if taken_live:
                for dst, is_back in taken_targets:
                    _edge(block.index, dst, is_back)
            if fall_live:
                for dst, is_back in fall_targets:
                    _edge(block.index, dst, is_back)
        elif block.kind in ("if_arm", "else_arm"):
            join = region_by_bra[block.branch_pc][2]
            for dst, is_back in _after(join):
                _edge(block.index, dst, is_back)
        else:
            for dst, is_back in _after(block.end):
                _edge(block.index, dst, is_back)

    return ControlFlowGraph(
        program=program,
        blocks=tuple(blocks),
        succs=tuple(tuple(s) for s in succs),
        preds=tuple(tuple(p) for p in preds),
        back_edges=frozenset(back),
        block_of=tuple(block_of),
    )


def divergent_region_pcs(program: KernelProgram) -> frozenset[int]:
    """Pcs inside an arm of a *divergent* branch (``0 < tf < 1``)."""
    out: set[int] = set()
    for pc, inst in enumerate(program.body):
        if inst.opcode is Opcode.BRA:
            frac = inst.branch.taken_fraction
            if 0.0 < frac < 1.0:
                length = inst.branch.if_length + inst.branch.else_length
                out.update(range(pc + 1, pc + 1 + length))
    return frozenset(out)
