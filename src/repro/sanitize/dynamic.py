"""Dynamic confirmation of static sanitizer candidates.

The simulator gives the sanitizer something standalone static tools
never have: cheap ground truth.  :class:`SanitizingSimulator` replays a
kernel through the ordinary event loop while *observing* the
shared-memory and barrier paths — like the tracing shim in
:mod:`repro.sim.trace` it wraps ``_attempt_issue`` (and
``_release_barrier``) without touching any simulator state, so the
produced :class:`~repro.sim.counters.EventCounters` are bit-identical
to an uninstrumented run (a property the test-suite pins against the
golden fixture).

Observation model
-----------------

* every issued ``LDS``/``STS`` at a *watched* pc records
  ``(block, warp, barrier-epoch, pc, sector interval)`` — the sectors
  are recomputed through the per-pc address generator, a pure function
  of ``(warp_id, iteration, slot, active_threads)``;
* every ``BAR`` *release* bumps the block's barrier epoch;
* every issued ``BAR`` at a watched pc records whether the warp was
  divergent (its region stack non-empty / partial mask) on arrival.

A race candidate is **CONFIRMED** when two recorded accesses of its two
pcs land in the same ``(block, epoch)`` with overlapping sectors — from
different warps for inter-warp candidates, from one warp for intra-warp
(sibling-arm) candidates — and **NOT-OBSERVED** otherwise.  A divergent
barrier candidate is CONFIRMED when any warp issued it while divergent.
NOT-OBSERVED does not mean *safe*: it means this launch geometry and
seed never lined the accesses up inside one barrier interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.arch.spec import GPUSpec
from repro.isa.opcodes import Opcode
from repro.isa.program import KernelProgram, LaunchConfig
from repro.sanitize.passes import RaceCandidate
from repro.sim.config import SimConfig
from repro.sim.sm import SMSimulator

CONFIRMED = "CONFIRMED"
NOT_OBSERVED = "NOT-OBSERVED"

#: hard cap on retained access records; candidates past it degrade to
#: NOT-OBSERVED with an explicit note rather than exhausting memory.
MAX_RECORDS = 250_000


@dataclass(frozen=True)
class _Access:
    pc: int
    warp_id: int
    block_id: int
    epoch: int
    #: half-open sector interval [first, first + count).
    first: int
    count: int


@dataclass(frozen=True)
class Verdict:
    """Outcome of one candidate's dynamic confirmation."""

    status: str
    detail: str

    def __str__(self) -> str:
        return f"{self.status} ({self.detail})" if self.detail else self.status


class SanitizingSimulator(SMSimulator):
    """Event-loop simulator that observes shared/barrier traffic.

    Pure observer: records are appended from wrapped hooks *after* the
    base implementation ran; no simulator state is read-modified.
    """

    def __init__(self, spec, program, launch, config,
                 watch_shared: frozenset[int] = frozenset(),
                 watch_bars: frozenset[int] = frozenset(),
                 **kwargs) -> None:
        super().__init__(spec, program, launch, config, **kwargs)
        self._watch_shared = watch_shared
        self._watch_bars = watch_bars
        self._epoch: dict[int, int] = {}
        self.accesses: list[_Access] = []
        #: exact sector sets for irregular (RANDOM-kind) records,
        #: keyed by index into ``accesses``; regular records carry a
        #: [first, first+count) interval instead.
        self._sector_lists: dict[int, frozenset[int]] = {}
        self.divergent_bar_pcs: set[int] = set()
        self.records_dropped = 0

    # -- hooks ----------------------------------------------------------
    def _attempt_issue(self, warp, inst, cycle):
        pc = warp.pc
        iteration = warp.iteration
        active = warp.active_threads
        divergent = bool(warp.region) or active < 32
        state = super()._attempt_issue(warp, inst, cycle)
        if state.name != "SELECTED":
            return state
        if pc in self._watch_shared:
            if len(self.accesses) >= MAX_RECORDS:
                self.records_dropped += 1
                return state
            gen = self._gen_by_pc[pc]
            run = gen.span(warp.warp_id, iteration, pc, active)
            if run is not None:
                first, count = run
            else:
                sectors = gen.sectors(warp.warp_id, iteration, pc, active)
                first, count = min(sectors), 0  # sentinel: exact list
                self.accesses.append(_Access(
                    pc, warp.warp_id, warp.block_id,
                    self._epoch.get(warp.block_id, 0),
                    first, count,
                ))
                self._sector_lists[len(self.accesses) - 1] = (
                    frozenset(sectors)
                )
                return state
            self.accesses.append(_Access(
                pc, warp.warp_id, warp.block_id,
                self._epoch.get(warp.block_id, 0), first, count,
            ))
        elif pc in self._watch_bars and inst.opcode is Opcode.BAR:
            if divergent:
                self.divergent_bar_pcs.add(pc)
        return state

    def _release_barrier(self, block, cycle):
        super()._release_barrier(block, cycle)
        self._epoch[block] = self._epoch.get(block, 0) + 1

    # -- overlap test ---------------------------------------------------
    def _overlap(self, i: int, j: int) -> bool:
        a, b = self.accesses[i], self.accesses[j]
        sa = self._sector_lists.get(i)
        sb = self._sector_lists.get(j)
        if sa is not None and sb is not None:
            return bool(sa & sb)
        if sa is not None:
            return any(b.first <= s < b.first + b.count for s in sa)
        if sb is not None:
            return any(a.first <= s < a.first + a.count for s in sb)
        return a.first < b.first + b.count and b.first < a.first + a.count


def confirm_candidates(
    spec: GPUSpec,
    program: KernelProgram,
    launch: LaunchConfig,
    config: SimConfig,
    race: Sequence[RaceCandidate],
    divergent_bars: Sequence[int],
) -> tuple[list[Verdict], list[Verdict]]:
    """Replay the kernel once and judge every candidate.

    Returns verdicts aligned with ``race`` and ``divergent_bars``.  The
    replay covers one SM's share of the launch with the given config —
    the same geometry ``analyze`` simulates.
    """
    if not race and not divergent_bars:
        return [], []
    watch_shared = frozenset(
        pc for cand in race for pc in (cand.store_pc, cand.other_pc)
    )
    sim = SanitizingSimulator(
        spec, program, launch, config,
        watch_shared=watch_shared,
        watch_bars=frozenset(divergent_bars),
    )
    sim.run()

    # index records by (pc) once; candidate matching walks pairs.
    by_pc: dict[int, list[int]] = {}
    for idx, acc in enumerate(sim.accesses):
        by_pc.setdefault(acc.pc, []).append(idx)

    race_verdicts: list[Verdict] = []
    for cand in race:
        verdict = _judge_race(sim, by_pc, cand)
        race_verdicts.append(verdict)
    bar_verdicts = [
        Verdict(CONFIRMED, "warp arrived divergent")
        if pc in sim.divergent_bar_pcs
        else Verdict(NOT_OBSERVED, "every arrival was converged")
        for pc in divergent_bars
    ]
    return race_verdicts, bar_verdicts


def _judge_race(sim: SanitizingSimulator, by_pc: dict[int, list[int]],
                cand: RaceCandidate) -> Verdict:
    left = by_pc.get(cand.store_pc, [])
    right = by_pc.get(cand.other_pc, [])
    same_pc = cand.store_pc == cand.other_pc
    # group by (block, epoch) to keep the pair scan near-linear.
    cell: dict[tuple[int, int], list[int]] = {}
    for idx in left:
        acc = sim.accesses[idx]
        cell.setdefault((acc.block_id, acc.epoch), []).append(idx)
    for key, lefts in cell.items():
        rights = [idx for idx in right
                  if (sim.accesses[idx].block_id,
                      sim.accesses[idx].epoch) == key] if not same_pc \
            else lefts
        for i in lefts:
            a = sim.accesses[i]
            for j in rights:
                if i == j:
                    continue
                b = sim.accesses[j]
                if cand.kind == "inter-warp" and a.warp_id == b.warp_id:
                    continue
                if cand.kind == "intra-warp" and a.warp_id != b.warp_id:
                    continue
                if sim._overlap(i, j):
                    return Verdict(
                        CONFIRMED,
                        f"overlapping sectors in block {a.block_id} "
                        f"barrier interval {a.epoch}",
                    )
    if sim.records_dropped:
        return Verdict(
            NOT_OBSERVED,
            f"record cap hit ({sim.records_dropped} accesses dropped)",
        )
    return Verdict(NOT_OBSERVED, "no overlapping pair in any "
                                 "barrier interval of the replay")
