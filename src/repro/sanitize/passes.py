"""The four compute-sanitizer-analogue passes.

Each pass is a :class:`~repro.lint.registry.Rule` with scope
``"sanitize"`` so the whole lint machinery — registry configuration,
severity overrides, waivers, report rendering — applies unchanged.

Racecheck and synccheck additionally expose their **candidates**
(:func:`race_candidates`, :func:`divergent_barrier_candidates`) as
plain data: the dynamic confirmation layer
(:mod:`repro.sanitize.dynamic`) replays a kernel through the simulator
and attaches a CONFIRMED / NOT-OBSERVED verdict to each candidate's
diagnostic.  The rule emits exactly one diagnostic per candidate, in
candidate order, which is what lets the runner zip them back together.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.isa.opcodes import Opcode
from repro.isa.program import AccessKind, KernelProgram, LaunchConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import ProgramContext, Rule
from repro.sanitize.cfg import build_cfg, divergent_region_pcs
from repro.sanitize.dataflow import (
    barrier_free_reachable,
    exit_barrier_counts,
    is_uninit,
    reaching_definitions,
)

WARP_THREADS = 32


# ----------------------------------------------------------------------
# racecheck
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RaceCandidate:
    """One potential shared-memory hazard to confirm dynamically."""

    pattern: str
    store_pc: int
    other_pc: int
    #: "intra-warp" (sibling divergent arms) or "inter-warp".
    kind: str
    #: "RAW", "WAR" or "WAW" by static pc order.
    hazard: str

    @property
    def report_pc(self) -> int:
        return max(self.store_pc, self.other_pc)

    def describe(self) -> str:
        a, b = sorted((self.store_pc, self.other_pc))
        return (f"{self.kind} {self.hazard} hazard on shared pattern "
                f"'{self.pattern}' between pc {a} and pc {b}")


def _arm_of(program: KernelProgram, pc: int) -> tuple[int, str] | None:
    """(branch_pc, arm) when ``pc`` lies in a divergent branch arm."""
    for bra, inst in enumerate(program.body):
        if inst.opcode is not Opcode.BRA:
            continue
        info = inst.branch
        if not 0.0 < info.taken_fraction < 1.0:
            continue
        if bra < pc <= bra + info.if_length:
            return bra, "if"
        if bra + info.if_length < pc <= (
                bra + info.if_length + info.else_length):
            return bra, "else"
    return None


def race_candidates(
    program: KernelProgram, launch: LaunchConfig
) -> list[RaceCandidate]:
    """Statically possible shared-memory hazards, ordered by report pc.

    A pair of accesses to the same shared pattern (at least one a
    ``STS``) is a candidate when no properly synchronising ``BAR``
    separates them on some per-thread path.  Divergent barriers do not
    separate — they are themselves a synccheck finding.  Same-pc store
    pairs are inter-warp candidates whenever the block holds more than
    one warp: two warps execute the instruction in the same barrier
    interval and the address generator gives them different, possibly
    overlapping, cursors.
    """
    body = program.body
    shared = [(pc, inst.mem.pattern, inst.opcode is Opcode.STS)
              for pc, inst in enumerate(body)
              if inst.opcode in (Opcode.LDS, Opcode.STS)]
    if not any(is_store for _, _, is_store in shared):
        return []
    cfg = build_cfg(program)
    divergent = divergent_region_pcs(program)
    separating = frozenset(
        pc for pc, inst in enumerate(body)
        if inst.opcode is Opcode.BAR and pc not in divergent
    )
    reach = {pc: barrier_free_reachable(cfg, pc, separating=separating)
             for pc, _, _ in shared}
    multi_warp = launch.warps_per_block > 1

    seen: set[tuple[str, int, int]] = set()
    out: list[RaceCandidate] = []
    for s_pc, s_pat, s_store in shared:
        if not s_store:
            continue
        for o_pc, o_pat, o_store in shared:
            if o_pat != s_pat:
                continue
            if o_store and o_pc < s_pc:
                continue  # WAW pairs once, from the earlier store
            key = (s_pat, *sorted((s_pc, o_pc)))
            if key in seen:
                continue
            arms = (_arm_of(program, s_pc), _arm_of(program, o_pc))
            sibling = (s_pc != o_pc and None not in arms
                       and arms[0][0] == arms[1][0]
                       and arms[0][1] != arms[1][1])
            if sibling:
                kind = "intra-warp"
            elif multi_warp and (
                    s_pc == o_pc
                    or o_pc in reach[s_pc] or s_pc in reach[o_pc]):
                kind = "inter-warp"
            else:
                continue
            if s_pc == o_pc:
                hazard = "WAW"
            elif o_store:
                hazard = "WAW"
            else:
                hazard = "RAW" if s_pc < o_pc else "WAR"
            seen.add(key)
            out.append(RaceCandidate(s_pat, s_pc, o_pc, kind, hazard))
    out.sort(key=lambda c: (c.report_pc, c.store_pc, c.pattern))
    return out


class RacecheckRule(Rule):
    id = "SAN-RACE"
    title = "shared-memory access pair with no intervening barrier"
    default_severity = Severity.WARNING
    scope = "sanitize"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        for cand in race_candidates(ctx.program, ctx.launch):
            diag = self.diag(
                f"potential {cand.describe()}",
                location=ctx.loc(cand.report_pc, pattern=cand.pattern),
                hint=("insert a BAR between the conflicting accesses or "
                      "privatise the shared region per warp"),
            )
            if cand.kind == "intra-warp":
                # disjoint lane masks of one warp touching one pattern
                # with no sync is a logic bug, not an address accident.
                diag = replace(diag, severity=Severity.ERROR)
            yield diag


# ----------------------------------------------------------------------
# synccheck
# ----------------------------------------------------------------------
def divergent_barrier_candidates(program: KernelProgram) -> list[int]:
    """Pcs of ``BAR`` instructions inside a divergent branch arm."""
    divergent = divergent_region_pcs(program)
    return [pc for pc, inst in enumerate(program.body)
            if inst.opcode is Opcode.BAR and pc in divergent]


class SynccheckDivergentRule(Rule):
    id = "SAN-SYNC-DIVERGENT"
    title = "barrier executed under a divergent branch"
    default_severity = Severity.ERROR
    scope = "sanitize"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        for pc in divergent_barrier_candidates(ctx.program):
            yield self.diag(
                f"BAR at pc {pc} sits inside a divergent branch region: "
                "only part of each warp arrives (deadlock or undefined "
                "rendezvous on real hardware)",
                location=ctx.loc(pc),
                hint="hoist the barrier out of the branch arms",
            )


class SynccheckMismatchRule(Rule):
    id = "SAN-SYNC-MISMATCH"
    title = "branch arms execute different barrier counts"
    default_severity = Severity.WARNING
    scope = "sanitize"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        body = ctx.program.body
        for pc, inst in enumerate(body):
            if inst.opcode is not Opcode.BRA:
                continue
            info = inst.branch
            if not 0.0 < info.taken_fraction < 1.0:
                continue
            if_rng = range(pc + 1, pc + 1 + info.if_length)
            else_rng = range(if_rng.stop, if_rng.stop + info.else_length)
            n_if = sum(1 for p in if_rng
                       if body[p].opcode is Opcode.BAR)
            n_else = sum(1 for p in else_rng
                         if body[p].opcode is Opcode.BAR)
            if n_if != n_else:
                yield self.diag(
                    f"branch at pc {pc}: taken path executes {n_if} "
                    f"barrier(s), fall-through executes {n_else} — "
                    "threads arrive at different barrier counts",
                    location=ctx.loc(pc),
                    hint="balance BAR counts across both arms",
                )
        # whole-kernel cross-check via the dataflow engine: any
        # remaining path disagreement not attributable to one branch.
        cfg = build_cfg(ctx.program)
        counts = exit_barrier_counts(cfg)
        if len(counts) > 1:
            lo, hi = min(counts), max(counts)
            yield self.diag(
                f"per-iteration barrier count differs across per-thread "
                f"paths (between {lo} and {hi})",
                location=ctx.loc(len(body) - 1),
                hint="every path through the body must execute the same "
                     "number of BARs",
            )


# ----------------------------------------------------------------------
# initcheck
# ----------------------------------------------------------------------
class InitcheckRule(Rule):
    id = "SAN-INIT"
    title = "register read before any reaching write"
    default_severity = Severity.ERROR
    scope = "sanitize"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        program = ctx.program
        cfg = build_cfg(program)
        defs = reaching_definitions(cfg)
        live = cfg.reachable_blocks()
        reported: set[int] = set()
        for block in cfg.blocks:
            if block.index not in live:
                continue  # dead arms are DeadCodeRule territory
            for pc in block.pcs:
                for src in program.body[pc].srcs:
                    if src in reported:
                        continue
                    if not defs.maybe_uninit(pc, src):
                        continue
                    reported.add(src)
                    real = sorted(d for d in defs.defs_of(pc, src)
                                  if not is_uninit(d))
                    if not real:
                        yield self.diag(
                            f"R{src} read at pc {pc} is never written "
                            "on any path",
                            location=ctx.loc(pc),
                            hint="initialise the register before the "
                                 "first read",
                        )
                    else:
                        where = ", ".join(f"pc {d}" for d in real)
                        yield replace(
                            self.diag(
                                f"R{src} read at pc {pc} may be "
                                "uninitialised: the only writes "
                                f"({where}) sit on one branch arm or "
                                "a later iteration",
                                location=ctx.loc(pc),
                                hint="write the register on every path "
                                     "(or before the loop)",
                            ),
                            severity=Severity.WARNING,
                        )


class InitcheckSharedRule(Rule):
    id = "SAN-INIT-SHARED"
    title = "shared pattern read but never written in-kernel"
    default_severity = Severity.WARNING
    scope = "sanitize"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        reads: dict[str, int] = {}
        written: set[str] = set()
        for pc, inst in enumerate(ctx.program.body):
            if inst.opcode is Opcode.LDS:
                reads.setdefault(inst.mem.pattern, pc)
            elif inst.opcode is Opcode.STS:
                written.add(inst.mem.pattern)
        for pattern in sorted(set(reads) - written):
            pc = reads[pattern]
            yield self.diag(
                f"shared pattern '{pattern}' is read (first at pc {pc}) "
                "but no STS ever writes it — reads return unstaged data",
                location=ctx.loc(pc, pattern=pattern),
                hint="stage the tile with STS (plus a BAR) before the "
                     "first LDS, or waive if the tile is modelled as "
                     "pre-staged",
            )


# ----------------------------------------------------------------------
# memcheck
# ----------------------------------------------------------------------
class MemcheckExtentRule(Rule):
    id = "SAN-MEM-OVERRUN"
    title = "warp access span exceeds the pattern's declared extent"
    default_severity = Severity.ERROR
    scope = "sanitize"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        table = ctx.program.pattern_table
        first_use: dict[str, int] = {}
        for pc, inst in enumerate(ctx.program.body):
            if inst.mem is not None:
                first_use.setdefault(inst.mem.pattern, pc)
        for name, pattern in sorted(table.items()):
            if pattern.kind not in (AccessKind.STREAM, AccessKind.STRIDED):
                continue
            if name not in first_use:
                continue
            stride_bytes = pattern.stride_elements * pattern.element_bytes
            span = (WARP_THREADS - 1) * stride_bytes + pattern.element_bytes
            if span > pattern.working_set_bytes:
                yield self.diag(
                    f"one warp access to '{name}' spans {span} B "
                    f"({WARP_THREADS} threads x stride {stride_bytes} B) "
                    f"but the pattern declares only "
                    f"{pattern.working_set_bytes} B — the generator "
                    "wraps addresses back into the buffer",
                    location=ctx.loc(first_use[name], pattern=name),
                    hint="grow working_set_bytes or shrink the stride",
                )


class MemcheckAlignmentRule(Rule):
    id = "SAN-MEM-MISALIGN"
    title = "misaligned base address or ragged extent"
    default_severity = Severity.WARNING
    scope = "sanitize"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        first_use: dict[str, int] = {}
        for pc, inst in enumerate(ctx.program.body):
            if inst.mem is not None:
                first_use.setdefault(inst.mem.pattern, pc)
        for name, pattern in sorted(ctx.program.pattern_table.items()):
            if name not in first_use:
                continue
            loc = ctx.loc(first_use[name], pattern=name)
            if pattern.base_address % pattern.element_bytes:
                yield self.diag(
                    f"'{name}' base address 0x{pattern.base_address:x} "
                    f"is not {pattern.element_bytes}-byte aligned: every "
                    "element access straddles an element boundary",
                    location=loc,
                    hint="align base_address to element_bytes",
                )
            if pattern.working_set_bytes % pattern.element_bytes:
                yield self.diag(
                    f"'{name}' working set "
                    f"({pattern.working_set_bytes} B) is not a multiple "
                    f"of the {pattern.element_bytes}-byte element: the "
                    "wrap-around cursor produces torn elements",
                    location=loc,
                    hint="pad working_set_bytes to a whole element count",
                )


class MemcheckSharedExtentRule(Rule):
    id = "SAN-MEM-SHARED-EXTENT"
    title = "shared pattern larger than the block's shared allocation"
    default_severity = Severity.ERROR
    scope = "sanitize"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        shared_pats: dict[str, int] = {}
        for pc, inst in enumerate(ctx.program.body):
            if inst.opcode in (Opcode.LDS, Opcode.STS):
                shared_pats.setdefault(inst.mem.pattern, pc)
        table = ctx.program.pattern_table
        limit = ctx.launch.shared_bytes_per_block
        for name, pc in sorted(shared_pats.items()):
            ws = table[name].working_set_bytes
            if ws > limit:
                yield self.diag(
                    f"shared pattern '{name}' covers {ws} B but the "
                    f"launch allocates {limit} B of shared memory per "
                    "block — accesses past the allocation read/write "
                    "neighbouring storage",
                    location=ctx.loc(pc, pattern=name),
                    hint="raise shared_bytes_per_block to cover the "
                         "tile, or waive when the tile models a static "
                         "allocation the launch does not declare",
                )


def sanitize_rules() -> list[Rule]:
    """Fresh instances of every sanitizer pass, id-sorted."""
    return [
        InitcheckRule(),
        InitcheckSharedRule(),
        MemcheckAlignmentRule(),
        MemcheckExtentRule(),
        MemcheckSharedExtentRule(),
        RacecheckRule(),
        SynccheckDivergentRule(),
        SynccheckMismatchRule(),
    ]
