"""Fixed-point dataflow engine and the analyses the sanitizer passes use.

All facts are frozensets merged by union (a may-analysis lattice), which
is all the sanitizer needs: *may reach* for definitions, *may be live*
for liveness, *may have executed k barriers* for barrier counting.  The
solver iterates a worklist of basic blocks until no block's OUT (IN for
backward problems) changes; monotone transfer functions over a finite
powerset guarantee termination.

Uninitialised values are modelled with one **pseudo-definition per
register** injected at the entry boundary: ``uninit_def(reg)`` reaching
a use means "some path reads the register before any write".  The trick
makes every initcheck flavour fall out of plain reaching definitions:

* pseudo-def is the *only* reaching def  -> uninitialised on all paths;
* pseudo-def plus a def inside one arm   -> initialised on one branch
  arm only;
* pseudo-def plus a def via the back edge -> loop-carried, so only the
  first iteration reads garbage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.isa.opcodes import Opcode
from repro.sanitize.cfg import EXIT_BLOCK, ControlFlowGraph

Fact = frozenset
EMPTY: Fact = frozenset()


def solve(
    cfg: ControlFlowGraph,
    *,
    direction: str,
    boundary: Fact,
    transfer: Callable[[int, Fact], Fact],
    include_back_edges: bool = True,
) -> tuple[list[Fact], list[Fact]]:
    """Union/worklist fixed point; returns per-block (IN, OUT) facts.

    ``transfer(block_index, fact)`` maps a block's IN to its OUT
    (forward) or OUT to its IN (backward).  ``boundary`` seeds the
    entry block's IN (forward) or the exit edges (backward).
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"bad dataflow direction: {direction}")
    n = len(cfg.blocks)
    ins: list[Fact] = [EMPTY] * n
    outs: list[Fact] = [EMPTY] * n

    def edges_into(index: int) -> list[int]:
        preds = cfg.preds[index]
        if not include_back_edges:
            preds = [p for p in preds
                     if (p, index) not in cfg.back_edges]
        return list(preds)

    def edges_out_of(index: int) -> list[int]:
        succs = [s for s in cfg.succs[index] if s != EXIT_BLOCK]
        if not include_back_edges:
            succs = [s for s in succs
                     if (index, s) not in cfg.back_edges]
        return succs

    worklist = list(range(n))
    while worklist:
        index = worklist.pop(0)
        if direction == "forward":
            merged = boundary if index == 0 else EMPTY
            for pred in edges_into(index):
                merged = merged | outs[pred]
            ins[index] = merged
            new_out = transfer(index, merged)
            if new_out != outs[index]:
                outs[index] = new_out
                for succ in edges_out_of(index):
                    if succ not in worklist:
                        worklist.append(succ)
        else:
            exits = any(s == EXIT_BLOCK for s in cfg.succs[index])
            merged = boundary if exits else EMPTY
            for succ in edges_out_of(index):
                merged = merged | ins[succ]
            outs[index] = merged
            new_in = transfer(index, merged)
            if new_in != ins[index]:
                ins[index] = new_in
                preds = edges_into(index)
                for pred in preds:
                    if pred not in worklist:
                        worklist.append(pred)
    return ins, outs


# ----------------------------------------------------------------------
# reaching definitions + def-use chains
# ----------------------------------------------------------------------
def uninit_def(reg: int) -> int:
    """Pseudo-definition id for "register ``reg`` never written"."""
    return -(reg + 1)


def is_uninit(def_id: int) -> bool:
    return def_id < 0


@dataclass(frozen=True)
class ReachingDefs:
    """Definition sites (pcs) reaching each instruction, per register."""

    cfg: ControlFlowGraph
    #: per pc: register -> frozenset of def pcs (negative = pseudo).
    at: tuple[Mapping[int, Fact], ...]
    #: def pc -> pcs whose operands it may feed.
    def_use: Mapping[int, Fact]

    def defs_of(self, pc: int, reg: int) -> Fact:
        """Defs of ``reg`` reaching the *operand read* at ``pc``."""
        return self.at[pc].get(reg, frozenset({uninit_def(reg)}))

    def real_defs_of(self, pc: int, reg: int) -> Fact:
        return frozenset(d for d in self.defs_of(pc, reg)
                         if not is_uninit(d))

    def maybe_uninit(self, pc: int, reg: int) -> bool:
        return uninit_def(reg) in self.defs_of(pc, reg)

    def certainly_uninit(self, pc: int, reg: int) -> bool:
        defs = self.defs_of(pc, reg)
        return defs == frozenset({uninit_def(reg)})


def reaching_definitions(
    cfg: ControlFlowGraph, *, include_back_edges: bool = True
) -> ReachingDefs:
    """Solve reaching definitions over the per-thread CFG.

    A definition is encoded as its pc; facts are ``(reg, def_pc)``
    pairs flattened into tuples so they fit the frozenset lattice.
    """
    body = cfg.program.body
    regs = sorted({r for inst in body
                   for r in (inst.dst, *inst.srcs) if r is not None})
    boundary = frozenset((reg, uninit_def(reg)) for reg in regs)

    def transfer(index: int, fact: Fact) -> Fact:
        cur = dict_of(fact)
        for pc in cfg.blocks[index].pcs:
            dst = body[pc].dst
            if dst is not None:
                cur[dst] = frozenset({pc})
        return flat(cur)

    def dict_of(fact: Fact) -> dict[int, frozenset[int]]:
        out: dict[int, set[int]] = {}
        for reg, def_pc in fact:
            out.setdefault(reg, set()).add(def_pc)
        return {reg: frozenset(v) for reg, v in out.items()}

    def flat(mapping: Mapping[int, frozenset[int]]) -> Fact:
        return frozenset((reg, d) for reg, defs in mapping.items()
                         for d in defs)

    ins, _ = solve(cfg, direction="forward", boundary=boundary,
                   transfer=transfer,
                   include_back_edges=include_back_edges)

    # refine block IN facts down to each instruction's operand read.
    at: list[Mapping[int, Fact]] = [{}] * len(body)
    def_use: dict[int, set[int]] = {}
    for block in cfg.blocks:
        cur = dict_of(ins[block.index])
        for pc in block.pcs:
            at[pc] = dict(cur)
            inst = body[pc]
            for src in inst.srcs:
                for d in cur.get(src, frozenset({uninit_def(src)})):
                    if not is_uninit(d):
                        def_use.setdefault(d, set()).add(pc)
            if inst.dst is not None:
                cur[inst.dst] = frozenset({pc})
    return ReachingDefs(
        cfg=cfg,
        at=tuple(at),
        def_use={d: frozenset(u) for d, u in def_use.items()},
    )


# ----------------------------------------------------------------------
# liveness
# ----------------------------------------------------------------------
def liveness(
    cfg: ControlFlowGraph, *, include_back_edges: bool = True
) -> tuple[list[Fact], list[Fact]]:
    """Backward live-register analysis; returns per-block (IN, OUT)."""
    body = cfg.program.body

    def transfer(index: int, live_out: Fact) -> Fact:
        live = set(live_out)
        for pc in reversed(cfg.blocks[index].pcs):
            inst = body[pc]
            if inst.dst is not None:
                live.discard(inst.dst)
            live.update(inst.srcs)
        return frozenset(live)

    return solve(cfg, direction="backward", boundary=EMPTY,
                 transfer=transfer,
                 include_back_edges=include_back_edges)


# ----------------------------------------------------------------------
# barrier counting / intervals
# ----------------------------------------------------------------------
def barrier_counts(cfg: ControlFlowGraph) -> list[Fact]:
    """Per-block IN: possible numbers of ``BAR``\\ s executed so far.

    Computed on the acyclic (single-iteration) view — with the back
    edge the set would be unbounded.  More than one count reaching the
    kernel exit means two per-thread paths disagree on how many
    barriers they arrive at: the synccheck mismatch condition.
    """
    body = cfg.program.body

    def transfer(index: int, fact: Fact) -> Fact:
        bars = sum(1 for pc in cfg.blocks[index].pcs
                   if body[pc].opcode is Opcode.BAR)
        return frozenset(c + bars for c in fact)

    ins, _ = solve(cfg, direction="forward", boundary=frozenset({0}),
                   transfer=transfer, include_back_edges=False)
    return ins


def exit_barrier_counts(cfg: ControlFlowGraph) -> Fact:
    """Possible per-iteration barrier counts at the body's exit."""
    body = cfg.program.body
    ins = barrier_counts(cfg)
    out: set[int] = set()
    for block in cfg.blocks:
        if any(s == EXIT_BLOCK for s in cfg.succs[block.index]):
            bars = sum(1 for pc in block.pcs
                       if body[pc].opcode is Opcode.BAR)
            out.update(c + bars for c in ins[block.index])
    return frozenset(out)


def barrier_free_reachable(
    cfg: ControlFlowGraph,
    from_pc: int,
    *,
    separating: frozenset[int],
) -> frozenset[int]:
    """Pcs reachable from ``from_pc`` without crossing a separating BAR.

    Traversal follows per-thread successors **including the iteration
    back edge** and stops at (does not pass through) any pc in
    ``separating``; divergent barriers are excluded from that set by
    racecheck because they do not reliably rendezvous the block.  The
    start pc itself is not included unless it is reachable again around
    the loop.
    """
    seen: set[int] = set()
    frontier = [s for s in cfg.inst_succs(from_pc) if s != EXIT_BLOCK]
    while frontier:
        pc = frontier.pop()
        if pc in seen:
            continue
        seen.add(pc)
        if pc in separating:
            continue
        frontier.extend(
            s for s in cfg.inst_succs(pc)
            if s != EXIT_BLOCK and s not in seen
        )
    return frozenset(seen)
