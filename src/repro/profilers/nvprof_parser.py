"""Parser for real ``nvprof --csv --metrics`` output.

Accepts both files captured on actual Pascal-era hardware and the
output of :class:`~repro.profilers.nvprof.NvprofTool`; tolerant of the
``==PROF==`` banner lines, blank lines and unit suffixes (``%``,
``GB/s``...).  Produces the same :class:`ApplicationProfile` records
the emulated tools produce, so the Top-Down analyzer is source-agnostic.
"""

from __future__ import annotations

import csv
import io
import re

from repro.arch.compute_capability import ComputeCapability
from repro.errors import ProfilerError
from repro.profilers.records import ApplicationProfile, KernelProfile

_NUMBER_RE = re.compile(r"^\s*([-+]?[0-9][0-9,]*\.?[0-9]*(?:[eE][-+]?\d+)?)")


def parse_metric_value(text: str) -> float | None:
    """Extract a float from an nvprof value cell (may carry a unit)."""
    match = _NUMBER_RE.match(text)
    if not match:
        return None
    return float(match.group(1).replace(",", ""))


def parse_nvprof_csv(
    text: str,
    *,
    application: str = "unknown",
    compute_capability: ComputeCapability | str = "6.1",
) -> ApplicationProfile:
    """Parse nvprof metric-mode CSV into an :class:`ApplicationProfile`.

    nvprof aggregates over invocations (Min/Max/Avg); the returned
    profile contains one :class:`KernelProfile` per kernel, built from
    the **Avg** column, which is what the paper's per-application
    analysis consumes.
    """
    from repro.resilience.faults import active_injector

    cc = ComputeCapability.parse(compute_capability)
    # ``profiler.csv`` fault site: a mangled export arriving from disk.
    text = active_injector().corrupt_text(f"nvprof/{application}", text)
    lines = [
        ln for ln in text.splitlines()
        if ln.strip() and not ln.startswith("==")
    ]
    if not lines:
        raise ProfilerError("empty nvprof CSV input")

    reader = csv.reader(io.StringIO("\n".join(lines)))
    header: list[str] | None = None
    rows: list[dict[str, str]] = []
    for row in reader:
        if not row:
            continue
        if header is None:
            if "Metric Name" in row and "Kernel" in row:
                header = row
            continue
        if len(row) < len(header):
            continue
        rows.append(dict(zip(header, row)))

    if header is None:
        raise ProfilerError(
            "nvprof CSV: could not locate the metric-table header row"
        )

    per_kernel: dict[str, dict[str, float]] = {}
    device = ""
    for row in rows:
        kernel = row.get("Kernel", "").strip()
        metric = row.get("Metric Name", "").strip()
        value = parse_metric_value(row.get("Avg", ""))
        if not kernel or not metric or value is None:
            continue
        device = device or row.get("Device", "").strip()
        per_kernel.setdefault(kernel, {})[metric] = value

    if not per_kernel:
        raise ProfilerError("nvprof CSV: no metric rows found")

    kernels = tuple(
        KernelProfile(kernel_name=k, invocation=0, metrics=m)
        for k, m in per_kernel.items()
    )
    return ApplicationProfile(
        application=application,
        device_name=re.sub(r"\s*\(\d+\)$", "", device) or "unknown",
        compute_capability=cc,
        kernels=kernels,
    )
