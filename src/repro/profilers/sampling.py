"""Sampling-based metric collection — the paper's §VII future work.

For applications whose kernels execute many thousands of times, full
per-invocation replay profiling is impractical (§V.E: "the overhead
required to collect desired metrics is unpractical ... measurements
[can be] limited to a subgroup of kernel executions").  A
:class:`SamplingPolicy` picks which invocations to instrument; the
remaining invocations execute natively (baseline timing only) and
inherit their metric values from the nearest instrumented sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ProfilerError
from repro.profilers.base import ProfilerTool
from repro.profilers.records import ApplicationProfile, KernelProfile
from repro.workloads.base import Application


@dataclass(frozen=True)
class SamplingPolicy:
    """Chooses which invocations of each kernel are instrumented.

    ``should_sample(kernel_name, invocation_index) -> bool``; the
    constructors below cover the strategies the paper sketches.
    """

    name: str
    should_sample: Callable[[str, int], bool]

    @classmethod
    def full(cls) -> "SamplingPolicy":
        """Instrument everything (the paper's default behaviour)."""
        return cls("full", lambda _k, _i: True)

    @classmethod
    def every_nth(cls, n: int) -> "SamplingPolicy":
        """Instrument invocations 0, n, 2n, ... of each kernel."""
        if n < 1:
            raise ProfilerError("sampling period must be >= 1")
        return cls(f"every_{n}th", lambda _k, i: i % n == 0)

    @classmethod
    def first_k(cls, k: int) -> "SamplingPolicy":
        """Instrument only the first k invocations of each kernel."""
        if k < 1:
            raise ProfilerError("sample count must be >= 1")
        return cls(f"first_{k}", lambda _k, i: i < k)

    @classmethod
    def window(cls, start: int, stop: int) -> "SamplingPolicy":
        """Instrument a contiguous invocation range [start, stop) —
        the 'user defined' replay granularity of paper §II.A, useful to
        zoom into one execution phase.  Invocation 0 is always sampled
        so earlier invocations have a metric source."""
        if not 0 <= start < stop:
            raise ProfilerError("need 0 <= start < stop")
        return cls(
            f"window_{start}_{stop}",
            lambda _k, i: i == 0 or start <= i < stop,
        )


@dataclass(frozen=True)
class SampledRun:
    """Outcome of a sampled profiling run."""

    profile: ApplicationProfile       # estimated, all invocations filled
    sampled_invocations: int
    total_invocations: int
    #: overhead of this sampled run (vs native).
    overhead: float
    #: overhead a full run would have had.
    full_overhead: float

    @property
    def sampling_rate(self) -> float:
        return self.sampled_invocations / self.total_invocations

    @property
    def overhead_reduction(self) -> float:
        """How much cheaper the sampled run is than full profiling."""
        if self.overhead <= 0:
            return 1.0
        return self.full_overhead / self.overhead


def profile_application_sampled(
    tool: ProfilerTool,
    app: Application,
    metric_names: list[str],
    policy: SamplingPolicy,
) -> SampledRun:
    """Profile ``app`` instrumenting only the invocations the policy
    selects; un-instrumented invocations run once (native) and inherit
    metrics from the nearest earlier sample (or the first later one).
    """
    kernels: list[KernelProfile] = []
    native = 0
    profiled = 0
    passes = 1
    sampled_count = 0
    counts: dict[str, int] = {}
    last_sampled: dict[str, KernelProfile] = {}
    pending: dict[str, list[int]] = {}  # kernel -> indices awaiting sample

    for inv in app.invocations:
        idx = counts.get(inv.name, 0)
        counts[inv.name] = idx + 1
        if policy.should_sample(inv.name, idx):
            profile, k_native, k_profiled, k_passes = tool.profile_kernel(
                inv.program, inv.launch, metric_names, invocation=idx
            )
            kernels.append(profile)
            last_sampled[inv.name] = profile
            # back-fill invocations that ran before the first sample
            for back_idx in pending.pop(inv.name, []):
                kernels.append(KernelProfile(
                    kernel_name=inv.name,
                    invocation=back_idx,
                    metrics=dict(profile.metrics),
                    duration_cycles=profile.duration_cycles,
                ))
            native += k_native
            profiled += k_profiled
            passes = max(passes, k_passes)
            sampled_count += 1
        else:
            # native execution: one pass, timing only.
            collected = tool.session.collect(inv.program, inv.launch, [])
            native += collected.native_cycles
            profiled += collected.native_cycles
            sample = last_sampled.get(inv.name)
            if sample is None:
                pending.setdefault(inv.name, []).append(idx)
            else:
                kernels.append(KernelProfile(
                    kernel_name=inv.name,
                    invocation=idx,
                    metrics=dict(sample.metrics),
                    duration_cycles=collected.native_cycles,
                ))

    unfilled = [i for lst in pending.values() for i in lst]
    if unfilled:
        raise ProfilerError(
            f"sampling policy {policy.name!r} never sampled some "
            f"kernels; cannot estimate invocations {unfilled}"
        )
    if not kernels:
        raise ProfilerError("sampling policy selected no invocations")

    kernels.sort(key=lambda k: (k.kernel_name, k.invocation))
    total = len(app.invocations)
    full_overhead = _estimate_full_overhead(tool, app, metric_names)
    estimated = ApplicationProfile(
        application=app.name,
        device_name=tool.spec.name,
        compute_capability=tool.spec.compute_capability,
        kernels=tuple(kernels),
        native_cycles=native,
        profiled_cycles=profiled,
        passes=passes,
    )
    return SampledRun(
        profile=estimated,
        sampled_invocations=sampled_count,
        total_invocations=total,
        overhead=estimated.overhead,
        full_overhead=full_overhead,
    )


def _estimate_full_overhead(
    tool: ProfilerTool,
    app: Application,
    metric_names: list[str],
) -> float:
    """Overhead a full (unsampled) run would incur.

    The per-pass cost model is deterministic, so we can charge it for
    every invocation without re-simulating.
    """
    from repro.pmu.passes import schedule_passes

    metrics = tool.session.resolve(metric_names)
    plan = schedule_passes(metrics, tool.spec.pmu)
    total_profiled = 0
    total_native = 0
    for inv in app.invocations:
        collected = tool.session.collect(inv.program, inv.launch, [])
        sim = collected.sim_result
        total_native += sim.duration_cycles
        total_profiled += tool.session.charge_passes(sim, plan)
    if total_native == 0:
        return 1.0
    return total_profiled / total_native
