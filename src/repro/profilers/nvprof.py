"""``nvprof`` emulation (compute capability < 7.2, paper §II.B).

Output format follows ``nvprof --csv --metrics ...``: a metric-mode
table with one row per (kernel, metric), aggregated over invocations
with Min/Max/Avg columns.
"""

from __future__ import annotations

import io

from repro.arch.spec import GPUSpec
from repro.pmu.catalog import legacy_catalog
from repro.profilers.base import ProfilerTool
from repro.profilers.records import ApplicationProfile


#: modelled PCIe gen3 x16 effective host<->device bandwidth.
_PCIE_BYTES_PER_SECOND = 12.0e9

#: nvprof legacy *event* names (``nvprof --events``) -> internal raw
#: events.  Below CC 7.2 the PMU exposes both direct events and derived
#: metrics (paper §II.A); this is the event side of that split.
NVPROF_EVENTS: dict[str, str] = {
    "inst_executed": "sm__inst_executed",
    "inst_issued": "sm__inst_issued",
    "thread_inst_executed": "sm__thread_inst_executed",
    "active_cycles": "sm__cycles_active",
    "elapsed_cycles_sm": "sm__cycles_elapsed",
    "active_warps": "sm__warps_active",
    "branch": "sm__branches",
    "divergent_branch": "sm__branches_divergent",
    "warps_launched": "launch__warps",
    "gld_request": "l1tex__sectors",
    "l2_total_read_sector_queries": "lts__sectors",
}


class NvprofTool(ProfilerTool):
    """The legacy command-line profiler (events + metrics model)."""

    tool_name = "nvprof"

    def _supports(self, spec: GPUSpec) -> bool:
        return not spec.compute_capability.uses_unified_metrics

    def available_events(self) -> list[str]:
        """Event names accepted by :meth:`collect_events`."""
        return sorted(NVPROF_EVENTS)

    def collect_events(self, program, launch,
                       event_names: list[str]) -> dict[str, float]:
        """``nvprof --events`` mode: raw event counts, no arithmetic.

        Mirrors the paper's §II.A distinction for CC < 7.2 — *events*
        are direct measurements of single microarchitectural counters,
        *metrics* are derived.  Unknown names raise, matching the real
        tool's behaviour.
        """
        from repro.errors import ProfilerError
        from repro.pmu.events import EVENT_CATALOG

        unknown = [e for e in event_names if e not in NVPROF_EVENTS]
        if unknown:
            raise ProfilerError(
                f"unknown nvprof event(s) {unknown}; see "
                f"available_events()"
            )
        collected = self.session.collect(program, launch, [])
        counters = collected.sim_result.counters
        return {
            name: EVENT_CATALOG[NVPROF_EVENTS[name]].extract(counters)
            for name in event_names
        }

    def summary_report(self, app) -> str:
        """nvprof's default mode (paper §II.B): per-kernel timing
        summary plus the host<->device memory transfers.

        Kernel times come from un-instrumented simulation; transfer
        rows are modelled from each kernel's input/output working sets
        over a PCIe-bandwidth model (inputs HtoD once per distinct
        pattern, outputs DtoH once).
        """
        clock_hz = self.spec.base_clock_mhz * 1e6
        per_kernel: dict[str, list[float]] = {}
        htod_bytes = 0
        dtoh_bytes = 0
        seen_patterns: set[str] = set()
        for inv in app.invocations:
            collected = self.session.collect(inv.program, inv.launch, [])
            seconds = collected.native_cycles / clock_hz
            per_kernel.setdefault(inv.name, []).append(seconds)
            for pattern in inv.program.patterns:
                key = f"{inv.name}/{pattern.name}"
                if key in seen_patterns:
                    continue
                seen_patterns.add(key)
                if pattern.name == "out":
                    dtoh_bytes += pattern.working_set_bytes
                else:
                    htod_bytes += pattern.working_set_bytes

        rows: list[tuple[str, float, int]] = [
            (name, sum(times), len(times))
            for name, times in per_kernel.items()
        ]
        if htod_bytes:
            rows.append(("[CUDA memcpy HtoD]",
                         htod_bytes / _PCIE_BYTES_PER_SECOND, 1))
        if dtoh_bytes:
            rows.append(("[CUDA memcpy DtoH]",
                         dtoh_bytes / _PCIE_BYTES_PER_SECOND, 1))
        total = sum(t for _, t, _ in rows) or 1.0
        rows.sort(key=lambda r: -r[1])

        out = io.StringIO()
        out.write(f"==PROF== Profiling application: {app.name}\n")
        out.write("==PROF== Profiling result:\n")
        out.write(
            "            Type  Time(%)      Time     Calls       Avg"
            "  Name\n"
        )
        for name, seconds, calls in rows:
            out.write(
                f"  GPU activities  {100 * seconds / total:6.2f}%  "
                f"{_fmt_time(seconds):>8s}  {calls:8d}  "
                f"{_fmt_time(seconds / calls):>8s}  {name}\n"
            )
        return out.getvalue()

    def to_csv(self, profile: ApplicationProfile) -> str:
        """Render in nvprof's ``--csv --metrics`` layout."""
        catalog = legacy_catalog()
        out = io.StringIO()
        out.write(f"==PROF== Profiling application: {profile.application}\n")
        out.write("==PROF== Profiling result:\n")
        out.write(
            '"Device","Kernel","Invocations","Metric Name",'
            '"Metric Description","Min","Max","Avg"\n'
        )
        device = f"{profile.device_name} (0)"
        for kernel_name in profile.kernel_names:
            invs = profile.invocations_of(kernel_name)
            metric_names = sorted(
                {m for k in invs for m in k.metrics}
            )
            for metric in metric_names:
                values = [k.metrics[metric] for k in invs if metric in k.metrics]
                if not values:
                    continue
                desc = (
                    catalog[metric].description
                    if metric in catalog else metric
                )
                unit = catalog[metric].unit if metric in catalog else ""
                lo, hi = min(values), max(values)
                avg = sum(values) / len(values)
                fmt = _format_value_factory(unit)
                out.write(
                    f'"{device}","{kernel_name}","{len(invs)}",'
                    f'"{metric}","{desc}",'
                    f'"{fmt(lo)}","{fmt(hi)}","{fmt(avg)}"\n'
                )
        return out.getvalue()


def _format_value_factory(unit: str):
    if unit == "%":
        return lambda v: f"{v:.2f}%"
    return lambda v: f"{v:.6f}"


def _fmt_time(seconds: float) -> str:
    """nvprof-style human time units."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f}us"
    return f"{seconds * 1e9:.0f}ns"
