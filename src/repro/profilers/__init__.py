"""Profiler front-ends: emulated nvprof/ncu CLI tools (backed by the
simulator + PMU model) and parsers for real-hardware CSV exports."""

from repro.profilers.base import ProfilerTool
from repro.profilers.ncu import NcuTool
from repro.profilers.ncu_parser import parse_ncu_csv
from repro.profilers.nvprof import NvprofTool
from repro.profilers.nvprof_parser import parse_metric_value, parse_nvprof_csv
from repro.profilers.records import ApplicationProfile, KernelProfile
from repro.profilers.sampling import (
    SampledRun,
    SamplingPolicy,
    profile_application_sampled,
)
from repro.profilers.validate import (
    Finding,
    Severity,
    ValidationReport,
    validate_profile,
)


def tool_for(spec, config=None, replay="model") -> ProfilerTool:
    """Instantiate the CLI tool the paper would use for ``spec``:
    ``ncu`` for CC >= 7.2, ``nvprof`` below (paper §II.B)."""
    from repro.sim.config import DEFAULT_CONFIG

    config = config or DEFAULT_CONFIG
    cls = NcuTool if spec.compute_capability.uses_unified_metrics else NvprofTool
    return cls(spec, config, replay)


__all__ = [
    "ApplicationProfile",
    "KernelProfile",
    "NcuTool",
    "NvprofTool",
    "ProfilerTool",
    "SampledRun",
    "SamplingPolicy",
    "Severity",
    "ValidationReport",
    "Finding",
    "validate_profile",
    "profile_application_sampled",
    "parse_metric_value",
    "parse_ncu_csv",
    "parse_nvprof_csv",
    "tool_for",
]
