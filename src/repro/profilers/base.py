"""Shared machinery for the emulated CLI profiling tools."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.spec import GPUSpec
from repro.errors import ProfilerError
from repro.isa.program import KernelProgram, LaunchConfig
from repro.pmu.cupti import CuptiSession, ReplayMode
from repro.profilers.records import ApplicationProfile, KernelProfile
from repro.sim.config import DEFAULT_CONFIG, SimConfig
from repro.workloads.base import Application


class ProfilerTool:
    """Base class for the ``nvprof``/``ncu`` emulations.

    Subclasses declare which compute capabilities they serve (mirroring
    the real tools' support matrices, paper §II.B) and how results are
    rendered to CSV.
    """

    tool_name: str = "profiler"

    def __init__(
        self,
        spec: GPUSpec,
        config: SimConfig = DEFAULT_CONFIG,
        replay: ReplayMode = "model",
    ) -> None:
        self._check_supported(spec)
        self.spec = spec
        self.session = CuptiSession(spec, config, replay)

    # -- capability gating ------------------------------------------------
    def _supports(self, spec: GPUSpec) -> bool:
        raise NotImplementedError

    def _check_supported(self, spec: GPUSpec) -> None:
        if not self._supports(spec):
            raise ProfilerError(
                f"{self.tool_name} does not support {spec.name} "
                f"(compute capability {spec.compute_capability})"
            )

    # -- profiling -----------------------------------------------------------
    def available_metrics(self) -> list[str]:
        return self.session.available_metrics()

    def profile_kernel(
        self,
        program: KernelProgram,
        launch: LaunchConfig,
        metric_names: list[str],
        *,
        invocation: int = 0,
    ) -> tuple[KernelProfile, int, int, int]:
        """Profile one launch.

        Returns ``(profile, native_cycles, profiled_cycles, passes)``.
        The ``profiler.metrics`` fault site models a partially-collected
        metric set (multiplexed counters dropped mid-run): the returned
        profile may then be missing requested metrics, which
        :meth:`profile_application` detects and quarantines.
        """
        from repro.resilience.faults import active_injector

        collected = self.session.collect(program, launch, metric_names)
        metrics = active_injector().corrupt_metrics(
            f"{program.name}#{invocation}", collected.metrics
        )
        profile = KernelProfile(
            kernel_name=program.name,
            invocation=invocation,
            metrics=metrics,
            duration_cycles=collected.native_cycles,
        )
        return (
            profile,
            collected.native_cycles,
            collected.profiled_cycles,
            collected.plan.num_passes,
        )

    def profile_application(
        self, app: Application, metric_names: list[str]
    ) -> ApplicationProfile:
        """Profile every kernel invocation of an application.

        When a parallel :class:`~repro.sim.engine.ExecutionEngine` is
        active, the application's *distinct* kernel simulations are
        fanned out across the process pool first; the serial collection
        loop below then only evaluates metrics against memoized
        results, so its output is bit-identical to an unparallelized
        run.

        **Degraded mode**: an invocation whose simulation cell was
        quarantined by the engine, or whose metric set came back
        incomplete, is skipped and recorded in the returned profile's
        :attr:`~repro.profilers.records.ApplicationProfile.quarantined`
        list instead of aborting the whole application.  Only when *no*
        invocation survives does this raise
        :class:`~repro.errors.QuarantineError`.
        """
        from repro.obs.runtime import active_obs

        obs = active_obs()
        with obs.tracer.span(
            "profiler.app", cat="profiler", tool=self.tool_name,
            app=app.name, invocations=len(app.invocations),
        ):
            profile = self._profile_application(app, metric_names)
        obs.metrics.inc("profiler.apps")
        obs.metrics.inc("profiler.kernels", len(profile.kernels))
        obs.metrics.inc("profiler.replay_passes",
                        profile.passes * len(profile.kernels))
        return profile

    def _profile_application(
        self, app: Application, metric_names: list[str]
    ) -> ApplicationProfile:
        from repro.errors import QuarantineError
        from repro.sim.engine import current_engine

        engine = current_engine()
        if engine.parallel and len(app.invocations) > 1:
            engine.simulate_batch([
                (self.spec, inv.program, inv.launch, self.session.config)
                for inv in app.invocations
            ])
        kernels: list[KernelProfile] = []
        quarantined: list[str] = []
        native = 0
        profiled = 0
        passes = 1
        counts: dict[str, int] = {}
        for inv in app.invocations:
            idx = counts.get(inv.name, 0)
            counts[inv.name] = idx + 1
            try:
                profile, k_native, k_profiled, k_passes = (
                    self.profile_kernel(
                        inv.program, inv.launch, metric_names,
                        invocation=idx,
                    )
                )
            except QuarantineError:
                quarantined.append(f"{inv.name}#{idx}")
                continue
            missing = [
                m for m in metric_names if m not in profile.metrics
            ]
            if missing:
                # partially-collected metric set: unusable for analysis.
                quarantined.append(f"{inv.name}#{idx}")
                continue
            kernels.append(profile)
            native += k_native
            profiled += k_profiled
            passes = max(passes, k_passes)
        if not kernels:
            raise QuarantineError(
                f"{app.name}@{self.spec.name}",
                f"all {len(app.invocations)} invocation(s) quarantined",
            )
        return ApplicationProfile(
            application=app.name,
            device_name=self.spec.name,
            compute_capability=self.spec.compute_capability,
            kernels=tuple(kernels),
            native_cycles=native,
            profiled_cycles=profiled,
            passes=passes,
            quarantined=tuple(quarantined),
        )

    # -- rendering -------------------------------------------------------------
    def to_csv(self, profile: ApplicationProfile) -> str:
        raise NotImplementedError
