"""Validation of profiler records before Top-Down analysis.

Real-world CSV exports are messy: truncated captures, missing metrics,
percentages above 100 from multi-pass skew.  :func:`validate_profile`
inspects an :class:`ApplicationProfile` against the metric tables of
its compute capability and reports everything the analyzer would
stumble over — *before* analysis, with actionable messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core import tables
from repro.pmu.catalog import catalog_for
from repro.profilers.records import ApplicationProfile, KernelProfile


class Severity(enum.Enum):
    ERROR = "error"      # analysis will fail or be meaningless
    WARNING = "warning"  # analysis degrades (missing optional data)
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    severity: Severity
    kernel: str | None
    message: str

    def __str__(self) -> str:
        scope = f"[{self.kernel}] " if self.kernel else ""
        return f"{self.severity.value}: {scope}{self.message}"


@dataclass(frozen=True)
class ValidationReport:
    findings: tuple[Finding, ...]

    @property
    def ok(self) -> bool:
        return not any(f.severity is Severity.ERROR for f in self.findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def render(self) -> str:
        if not self.findings:
            return "profile OK: no findings\n"
        return "\n".join(str(f) for f in self.findings) + "\n"


def validate_profile(profile: ApplicationProfile,
                     *, level: int = 3) -> ValidationReport:
    """Check a profile's readiness for a level-``level`` analysis."""
    findings: list[Finding] = []
    cc = profile.compute_capability
    entries = tables.entries_for(cc)
    catalog = catalog_for(cc)

    required_core = {
        v: [e.metric for e in entries if e.variable == v]
        for v in ("IPC_REPORTED", "WARP_EFFICIENCY", "IPC_ISSUED")
    }
    stall_metrics = [
        e.metric for e in entries if e.variable.startswith("STALL_")
    ]

    for kernel in profile.kernels:
        findings.extend(
            _validate_kernel(kernel, required_core, stall_metrics, catalog)
        )

    # application-level sanity
    if profile.native_cycles and profile.profiled_cycles:
        if profile.profiled_cycles < profile.native_cycles:
            findings.append(Finding(
                Severity.WARNING, None,
                "profiled runtime below native runtime — overhead "
                "accounting looks inconsistent",
            ))
    names = {(k.kernel_name, k.invocation) for k in profile.kernels}
    if len(names) != len(profile.kernels):
        findings.append(Finding(
            Severity.ERROR, None,
            "duplicate (kernel, invocation) pairs in the profile",
        ))
    return ValidationReport(findings=tuple(findings))


def _validate_kernel(
    kernel: KernelProfile,
    required_core: dict[str, list[str]],
    stall_metrics: list[str],
    catalog,
) -> list[Finding]:
    findings: list[Finding] = []
    for variable, metric_names in required_core.items():
        if not any(m in kernel.metrics for m in metric_names):
            findings.append(Finding(
                Severity.ERROR, kernel.kernel_name,
                f"no metric providing {variable} was collected "
                f"(need one of {metric_names})",
            ))
    present_stalls = [m for m in stall_metrics if m in kernel.metrics]
    missing = len(stall_metrics) - len(present_stalls)
    if not present_stalls:
        findings.append(Finding(
            Severity.ERROR, kernel.kernel_name,
            "no stall metrics collected — Frontend/Backend cannot be "
            "attributed",
        ))
    elif missing:
        findings.append(Finding(
            Severity.WARNING, kernel.kernel_name,
            f"{missing} stall metric(s) missing; their hierarchy "
            "nodes will read as zero",
        ))
    total_stall_pct = sum(kernel.metrics.get(m, 0.0) for m in stall_metrics)
    if total_stall_pct > 110.0:
        findings.append(Finding(
            Severity.WARNING, kernel.kernel_name,
            f"stall percentages sum to {total_stall_pct:.1f}% — the "
            "analyzer will rescale them onto IPC_STALL",
        ))
    for name, value in kernel.metrics.items():
        metric = catalog.get(name)
        if value < 0:
            findings.append(Finding(
                Severity.ERROR, kernel.kernel_name,
                f"negative value for {name}: {value}",
            ))
        elif metric is not None and metric.unit == "%" and value > 100.0:
            findings.append(Finding(
                Severity.WARNING, kernel.kernel_name,
                f"{name} above 100%: {value:.2f}",
            ))
        elif metric is None:
            findings.append(Finding(
                Severity.INFO, kernel.kernel_name,
                f"unknown metric {name!r} (ignored by the analyzer)",
            ))
    return findings
