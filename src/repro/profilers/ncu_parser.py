"""Parser for real ``ncu --csv`` output.

Accepts the long-format CSV Nsight Compute CLI emits (one row per
kernel-invocation/metric pair), as produced both by real Turing+
hardware and by :class:`~repro.profilers.ncu.NcuTool`.
"""

from __future__ import annotations

import csv
import io

from repro.arch.compute_capability import ComputeCapability
from repro.errors import ProfilerError
from repro.profilers.nvprof_parser import parse_metric_value
from repro.profilers.records import ApplicationProfile, KernelProfile


def parse_ncu_csv(
    text: str,
    *,
    application: str = "unknown",
    compute_capability: ComputeCapability | str = "7.5",
    device_name: str = "unknown",
) -> ApplicationProfile:
    """Parse ncu long-format CSV into an :class:`ApplicationProfile`.

    Rows are grouped by the ``ID`` column — each distinct ID is one
    kernel invocation, preserving per-invocation data (needed by the
    dynamic analysis of Figs. 11-12).
    """
    from repro.resilience.faults import active_injector

    cc = ComputeCapability.parse(compute_capability)
    # the ``profiler.csv`` fault site models a mangled export arriving
    # from disk; the row-level tolerance below must absorb it.
    text = active_injector().corrupt_text(f"ncu/{application}", text)
    lines = [
        ln for ln in text.splitlines()
        if ln.strip() and not ln.startswith("==")
    ]
    if not lines:
        raise ProfilerError("empty ncu CSV input")

    reader = csv.DictReader(io.StringIO("\n".join(lines)))
    if reader.fieldnames is None or "Metric Name" not in reader.fieldnames:
        raise ProfilerError(
            "ncu CSV: missing header (expected a 'Metric Name' column)"
        )

    # ID -> (kernel name, metrics)
    by_id: dict[str, tuple[str, dict[str, float]]] = {}
    order: list[str] = []
    for row in reader:
        ident = (row.get("ID") or "").strip()
        kernel = (row.get("Kernel Name") or "").strip()
        metric = (row.get("Metric Name") or "").strip()
        value = parse_metric_value(row.get("Metric Value") or "")
        if not kernel or not metric or value is None:
            continue
        if ident not in by_id:
            by_id[ident] = (kernel, {})
            order.append(ident)
        by_id[ident][1][metric] = value

    if not by_id:
        raise ProfilerError("ncu CSV: no metric rows found")

    counts: dict[str, int] = {}
    kernels: list[KernelProfile] = []
    for ident in order:
        kernel_name, metrics = by_id[ident]
        idx = counts.get(kernel_name, 0)
        counts[kernel_name] = idx + 1
        kernels.append(
            KernelProfile(
                kernel_name=kernel_name,
                invocation=idx,
                metrics=metrics,
            )
        )
    return ApplicationProfile(
        application=application,
        device_name=device_name,
        compute_capability=cc,
        kernels=tuple(kernels),
    )
