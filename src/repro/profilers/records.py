"""Profile records — the data the Top-Down analyzer consumes.

These records are profiler-agnostic on purpose: they can come from the
emulated ``nvprof``/``ncu`` front-ends (simulator-backed) or from the
parsers over real-hardware CSV exports, and the analyzer cannot tell
the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.compute_capability import ComputeCapability
from repro.errors import ProfilerError


@dataclass(frozen=True)
class KernelProfile:
    """Metric values measured for one kernel invocation."""

    kernel_name: str
    #: 0-based invocation index of this kernel within the application run.
    invocation: int
    metrics: dict[str, float]
    #: un-instrumented duration, device cycles (0 when unknown — e.g.
    #: parsed from a CSV that lacks timing).
    duration_cycles: int = 0

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            raise ProfilerError(
                f"kernel {self.kernel_name!r} (invocation "
                f"{self.invocation}): metric {name!r} was not collected"
            ) from None

    def metric_or(self, name: str, default: float = 0.0) -> float:
        return self.metrics.get(name, default)


@dataclass(frozen=True)
class ApplicationProfile:
    """All kernel profiles from one profiled application run."""

    application: str
    device_name: str
    compute_capability: ComputeCapability
    kernels: tuple[KernelProfile, ...]
    #: total un-instrumented runtime, device cycles.
    native_cycles: int = 0
    #: total charged profiling runtime, device cycles.
    profiled_cycles: int = 0
    #: replay passes used per kernel (max across kernels).
    passes: int = 1
    #: invocations (``kernel#index``) skipped because their simulation
    #: cell was quarantined or their metric set came back incomplete.
    #: Non-empty means this profile is partial (degraded mode).
    quarantined: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ProfilerError(
                f"profile of {self.application!r} contains no kernels"
            )

    @property
    def degraded(self) -> bool:
        """Whether any invocation is missing from this profile."""
        return bool(self.quarantined)

    @property
    def overhead(self) -> float:
        """Profiled/native runtime ratio (the Figure-13 quantity)."""
        if self.native_cycles <= 0:
            return 1.0
        return self.profiled_cycles / self.native_cycles

    @property
    def kernel_names(self) -> list[str]:
        return list(dict.fromkeys(k.kernel_name for k in self.kernels))

    def invocations_of(self, kernel_name: str) -> list[KernelProfile]:
        return [k for k in self.kernels if k.kernel_name == kernel_name]

    def total_duration_cycles(self) -> int:
        return sum(k.duration_cycles for k in self.kernels)
