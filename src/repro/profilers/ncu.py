"""``ncu`` (Nsight Compute CLI) emulation (compute capability >= 7.2).

Output format follows ``ncu --csv --metrics ...``: long-format rows,
one per (kernel invocation, metric).
"""

from __future__ import annotations

import io

from repro.arch.spec import GPUSpec
from repro.pmu.catalog import unified_catalog
from repro.profilers.base import ProfilerTool
from repro.profilers.records import ApplicationProfile


#: metrics behind the three default report sections (paper §II.B).
SECTION_METRICS: tuple[str, ...] = (
    "smsp__inst_executed.avg.per_cycle_active",
    "smsp__issue_active.avg.per_cycle_active",
    "sm__cycles_active.avg",
    "gpc__cycles_elapsed.max",
    "l1tex__t_sector_hit_rate.pct",
    "lts__t_sector_hit_rate.pct",
    "sm__warps_active.avg.per_cycle_active",
    "sm__warps_active.avg.pct_of_peak_sustained_active",
)


class NcuTool(ProfilerTool):
    """The Nsight Compute command-line profiler (unified metrics)."""

    tool_name = "ncu"

    def _supports(self, spec: GPUSpec) -> bool:
        return spec.compute_capability.uses_unified_metrics

    def details_report(self, program, launch) -> str:
        """The default per-kernel report: three sections mirroring
        paper §II.B — utilization/"speed of light", launch statistics,
        and occupancy analysis."""
        collected = self.session.collect(program, launch,
                                         list(SECTION_METRICS))
        m = collected.metrics
        spec = self.spec
        sm = spec.sm
        issue_pct = 100.0 * m["smsp__issue_active.avg.per_cycle_active"]
        duration_us = (
            collected.native_cycles / (spec.base_clock_mhz)
        )  # cycles / MHz = microseconds
        from repro.arch.occupancy import KernelResources, theoretical_occupancy

        occupancy = theoretical_occupancy(
            spec, launch,
            KernelResources(
                registers_per_thread=program.registers_per_thread,
                shared_bytes_per_block=launch.shared_bytes_per_block,
            ),
        )
        waves = launch.blocks / max(
            1, spec.sm_count * occupancy.blocks_per_sm
        )
        theoretical_pct = 100.0 * occupancy.theoretical_occupancy
        achieved_pct = m["sm__warps_active.avg.pct_of_peak_sustained_active"]

        lines = [
            f'  {program.name}, Context 1, Stream 7',
            "  Section: GPU Speed Of Light Throughput",
            f"    Duration [us]                    {duration_us:12.2f}",
            f"    SM Frequency [MHz]               "
            f"{spec.base_clock_mhz:12.2f}",
            f"    Elapsed Cycles                   "
            f"{collected.native_cycles:12d}",
            f"    SM Issue Active [%]              {issue_pct:12.2f}",
            f"    L1/TEX Hit Rate [%]              "
            f"{m['l1tex__t_sector_hit_rate.pct']:12.2f}",
            f"    L2 Hit Rate [%]                  "
            f"{m['lts__t_sector_hit_rate.pct']:12.2f}",
            "  Section: Launch Statistics",
            f"    Grid Size                        {launch.blocks:12d}",
            f"    Block Size                       "
            f"{launch.threads_per_block:12d}",
            f"    Threads                          "
            f"{launch.blocks * launch.threads_per_block:12d}",
            f"    Waves Per SM                     {waves:12.2f}",
            f"    Shared Memory Per Block [byte]   "
            f"{launch.shared_bytes_per_block:12d}",
            "  Section: Occupancy",
            f"    Max Warps Per SM                 {sm.max_warps:12d}",
            f"    Occupancy Limiter                "
            f"{occupancy.limiter:>12s}",
            f"    Theoretical Occupancy [%]        "
            f"{theoretical_pct:12.2f}",
            f"    Achieved Occupancy [%]           {achieved_pct:12.2f}",
            f"    Achieved Active Warps Per SM     "
            f"{m['sm__warps_active.avg.per_cycle_active']:12.2f}",
        ]
        return "\n".join(lines) + "\n"

    def to_csv(self, profile: ApplicationProfile) -> str:
        """Render in ncu's ``--csv`` long layout."""
        catalog = unified_catalog()
        out = io.StringIO()
        out.write(
            '"ID","Process ID","Process Name","Host Name","Kernel Name",'
            '"Context","Stream","Section Name","Metric Name",'
            '"Metric Unit","Metric Value"\n'
        )
        for idx, kernel in enumerate(profile.kernels):
            for metric, value in sorted(kernel.metrics.items()):
                unit = catalog[metric].unit if metric in catalog else ""
                out.write(
                    f'"{idx}","1","{profile.application}","repro",'
                    f'"{kernel.kernel_name}","1","7",'
                    f'"Command line profiler metrics",'
                    f'"{metric}","{unit}","{value:.6f}"\n'
                )
        return out.getvalue()
