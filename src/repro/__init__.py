"""repro — Top-Down performance profiling for NVIDIA GPUs.

A reproduction of *"Top-Down Performance Profiling on NVIDIA's GPUs"*
(IPPS 2022): the hierarchical Top-Down methodology (Retire /
Divergence / Frontend / Backend and below), the per-compute-capability
metric tables, an nvprof/ncu-compatible measurement stack, and —
because this build runs without GPU hardware — a cycle-level SM
pipeline simulator that supplies the hardware events.

Quick start::

    from repro import get_gpu, tool_for, TopDownAnalyzer, Node
    from repro.core import metric_names_for_level
    from repro.workloads import rodinia

    spec = get_gpu("Quadro RTX 4000")
    tool = tool_for(spec)                       # -> ncu emulation
    metrics = metric_names_for_level(spec.compute_capability, level=3)
    profile = tool.profile_application(rodinia().get("srad_v2"), metrics)
    result = TopDownAnalyzer(spec).analyze_application(profile)
    print(result.fraction(Node.RETIRE))

Analyzing a CSV captured on real hardware works the same way::

    from repro import parse_ncu_csv, DeviceModel, TopDownAnalyzer
    profile = parse_ncu_csv(open("run.csv").read(), application="myapp")
    device = DeviceModel(name="RTX 4000", compute_capability=cc,
                         ipc_max=2.0, subpartitions=2)
    result = TopDownAnalyzer(device).analyze_application(profile)
"""

from repro.arch import (
    ComputeCapability,
    GPUSpec,
    get_gpu,
    list_gpus,
    register_gpu,
)
from repro.core import (
    DeviceModel,
    DynamicSeries,
    Node,
    Phase,
    TopDownAnalyzer,
    TopDownResult,
    combine_results,
    detect_phases,
    dynamic_analysis,
    hierarchy_report,
    level1_report,
    level2_report,
    level3_report,
    mean_overhead,
    metric_names_for_level,
    passes_for_level,
)
from repro.errors import (
    AnalysisError,
    ArchitectureError,
    CounterError,
    ProfilerError,
    ProgramError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.isa import AccessKind, KernelProgram, LaunchConfig, ProgramBuilder
from repro.profilers import (
    ApplicationProfile,
    KernelProfile,
    NcuTool,
    NvprofTool,
    parse_ncu_csv,
    parse_nvprof_csv,
    tool_for,
)
from repro.sim import GPUSimulator, KernelSimResult, SimConfig, simulate_kernel
from repro.version import __version__
from repro.workloads import (
    Application,
    KernelBehavior,
    Suite,
    altis,
    binary_partition_cg,
    rodinia,
    srad_application,
)

__all__ = [
    "AccessKind",
    "AnalysisError",
    "Application",
    "ApplicationProfile",
    "ArchitectureError",
    "ComputeCapability",
    "CounterError",
    "DeviceModel",
    "DynamicSeries",
    "GPUSimulator",
    "GPUSpec",
    "KernelBehavior",
    "KernelProfile",
    "KernelProgram",
    "KernelSimResult",
    "LaunchConfig",
    "NcuTool",
    "Node",
    "NvprofTool",
    "Phase",
    "ProfilerError",
    "ProgramBuilder",
    "ProgramError",
    "ReproError",
    "SimConfig",
    "SimulationError",
    "Suite",
    "TopDownAnalyzer",
    "TopDownResult",
    "WorkloadError",
    "__version__",
    "altis",
    "binary_partition_cg",
    "combine_results",
    "detect_phases",
    "dynamic_analysis",
    "get_gpu",
    "hierarchy_report",
    "level1_report",
    "level2_report",
    "level3_report",
    "list_gpus",
    "mean_overhead",
    "metric_names_for_level",
    "parse_ncu_csv",
    "parse_nvprof_csv",
    "passes_for_level",
    "register_gpu",
    "rodinia",
    "simulate_kernel",
    "srad_application",
    "tool_for",
]
