"""Launch-configuration tuning driven by Top-Down feedback.

A small, transparent demonstration of the methodology in a feedback
loop: given a kernel, search the launch-geometry space (threads per
block, register budget) and use the Top-Down breakdown both as the
objective (Retire fraction) and as the explanation for why each
candidate won or lost.  This is the developer workflow the paper's
introduction motivates, automated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.occupancy import KernelResources, theoretical_occupancy
from repro.arch.spec import GPUSpec
from repro.core.analyzer import TopDownAnalyzer
from repro.core.nodes import Node
from repro.core.result import TopDownResult
from repro.core.tables import metric_names_for_level
from repro.errors import ArchitectureError, ReproError
from repro.isa.program import KernelProgram, LaunchConfig
from repro.profilers import tool_for
from repro.sim.config import SimConfig


@dataclass(frozen=True)
class TuningStep:
    """One evaluated candidate."""

    launch: LaunchConfig
    result: TopDownResult
    duration_cycles: int

    @property
    def retire(self) -> float:
        return self.result.fraction(Node.RETIRE)

    def dominant_loss(self) -> Node:
        """The level-2 node costing the most IPC for this candidate."""
        from repro.core.nodes import LEVEL2

        return max(LEVEL2, key=lambda n: self.result.ipc(n))


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a tuning run."""

    steps: tuple[TuningStep, ...]
    best: TuningStep

    @property
    def improvement(self) -> float:
        """Speedup of the best candidate over the first one tried."""
        first = self.steps[0].duration_cycles
        return first / self.best.duration_cycles if self.best.duration_cycles else 1.0


def launch_candidates(
    spec: GPUSpec,
    program: KernelProgram,
    total_threads: int,
    *,
    block_sizes: tuple[int, ...] = (64, 128, 256, 512, 1024),
) -> list[LaunchConfig]:
    """Feasible launch geometries covering ``total_threads`` work items."""
    out: list[LaunchConfig] = []
    for tpb in block_sizes:
        blocks = max(1, (total_threads + tpb - 1) // tpb)
        launch = LaunchConfig(blocks=blocks, threads_per_block=tpb)
        try:
            theoretical_occupancy(
                spec, launch,
                KernelResources(
                    registers_per_thread=program.registers_per_thread,
                ),
            )
        except ArchitectureError:
            continue
        out.append(launch)
    if not out:
        raise ReproError("no feasible launch configuration")
    return out


def tune_launch(
    spec: GPUSpec,
    program: KernelProgram,
    total_threads: int,
    *,
    seed: int = 0,
    block_sizes: tuple[int, ...] = (64, 128, 256, 512, 1024),
) -> TuningResult:
    """Evaluate every feasible geometry and rank by measured duration.

    The Top-Down breakdown of each candidate is retained so the caller
    can explain the ranking (e.g. small blocks losing to barrier
    overhead, large blocks losing occupancy to register pressure).
    """
    tool = tool_for(spec, config=SimConfig(seed=seed))
    metrics = metric_names_for_level(spec.compute_capability, 3)
    analyzer = TopDownAnalyzer(spec)

    steps: list[TuningStep] = []
    for launch in launch_candidates(
        spec, program, total_threads, block_sizes=block_sizes
    ):
        profile, native, _, _ = tool.profile_kernel(
            program, launch, metrics
        )
        result = analyzer.analyze_kernel(profile)
        steps.append(TuningStep(
            launch=launch, result=result, duration_cycles=native
        ))
    best = min(steps, key=lambda s: s.duration_cycles)
    return TuningResult(steps=tuple(steps), best=best)


def tuning_report(tuning: TuningResult) -> str:
    """Tabular rendering of a tuning run."""
    from repro.core.report import NODE_LABELS, format_table

    rows = []
    for step in tuning.steps:
        marker = " <== best" if step is tuning.best else ""
        rows.append([
            f"{step.launch.blocks}x{step.launch.threads_per_block}",
            str(step.duration_cycles),
            f"{step.retire * 100:6.2f}%",
            NODE_LABELS.get(step.dominant_loss(),
                            step.dominant_loss().value) + marker,
        ])
    return format_table(
        ["Launch", "Cycles", "Retire", "Dominant loss"], rows
    ) + f"speedup over first candidate: {tuning.improvement:.2f}x\n"
