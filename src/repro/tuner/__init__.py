"""Top-Down-guided launch tuning."""

from repro.tuner.search import (
    TuningResult,
    TuningStep,
    launch_candidates,
    tune_launch,
)

__all__ = [
    "TuningResult",
    "TuningStep",
    "launch_candidates",
    "tune_launch",
]
