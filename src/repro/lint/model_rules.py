"""Model-scope lint rules: consistency of the hierarchy, the paper's
metric tables, and the PMU pass scheduling.

These rules take no kernel; they validate the analysis model itself —
that the Top-Down tree is a proper partition, that every metric the
equation tables reference exists in the matching profiler catalog
(both the legacy nvprof and the unified ncu generation), and that the
full Top-Down metric set actually schedules onto the device's PMU.
"""

from __future__ import annotations

from typing import Iterator

from repro.core import tables
from repro.core.nodes import (
    LEVEL1,
    LEVEL2,
    LEVEL3,
    PARENT,
    Node,
    children,
    level_of,
)
from repro.errors import CounterError
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import ModelContext, Rule
from repro.pmu.catalog import legacy_catalog, unified_catalog
from repro.pmu.passes import required_events, schedule_passes

#: the two profiler generations every metric rule must hold for.
GENERATIONS: tuple[str, ...] = ("legacy", "unified")

#: stall variables and the level-2 node their leaves must sit under.
STALL_VARIABLE_PARENT: dict[str, Node] = {
    "STALL_FETCH": Node.FETCH,
    "STALL_DECODE": Node.DECODE,
    "STALL_CORE": Node.CORE,
    "STALL_MEMORY": Node.MEMORY,
}


def _catalog(generation: str):
    return unified_catalog() if generation == "unified" else legacy_catalog()


class HierarchyPartitionRule(Rule):
    """Every non-leaf node's children must partition it: each child
    names the node as parent, sits exactly one level below it, and
    every non-root node reaches a level-1 root through ``PARENT``."""

    id = "HIER-PARTITION"
    title = "Top-Down hierarchy is not a well-formed partition"
    default_severity = Severity.ERROR
    scope = "model"

    def check(self, ctx: ModelContext) -> Iterator[Diagnostic]:
        yield from self._check_membership()
        yield from self._check_levels()
        yield from self._check_reachability()
        yield from self._check_fanout()

    def _check_membership(self) -> Iterator[Diagnostic]:
        for node in Node:
            in_levels = node in LEVEL1 or node in LEVEL2 or node in LEVEL3
            if node is Node.UNATTRIBUTED:
                if node in PARENT:
                    yield self.diag(
                        "unattributed must stay a level-1 residue, not a "
                        "child",
                        location=Location(node=node.value),
                    )
                continue
            if not in_levels:
                yield self.diag(
                    f"node {node.value!r} belongs to no level tuple",
                    location=Location(node=node.value),
                    hint="add it to LEVEL1/LEVEL2/LEVEL3 or remove it",
                )

    def _check_levels(self) -> Iterator[Diagnostic]:
        for child, parent in PARENT.items():
            if level_of(child) != level_of(parent) + 1:
                yield self.diag(
                    f"{child.value} (level {level_of(child)}) is a child "
                    f"of {parent.value} (level {level_of(parent)}); "
                    f"children must sit exactly one level below",
                    location=Location(node=child.value),
                )

    def _check_reachability(self) -> Iterator[Diagnostic]:
        for node in (*LEVEL2, *LEVEL3):
            seen: set[Node] = set()
            cur: Node | None = node
            while cur is not None and cur not in LEVEL1:
                if cur in seen:
                    yield self.diag(
                        f"parent chain of {node.value} contains a cycle",
                        location=Location(node=node.value),
                    )
                    break
                seen.add(cur)
                cur = PARENT.get(cur)
            else:
                if cur is None:
                    yield self.diag(
                        f"{node.value} does not reach a level-1 root "
                        f"through PARENT",
                        location=Location(node=node.value),
                        hint="add the missing PARENT entry",
                    )

    def _check_fanout(self) -> Iterator[Diagnostic]:
        # a refined node must split into at least two children, or the
        # "partition" is just a rename.
        for parent in (Node.DIVERGENCE, Node.FRONTEND, Node.BACKEND,
                       Node.FETCH, Node.DECODE, Node.CORE, Node.MEMORY):
            kids = children(parent)
            if len(kids) < 2:
                yield self.diag(
                    f"{parent.value} refines into "
                    f"{len(kids)} child(ren); a partition needs >= 2",
                    location=Location(node=parent.value),
                )


class TableCatalogRule(Rule):
    """Every metric the equation tables reference must exist in the
    catalog of its generation — for both the legacy (nvprof) and the
    unified (ncu) path."""

    id = "MET-TABLE-CATALOG"
    title = "equation table references a metric missing from its catalog"
    default_severity = Severity.ERROR
    scope = "model"

    def check(self, ctx: ModelContext) -> Iterator[Diagnostic]:
        for generation in GENERATIONS:
            catalog = _catalog(generation)
            for entry in tables.METRIC_TABLES:
                if entry.generation != generation:
                    continue
                if entry.metric not in catalog:
                    yield self.diag(
                        f"table {entry.table} ({generation}) references "
                        f"metric {entry.metric!r} which the {generation} "
                        f"catalog does not define",
                        location=Location(metric=entry.metric),
                        hint="add the MetricDef or fix the table entry",
                    )


class VariableCoverageRule(Rule):
    """Each generation's tables must bind every Top-Down variable of
    the §IV equations at least once; a missing variable makes the
    analyzer raise at runtime for that profiler generation."""

    id = "MET-VARIABLE-COVERAGE"
    title = "a Top-Down variable has no metric in one generation"
    default_severity = Severity.ERROR
    scope = "model"

    VARIABLES: tuple[str, ...] = (
        "IPC_REPORTED", "WARP_EFFICIENCY", "IPC_ISSUED",
        "STALL_FETCH", "STALL_DECODE", "STALL_CORE", "STALL_MEMORY",
    )

    def check(self, ctx: ModelContext) -> Iterator[Diagnostic]:
        for generation in GENERATIONS:
            bound = {
                e.variable for e in tables.METRIC_TABLES
                if e.generation == generation
            }
            for variable in self.VARIABLES:
                if variable not in bound:
                    yield self.diag(
                        f"no {generation} table entry feeds {variable}; "
                        f"the {generation} analyzer cannot evaluate the "
                        f"equations",
                        location=Location(metric=variable),
                        hint="add a table row mapping a metric to the "
                             "variable",
                    )


class LeafConsistencyRule(Rule):
    """Stall table entries must attribute to a level-3 leaf that lives
    under the level-2 node their variable belongs to; retire/issue
    entries must not carry a leaf."""

    id = "MET-LEAF-CONSISTENT"
    title = "table entry's leaf disagrees with its Top-Down variable"
    default_severity = Severity.ERROR
    scope = "model"

    def check(self, ctx: ModelContext) -> Iterator[Diagnostic]:
        for entry in tables.METRIC_TABLES:
            expected = STALL_VARIABLE_PARENT.get(entry.variable)
            if expected is None:
                if entry.leaf is not None:
                    yield self.diag(
                        f"table {entry.table} entry {entry.metric!r} "
                        f"feeds {entry.variable} but carries leaf "
                        f"{entry.leaf.value!r}; non-stall entries must "
                        f"not attribute to a leaf",
                        location=Location(metric=entry.metric,
                                          node=entry.leaf.value),
                    )
                continue
            if entry.leaf is None:
                yield self.diag(
                    f"table {entry.table} stall entry {entry.metric!r} "
                    f"({entry.variable}) has no level-3 leaf",
                    location=Location(metric=entry.metric),
                    hint="attribute the stall metric to a leaf node",
                )
            elif PARENT.get(entry.leaf) is not expected:
                yield self.diag(
                    f"table {entry.table} entry {entry.metric!r} feeds "
                    f"{entry.variable} but its leaf {entry.leaf.value!r} "
                    f"sits under "
                    f"{PARENT.get(entry.leaf, Node.UNATTRIBUTED).value!r}, "
                    f"not {expected.value!r}",
                    location=Location(metric=entry.metric,
                                      node=entry.leaf.value),
                )


class PassCapacityRule(Rule):
    """The full Top-Down metric set must schedule onto the device's
    PMU: every pass within ``counters_per_pass`` programmable
    counters, and every required event placed in some pass."""

    id = "PMU-PASS-CAPACITY"
    title = "Top-Down metric set does not schedule onto the PMU"
    default_severity = Severity.ERROR
    scope = "model"

    def check(self, ctx: ModelContext) -> Iterator[Diagnostic]:
        catalog = _catalog(
            "unified" if ctx.spec.uses_unified_metrics else "legacy"
        )
        names = tables.metric_names_for_level(ctx.spec.compute_capability, 3)
        missing = [n for n in names if n not in catalog]
        if missing:
            # MET-TABLE-CATALOG reports the root cause; schedule what
            # exists so capacity is still checked.
            names = [n for n in names if n in catalog]
        metrics = [catalog[n] for n in names]
        try:
            plan = schedule_passes(metrics, ctx.spec.pmu)
            programmable, fixed = required_events(metrics)
        except CounterError as exc:
            yield self.diag(
                f"scheduling the Top-Down metric set failed: {exc}",
                location=Location(),
            )
            return
        capacity = ctx.spec.pmu.counters_per_pass
        for idx, events in enumerate(plan.passes):
            if len(events) > capacity:
                yield self.diag(
                    f"pass {idx + 1} programs {len(events)} counters but "
                    f"the PMU has {capacity} per pass",
                    location=Location(metric=events[capacity]),
                )
        scheduled = set(plan.all_events)
        for event in sorted(programmable | fixed):
            if event not in scheduled:
                yield self.diag(
                    f"required event {event!r} was not placed in any "
                    f"pass",
                    location=Location(metric=event),
                )


def model_rules() -> list[Rule]:
    """Fresh instances of every built-in model-scope rule."""
    return [
        HierarchyPartitionRule(),
        TableCatalogRule(),
        VariableCoverageRule(),
        LeafConsistencyRule(),
        PassCapacityRule(),
    ]
