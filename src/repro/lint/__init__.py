"""Static analysis (lint) over kernel programs and the analysis model.

The linter predicts, before any simulation, where a kernel's Top-Down
attribution will land (uncoalesced patterns → Memory.L1, serial
dependency chains → Core.ExecDependency, ...) and validates the model
itself: hierarchy partitioning, metric-table/catalog consistency for
both profiler generations, and PMU pass schedulability.  Exposed on
the CLI as ``gpu-topdown lint`` and run automatically at the top of
``analyze``/``tune``.
"""

from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    Location,
    Severity,
)
from repro.lint.predict import (
    DriftContext,
    DriftRule,
    StallPrediction,
    cross_check,
    measured_stall_shares,
    predict_stalls,
)
from repro.lint.registry import (
    ModelContext,
    ProgramContext,
    Rule,
    RuleRegistry,
    build_registry,
)
from repro.lint.runner import (
    apply_waivers,
    bundled_suites,
    default_registry,
    default_rules,
    drift_check,
    lint_application,
    lint_model,
    lint_program,
    lint_suite,
)

__all__ = [
    "Diagnostic",
    "DriftContext",
    "DriftRule",
    "LintReport",
    "Location",
    "ModelContext",
    "ProgramContext",
    "Rule",
    "RuleRegistry",
    "Severity",
    "StallPrediction",
    "apply_waivers",
    "build_registry",
    "bundled_suites",
    "cross_check",
    "default_registry",
    "default_rules",
    "drift_check",
    "lint_application",
    "lint_model",
    "lint_program",
    "lint_suite",
    "measured_stall_shares",
    "predict_stalls",
]
