"""Shared static analyses over kernel programs.

Pure functions used by both the rule families and the static Top-Down
predictor: RAW dependency-chain analysis (critical path / achievable
ILP), per-warp sector counts of access patterns, and cache-residency
estimates derived from working-set sizes.
"""

from __future__ import annotations

from repro.arch.spec import GPUSpec
from repro.isa.instruction import AccessKind
from repro.isa.program import AccessPattern, KernelProgram

#: bytes per cache sector — one 32-byte DRAM/L2/L1 transaction.
SECTOR_BYTES = 32

#: threads per warp (the only warp size the ISA supports).
WARP_THREADS = 32


# ---------------------------------------------------------------------------
# dependency chains
# ---------------------------------------------------------------------------

def dependency_depths(program: KernelProgram) -> list[int]:
    """RAW dependency depth of every body instruction, path-aware.

    Depth 1 means "no producer inside the body"; an instruction reading
    the result of a depth-``d`` producer has depth ``d + 1``.  Branches
    and barriers participate through their source registers but produce
    nothing.

    Producers are resolved through the per-thread CFG's reaching
    definitions (:mod:`repro.sanitize`), not textual order: a register
    written inside one branch arm and read after the join contributes
    the *deepest* definition that can reach the read on any live path,
    and writes inside an unreachable arm contribute nothing.  For
    straight-line bodies this degenerates to the classic last-writer
    scan.  Cross-iteration (back-edge) dependencies are deliberately
    excluded — depths describe one iteration, as the ILP heuristics
    expect.
    """
    from repro.sanitize.cfg import build_cfg
    from repro.sanitize.dataflow import reaching_definitions

    cfg = build_cfg(program)
    defs = reaching_definitions(cfg, include_back_edges=False)
    live = cfg.reachable_blocks()
    live_pcs = {pc for block in cfg.blocks if block.index in live
                for pc in block.pcs}
    depths: list[int] = [1] * len(program.body)
    # forward edges always point to higher pcs, so pc order is a
    # topological order of the acyclic view and producers are final
    # when their consumers are visited.
    for pc, inst in enumerate(program.body):
        depth = 1
        for src in inst.srcs:
            for producer in defs.real_defs_of(pc, src):
                if producer in live_pcs:
                    depth = max(depth, depths[producer] + 1)
        depths[pc] = depth
    return depths


def critical_path_length(program: KernelProgram) -> int:
    """Longest RAW chain through one body iteration, in instructions."""
    depths = dependency_depths(program)
    return max(depths) if depths else 0


def achievable_ilp(program: KernelProgram) -> float:
    """Average independent instructions per dependency level.

    ``len(body) / critical_path``: the ILP a perfect scheduler could
    extract from one warp's body, ignoring structural hazards.  A fully
    serial chain scores 1.0.
    """
    critical = critical_path_length(program)
    return len(program.body) / critical if critical else 0.0


# ---------------------------------------------------------------------------
# access patterns
# ---------------------------------------------------------------------------

def sectors_per_access(pattern: AccessPattern) -> int:
    """Distinct 32-byte sectors one fully-active warp access touches.

    STREAM accesses are coalesced (consecutive elements); STRIDED
    accesses span ``stride × element`` bytes per thread; RANDOM
    accesses land each thread in its own sector once the working set
    exceeds a sector per thread; UNIFORM accesses share one sector.
    """
    elem = pattern.element_bytes
    if pattern.kind is AccessKind.UNIFORM:
        return 1
    if pattern.kind is AccessKind.RANDOM:
        sectors_available = max(1, pattern.working_set_bytes // SECTOR_BYTES)
        return min(WARP_THREADS, sectors_available)
    stride = pattern.stride_elements if pattern.kind is AccessKind.STRIDED else 1
    span = WARP_THREADS * stride * elem
    sectors = (span + SECTOR_BYTES - 1) // SECTOR_BYTES
    # a thread never touches more than one sector per (<=16B) element,
    # and a warp never needs more sectors than threads.
    return max(1, min(WARP_THREADS, sectors))


def pattern_references(program: KernelProgram) -> dict[str, list[int]]:
    """pattern name -> body indices of instructions that reference it
    (including references to undeclared patterns)."""
    uses: dict[str, list[int]] = {}
    for idx, inst in enumerate(program.body):
        if inst.mem is not None:
            uses.setdefault(inst.mem.pattern, []).append(idx)
    return uses


# ---------------------------------------------------------------------------
# cache residency estimates
# ---------------------------------------------------------------------------

def l1_miss_estimate(pattern: AccessPattern, spec: GPUSpec) -> float:
    """Coarse probability that a sector access misses L1 (0..1)."""
    return _miss_estimate(pattern.working_set_bytes,
                          spec.memory.l1.size_bytes)


def l2_miss_estimate(pattern: AccessPattern, spec: GPUSpec) -> float:
    """Coarse probability that an L1 miss also misses L2 (0..1)."""
    return _miss_estimate(pattern.working_set_bytes,
                          spec.memory.l2.size_bytes)


def imc_miss_estimate(pattern: AccessPattern, spec: GPUSpec) -> float:
    """Coarse immediate-constant-cache miss probability (0..1)."""
    return _miss_estimate(pattern.working_set_bytes,
                          spec.memory.constant.size_bytes)


def _miss_estimate(working_set: int, capacity: int) -> float:
    """0 while the working set fits, then the classic 1 - size/ws ramp."""
    if capacity <= 0:
        return 1.0
    if working_set <= capacity:
        return 0.0
    return 1.0 - capacity / working_set


# ---------------------------------------------------------------------------
# branch regions
# ---------------------------------------------------------------------------

def branch_region_end(index: int, if_length: int, else_length: int) -> int:
    """Body index of the last instruction of a divergence region opened
    by a branch at ``index``."""
    return index + if_length + else_length


def dead_regions(program: KernelProgram) -> list[tuple[int, str, int]]:
    """Unreachable branch arms, as ``(branch_pc, side, length)`` rows.

    Detected on the per-thread CFG (:mod:`repro.sanitize`): an arm
    block with no live incoming edge — the else side of a
    ``taken_fraction >= 1.0`` branch, the if side of ``<= 0.0`` — can
    never execute for any thread.
    """
    from repro.sanitize.cfg import build_cfg

    cfg = build_cfg(program)
    out: list[tuple[int, str, int]] = []
    for block in cfg.unreachable_blocks():
        side = "if" if block.kind == "if_arm" else "else"
        out.append((block.branch_pc, side, block.end - block.start))
    out.sort()
    return out
