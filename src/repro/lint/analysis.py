"""Shared static analyses over kernel programs.

Pure functions used by both the rule families and the static Top-Down
predictor: RAW dependency-chain analysis (critical path / achievable
ILP), per-warp sector counts of access patterns, and cache-residency
estimates derived from working-set sizes.
"""

from __future__ import annotations

from repro.arch.spec import GPUSpec
from repro.isa.instruction import AccessKind
from repro.isa.opcodes import Opcode
from repro.isa.program import AccessPattern, KernelProgram

#: bytes per cache sector — one 32-byte DRAM/L2/L1 transaction.
SECTOR_BYTES = 32

#: threads per warp (the only warp size the ISA supports).
WARP_THREADS = 32


# ---------------------------------------------------------------------------
# dependency chains
# ---------------------------------------------------------------------------

def dependency_depths(program: KernelProgram) -> list[int]:
    """RAW dependency depth of every body instruction.

    Depth 1 means "no producer inside the body"; an instruction reading
    the result of a depth-``d`` producer has depth ``d + 1``.  Branches
    and barriers participate through their source registers but produce
    nothing.
    """
    last_writer: dict[int, int] = {}
    depths: list[int] = []
    for inst in program.body:
        depth = 1
        for src in inst.srcs:
            producer = last_writer.get(src)
            if producer is not None:
                depth = max(depth, depths[producer] + 1)
        depths.append(depth)
        if inst.dst is not None:
            last_writer[inst.dst] = len(depths) - 1
    return depths


def critical_path_length(program: KernelProgram) -> int:
    """Longest RAW chain through one body iteration, in instructions."""
    depths = dependency_depths(program)
    return max(depths) if depths else 0


def achievable_ilp(program: KernelProgram) -> float:
    """Average independent instructions per dependency level.

    ``len(body) / critical_path``: the ILP a perfect scheduler could
    extract from one warp's body, ignoring structural hazards.  A fully
    serial chain scores 1.0.
    """
    critical = critical_path_length(program)
    return len(program.body) / critical if critical else 0.0


# ---------------------------------------------------------------------------
# access patterns
# ---------------------------------------------------------------------------

def sectors_per_access(pattern: AccessPattern) -> int:
    """Distinct 32-byte sectors one fully-active warp access touches.

    STREAM accesses are coalesced (consecutive elements); STRIDED
    accesses span ``stride × element`` bytes per thread; RANDOM
    accesses land each thread in its own sector once the working set
    exceeds a sector per thread; UNIFORM accesses share one sector.
    """
    elem = pattern.element_bytes
    if pattern.kind is AccessKind.UNIFORM:
        return 1
    if pattern.kind is AccessKind.RANDOM:
        sectors_available = max(1, pattern.working_set_bytes // SECTOR_BYTES)
        return min(WARP_THREADS, sectors_available)
    stride = pattern.stride_elements if pattern.kind is AccessKind.STRIDED else 1
    span = WARP_THREADS * stride * elem
    sectors = (span + SECTOR_BYTES - 1) // SECTOR_BYTES
    # a thread never touches more than one sector per (<=16B) element,
    # and a warp never needs more sectors than threads.
    return max(1, min(WARP_THREADS, sectors))


def pattern_references(program: KernelProgram) -> dict[str, list[int]]:
    """pattern name -> body indices of instructions that reference it
    (including references to undeclared patterns)."""
    uses: dict[str, list[int]] = {}
    for idx, inst in enumerate(program.body):
        if inst.mem is not None:
            uses.setdefault(inst.mem.pattern, []).append(idx)
    return uses


# ---------------------------------------------------------------------------
# cache residency estimates
# ---------------------------------------------------------------------------

def l1_miss_estimate(pattern: AccessPattern, spec: GPUSpec) -> float:
    """Coarse probability that a sector access misses L1 (0..1)."""
    return _miss_estimate(pattern.working_set_bytes,
                          spec.memory.l1.size_bytes)


def l2_miss_estimate(pattern: AccessPattern, spec: GPUSpec) -> float:
    """Coarse probability that an L1 miss also misses L2 (0..1)."""
    return _miss_estimate(pattern.working_set_bytes,
                          spec.memory.l2.size_bytes)


def imc_miss_estimate(pattern: AccessPattern, spec: GPUSpec) -> float:
    """Coarse immediate-constant-cache miss probability (0..1)."""
    return _miss_estimate(pattern.working_set_bytes,
                          spec.memory.constant.size_bytes)


def _miss_estimate(working_set: int, capacity: int) -> float:
    """0 while the working set fits, then the classic 1 - size/ws ramp."""
    if capacity <= 0:
        return 1.0
    if working_set <= capacity:
        return 0.0
    return 1.0 - capacity / working_set


# ---------------------------------------------------------------------------
# branch regions
# ---------------------------------------------------------------------------

def branch_region_end(index: int, if_length: int, else_length: int) -> int:
    """Body index of the last instruction of a divergence region opened
    by a branch at ``index``."""
    return index + if_length + else_length


def dead_region(taken_fraction: float, if_length: int,
                else_length: int) -> tuple[str, int] | None:
    """The side of a uniform branch that can never execute.

    Returns ``("else", length)`` / ``("if", length)`` or ``None`` when
    the branch diverges (or the dead side is empty).
    """
    if taken_fraction >= 1.0 and else_length > 0:
        return ("else", else_length)
    if taken_fraction <= 0.0 and if_length > 0:
        return ("if", if_length)
    return None
