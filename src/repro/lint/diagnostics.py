"""Diagnostics: what a lint rule reports and how a run is summarized.

A :class:`Diagnostic` is one finding — a rule id, a severity, a
location (kernel / instruction / hierarchy node / metric, all
optional), a human message and a fix hint.  A :class:`LintReport`
aggregates the findings of one lint run together with the rule catalog
that produced them, and renders both the text and the ``--json``
machine-readable forms of ``gpu-topdown lint``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class Severity(enum.IntEnum):
    """Ordered severity levels; ERROR findings fail a lint run."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: "Severity | str") -> "Severity":
        if isinstance(text, Severity):
            return text
        try:
            return cls[text.strip().upper()]
        except KeyError:
            known = ", ".join(s.name for s in cls)
            from repro.errors import LintError

            raise LintError(
                f"unknown severity {text!r}; known: {known}"
            ) from None

    def __str__(self) -> str:  # "error" rather than "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a finding points.  Every field is optional: program rules
    fill ``kernel``/``instruction``, model rules fill ``node`` or
    ``metric``."""

    kernel: str | None = None
    #: index into the kernel body (the listing's line number).
    instruction: int | None = None
    #: hierarchy node value (e.g. ``"memory_bound"``).
    node: str | None = None
    #: profiler metric name.
    metric: str | None = None
    #: access-pattern name.
    pattern: str | None = None

    def render(self) -> str:
        parts: list[str] = []
        if self.kernel is not None:
            parts.append(self.kernel)
        if self.instruction is not None:
            parts.append(f"@{self.instruction}")
        if self.pattern is not None:
            parts.append(f"pattern {self.pattern!r}")
        if self.node is not None:
            parts.append(f"node {self.node}")
        if self.metric is not None:
            parts.append(f"metric {self.metric}")
        return ":".join(parts[:2]) + (
            (" " + " ".join(parts[2:])) if parts[2:] else ""
        ) if parts else "<model>"

    def payload(self) -> dict[str, object]:
        return {
            k: v
            for k, v in (
                ("kernel", self.kernel),
                ("instruction", self.instruction),
                ("node", self.node),
                ("metric", self.metric),
                ("pattern", self.pattern),
            )
            if v is not None
        }


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    #: how to fix or silence the finding.
    hint: str = ""
    #: set when a workload allowlist accepted this finding as intended
    #: behaviour; suppressed findings never affect the exit code.
    suppressed: bool = False
    #: reason recorded by the allowlist entry that suppressed it.
    suppressed_reason: str = ""

    def suppress(self, reason: str) -> "Diagnostic":
        return replace(self, suppressed=True, suppressed_reason=reason)

    def render(self) -> str:
        head = f"{self.severity}: {self.rule}: {self.location.render()}: "
        text = head + self.message
        if self.suppressed:
            text += f"  [allowed: {self.suppressed_reason or 'annotated'}]"
        elif self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def payload(self) -> dict[str, object]:
        out: dict[str, object] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location.payload(),
        }
        if self.hint:
            out["hint"] = self.hint
        if self.suppressed:
            out["suppressed"] = True
            out["suppressed_reason"] = self.suppressed_reason
        return out


@dataclass(frozen=True)
class LintReport:
    """Everything one lint run produced."""

    diagnostics: tuple[Diagnostic, ...]
    #: (id, severity, title, scope) of every rule that ran, so the
    #: report always documents the full rule catalog.
    rules: tuple[tuple[str, str, str, str], ...] = ()
    #: what was linted, for the report header.
    subject: str = ""
    device: str = ""

    # ------------------------------------------------------------------
    def active(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.suppressed)

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.active() if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no unsuppressed ERROR finding exists."""
        return not self.errors

    def exit_code(self, *, strict: bool = False) -> int:
        """CLI exit code: 1 on ERROR (or WARNING under ``strict``)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def merged_with(self, other: "LintReport") -> "LintReport":
        rules = dict((r[0], r) for r in self.rules + other.rules)
        return LintReport(
            diagnostics=self.diagnostics + other.diagnostics,
            rules=tuple(rules[k] for k in sorted(rules)),
            subject=self.subject or other.subject,
            device=self.device or other.device,
        )

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        counts = {str(s): 0 for s in Severity}
        for d in self.active():
            counts[str(d.severity)] += 1
        counts["suppressed"] = sum(d.suppressed for d in self.diagnostics)
        counts["total"] = len(self.diagnostics)
        return counts

    def render(self, *, show_suppressed: bool = True) -> str:
        lines: list[str] = []
        header = f"lint: {self.subject}" if self.subject else "lint"
        if self.device:
            header += f" on {self.device}"
        lines.append(header)
        shown = [
            d for d in self.diagnostics
            if show_suppressed or not d.suppressed
        ]
        for diag in sorted(
            shown, key=lambda d: (-int(d.severity), d.rule,
                                  d.location.kernel or "")
        ):
            lines.append("  " + diag.render())
        s = self.summary()
        lines.append(
            f"  {s['error']} error(s), {s['warning']} warning(s), "
            f"{s['info']} info, {s['suppressed']} allowed "
            f"({len(self.rules)} rules checked)"
        )
        return "\n".join(lines)

    def payload(self) -> dict[str, object]:
        """The ``--json`` document."""
        return {
            "subject": self.subject,
            "device": self.device,
            "ok": self.ok,
            "summary": self.summary(),
            "rules": [
                {"id": rid, "severity": sev, "title": title, "scope": scope}
                for rid, sev, title, scope in self.rules
            ],
            "diagnostics": [d.payload() for d in self.diagnostics],
        }
