"""Lint entry points: programs, applications, suites, the model.

Ties the pieces together: builds the default registry, applies
workload :class:`~repro.workloads.base.LintWaiver` annotations, and —
for the ``TD-DRIFT`` cross-check — drives the emulated profiler and
the Top-Down analyzer to obtain a measured attribution to compare the
static prediction against.
"""

from __future__ import annotations

from repro.arch.spec import GPUSpec
from repro.errors import LintError
from repro.isa.program import KernelProgram, LaunchConfig
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.model_rules import model_rules
from repro.lint.predict import DriftContext, DriftRule, predict_stalls
from repro.lint.program_rules import program_rules
from repro.lint.registry import (
    ModelContext,
    ProgramContext,
    Rule,
    RuleRegistry,
    build_registry,
)
from repro.workloads.base import Application, LintWaiver, Suite


def default_rules() -> list[Rule]:
    """Every built-in rule, program scope first."""
    return [*program_rules(), *model_rules(), DriftRule()]


def default_registry() -> RuleRegistry:
    """A fresh registry holding every built-in rule."""
    return build_registry(default_rules())


# ---------------------------------------------------------------------------
# waivers
# ---------------------------------------------------------------------------

def apply_waivers(
    diagnostics: list[Diagnostic], waivers: tuple[LintWaiver, ...]
) -> list[Diagnostic]:
    """Mark findings accepted by a waiver as suppressed."""
    if not waivers:
        return diagnostics
    out: list[Diagnostic] = []
    for diag in diagnostics:
        for waiver in waivers:
            if waiver.matches(diag.rule, diag.location.kernel):
                diag = diag.suppress(waiver.reason)
                break
        out.append(diag)
    return out


# ---------------------------------------------------------------------------
# lint entry points
# ---------------------------------------------------------------------------

def lint_program(
    program: KernelProgram,
    launch: LaunchConfig,
    spec: GPUSpec,
    *,
    registry: RuleRegistry | None = None,
    waivers: tuple[LintWaiver, ...] = (),
) -> LintReport:
    """Run the program-scope rules over one kernel + launch."""
    registry = registry or default_registry()
    diags = registry.run("program", ProgramContext(program, launch, spec))
    return LintReport(
        diagnostics=tuple(apply_waivers(diags, waivers)),
        rules=registry.catalog(),
        subject=program.name,
        device=spec.name,
    )


def lint_model(
    spec: GPUSpec, *, registry: RuleRegistry | None = None
) -> LintReport:
    """Run the model-scope rules (hierarchy / tables / PMU)."""
    registry = registry or default_registry()
    diags = registry.run("model", ModelContext(spec))
    return LintReport(
        diagnostics=tuple(diags),
        rules=registry.catalog(),
        subject="model",
        device=spec.name,
    )


def lint_application(
    app: Application,
    spec: GPUSpec,
    *,
    registry: RuleRegistry | None = None,
) -> LintReport:
    """Lint every distinct kernel of an application.

    Dynamic applications invoke the same program many times; each
    distinct ``(program, launch)`` pair is linted once.
    """
    registry = registry or default_registry()
    diags: list[Diagnostic] = []
    seen: set[tuple[int, int]] = set()
    for inv in app.invocations:
        key = (id(inv.program), id(inv.launch))
        if key in seen:
            continue
        seen.add(key)
        diags.extend(
            registry.run(
                "program", ProgramContext(inv.program, inv.launch, spec)
            )
        )
    # identical kernels re-materialized per invocation still duplicate;
    # collapse textually identical findings.
    unique = list(dict.fromkeys(diags))
    return LintReport(
        diagnostics=tuple(apply_waivers(unique, app.lint_allow)),
        rules=registry.catalog(),
        subject=f"{app.suite}/{app.name}",
        device=spec.name,
    )


def lint_suite(
    suite: Suite,
    spec: GPUSpec,
    *,
    registry: RuleRegistry | None = None,
    include_model: bool = True,
) -> LintReport:
    """Lint every application of a suite (plus the model once)."""
    registry = registry or default_registry()
    report = LintReport(
        diagnostics=(), rules=registry.catalog(),
        subject=f"suite {suite.name}", device=spec.name,
    )
    if include_model:
        report = report.merged_with(lint_model(spec, registry=registry))
    for app in suite:
        report = report.merged_with(
            lint_application(app, spec, registry=registry)
        )
    return report


# ---------------------------------------------------------------------------
# drift: static prediction vs measured attribution
# ---------------------------------------------------------------------------

def drift_check(
    app: Application,
    spec: GPUSpec,
    *,
    registry: RuleRegistry | None = None,
    seed: int = 0,
) -> LintReport:
    """Cross-check the static prediction of every kernel of ``app``
    against the simulator-measured Top-Down attribution (``TD-DRIFT``).

    This is the one lint path that runs the (emulated) profiler; it is
    opt-in (``gpu-topdown lint --drift``) because it costs a full
    profiling pass per application.
    """
    from repro.core.analyzer import TopDownAnalyzer
    from repro.core.tables import metric_names_for_level
    from repro.profilers import tool_for
    from repro.sim.config import SimConfig

    registry = registry or default_registry()
    if not registry.is_enabled(DriftRule.id):
        return LintReport(
            diagnostics=(), rules=registry.catalog(),
            subject=f"{app.suite}/{app.name}", device=spec.name,
        )
    tool = tool_for(spec, config=SimConfig(seed=seed))
    metrics = metric_names_for_level(spec.compute_capability, 3)
    analyzer = TopDownAnalyzer(spec)
    profile = tool.profile_application(app, metrics)
    by_name = {inv.name: inv for inv in app.invocations}
    diags: list[Diagnostic] = []
    checked: set[str] = set()
    for kernel_profile in profile.kernels:
        name = kernel_profile.kernel_name
        if name in checked:
            continue
        checked.add(name)
        inv = by_name.get(name)
        if inv is None:  # pragma: no cover - profiles mirror invocations
            raise LintError(
                f"profile of {app.name!r} reports unknown kernel {name!r}"
            )
        prediction = predict_stalls(inv.program, inv.launch, spec)
        measured = analyzer.analyze_kernel(kernel_profile)
        diags.extend(
            registry.run("drift", DriftContext(prediction, measured))
        )
    return LintReport(
        diagnostics=tuple(apply_waivers(diags, app.lint_allow)),
        rules=registry.catalog(),
        subject=f"{app.suite}/{app.name}",
        device=spec.name,
    )


# ---------------------------------------------------------------------------
# bundled suites
# ---------------------------------------------------------------------------

def bundled_suites() -> dict[str, Suite]:
    """Every suite shipped with the package, by CLI name."""
    from repro.workloads.altis import altis
    from repro.workloads.cuda_samples import cuda_samples
    from repro.workloads.parboil import parboil
    from repro.workloads.rodinia import rodinia
    from repro.workloads.shoc import shoc
    from repro.workloads.synth import synthetic

    return {
        "rodinia": rodinia(),
        "altis": altis(),
        "parboil": parboil(),
        "shoc": shoc(),
        "cuda_samples": cuda_samples(),
        "synth": synthetic(),
    }
