"""Program-scope lint rules: static checks over one kernel + launch.

Each rule predicts, where applicable, the Top-Down node the defect
will surface under once the kernel actually runs — the lint layer's
whole point is to say "this will show up as Memory.L1" *before* any
simulation or profiling pass.
"""

from __future__ import annotations

from typing import Iterator

from repro.isa.instruction import AccessKind
from repro.isa.opcodes import OpClass, Opcode
from repro.lint import analysis
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import ProgramContext, Rule


class UndefinedPatternRule(Rule):
    """Memory instructions must reference a declared access pattern.

    :class:`~repro.isa.program.KernelProgram` validation rejects these
    at construction; the rule keeps the lint layer complete for
    programs assembled by other frontends (parsers, deserializers)
    that bypass the dataclass invariants.
    """

    id = "PROG-UNDEF-PATTERN"
    title = "memory instruction references an undeclared access pattern"
    default_severity = Severity.ERROR
    scope = "program"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        declared = set(ctx.program.pattern_table)
        for name, indices in analysis.pattern_references(ctx.program).items():
            if name in declared:
                continue
            yield self.diag(
                f"instruction {indices[0]} references undeclared pattern "
                f"{name!r} ({len(indices)} use(s))",
                location=ctx.loc(indices[0], pattern=name),
                hint="declare the pattern on the program (or fix the "
                     "MemoryRef name)",
            )


class UnusedPatternRule(Rule):
    """Declared access patterns should be referenced by at least one
    memory instruction; dead declarations usually mean a renamed or
    dropped data structure."""

    id = "PROG-UNUSED-PATTERN"
    title = "declared access pattern is never referenced"
    default_severity = Severity.WARNING
    scope = "program"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        used = set(analysis.pattern_references(ctx.program))
        for pattern in ctx.program.patterns:
            if pattern.name not in used:
                yield self.diag(
                    f"pattern {pattern.name!r} "
                    f"({pattern.working_set_bytes} B, "
                    f"{pattern.kind.value}) is declared but never "
                    f"referenced",
                    location=ctx.loc(pattern=pattern.name),
                    hint="remove the declaration or reference it from a "
                         "memory instruction",
                )


class BranchOverrunRule(Rule):
    """A divergence region must fit inside the instruction body.

    Mirrors (and keeps honest) the ``ProgramError`` raised by
    ``KernelProgram.__post_init__``: the simulator would silently
    truncate such a region at the loop edge.
    """

    id = "PROG-BRANCH-OVERRUN"
    title = "branch region extends past the end of the program body"
    default_severity = Severity.ERROR
    scope = "program"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        body_len = len(ctx.program.body)
        for idx, inst in enumerate(ctx.program.body):
            if inst.branch is None:
                continue
            end = analysis.branch_region_end(
                idx, inst.branch.if_length, inst.branch.else_length
            )
            if end >= body_len:
                yield self.diag(
                    f"divergence region [{idx + 1}, {end}] overruns the "
                    f"{body_len}-instruction body by "
                    f"{end - body_len + 1} instruction(s)",
                    location=ctx.loc(idx),
                    hint="shorten if_length/else_length or emit the "
                         "missing region body",
                )


class DeadCodeRule(Rule):
    """A uniform branch (taken fraction 0.0 or 1.0) makes one side of
    its region unreachable — dead code that still occupies i-cache
    space and confuses the divergence attribution."""

    id = "PROG-DEAD-CODE"
    title = "unreachable region body after a uniform branch"
    default_severity = Severity.WARNING
    scope = "program"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        for idx, side, length in analysis.dead_regions(ctx.program):
            inst = ctx.program.body[idx]
            yield self.diag(
                f"branch with taken_fraction="
                f"{inst.branch.taken_fraction:g} makes its {side} region "
                f"({length} instruction(s)) unreachable",
                location=ctx.loc(idx),
                hint="drop the dead region or use a divergent "
                     "taken_fraction",
            )


class LowIlpRule(Rule):
    """RAW dependency chains that cap achievable ILP below the issue
    width of a sub-partition starve the scheduler: every instruction
    waits on its predecessor and the warp stalls on ``wait`` /
    ``exec_dependency``.  Predicted bottleneck: Core.ExecDependency."""

    id = "PROG-LOW-ILP"
    title = "dependency chains cap ILP below the issue width"
    default_severity = Severity.WARNING
    scope = "program"

    #: slack below the issue width tolerated before the rule fires.
    #: Bodies mixing loads with address arithmetic naturally sit a
    #: little under the nominal width; only clearly serial bodies
    #: (ILP < width - 0.5) are worth a warning.
    margin = 0.5

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        ilp = analysis.achievable_ilp(ctx.program)
        width = max(2.0, float(ctx.spec.sm.dispatch_units_per_subpartition))
        if ilp >= width - self.margin:
            return
        critical = analysis.critical_path_length(ctx.program)
        yield self.diag(
            f"dependency chains allow ILP {ilp:.2f} "
            f"(critical path {critical} of {len(ctx.program.body)} "
            f"instructions) below the issue width {width:g} — predicted "
            f"bottleneck: Core.ExecDependency",
            location=ctx.loc(),
            hint="break the dependency chain (unroll with independent "
                 "accumulators)",
        )


class StridedSectorsRule(Rule):
    """STRIDED/RANDOM global access patterns whose footprint implies
    more sectors per warp access than the LSU retires per cycle turn
    every load into a multi-cycle wavefront.  Predicted bottleneck:
    Memory.L1 (long scoreboard / LG throttle)."""

    id = "PROG-STRIDED-SECTORS"
    title = "uncoalesced global pattern needs too many sectors per access"
    default_severity = Severity.WARNING
    scope = "program"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        limit = max(1, ctx.spec.memory.lsu_sectors_per_cycle)
        refs = analysis.pattern_references(ctx.program)
        table = ctx.program.pattern_table
        for name, indices in refs.items():
            pattern = table.get(name)
            if pattern is None:
                continue  # PROG-UNDEF-PATTERN reports it
            if pattern.kind not in (AccessKind.STRIDED, AccessKind.RANDOM):
                continue
            global_refs = [
                i for i in indices
                if ctx.program.body[i].opcode.op_class in
                (OpClass.MEM_GLOBAL, OpClass.MEM_TEXTURE)
            ]
            if not global_refs:
                continue
            sectors = analysis.sectors_per_access(pattern)
            if sectors <= limit:
                continue
            detail = (
                f"stride {pattern.stride_elements} × "
                f"{pattern.element_bytes} B"
                if pattern.kind is AccessKind.STRIDED
                else f"random over {pattern.working_set_bytes} B"
            )
            yield self.diag(
                f"pattern {name!r} ({detail}) touches ~{sectors} sectors "
                f"per warp access (LSU retires {limit}/cycle; "
                f"{len(global_refs)} instruction(s)) — predicted "
                f"bottleneck: Memory.L1",
                location=ctx.loc(global_refs[0], pattern=name),
                hint="coalesce the access (restructure the layout, or "
                     "stage through shared memory)",
            )


class LdcNonUniformRule(Rule):
    """LDC serves warp-uniform reads through the immediate constant
    cache; per-thread divergent addresses serialize into one IMC
    request per distinct address.  Predicted bottleneck: Memory.IMC
    (imc_miss stalls)."""

    id = "PROG-LDC-NONUNIFORM"
    title = "LDC from a non-uniform access pattern"
    default_severity = Severity.WARNING
    scope = "program"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        table = ctx.program.pattern_table
        for idx, inst in enumerate(ctx.program.body):
            if inst.opcode is not Opcode.LDC or inst.mem is None:
                continue
            pattern = table.get(inst.mem.pattern)
            if pattern is None or pattern.kind is AccessKind.UNIFORM:
                continue
            yield self.diag(
                f"LDC reads pattern {pattern.name!r} with "
                f"{pattern.kind.value} addressing; constant memory "
                f"serializes divergent addresses — predicted bottleneck: "
                f"Memory.IMC",
                location=ctx.loc(idx, pattern=pattern.name),
                hint="use LDG/__ldg for divergent read-only data, or make "
                     "the address warp-uniform",
            )


class OccupancyLimiterRule(Rule):
    """A launch whose theoretical occupancy a single resource caps well
    below the SM's warp slots cannot hide latency; the limiter names
    the knob to turn."""

    id = "PROG-OCC-LIMITER"
    title = "theoretical occupancy capped by a single resource"
    default_severity = Severity.INFO
    scope = "program"

    #: occupancy below which the finding is emitted.
    threshold = 0.5

    _HINTS = {
        "registers": "lower registers_per_thread (maxrregcount / "
                     "launch_bounds)",
        "shared": "shrink shared_bytes_per_block or split the tile",
        "warps": "use a block size that divides the SM's warp slots",
        "blocks": "use fewer, larger blocks",
    }

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        occ = ctx.occupancy()
        if occ is None:
            return  # PROG-LAUNCH-UNFIT reports it
        if occ.theoretical_occupancy >= self.threshold:
            return
        yield self.diag(
            f"theoretical occupancy "
            f"{occ.theoretical_occupancy * 100:.0f}% "
            f"({occ.warps_per_sm}/{occ.max_warps} warps) is limited by "
            f"{occ.limiter}",
            location=ctx.loc(),
            hint=self._HINTS.get(occ.limiter, "rebalance the launch"),
        )


class LaunchUnfitRule(Rule):
    """The launch cannot place even one block on an SM — the kernel
    would fail to launch on real hardware."""

    id = "PROG-LAUNCH-UNFIT"
    title = "launch cannot fit a single block on the device"
    default_severity = Severity.ERROR
    scope = "program"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        if ctx.occupancy() is not None:
            return
        yield self.diag(
            f"one block ({ctx.launch.threads_per_block} threads, "
            f"{ctx.launch.shared_bytes_per_block} B shared, "
            f"{ctx.program.registers_per_thread} regs/thread) exceeds "
            f"the per-SM resources of {ctx.spec.name}",
            location=ctx.loc(),
            hint="reduce shared memory per block or registers per thread",
        )


class GridUnderfillRule(Rule):
    """Fewer blocks than SMs leaves devices idle regardless of
    per-SM occupancy (the classic tail/underfill launch bug)."""

    id = "PROG-GRID-UNDERFILL"
    title = "grid launches fewer blocks than the device has SMs"
    default_severity = Severity.INFO
    scope = "program"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        if ctx.launch.blocks >= ctx.spec.sm_count:
            return
        yield self.diag(
            f"{ctx.launch.blocks} block(s) cannot fill "
            f"{ctx.spec.sm_count} SMs — "
            f"{ctx.spec.sm_count - ctx.launch.blocks} SM(s) stay idle",
            location=ctx.loc(),
            hint="launch at least one block per SM or batch kernels",
        )


class ICacheSpillRule(Rule):
    """A static footprint beyond the instruction-cache reach makes
    fetch groups miss as the warp loops.  Predicted bottleneck:
    Frontend.Fetch (no_instruction stalls)."""

    id = "PROG-ICACHE-SPILL"
    title = "static code footprint exceeds the instruction cache"
    default_severity = Severity.INFO
    scope = "program"

    def check(self, ctx: ProgramContext) -> Iterator[Diagnostic]:
        footprint = ctx.program.footprint_instructions
        capacity = ctx.spec.sm.icache_capacity_instructions
        if footprint <= capacity:
            return
        yield self.diag(
            f"static footprint {footprint} instructions exceeds the "
            f"{capacity}-instruction i-cache — predicted bottleneck: "
            f"Frontend.Fetch",
            location=ctx.loc(),
            hint="split the kernel or reduce unrolling",
        )


def program_rules() -> list[Rule]:
    """Fresh instances of every built-in program-scope rule."""
    return [
        UndefinedPatternRule(),
        UnusedPatternRule(),
        BranchOverrunRule(),
        DeadCodeRule(),
        LowIlpRule(),
        StridedSectorsRule(),
        LdcNonUniformRule(),
        OccupancyLimiterRule(),
        LaunchUnfitRule(),
        GridUnderfillRule(),
        ICacheSpillRule(),
    ]
