"""The rule protocol and the configurable rule registry.

A :class:`Rule` couples a stable identifier (``PROG-LOW-ILP``,
``MET-TABLE-CATALOG``, ...) with a check over one of two scopes:

* ``"program"`` rules receive a :class:`ProgramContext` — one kernel
  program plus its launch and the device spec;
* ``"model"`` rules receive a :class:`ModelContext` — the hierarchy
  and metric tables themselves, independent of any kernel.

A :class:`RuleRegistry` owns rule instances and the per-run
configuration: rules can be disabled and their severities overridden
without touching the rule objects (the CLI's ``--disable`` /
``--severity`` flags map straight onto these methods).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.arch.occupancy import (
    KernelResources,
    OccupancyResult,
    theoretical_occupancy,
)
from repro.arch.spec import GPUSpec
from repro.errors import ArchitectureError, LintError
from repro.isa.program import KernelProgram, LaunchConfig
from repro.lint.diagnostics import Diagnostic, Location, Severity


@dataclass(frozen=True)
class ProgramContext:
    """What a program-scope rule sees."""

    program: KernelProgram
    launch: LaunchConfig
    spec: GPUSpec

    def occupancy(self) -> OccupancyResult | None:
        """Theoretical occupancy of the launch, or ``None`` when the
        launch cannot fit on the device at all (a rule reports that)."""
        try:
            return theoretical_occupancy(
                self.spec,
                self.launch,
                KernelResources(
                    registers_per_thread=self.program.registers_per_thread,
                    shared_bytes_per_block=self.launch.shared_bytes_per_block,
                ),
            )
        except ArchitectureError:
            return None

    def loc(self, instruction: int | None = None, *,
            pattern: str | None = None) -> Location:
        return Location(
            kernel=self.program.name,
            instruction=instruction,
            pattern=pattern,
        )


@dataclass(frozen=True)
class ModelContext:
    """What a model-scope rule sees: just the device spec (the metric
    tables and the hierarchy are module-level data)."""

    spec: GPUSpec


class Rule(abc.ABC):
    """One static check with a stable identifier."""

    #: stable rule identifier, e.g. ``"PROG-LOW-ILP"``.
    id: str = ""
    #: one-line description for the rule catalog.
    title: str = ""
    default_severity: Severity = Severity.WARNING
    #: ``"program"`` or ``"model"``.
    scope: str = "program"

    @abc.abstractmethod
    def check(self, ctx) -> Iterator[Diagnostic]:
        """Yield findings for one context."""

    def diag(self, message: str, *, location: Location | None = None,
             hint: str = "") -> Diagnostic:
        """Build a finding carrying this rule's id and default severity
        (the registry re-stamps severity when overridden)."""
        return Diagnostic(
            rule=self.id,
            severity=self.default_severity,
            message=message,
            location=location or Location(),
            hint=hint,
        )


@dataclass
class RuleRegistry:
    """Rule instances plus per-run enable/severity configuration."""

    _rules: dict[str, Rule] = field(default_factory=dict)
    _disabled: set[str] = field(default_factory=set)
    _severity: dict[str, Severity] = field(default_factory=dict)

    # -- construction ---------------------------------------------------
    def register(self, rule: Rule) -> Rule:
        if not rule.id:
            raise LintError(f"rule {rule!r} has no id")
        if rule.id in self._rules:
            raise LintError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    # -- lookup ---------------------------------------------------------
    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            known = ", ".join(sorted(self._rules))
            raise LintError(
                f"unknown rule {rule_id!r}; known rules: {known}"
            ) from None

    def rule_ids(self) -> list[str]:
        return sorted(self._rules)

    def rules(self, scope: str | None = None) -> list[Rule]:
        out = [
            r for r in self._rules.values()
            if r.id not in self._disabled
            and (scope is None or r.scope == scope)
        ]
        return sorted(out, key=lambda r: r.id)

    def severity_of(self, rule_id: str) -> Severity:
        return self._severity.get(rule_id, self.get(rule_id).default_severity)

    def is_enabled(self, rule_id: str) -> bool:
        self.get(rule_id)
        return rule_id not in self._disabled

    # -- configuration --------------------------------------------------
    def disable(self, rule_id: str) -> None:
        self.get(rule_id)
        self._disabled.add(rule_id)

    def enable(self, rule_id: str) -> None:
        self.get(rule_id)
        self._disabled.discard(rule_id)

    def override_severity(self, rule_id: str,
                          severity: Severity | str) -> None:
        self.get(rule_id)
        self._severity[rule_id] = Severity.parse(severity)

    # -- catalog / execution --------------------------------------------
    def catalog(self) -> tuple[tuple[str, str, str, str], ...]:
        """(id, effective severity, title, scope) for every enabled rule."""
        return tuple(
            (r.id, str(self.severity_of(r.id)), r.title, r.scope)
            for r in self.rules()
        )

    def run(self, scope: str, ctx) -> list[Diagnostic]:
        """Run every enabled rule of ``scope``, applying severity
        overrides to the findings."""
        findings: list[Diagnostic] = []
        for rule in self.rules(scope):
            override = self._severity.get(rule.id)
            for diag in rule.check(ctx):
                if diag.rule != rule.id:
                    raise LintError(
                        f"rule {rule.id} produced a diagnostic labelled "
                        f"{diag.rule!r}"
                    )
                if override is not None and diag.severity is not override:
                    diag = replace(diag, severity=override)
                findings.append(diag)
        return findings


def build_registry(rules: Iterable[Rule]) -> RuleRegistry:
    registry = RuleRegistry()
    for rule in rules:
        registry.register(rule)
    return registry
