"""Static Top-Down prediction: a coarse stall distribution from the
program text alone.

:func:`predict_stalls` weighs every body instruction by the latency its
class exposes on this device — L1/L2/DRAM residency for global loads,
the MIO path for shared memory, the IMC for constants, functional-unit
latency scaled by the achievable ILP for compute, branch resolution,
barriers and i-cache spill for the frontend — and normalizes the
weights into shares over the four level-2 stall nodes (Fetch, Decode,
Core, Memory).  The numbers are deliberately coarse: the point is the
*ranking* ("this kernel will be Memory bound"), which the ``TD-DRIFT``
rule cross-checks against a simulator-measured attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.arch.spec import GPUSpec
from repro.core.nodes import Node
from repro.core.result import TopDownResult
from repro.errors import ArchitectureError
from repro.isa.instruction import AccessKind
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import KernelProgram, LaunchConfig
from repro.lint import analysis
from repro.lint.diagnostics import Diagnostic, Location, Severity
from repro.lint.registry import Rule

#: the level-2 stall nodes a prediction distributes over.
STALL_NODES: tuple[Node, ...] = (
    Node.FETCH, Node.DECODE, Node.CORE, Node.MEMORY
)

#: per-instruction decode/issue overhead (cycles) — keeps the Decode
#: share non-zero and bounds the shares of trivial kernels.
_ISSUE_OVERHEAD = 0.5

#: barrier cost in cycles (warps waiting for their slowest sibling).
_BARRIER_COST = 24.0

#: fallback latency when an opcode's functional unit is not in the spec.
_DEFAULT_FU_LATENCY = 6.0


@dataclass(frozen=True)
class StallPrediction:
    """Predicted stall distribution of one kernel on one device."""

    kernel: str
    device: str
    #: share of predicted stall weight per level-2 stall node; sums to 1.
    shares: dict[Node, float]
    #: absolute cycle weights the shares were derived from.
    weights: dict[Node, float]

    @property
    def top(self) -> Node:
        """The predicted dominant stall category."""
        return max(STALL_NODES, key=lambda n: self.shares.get(n, 0.0))

    @property
    def margin(self) -> float:
        """Share distance between the top and the runner-up category."""
        ranked = sorted(
            (self.shares.get(n, 0.0) for n in STALL_NODES), reverse=True
        )
        return ranked[0] - ranked[1]

    def render(self) -> str:
        parts = ", ".join(
            f"{n.value}={self.shares.get(n, 0.0) * 100:.0f}%"
            for n in STALL_NODES
        )
        return f"{self.kernel}: {parts} (top: {self.top.value})"

    def payload(self) -> dict[str, object]:
        return {
            "kernel": self.kernel,
            "device": self.device,
            "top": self.top.value,
            "shares": {
                n.value: round(self.shares.get(n, 0.0), 4)
                for n in STALL_NODES
            },
        }


def _fu_latency(spec: GPUSpec, opcode: Opcode) -> float:
    name = opcode.functional_unit
    if name is None:
        return _DEFAULT_FU_LATENCY
    try:
        return float(spec.sm.functional_unit(name).latency)
    except ArchitectureError:
        return _DEFAULT_FU_LATENCY


def _global_latency(pattern, spec: GPUSpec) -> float:
    """Expected cycles a global access keeps its consumer waiting."""
    m1 = analysis.l1_miss_estimate(pattern, spec)
    m2 = analysis.l2_miss_estimate(pattern, spec)
    lat = float(spec.memory.l1.hit_latency)
    lat += m1 * float(spec.memory.l1.miss_latency)
    lat += m1 * m2 * float(spec.memory.dram_latency)
    # uncoalesced accesses serialize into sector wavefronts the LSU
    # retires a few per cycle — extra cycles latency cannot hide.
    sectors = analysis.sectors_per_access(pattern)
    limit = max(1, spec.memory.lsu_sectors_per_cycle)
    lat += max(0.0, (sectors - limit) / limit) * float(
        spec.memory.l1.hit_latency
    )
    return lat


def predict_stalls(
    program: KernelProgram,
    launch: LaunchConfig,
    spec: GPUSpec,
) -> StallPrediction:
    """Coarse predicted stall distribution of ``program`` on ``spec``.

    Deterministic and cheap (no simulation): one pass over the body.
    ``launch`` currently only scopes the prediction — latency hiding
    scales Core and Memory weights alike, so occupancy cancels out of
    the *shares* — but stays in the signature because it anchors the
    prediction to a concrete invocation.
    """
    del launch  # shares are occupancy-invariant; see docstring
    weights = {n: 0.0 for n in STALL_NODES}
    table = program.pattern_table
    ilp = max(1.0, analysis.achievable_ilp(program))

    for inst in program.body:
        weights[Node.DECODE] += _ISSUE_OVERHEAD
        cls = inst.opcode.op_class
        pattern = table.get(inst.mem.pattern) if inst.mem else None
        if cls in (OpClass.MEM_GLOBAL, OpClass.MEM_TEXTURE):
            if pattern is not None:
                # stores retire through the same queues but rarely
                # stall a consumer; weigh them lightly.
                scale = 1.0 if inst.opcode.is_load else 0.25
                weights[Node.MEMORY] += scale * _global_latency(
                    pattern, spec
                )
        elif cls is OpClass.MEM_SHARED:
            scale = 1.0 if inst.opcode.is_load else 0.25
            weights[Node.MEMORY] += scale * float(
                spec.memory.shared_latency
            )
        elif cls is OpClass.MEM_CONSTANT:
            if pattern is not None and pattern.kind is not AccessKind.UNIFORM:
                # divergent constant reads serialize per distinct address
                weights[Node.MEMORY] += (
                    analysis.sectors_per_access(pattern)
                    * float(spec.memory.constant.miss_latency)
                )
            else:
                miss = (
                    analysis.imc_miss_estimate(pattern, spec)
                    if pattern is not None else 0.0
                )
                weights[Node.MEMORY] += float(
                    spec.memory.constant.hit_latency
                ) + miss * float(spec.memory.constant.miss_latency)
        elif inst.opcode is Opcode.BRA:
            weights[Node.FETCH] += float(spec.sm.branch_resolve_latency)
        elif inst.opcode in (Opcode.BAR, Opcode.MEMBAR):
            weights[Node.FETCH] += _BARRIER_COST
        elif inst.opcode is Opcode.NANOSLEEP:
            weights[Node.FETCH] += _BARRIER_COST
        elif cls is OpClass.CONTROL:
            pass  # NOP: issue overhead only
        else:
            # compute: dependency chains expose latency/ILP of it
            weights[Node.CORE] += _fu_latency(spec, inst.opcode) / ilp

    # i-cache spill: every fetch group past the cache reach misses once
    # per loop iteration.
    footprint = program.footprint_instructions
    capacity = spec.sm.icache_capacity_instructions
    if footprint > capacity:
        spill_groups = (footprint - capacity) / max(
            1, spec.sm.fetch_group_size
        )
        # scale to the sampled body so kernels stay comparable
        spill_groups *= len(program.body) / max(1, footprint)
        weights[Node.FETCH] += spill_groups * float(
            spec.sm.icache_miss_latency
        )

    total = sum(weights.values())
    shares = {
        n: (w / total if total > 0 else 1.0 / len(STALL_NODES))
        for n, w in weights.items()
    }
    return StallPrediction(
        kernel=program.name,
        device=spec.name,
        shares=shares,
        weights=weights,
    )


# ---------------------------------------------------------------------------
# cross-check against a measured attribution
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DriftContext:
    """What the ``TD-DRIFT`` rule sees: one prediction and the
    simulator-measured Top-Down result for the same kernel."""

    prediction: StallPrediction
    measured: TopDownResult


def measured_stall_shares(result: TopDownResult) -> dict[Node, float]:
    """The measured attribution folded into the same four-node
    distribution a :class:`StallPrediction` uses."""
    raw = {n: max(0.0, result.ipc(n)) for n in STALL_NODES}
    total = sum(raw.values())
    if total <= 0:
        return {n: 0.0 for n in STALL_NODES}
    return {n: v / total for n, v in raw.items()}


class DriftRule(Rule):
    """The static prediction and the measured attribution disagree on
    the dominant stall category while the measurement is decisive —
    either the static model or the program's declared behaviour is off
    (the lint-time analogue of the paper's validation runs)."""

    id = "TD-DRIFT"
    title = "static prediction disagrees with measured attribution"
    default_severity = Severity.WARNING
    scope = "drift"

    #: how decisive the measured top category must be (share distance
    #: to the runner-up) before a disagreement is reported.
    decisive_margin = 0.15

    def check(self, ctx: DriftContext) -> Iterator[Diagnostic]:
        measured = measured_stall_shares(ctx.measured)
        if not any(measured.values()):
            return  # nothing measured to drift from
        ranked = sorted(
            STALL_NODES, key=lambda n: measured[n], reverse=True
        )
        top, runner_up = ranked[0], ranked[1]
        if measured[top] - measured[runner_up] < self.decisive_margin:
            return  # measurement itself is ambiguous; no drift call
        predicted = ctx.prediction.top
        if predicted is top:
            return
        yield self.diag(
            f"predicted top stall category {predicted.value} "
            f"({ctx.prediction.shares.get(predicted, 0.0) * 100:.0f}%) "
            f"but measurement attributes {measured[top] * 100:.0f}% to "
            f"{top.value}",
            location=Location(kernel=ctx.prediction.kernel,
                              node=top.value),
            hint="re-examine the program's access patterns / behaviour "
                 "knobs, or the static model's weights",
        )


def cross_check(
    prediction: StallPrediction, measured: TopDownResult
) -> list[Diagnostic]:
    """Convenience wrapper running :class:`DriftRule` once."""
    return list(DriftRule().check(DriftContext(prediction, measured)))
