"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ArchitectureError(ReproError):
    """An unknown GPU, invalid compute capability, or bad spec parameter."""


class ProgramError(ReproError):
    """A malformed synthetic kernel program (bad branch target, missing
    EXIT, register out of range, ...)."""


class SimulationError(ReproError):
    """The pipeline simulator reached an inconsistent state or exceeded
    its configured cycle budget."""


class CounterError(ReproError):
    """A PMU/CUPTI-layer failure: unknown event or metric name, counter
    capacity exceeded without replay enabled, session misuse."""


class ProfilerError(ReproError):
    """A profiler front-end failure: unsupported compute capability for
    the selected tool, malformed CSV input, missing required metric."""


class AnalysisError(ReproError):
    """The Top-Down analyzer was given an incomplete or inconsistent set
    of metric values for the requested hierarchy level."""


class WorkloadError(ReproError):
    """An unknown benchmark application or invalid behaviour parameter."""


class LintError(ReproError):
    """Static-analyzer misuse: unknown rule id, bad severity name, or an
    invalid registry configuration."""
