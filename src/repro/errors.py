"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class UsageError(ReproError, ValueError):
    """An invalid user-supplied value (bad flag value or environment
    override).  Also a :class:`ValueError`, so API callers that treat
    it as a plain bad-argument error keep working; CLI entry points map
    it to the usage exit code."""


class ArchitectureError(ReproError):
    """An unknown GPU, invalid compute capability, or bad spec parameter."""


class ProgramError(ReproError):
    """A malformed synthetic kernel program (bad branch target, missing
    EXIT, register out of range, ...)."""


class SimulationError(ReproError):
    """The pipeline simulator reached an inconsistent state or exceeded
    its configured cycle budget."""


class CounterError(ReproError):
    """A PMU/CUPTI-layer failure: unknown event or metric name, counter
    capacity exceeded without replay enabled, session misuse."""


class ProfilerError(ReproError):
    """A profiler front-end failure: unsupported compute capability for
    the selected tool, malformed CSV input, missing required metric."""


class TraceError(ProfilerError):
    """A timeline-trace ingest failure (``repro.io.nsys_sqlite``): the
    file is missing, not a SQLite database, or exposes no kernel
    activity table the schema adapters recognize.  Partial schemas are
    *not* errors — they degrade into capability flags on the loaded
    trace."""


class AnalysisError(ReproError):
    """The Top-Down analyzer was given an incomplete or inconsistent set
    of metric values for the requested hierarchy level."""


class WorkloadError(ReproError):
    """An unknown benchmark application or invalid behaviour parameter."""


class LintError(ReproError):
    """Static-analyzer misuse: unknown rule id, bad severity name, or an
    invalid registry configuration."""


class ServiceError(ReproError):
    """Base class of the profiling-service layer (``repro.service``):
    daemon misconfiguration, journal schema problems, a selfcheck
    failure."""


class AdmissionError(ServiceError):
    """A job submission was refused by admission control.  Carries the
    machine-readable ``code`` the HTTP layer returns (429-style JSON),
    so clients can branch without parsing prose."""

    def __init__(self, code: str, message: str, *, retryable: bool) -> None:
        super().__init__(message)
        #: short machine-readable reason (``queue_full``, ``quota_exceeded``,
        #: ``draining``).
        self.code = code
        #: whether retrying the same submission later can succeed.
        self.retryable = retryable


class QueueFullError(AdmissionError):
    """The bounded job queue is at capacity (backpressure, not a drop)."""

    def __init__(self, message: str) -> None:
        super().__init__("queue_full", message, retryable=True)


class QuotaExceededError(AdmissionError):
    """The submitting tenant is at its active-job quota."""

    def __init__(self, message: str) -> None:
        super().__init__("quota_exceeded", message, retryable=True)


class ResilienceError(ReproError):
    """Base class of the resilient-execution layer: fault-injection
    misuse, retry/deadline exhaustion, journal corruption."""


class TransientFaultError(ResilienceError):
    """A failure expected to succeed on retry (flaky collection pass,
    injected transient fault).  Always retryable."""


class WorkerCrashError(ResilienceError):
    """A simulation worker process died mid-cell (or a crash was
    injected).  Retryable: the engine re-dispatches on a fresh pool."""


class CellTimeoutError(ResilienceError):
    """One simulation cell exceeded its wall-clock deadline (runaway
    kernel, injected hang).  Retryable up to the policy's attempt cap."""


class QuarantineError(ResilienceError):
    """A cell exhausted its retry budget and was quarantined.  Suite
    runs catch this, record the cell, and complete in degraded mode."""

    def __init__(self, cell: str, reason: str) -> None:
        super().__init__(f"cell {cell!r} quarantined: {reason}")
        #: human-readable label of the failed cell (kernel@device).
        self.cell = cell
        #: the final failure that exhausted the retry budget.
        self.reason = reason
