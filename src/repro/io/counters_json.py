"""JSON codec for raw :class:`~repro.sim.counters.EventCounters`.

The persistent simulation-result cache stores per-SM counters on disk;
every field of :class:`EventCounters` is an integer (or a dict of
integers keyed by enum), so the round trip is exact — no float
formatting caveats.  Unknown enum names or missing fields raise
:class:`~repro.errors.SimulationError`, which cache loads treat as a
stale entry to be re-simulated.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import SimulationError
from repro.isa.opcodes import OpClass
from repro.sim.counters import EventCounters
from repro.sim.stall_reasons import ALL_STATES, WarpState

#: EventCounters fields that hold plain integers (everything except the
#: two enum-keyed dicts), in declaration order.
_SCALAR_FIELDS: tuple[str, ...] = tuple(
    f.name
    for f in dataclasses.fields(EventCounters)
    if f.name not in ("state_cycles", "inst_by_class")
)


def counters_to_doc(counters: EventCounters) -> dict[str, Any]:
    """Lower one SM's counters to JSON-encodable data."""
    doc: dict[str, Any] = {
        name: getattr(counters, name) for name in _SCALAR_FIELDS
    }
    doc["state_cycles"] = {
        state.name: counters.state_cycles[state] for state in ALL_STATES
    }
    doc["inst_by_class"] = {
        cls.name: counters.inst_by_class[cls] for cls in OpClass
    }
    return doc


def counters_from_doc(doc: dict[str, Any]) -> EventCounters:
    """Inverse of :func:`counters_to_doc` (strict: bad docs raise)."""
    if not isinstance(doc, dict):
        raise SimulationError("counters document is not an object")
    counters = EventCounters()
    try:
        for name in _SCALAR_FIELDS:
            setattr(counters, name, int(doc[name]))
        counters.state_cycles = {
            WarpState[name]: int(value)
            for name, value in doc["state_cycles"].items()
        }
        counters.inst_by_class = {
            OpClass[name]: int(value)
            for name, value in doc["inst_by_class"].items()
        }
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SimulationError(f"malformed counters document: {exc}") from exc
    if set(counters.state_cycles) != set(ALL_STATES):
        raise SimulationError("counters document misses warp states")
    if set(counters.inst_by_class) != set(OpClass):
        raise SimulationError("counters document misses opcode classes")
    return counters


__all__ = ["counters_to_doc", "counters_from_doc"]
