"""Reader for Nsight Systems-style SQLite timeline exports.

``nsys export --type sqlite`` (and the ``.nsys-rep`` → sqlite
conversion every ``nsys stats`` run performs) produces a SQLite
database whose tables mirror the CUPTI activity API:
``CUPTI_ACTIVITY_KIND_KERNEL`` rows are kernel executions with
nanosecond ``start``/``end`` timestamps, a ``deviceId`` and a
``streamId``; ``CUPTI_ACTIVITY_KIND_MEMCPY`` rows are DMA transfers;
``TARGET_INFO_GPU`` maps device ids to physical GPUs; ``NVTX_EVENTS``
holds the application's NVTX annotation ranges; and (in modern
exports) every string lives once in ``StringIds`` and is referenced by
integer id.

This module loads such a database — real or synthetic
(:mod:`repro.timeline.fixture`) — into plain frozen dataclasses that
:mod:`repro.timeline` analyzes.  Two properties matter:

* **Versioned schema adapters.**  nsys has shipped two name layouts:
  modern exports intern kernel names in ``StringIds``
  (``demangledName``/``shortName`` are integer references), older ones
  store a ``name`` TEXT column inline.  Each layout is a
  :class:`SchemaAdapter`; detection is by table/column introspection
  and the winning adapter's tag is recorded on the loaded trace.
* **Capability flags, not errors, for partial exports.**  Only the
  kernel activity table is mandatory.  A missing memcpy / NVTX /
  GPU-info / string table clears the corresponding
  :class:`TraceCapabilities` flag and the analyses that need it
  degrade explicitly (documented per-analysis in docs/TIMELINE.md).
  A file that is missing, unreadable, or not SQLite raises
  :class:`~repro.errors.TraceError`.

All timestamps are integer nanoseconds as exported; nothing here
consults the wall clock, so loading is bit-deterministic for a given
file (the contract docs/TIMELINE.md states and tests/test_timeline.py
pins).
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import dataclass

from repro.errors import TraceError
from repro.obs import active_obs

#: schema tags recorded on loaded traces (see :class:`SchemaAdapter`).
SCHEMA_STRINGIDS = "nsys-sqlite/stringids@2"
SCHEMA_INLINE = "nsys-sqlite/inline-names@1"

#: CUPTI ``copyKind`` values → direction labels (the ones that occur
#: in practice; unknown kinds render as ``kind<N>``).
MEMCPY_KINDS = {
    0: "unknown",
    1: "HtoD",
    2: "DtoH",
    3: "HtoA",
    4: "AtoH",
    5: "AtoA",
    6: "AtoD",
    7: "DtoA",
    8: "DtoD",
    9: "HtoH",
    10: "PtoP",
}

_KERNEL_TABLE = "CUPTI_ACTIVITY_KIND_KERNEL"
_MEMCPY_TABLE = "CUPTI_ACTIVITY_KIND_MEMCPY"
_GPU_TABLE = "TARGET_INFO_GPU"
_NVTX_TABLE = "NVTX_EVENTS"
_STRINGS_TABLE = "StringIds"

#: NVTX ``eventType`` values that delimit a *range* (start/end pairs
#: already joined by the exporter); marks and metadata rows are skipped.
_NVTX_RANGE_TYPES = (59, 60, 70, 71)


# ---------------------------------------------------------------------------
# data model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GpuInfo:
    """One device of the profiled machine (``TARGET_INFO_GPU`` row, or
    synthesized from kernel ``deviceId`` values when the table is
    absent)."""

    device_id: int
    name: str
    #: ``major.minor`` when the export carries it, else ``""``.
    compute_capability: str = ""


@dataclass(frozen=True)
class KernelSlice:
    """One kernel execution on the device timeline."""

    name: str
    start_ns: int
    end_ns: int
    device_id: int
    stream_id: int
    correlation_id: int = 0
    grid: tuple[int, int, int] = (0, 0, 0)
    block: tuple[int, int, int] = (0, 0, 0)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class MemcpySlice:
    """One DMA transfer on the device timeline."""

    kind: str
    bytes: int
    start_ns: int
    end_ns: int
    device_id: int
    stream_id: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class NvtxRange:
    """One NVTX push/pop (or start/end) range."""

    text: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class TraceCapabilities:
    """What the export contained; analyses degrade on cleared flags."""

    kernels: bool = True
    memcpys: bool = True
    devices: bool = True
    nvtx: bool = True
    strings: bool = True

    def missing(self) -> tuple[str, ...]:
        return tuple(
            name for name in ("kernels", "memcpys", "devices", "nvtx",
                              "strings")
            if not getattr(self, name)
        )

    def payload(self) -> dict[str, bool]:
        return {
            "kernels": self.kernels,
            "memcpys": self.memcpys,
            "devices": self.devices,
            "nvtx": self.nvtx,
            "strings": self.strings,
        }


@dataclass(frozen=True)
class TimelineTrace:
    """A loaded timeline: every activity record, sorted and immutable."""

    source: str
    schema: str
    capabilities: TraceCapabilities
    devices: dict[int, GpuInfo]
    kernels: tuple[KernelSlice, ...]
    memcpys: tuple[MemcpySlice, ...]
    nvtx: tuple[NvtxRange, ...]

    # -- convenience views ------------------------------------------------
    @property
    def device_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.devices))

    def slices(self, device: int | None = None,
               stream: int | None = None
               ) -> tuple[KernelSlice | MemcpySlice, ...]:
        """Kernels + memcpys, time-ordered, optionally filtered."""
        out = [s for s in (*self.kernels, *self.memcpys)
               if (device is None or s.device_id == device)
               and (stream is None or s.stream_id == stream)]
        out.sort(key=lambda s: (s.start_ns, s.end_ns, s.stream_id))
        return tuple(out)

    def streams(self, device: int) -> tuple[int, ...]:
        return tuple(sorted({s.stream_id for s in self.slices(device)}))

    @property
    def span_ns(self) -> int:
        """First activity start → last activity end, 0 when empty."""
        everything = self.slices()
        if not everything:
            return 0
        return (max(s.end_ns for s in everything)
                - min(s.start_ns for s in everything))


# ---------------------------------------------------------------------------
# schema adapters
# ---------------------------------------------------------------------------

class SchemaAdapter:
    """One recognized export layout.

    Adapters differ only in how kernel/device *names* are stored; the
    activity tables' timestamp/id columns are stable across nsys
    releases.  ``detect`` inspects tables+columns, ``kernel_name_sql``
    yields the SELECT expression that produces a text name.
    """

    tag = SCHEMA_STRINGIDS

    def detect(self, tables: dict[str, set[str]]) -> bool:
        cols = tables.get(_KERNEL_TABLE, set())
        return _STRINGS_TABLE in tables and (
            "demangledName" in cols or "shortName" in cols
        )

    def kernel_query(self, cols: set[str]) -> str:
        name_col = "demangledName" if "demangledName" in cols else "shortName"
        return (
            f"SELECT k.start, k.end, k.deviceId, k.streamId, "
            f"       COALESCE(s.value, 'kernel_' || k.{name_col}), "
            f"       {_grid_cols(cols)} "
            f"FROM {_KERNEL_TABLE} k "
            f"LEFT JOIN {_STRINGS_TABLE} s ON s.id = k.{name_col}"
        )


class InlineNameAdapter(SchemaAdapter):
    """Legacy layout: kernel names inline in a TEXT ``name`` column."""

    tag = SCHEMA_INLINE

    def detect(self, tables: dict[str, set[str]]) -> bool:
        return "name" in tables.get(_KERNEL_TABLE, set())

    def kernel_query(self, cols: set[str]) -> str:
        return (
            f"SELECT k.start, k.end, k.deviceId, k.streamId, k.name, "
            f"       {_grid_cols(cols)} "
            f"FROM {_KERNEL_TABLE} k"
        )


#: detection order: the interned-string layout is the modern one, so
#: it wins when a table carries both name forms.
ADAPTERS: tuple[SchemaAdapter, ...] = (SchemaAdapter(), InlineNameAdapter())


def _grid_cols(cols: set[str]) -> str:
    """Grid/block dimension SELECT fragment, zeros when absent."""
    names = ("gridX", "gridY", "gridZ", "blockX", "blockY", "blockZ",
             "correlationId")
    return ", ".join(f"k.{c}" if c in cols else "0" for c in names)


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------

def _introspect(conn: sqlite3.Connection) -> dict[str, set[str]]:
    """Table → column-name set, for adapter detection."""
    tables: dict[str, set[str]] = {}
    rows = conn.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table'"
    ).fetchall()
    for (table,) in rows:
        info = conn.execute(f"PRAGMA table_info({_quote_ident(table)})")
        tables[table] = {row[1] for row in info.fetchall()}
    return tables


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def _read_kernels(conn, adapter, cols) -> tuple[KernelSlice, ...]:
    out = []
    for row in conn.execute(adapter.kernel_query(cols)):
        (start, end, device, stream, name,
         gx, gy, gz, bx, by, bz, corr) = row
        out.append(KernelSlice(
            name=str(name), start_ns=int(start), end_ns=int(end),
            device_id=int(device), stream_id=int(stream),
            correlation_id=int(corr or 0),
            grid=(int(gx or 0), int(gy or 0), int(gz or 0)),
            block=(int(bx or 0), int(by or 0), int(bz or 0)),
        ))
    out.sort(key=lambda k: (k.start_ns, k.end_ns, k.device_id,
                            k.stream_id, k.name))
    return tuple(out)


def _read_memcpys(conn, cols) -> tuple[MemcpySlice, ...]:
    kind_col = "copyKind" if "copyKind" in cols else "0"
    bytes_col = "bytes" if "bytes" in cols else "0"
    out = []
    for row in conn.execute(
        f"SELECT start, end, deviceId, streamId, {kind_col}, {bytes_col} "
        f"FROM {_MEMCPY_TABLE}"
    ):
        start, end, device, stream, kind, nbytes = row
        out.append(MemcpySlice(
            kind=MEMCPY_KINDS.get(int(kind or 0), f"kind{kind}"),
            bytes=int(nbytes or 0), start_ns=int(start), end_ns=int(end),
            device_id=int(device), stream_id=int(stream),
        ))
    out.sort(key=lambda m: (m.start_ns, m.end_ns, m.device_id,
                            m.stream_id, m.kind))
    return tuple(out)


def _read_devices(conn, tables, kernels) -> tuple[dict[int, GpuInfo], bool]:
    """``TARGET_INFO_GPU`` when present, else ids seen on kernels."""
    cols = tables.get(_GPU_TABLE)
    if cols and "id" in cols and "name" in cols:
        cc = ("computeCapabilityMajor" in cols
              and "computeCapabilityMinor" in cols)
        query = (
            "SELECT id, name"
            + (", computeCapabilityMajor, computeCapabilityMinor" if cc
               else "")
            + f" FROM {_GPU_TABLE}"
        )
        devices: dict[int, GpuInfo] = {}
        strings = dict(conn.execute(
            f"SELECT id, value FROM {_STRINGS_TABLE}"
        ).fetchall()) if _STRINGS_TABLE in tables else {}
        for row in conn.execute(query):
            device_id, name = int(row[0]), row[1]
            if isinstance(name, int):  # interned name
                name = strings.get(name, f"GPU {device_id}")
            devices[device_id] = GpuInfo(
                device_id=device_id, name=str(name),
                compute_capability=(f"{row[2]}.{row[3]}" if cc else ""),
            )
        if devices:
            return devices, True
    synthesized = {
        device_id: GpuInfo(device_id=device_id, name=f"GPU {device_id}")
        for device_id in sorted({k.device_id for k in kernels})
    }
    return synthesized, False


def _read_nvtx(conn, tables) -> tuple[NvtxRange, ...]:
    cols = tables[_NVTX_TABLE]
    if "text" not in cols and "textId" not in cols:
        return ()
    strings = dict(conn.execute(
        f"SELECT id, value FROM {_STRINGS_TABLE}"
    ).fetchall()) if _STRINGS_TABLE in tables else {}
    type_filter = (
        f"WHERE eventType IN {_NVTX_RANGE_TYPES!r}"
        if "eventType" in cols else ""
    )
    text_col = "text" if "text" in cols else "NULL"
    text_id_col = "textId" if "textId" in cols else "NULL"
    out = []
    for row in conn.execute(
        f"SELECT start, end, {text_col}, {text_id_col} "
        f"FROM {_NVTX_TABLE} {type_filter}"
    ):
        start, end, text, text_id = row
        if end is None:  # unterminated push (crashed app): skip
            continue
        if text is None and text_id is not None:
            text = strings.get(int(text_id), f"nvtx_{text_id}")
        out.append(NvtxRange(text=str(text or ""), start_ns=int(start),
                             end_ns=int(end)))
    out.sort(key=lambda r: (r.start_ns, r.end_ns, r.text))
    return tuple(out)


def read_trace(path: str | os.PathLike) -> TimelineTrace:
    """Load an nsys-style SQLite export into a :class:`TimelineTrace`.

    Raises :class:`~repro.errors.TraceError` when the file is missing,
    not a SQLite database, or no schema adapter recognizes a kernel
    activity table.  Partial exports load with cleared
    :class:`TraceCapabilities` flags instead of failing.
    """
    path = os.fspath(path)
    obs = active_obs()
    with obs.tracer.span("timeline.ingest", cat="timeline") as span:
        if not os.path.exists(path):
            raise TraceError(f"trace database not found: {path}")
        try:
            conn = sqlite3.connect(
                f"file:{path}?mode=ro&immutable=1", uri=True
            )
        except sqlite3.Error as exc:  # pragma: no cover - open is lazy
            raise TraceError(f"{path}: cannot open: {exc}") from exc
        try:
            try:
                tables = _introspect(conn)
            except sqlite3.DatabaseError as exc:
                raise TraceError(
                    f"{path}: not a SQLite trace database ({exc})"
                ) from exc
            if _KERNEL_TABLE not in tables:
                raise TraceError(
                    f"{path}: no {_KERNEL_TABLE} table — not an "
                    f"nsys-style kernel trace (tables: "
                    f"{', '.join(sorted(tables)) or 'none'})"
                )
            kernel_cols = tables[_KERNEL_TABLE]
            adapter = next(
                (a for a in ADAPTERS if a.detect(tables)), None
            )
            if adapter is None:
                raise TraceError(
                    f"{path}: {_KERNEL_TABLE} carries no recognized "
                    f"name column (have: {', '.join(sorted(kernel_cols))})"
                )
            try:
                kernels = _read_kernels(conn, adapter, kernel_cols)
                memcpys = (_read_memcpys(conn, tables[_MEMCPY_TABLE])
                           if _MEMCPY_TABLE in tables else ())
                devices, has_device_info = _read_devices(
                    conn, tables, kernels
                )
                nvtx = (_read_nvtx(conn, tables)
                        if _NVTX_TABLE in tables else ())
            except sqlite3.DatabaseError as exc:
                raise TraceError(f"{path}: corrupt trace: {exc}") from exc
        finally:
            conn.close()
        capabilities = TraceCapabilities(
            kernels=True,
            memcpys=_MEMCPY_TABLE in tables,
            devices=has_device_info,
            nvtx=_NVTX_TABLE in tables,
            strings=_STRINGS_TABLE in tables,
        )
        trace = TimelineTrace(
            source=os.path.basename(path),
            schema=adapter.tag,
            capabilities=capabilities,
            devices=devices,
            kernels=kernels,
            memcpys=memcpys,
            nvtx=nvtx,
        )
        tables_read = 1 + sum(
            t in tables
            for t in (_MEMCPY_TABLE, _GPU_TABLE, _NVTX_TABLE, _STRINGS_TABLE)
        )
        rows = len(kernels) + len(memcpys) + len(nvtx) + len(devices)
        obs.metrics.inc("timeline.traces_read")
        obs.metrics.inc("timeline.tables_read", tables_read)
        obs.metrics.inc("timeline.rows_ingested", rows)
        span.set(schema=adapter.tag, kernels=len(kernels),
                 memcpys=len(memcpys), nvtx=len(nvtx),
                 devices=len(devices))
    return trace


__all__ = [
    "ADAPTERS",
    "GpuInfo",
    "InlineNameAdapter",
    "KernelSlice",
    "MemcpySlice",
    "MEMCPY_KINDS",
    "NvtxRange",
    "SCHEMA_INLINE",
    "SCHEMA_STRINGIDS",
    "SchemaAdapter",
    "TimelineTrace",
    "TraceCapabilities",
    "read_trace",
]
