"""Serialization of profiles, Top-Down results and raw counters."""

from repro.io.counters_json import counters_from_doc, counters_to_doc
from repro.io.results_json import (
    profile_from_json,
    profile_to_json,
    result_from_json,
    result_to_json,
)

__all__ = [
    "counters_from_doc",
    "counters_to_doc",
    "profile_from_json",
    "profile_to_json",
    "result_from_json",
    "result_to_json",
]
