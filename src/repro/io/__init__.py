"""Serialization of profiles and Top-Down results."""

from repro.io.results_json import (
    profile_from_json,
    profile_to_json,
    result_from_json,
    result_to_json,
)

__all__ = [
    "profile_from_json",
    "profile_to_json",
    "result_from_json",
    "result_to_json",
]
