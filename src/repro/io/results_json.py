"""JSON serialization for profiles and Top-Down results.

Lets a profiling run (expensive: replay passes) be captured once and
re-analyzed later, and lets Top-Down results be archived next to the
CSVs that produced them.  Round-trips are exact up to float formatting.
"""

from __future__ import annotations

import json
from typing import Any

from repro.arch.compute_capability import ComputeCapability
from repro.core.nodes import Node
from repro.core.result import TopDownResult
from repro.errors import ProfilerError
from repro.profilers.records import ApplicationProfile, KernelProfile

_SCHEMA_PROFILE = "repro/application-profile@1"
_SCHEMA_RESULT = "repro/topdown-result@1"


# ---------------------------------------------------------------------------
# profiles
# ---------------------------------------------------------------------------

def profile_to_json(profile: ApplicationProfile, *, indent: int | None = 2
                    ) -> str:
    """Serialize an :class:`ApplicationProfile` to JSON text."""
    doc: dict[str, Any] = {
        "schema": _SCHEMA_PROFILE,
        "application": profile.application,
        "device_name": profile.device_name,
        "compute_capability": str(profile.compute_capability),
        "native_cycles": profile.native_cycles,
        "profiled_cycles": profile.profiled_cycles,
        "passes": profile.passes,
        "kernels": [
            {
                "kernel_name": k.kernel_name,
                "invocation": k.invocation,
                "duration_cycles": k.duration_cycles,
                "metrics": k.metrics,
            }
            for k in profile.kernels
        ],
    }
    return json.dumps(doc, indent=indent)


def profile_from_json(text: str) -> ApplicationProfile:
    """Inverse of :func:`profile_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProfilerError(f"invalid profile JSON: {exc}") from exc
    if doc.get("schema") != _SCHEMA_PROFILE:
        raise ProfilerError(
            f"unexpected schema {doc.get('schema')!r}; "
            f"expected {_SCHEMA_PROFILE}"
        )
    kernels = tuple(
        KernelProfile(
            kernel_name=k["kernel_name"],
            invocation=int(k["invocation"]),
            metrics={m: float(v) for m, v in k["metrics"].items()},
            duration_cycles=int(k.get("duration_cycles", 0)),
        )
        for k in doc["kernels"]
    )
    return ApplicationProfile(
        application=doc["application"],
        device_name=doc["device_name"],
        compute_capability=ComputeCapability.parse(
            doc["compute_capability"]
        ),
        kernels=kernels,
        native_cycles=int(doc.get("native_cycles", 0)),
        profiled_cycles=int(doc.get("profiled_cycles", 0)),
        passes=int(doc.get("passes", 1)),
    )


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

def result_to_json(result: TopDownResult, *, indent: int | None = 2) -> str:
    """Serialize a :class:`TopDownResult` to JSON text."""
    doc = {
        "schema": _SCHEMA_RESULT,
        "name": result.name,
        "device": result.device,
        "ipc_max": result.ipc_max,
        "max_level": result.max_level,
        "values": {node.value: ipc for node, ipc in result.values.items()},
    }
    return json.dumps(doc, indent=indent)


def result_from_json(text: str) -> TopDownResult:
    """Inverse of :func:`result_to_json` (conservation re-checked)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProfilerError(f"invalid result JSON: {exc}") from exc
    if doc.get("schema") != _SCHEMA_RESULT:
        raise ProfilerError(
            f"unexpected schema {doc.get('schema')!r}; "
            f"expected {_SCHEMA_RESULT}"
        )
    by_value = {node.value: node for node in Node}
    try:
        values = {by_value[k]: float(v) for k, v in doc["values"].items()}
    except KeyError as exc:
        raise ProfilerError(f"unknown hierarchy node {exc}") from exc
    result = TopDownResult(
        name=doc["name"],
        device=doc["device"],
        ipc_max=float(doc["ipc_max"]),
        values=values,
        max_level=int(doc.get("max_level", 3)),
    )
    result.check_conservation(tolerance=1e-5)
    return result
