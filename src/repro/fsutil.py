"""Small filesystem durability helpers (stdlib-only, dependency-free).

The atomic-rename protocol used throughout the tree (result-cache
shards, journals, metric exports) guarantees *crash* consistency: a
reader sees either the old file or the new one, never a torn write.
It does **not** by itself guarantee *power-loss* durability — on most
filesystems the rename itself lives in the parent directory's metadata
and is only durable once that directory has been fsynced.  Writers
that promise durability therefore call :func:`fsync_dir` on the parent
after ``os.replace``.

This module sits below every other ``repro`` package (it imports only
the stdlib), so the cache, the resilience journals and the service
layer can all share it without import cycles.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any


def fsync_dir(path: str | os.PathLike) -> None:
    """Flush directory metadata (new names after an atomic rename).

    Best-effort: platforms/filesystems that cannot open a directory for
    reading (some network mounts, Windows) silently skip — the rename
    is still crash-consistent, just not guaranteed power-loss durable.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: str | os.PathLike,
    text: str,
    *,
    durable: bool = True,
) -> None:
    """Write ``text`` to ``path`` via temp file + atomic rename.

    With ``durable=True`` (the default) the data is fsynced before the
    rename and the parent directory after it, so the new content
    survives power loss, not just a process crash.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        if durable:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if durable:
        fsync_dir(path.parent)


def atomic_write_json(
    path: str | os.PathLike,
    doc: Any,
    *,
    durable: bool = True,
) -> None:
    """Canonical-JSON variant of :func:`atomic_write_text`."""
    atomic_write_text(
        path,
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n",
        durable=durable,
    )


__all__ = ["atomic_write_json", "atomic_write_text", "fsync_dir"]
