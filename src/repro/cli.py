"""``gpu-topdown`` command-line front end.

Sub-commands::

    gpu-topdown gpus                      # list known devices
    gpu-topdown metrics --gpu <name>      # metrics a device exposes
    gpu-topdown analyze --gpu <name> --suite rodinia [--app srad_v2]
                        [--level 1|2|3] [--raw-stalls] [--csv out.csv]
    gpu-topdown analyze-csv --input run.csv --format ncu --cc 7.5
                        --ipc-max 2 --subpartitions 2
    gpu-topdown dynamic --kernel srad_cuda_1 [--invocations 120]
    gpu-topdown overhead [--suite rodinia]
    gpu-topdown experiment <id>           # regenerate a paper figure
    gpu-topdown report --suite altis --output report.md
    gpu-topdown workloads [--suite rodinia]
    gpu-topdown sections --app nn         # ncu default report
    gpu-topdown summary --app nn          # nvprof default mode
    gpu-topdown trace --app nn            # issue-level pipeline trace
    gpu-topdown tune --app hotspot        # Top-Down-guided launch tuning
    gpu-topdown lint [--suite all] [--json] [--drift] [--strict]
    gpu-topdown profile-self [--suite rodinia] [--level 3]
                                          # profile the profiler itself
    gpu-topdown timeline trace.sqlite     # nsys-style timeline analysis
                        [--gpu N] [--stream N] [--iters] [--json]
                        [--diff other.sqlite] [--topdown results.json]

Every simulating sub-command also accepts the execution-engine flags
(``-j/--jobs``, ``--cache-dir``, ``--no-cache``, ``--timings``), the
resilience flags (``--inject-faults``, ``--retries``, ``--deadline``)
and the observability flags (``--trace``, ``--metrics-out``); see
docs/PERFORMANCE.md, docs/RESILIENCE.md and docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import errors
from repro.arch.compute_capability import ComputeCapability
from repro.arch.registry import get_gpu, list_gpus
from repro.core.analyzer import DeviceModel, TopDownAnalyzer
from repro.core.dynamic import detect_phases, dynamic_analysis
from repro.core.nodes import LEVEL1, Node
from repro.core.report import (
    format_table,
    hierarchy_report,
    level1_report,
    level2_report,
    level3_report,
)
from repro.core.tables import metric_names_for_level
from repro.errors import ReproError
from repro.profilers import parse_ncu_csv, parse_nvprof_csv, tool_for
from repro.sim.config import SimConfig
from repro.workloads import srad_application

#: every bundled suite, in CLI order.
SUITES = ("rodinia", "altis", "parboil", "shoc", "cuda_samples", "synth")

# -- exit codes (documented in README "Exit codes") --------------------
EXIT_OK = 0
EXIT_ERROR = 1          # generic ReproError
EXIT_USAGE = 2          # argparse usage errors (argparse's own code)
#: the run *completed* but in degraded mode: some cells/apps were
#: quarantined and the reports carry DEGRADED/QUARANTINED annotations.
EXIT_DEGRADED = 3
EXIT_INTERRUPTED = 130  # Ctrl-C (128 + SIGINT)

#: ReproError subclass → exit code; first isinstance match wins, so
#: subclasses must precede their bases.
ERROR_EXIT_CODES: tuple[tuple[type[ReproError], int], ...] = (
    (errors.UsageError, EXIT_USAGE),
    (errors.ArchitectureError, 4),
    (errors.ProgramError, 5),
    (errors.SimulationError, 6),
    (errors.CounterError, 7),
    (errors.TraceError, 14),
    (errors.ProfilerError, 8),
    (errors.AnalysisError, 9),
    (errors.WorkloadError, 10),
    (errors.LintError, 11),
    (errors.ResilienceError, 12),
    (errors.ServiceError, 13),
)


def exit_code_for(exc: ReproError) -> int:
    """Distinct exit code for each error family (scriptability)."""
    for etype, code in ERROR_EXIT_CODES:
        if isinstance(exc, etype):
            return code
    return EXIT_ERROR


def _suite(name: str):
    from repro.lint import bundled_suites

    suites = bundled_suites()
    if name not in suites:
        raise ReproError(
            f"unknown suite {name!r} ({'|'.join(SUITES)})"
        )
    return suites[name]


def _cmd_gpus(_args: argparse.Namespace) -> int:
    rows = []
    for name in list_gpus():
        spec = get_gpu(name)
        rows.append([
            name, str(spec.compute_capability),
            spec.compute_capability.generation, str(spec.sm_count),
            spec.default_profiler,
        ])
    print(format_table(["GPU", "CC", "Generation", "SMs", "Profiler"], rows))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    tool = tool_for(spec)
    for name in tool.available_metrics():
        print(name)
    return 0


def _prelint(apps, spec) -> int:
    """Lint + sanitize ``apps`` before an expensive run; ERRORs abort.

    ``analyze`` and ``tune`` call this unless ``--no-lint`` is given.
    Both the perf-heuristic lint rules and the static sanitizer passes
    gate the run; warnings never block — they are either waived on the
    workload or surfaced by an explicit ``gpu-topdown lint`` /
    ``gpu-topdown sanitize`` run.
    """
    from repro.lint import lint_application
    from repro.sanitize import sanitize_application

    blocking = []
    for app in apps:
        report = lint_application(app, spec)
        blocking.extend(report.errors)
        san = sanitize_application(app, spec)
        blocking.extend(san.errors)
    if not blocking:
        return 0
    for diag in blocking:
        print(f"lint: {diag.render()}", file=sys.stderr)
    print(
        "error: lint found blocking findings; fix them or rerun with "
        "--no-lint",
        file=sys.stderr,
    )
    return 1


def _presanitize(apps, spec, seed: int) -> int:
    """Dynamically-confirmed sanitize pass over ``apps`` (``--sanitize``).

    Runs every sanitizer pass with simulator confirmation and prints
    the findings; active ERROR findings abort like the lint gate.  The
    observing replay never perturbs counters, so a subsequent analysis
    of the same seed is unaffected.
    """
    from repro.sanitize import sanitize_application
    from repro.sim.config import SimConfig

    config = SimConfig(seed=seed)
    rc = 0
    for app in apps:
        report = sanitize_application(app, spec, dynamic=True,
                                      config=config)
        if report.diagnostics:
            print(report.render(), file=sys.stderr)
        if report.errors:
            rc = 1
    if rc:
        print(
            "error: sanitize found blocking findings; fix or waive "
            "them, or rerun without --sanitize",
            file=sys.stderr,
        )
    return rc


def _cmd_lint(args: argparse.Namespace) -> int:
    import dataclasses
    import json as jsonlib

    from repro.lint import (
        bundled_suites,
        default_registry,
        drift_check,
        lint_application,
        lint_model,
        lint_suite,
    )

    registry = default_registry()
    for rule_id in args.disable or ():
        registry.disable(rule_id)
    for override in args.severity or ():
        rule_id, sep, level = override.partition("=")
        if not sep:
            raise ReproError(
                f"bad --severity {override!r}; expected RULE=LEVEL"
            )
        registry.override_severity(rule_id, level)

    if args.list_rules:
        rows = [[rid, sev, scope, title]
                for rid, sev, title, scope in registry.catalog()]
        print(format_table(["Rule", "Severity", "Scope", "Title"], rows))
        return 0

    spec = get_gpu(args.gpu)
    suites = bundled_suites()
    if args.app is not None:
        if args.suite == "all":
            raise ReproError("--app needs a specific --suite")
        app = suites[args.suite].get(args.app)
        report = lint_model(spec, registry=registry).merged_with(
            lint_application(app, spec, registry=registry)
        )
        if args.drift:
            report = report.merged_with(
                drift_check(app, spec, registry=registry, seed=args.seed)
            )
        subject = f"{app.suite}/{app.name}"
    else:
        names = list(SUITES) if args.suite == "all" else [args.suite]
        report = lint_model(spec, registry=registry)
        for name in names:
            report = report.merged_with(
                lint_suite(suites[name], spec, registry=registry,
                           include_model=False)
            )
            if args.drift:
                for app in suites[name]:
                    report = report.merged_with(
                        drift_check(app, spec, registry=registry,
                                    seed=args.seed)
                    )
        subject = ("all suites" if args.suite == "all"
                   else f"suite {args.suite}")
    report = dataclasses.replace(report, subject=subject)
    if args.json:
        print(jsonlib.dumps(report.payload(), indent=2))
    else:
        print(report.render(show_suppressed=not args.hide_allowed))
    return report.exit_code(strict=args.strict)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import dataclasses
    import json as jsonlib

    from repro.lint import bundled_suites
    from repro.sanitize import (
        sanitize_application,
        sanitize_registry,
        sanitize_suite,
    )
    from repro.sim.config import SimConfig

    registry = sanitize_registry()
    for rule_id in args.disable or ():
        registry.disable(rule_id)
    for override in args.severity or ():
        rule_id, sep, level = override.partition("=")
        if not sep:
            raise ReproError(
                f"bad --severity {override!r}; expected RULE=LEVEL"
            )
        registry.override_severity(rule_id, level)

    if args.list_passes:
        rows = [[rid, sev, title]
                for rid, sev, title, _scope in registry.catalog()]
        print(format_table(["Pass", "Severity", "Title"], rows))
        return 0

    spec = get_gpu(args.gpu)
    suites = bundled_suites()
    dynamic = not args.static
    config = SimConfig(seed=args.seed)
    if args.app is not None:
        if args.suite == "all":
            raise ReproError("--app needs a specific --suite")
        app = suites[args.suite].get(args.app)
        report = sanitize_application(app, spec, registry=registry,
                                      dynamic=dynamic, config=config)
        subject = f"{app.suite}/{app.name}"
    else:
        names = list(SUITES) if args.suite == "all" else [args.suite]
        report = None
        for name in names:
            part = sanitize_suite(suites[name], spec, registry=registry,
                                  dynamic=dynamic, config=config)
            report = part if report is None else report.merged_with(part)
        subject = ("all suites" if args.suite == "all"
                   else f"suite {args.suite}")
    report = dataclasses.replace(report, subject=subject)
    if args.json:
        print(jsonlib.dumps(report.payload(), indent=2))
    else:
        print(report.render(show_suppressed=not args.hide_allowed))
    return report.exit_code(strict=args.strict)


def _prewarm(spec, apps, config) -> None:
    """Fan every distinct kernel simulation of ``apps`` across the
    active engine's pool (no-op for the serial default engine).  The
    per-app collection loops that follow hit memoized results, keeping
    their output bit-identical to a serial run."""
    from repro.sim.engine import current_engine

    engine = current_engine()
    if not engine.parallel:
        return
    engine.simulate_batch([
        (spec, inv.program, inv.launch, config)
        for app in apps
        for inv in app.invocations
    ])


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.attribution import attribute_node, attribution_report
    from repro.core.report import quarantine_footer
    from repro.errors import QuarantineError
    from repro.profilers.sampling import (
        SamplingPolicy,
        profile_application_sampled,
    )

    spec = get_gpu(args.gpu)
    suite = _suite(args.suite)
    apps = [suite.get(args.app)] if args.app else list(suite)
    if not args.no_lint and _prelint(apps, spec):
        return 1
    if args.sanitize and _presanitize(apps, spec, args.seed):
        return 1
    config = SimConfig(seed=args.seed)
    tool = tool_for(spec, config=config)
    metrics = metric_names_for_level(spec.compute_capability, args.level)
    analyzer = TopDownAnalyzer(spec, normalize_stalls=not args.raw_stalls)
    _prewarm(spec, apps, config)
    results = []
    profiles = []
    quarantined: dict[str, str] = {}
    for app in apps:
        try:
            if args.sample_every and args.sample_every > 1:
                sampled = profile_application_sampled(
                    tool, app, metrics,
                    SamplingPolicy.every_nth(args.sample_every),
                )
                profile = sampled.profile
            else:
                profile = tool.profile_application(app, metrics)
            profiles.append(profile)
            results.append(analyzer.analyze_application(profile))
        except QuarantineError as exc:
            # degrade: lose this app, keep the run alive.
            quarantined[app.name] = exc.reason
    if not results:
        raise QuarantineError(
            f"{suite.name}@{spec.name}",
            f"all {len(quarantined)} application(s) quarantined",
        )
    if args.app and args.level >= 2:
        print(hierarchy_report(results[0]))
        print(quarantine_footer(quarantined, results), end="")
    elif args.level == 1:
        print(level1_report(results, quarantined))
    elif args.level == 2:
        print(level2_report(results, quarantined))
    else:
        print(level3_report(results, quarantined=quarantined))
    if args.per_kernel:
        node = Node(args.per_kernel)
        for profile in profiles:
            contributions = attribute_node(analyzer, profile, node)
            print(attribution_report(contributions, node))
    if args.advise:
        from repro.core.advisor import advice_report

        for result in results:
            print(advice_report(result))
    if args.csv:
        _write_csv(args.csv, results)
        print(f"wrote {args.csv}")
    if args.json:
        from repro.io import result_to_json

        with open(args.json, "w") as fh:
            if len(results) == 1:
                fh.write(result_to_json(results[0]))
            else:
                fh.write(
                    "[" + ",\n".join(
                        result_to_json(r) for r in results
                    ) + "]"
                )
        print(f"wrote {args.json}")
    if args.json_kernels:
        from repro.core.analyzer import combine_results
        from repro.io import result_to_json

        by_kernel: dict[str, list] = {}
        for profile in profiles:
            for k in profile.kernels:
                by_kernel.setdefault(k.kernel_name, []).append(k)
        docs = []
        for kernel_name in sorted(by_kernel):
            invs = by_kernel[kernel_name]
            docs.append(result_to_json(combine_results(
                [analyzer.analyze_kernel(k) for k in invs],
                [max(1, k.duration_cycles) for k in invs],
                name=kernel_name,
                device=spec.name,
                ipc_max=spec.ipc_max,
            )))
        with open(args.json_kernels, "w") as fh:
            fh.write("[" + ",\n".join(docs) + "]")
        print(f"wrote {args.json_kernels}")
    if quarantined or any(r.degraded for r in results):
        return EXIT_DEGRADED
    return 0


def _write_csv(path: str, results) -> None:
    import csv

    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        nodes = [Node.RETIRE, Node.DIVERGENCE, Node.FRONTEND, Node.BACKEND,
                 Node.BRANCH, Node.REPLAY, Node.FETCH, Node.DECODE,
                 Node.CORE, Node.MEMORY]
        writer.writerow(["application"] + [n.value for n in nodes])
        for r in results:
            writer.writerow([r.name] + [f"{r.fraction(n):.6f}" for n in nodes])


def _cmd_analyze_csv(args: argparse.Namespace) -> int:
    from repro.profilers.validate import validate_profile

    text = sys.stdin.read() if args.input == "-" else open(args.input).read()
    cc = ComputeCapability.parse(args.cc)
    if args.format == "ncu":
        profile = parse_ncu_csv(text, application=args.application,
                                compute_capability=cc)
    else:
        profile = parse_nvprof_csv(text, application=args.application,
                                   compute_capability=cc)
    report = validate_profile(profile)
    if report.findings:
        print(report.render(), file=sys.stderr)
    if not report.ok:
        print("error: profile failed validation; see findings above",
              file=sys.stderr)
        return 1
    device = DeviceModel(
        name=args.device_name or profile.device_name,
        compute_capability=cc,
        ipc_max=args.ipc_max,
        subpartitions=args.subpartitions,
    )
    analyzer = TopDownAnalyzer(device, normalize_stalls=not args.raw_stalls)
    result = analyzer.analyze_application(profile)
    print(hierarchy_report(result))
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    spec = get_gpu(args.gpu)
    tool = tool_for(spec, config=SimConfig(seed=args.seed))
    metrics = metric_names_for_level(spec.compute_capability, 3)
    analyzer = TopDownAnalyzer(spec)
    app = srad_application(args.invocations)
    profile = tool.profile_application(app, metrics)
    series = dynamic_analysis(analyzer, profile, args.kernel)
    rows = []
    for i, r in enumerate(series.results):
        if i % max(1, args.stride) == 0:
            rows.append([str(i)] + [
                f"{r.fraction(n) * 100:6.2f}%" for n in LEVEL1
            ])
    print(format_table(
        ["Invocation", "Retire", "Divergence", "Frontend", "Backend"], rows
    ))
    phases = detect_phases(series)
    print("phases:", ", ".join(f"[{p.start}, {p.end})" for p in phases))
    return 0


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.experiments import fig13

    suites = (_suite(args.suite),) if args.suite else None
    print(fig13.render(fig13.run(seed=args.seed, suites=suites)))
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    suites = ([_suite(args.suite)] if args.suite
              else [_suite(name) for name in SUITES])
    rows = []
    for suite in suites:
        for app in suite:
            kernels = ", ".join(app.kernel_names)
            rows.append([
                suite.name, app.name, str(len(app.invocations)),
                kernels[:46], app.description[:52],
            ])
    print(format_table(
        ["Suite", "Application", "Invocations", "Kernels", "Description"],
        rows,
    ))
    return 0


def _cmd_sections(args: argparse.Namespace) -> int:
    from repro.profilers import NcuTool

    spec = get_gpu(args.gpu)
    app = _suite(args.suite).get(args.app)
    tool = NcuTool(spec, SimConfig(seed=args.seed))
    seen: set[str] = set()
    for inv in app.invocations:
        if inv.name in seen:
            continue
        seen.add(inv.name)
        print(tool.details_report(inv.program, inv.launch))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.profilers import NvprofTool

    spec = get_gpu(args.gpu)
    app = _suite(args.suite).get(args.app)
    tool = NvprofTool(spec, SimConfig(seed=args.seed))
    print(tool.summary_report(app))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.trace import trace_kernel

    spec = get_gpu(args.gpu)
    app = _suite(args.suite).get(args.app)
    inv = app.invocations[0]
    _, tracer = trace_kernel(spec, inv.program, inv.launch,
                             SimConfig(seed=args.seed))
    print(f"issue trace of {inv.name} on {spec.name} "
          f"({len(tracer.events)} issues):")
    print(tracer.listing(limit=args.limit))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tuner import tune_launch
    from repro.tuner.search import tuning_report

    spec = get_gpu(args.gpu)
    app = _suite(args.suite).get(args.app)
    if not args.no_lint and _prelint([app], spec):
        return 1
    if args.sanitize and _presanitize([app], spec, args.seed):
        return 1
    program = app.invocations[0].program
    tuning = tune_launch(spec, program, total_threads=args.threads,
                         seed=args.seed)
    print(f"tuning {program.name} on {spec.name} "
          f"({args.threads} threads):")
    print(tuning_report(tuning))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.markdown_report import markdown_report
    from repro.errors import QuarantineError

    spec = get_gpu(args.gpu)
    suite = _suite(args.suite)
    config = SimConfig(seed=args.seed)
    tool = tool_for(spec, config=config)
    metrics = metric_names_for_level(spec.compute_capability, 3)
    analyzer = TopDownAnalyzer(spec)
    _prewarm(spec, list(suite), config)
    results = {}
    quarantined: dict[str, str] = {}
    for app in suite:
        try:
            profile = tool.profile_application(app, metrics)
            results[app.name] = analyzer.analyze_application(profile)
        except QuarantineError as exc:
            quarantined[app.name] = exc.reason
    if not results:
        raise QuarantineError(
            f"{suite.name}@{spec.name}",
            f"all {len(quarantined)} application(s) quarantined",
        )
    text = markdown_report(
        results,
        title=f"Top-Down analysis: {suite.name} on {spec.name}",
        device=spec.name,
    )
    if quarantined:
        text += "\n## Quarantined applications\n\n" + "".join(
            f"- `{name}` — {reason}\n"
            for name, reason in quarantined.items()
        )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    if quarantined or any(r.degraded for r in results.values()):
        return EXIT_DEGRADED
    return 0


def _cmd_profile_self(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.runner import profile_suite
    from repro.obs.runtime import active_obs
    from repro.obs.selfprof import render, self_profile
    from repro.sim.engine import current_engine

    spec = get_gpu(args.gpu)
    suite = _suite(args.suite)
    engine = current_engine()
    obs = active_obs()
    t0 = time.perf_counter()
    run = profile_suite(spec, suite, level=args.level, seed=args.seed)
    wall = time.perf_counter() - t0
    report = self_profile(engine.stats, wall, health=engine.health,
                          metrics=obs.metrics)
    print(f"profiling the profiler: suite {suite.name} on {spec.name} "
          f"(level {args.level}, {len(run.results)} application(s))")
    print(render(report))
    if engine.cache is not None:
        print(f"cache: {engine.cache.stats.render()}")
    return EXIT_DEGRADED if run.degraded else 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    module = ALL_EXPERIMENTS.get(args.id)
    if module is None:
        print(f"unknown experiment {args.id!r}; available: "
              f"{', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    module.main()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import run_serve

    return run_serve(args)


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.io.nsys_sqlite import read_trace
    from repro.obs.runtime import obs_context
    from repro.timeline import (
        diff_payload,
        diff_report,
        diff_traces,
        load_topdown_results,
        payload_to_json,
        timeline_payload,
        timeline_report,
    )

    # timeline does not simulate, so it installs its own observability
    # context instead of riding the engine wrapper in main().
    with obs_context(trace=args.trace, metrics_out=args.metrics_out):
        trace = read_trace(args.database)
        if args.diff:
            other = read_trace(args.diff)
            diff = diff_traces(
                trace, other, min_gap_us=args.min_gap_us,
                launch_threshold_us=args.launch_threshold_us,
            )
            if args.json:
                import json

                sys.stdout.write(json.dumps(
                    diff_payload(diff, top=args.top), sort_keys=True,
                    separators=(",", ": "), indent=1) + "\n")
            else:
                print(diff_report(diff, top=args.top))
            return 0
        topdown = (load_topdown_results(args.topdown)
                   if args.topdown else None)
        kwargs = dict(
            device=args.gpu, stream=args.stream,
            min_gap_us=args.min_gap_us,
            launch_threshold_us=args.launch_threshold_us,
            top=args.top, topdown=topdown,
        )
        if args.json:
            sys.stdout.write(
                payload_to_json(timeline_payload(trace, **kwargs))
            )
        else:
            print(timeline_report(trace, show_iterations=args.iters,
                                  **kwargs))
    return 0


def _engine_parent() -> argparse.ArgumentParser:
    """Shared execution-engine flags for every simulating sub-command."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution engine")
    group.add_argument("-j", "--jobs", type=int, default=None,
                       help="simulation worker processes (0 = all cores; "
                            "default: $GPU_TOPDOWN_JOBS or 1 = serial)")
    group.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persist simulation results under DIR and "
                            "reuse them across runs")
    group.add_argument("--no-cache", action="store_true",
                       help="ignore --cache-dir for this run")
    from repro.sim.backend import BACKENDS, DEFAULT_BACKEND

    group.add_argument("--backend", default=None, choices=list(BACKENDS),
                       help="SM cycle-loop implementation (default: "
                            f"{DEFAULT_BACKEND}; all backends produce "
                            "bit-identical counters, see "
                            "docs/SIMULATOR.md)")
    group.add_argument("--timings", action="store_true",
                       help="print the engine wall-time/cache/health "
                            "summary to stderr")
    resil = parent.add_argument_group("resilience")
    resil.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="deterministic fault plan, e.g. "
                            "'seed=7,engine.transient@0.3,cache.entry' "
                            "(default: $GPU_TOPDOWN_FAULTS)")
    resil.add_argument("--retries", type=int, default=None, metavar="N",
                       help="attempts per simulation cell before "
                            "quarantine (default 3)")
    resil.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock deadline per simulation cell "
                            "(default: none)")
    obsgrp = parent.add_argument_group("observability")
    obsgrp.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace-event / Perfetto "
                             "timeline of this run to FILE "
                             "(see docs/OBSERVABILITY.md)")
    obsgrp.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the metrics export (counters, "
                             "gauges, histograms) to FILE as JSON; the "
                             "counters section is deterministic across "
                             "--jobs")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-topdown",
        description="Top-Down performance profiling for NVIDIA GPUs "
                    "(IPPS 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    engine_parent = _engine_parent()

    sub.add_parser("gpus", help="list known devices").set_defaults(
        func=_cmd_gpus
    )

    p = sub.add_parser("metrics", help="list a device's metrics")
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser("analyze", parents=[engine_parent], help="Top-Down analysis of a suite/app")
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.add_argument("--suite", default="rodinia", choices=list(SUITES))
    p.add_argument("--app", default=None)
    p.add_argument("--level", type=int, default=1, choices=[1, 2, 3])
    p.add_argument("--raw-stalls", action="store_true",
                   help="report the unattributed stall residue instead of "
                        "normalizing Frontend/Backend over IPC_STALL")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--csv", default=None, help="also write results as CSV")
    p.add_argument("--json", default=None,
                   help="also write results as JSON")
    p.add_argument("--json-kernels", default=None, metavar="FILE",
                   help="also write *per-kernel* results as a JSON "
                        "array (joinable by gpu-topdown timeline "
                        "--topdown)")
    p.add_argument("--sample-every", type=int, default=0,
                   help="instrument only every Nth invocation "
                        "(sampling-based collection, paper §VII)")
    p.add_argument("--per-kernel", default=None,
                   metavar="NODE",
                   help="attribute one hierarchy node back to kernels "
                        "(e.g. memory_bound)")
    p.add_argument("--advise", action="store_true",
                   help="print ranked optimization guidance per app")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the pre-run lint pass")
    p.add_argument("--sanitize", action="store_true",
                   help="run the dynamically-confirmed sanitizer passes "
                        "before analysis (ERROR findings abort)")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("analyze-csv",
                       help="analyze a real nvprof/ncu CSV export")
    p.add_argument("--input", required=True, help="path or - for stdin")
    p.add_argument("--format", choices=["ncu", "nvprof"], required=True)
    p.add_argument("--cc", required=True, help="compute capability, e.g. 7.5")
    p.add_argument("--ipc-max", type=float, required=True)
    p.add_argument("--subpartitions", type=int, required=True)
    p.add_argument("--application", default="application")
    p.add_argument("--device-name", default=None)
    p.add_argument("--raw-stalls", action="store_true")
    p.set_defaults(func=_cmd_analyze_csv)

    p = sub.add_parser("dynamic", parents=[engine_parent], help="per-invocation kernel evolution")
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.add_argument("--kernel", default="srad_cuda_1",
                   choices=["srad_cuda_1", "srad_cuda_2"])
    p.add_argument("--invocations", type=int, default=120)
    p.add_argument("--stride", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_dynamic)

    p = sub.add_parser("overhead", parents=[engine_parent], help="profiling-overhead report")
    p.add_argument("--suite", default=None, choices=list(SUITES))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_overhead)

    p = sub.add_parser(
        "profile-self", parents=[engine_parent],
        help="profile the profiler itself: payload vs orchestration "
             "time (docs/OBSERVABILITY.md)",
    )
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.add_argument("--suite", default="rodinia", choices=list(SUITES))
    p.add_argument("--level", type=int, default=3, choices=[1, 2, 3])
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_profile_self)

    p = sub.add_parser("experiment", parents=[engine_parent], help="regenerate a paper table/figure")
    p.add_argument("id", help="table9|tables|fig4|...|fig13|ext-...")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("tune", parents=[engine_parent], help="Top-Down-guided launch tuning")
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.add_argument("--suite", default="rodinia", choices=list(SUITES))
    p.add_argument("--app", required=True)
    p.add_argument("--threads", type=int, default=36 * 2048)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-lint", action="store_true",
                   help="skip the pre-run lint pass")
    p.add_argument("--sanitize", action="store_true",
                   help="run the dynamically-confirmed sanitizer passes "
                        "before tuning (ERROR findings abort)")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser("report", parents=[engine_parent], help="write a markdown analysis report")
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.add_argument("--suite", default="rodinia", choices=list(SUITES))
    p.add_argument("--output", default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("workloads", help="list the modelled applications")
    p.add_argument("--suite", default=None, choices=list(SUITES))
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("sections", parents=[engine_parent],
                       help="ncu default report (SOL/launch/occupancy)")
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.add_argument("--suite", default="rodinia",
                   choices=list(SUITES))
    p.add_argument("--app", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_sections)

    p = sub.add_parser("summary", parents=[engine_parent],
                       help="nvprof default summary (kernels + memcpy)")
    p.add_argument("--gpu", default="NVIDIA GTX 1070")
    p.add_argument("--suite", default="rodinia",
                   choices=list(SUITES))
    p.add_argument("--app", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_summary)

    p = sub.add_parser("trace", parents=[engine_parent], help="issue-level pipeline trace")
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.add_argument("--suite", default="rodinia",
                   choices=list(SUITES))
    p.add_argument("--app", required=True)
    p.add_argument("--limit", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "lint",
        parents=[engine_parent],
        help="static analysis of kernels and the model itself",
    )
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.add_argument("--suite", default="all",
                   choices=["all", *SUITES])
    p.add_argument("--app", default=None,
                   help="lint a single application of --suite")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--disable", action="append", metavar="RULE",
                   help="disable a rule id (repeatable)")
    p.add_argument("--severity", action="append", metavar="RULE=LEVEL",
                   help="override a rule's severity (repeatable)")
    p.add_argument("--drift", action="store_true",
                   help="also run the TD-DRIFT static-vs-measured "
                        "cross-check (profiles each application)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings too")
    p.add_argument("--hide-allowed", action="store_true",
                   help="omit waived findings from the text report")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "serve", parents=[engine_parent],
        help="profiling-as-a-service daemon (HTTP/JSON job API, "
             "crash-recoverable; docs/SERVICE.md)",
    )
    p.add_argument("--state-dir", required=True, metavar="DIR",
                   help="journal, result store and job results live "
                        "here; a restart recovers from it")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral; see --port-file)")
    p.add_argument("--port-file", default=None, metavar="FILE",
                   help="atomically write the bound port to FILE once "
                        "listening")
    p.add_argument("--workers", type=int, default=2,
                   help="job worker threads (default 2)")
    p.add_argument("--queue-cap", type=int, default=16,
                   help="queued-job capacity; beyond it submissions get "
                        "429 queue_full (default 16)")
    p.add_argument("--tenant-quota", type=int, default=8,
                   help="max active jobs per tenant; beyond it 429 "
                        "quota_exceeded (default 8)")
    p.add_argument("--store-max-bytes", type=int, default=None,
                   metavar="N",
                   help="byte cap of the kernel-result store; holding "
                        "it evicts cost-aware-LRU victims (default: "
                        "unbounded)")
    p.add_argument("--hang-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="a job running longer than this is abandoned "
                        "and re-dispatched (default 60)")
    p.add_argument("--drain-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="max time to wait for in-flight jobs on "
                        "SIGTERM (default: wait forever)")
    p.add_argument("--selfcheck", action="store_true",
                   help="start, run one job through the HTTP API, "
                        "verify, drain, exit")
    # serve owns its obs/engine/store lifecycle (the engine must share
    # the daemon's eviction-aware store), so main() must not wrap it.
    p.set_defaults(func=_cmd_serve, own_engine=True)

    p = sub.add_parser(
        "sanitize",
        parents=[engine_parent],
        help="compute-sanitizer-style correctness passes with "
             "simulator-confirmed race/divergence verdicts",
    )
    p.add_argument("--gpu", default="NVIDIA Quadro RTX 4000")
    p.add_argument("--suite", default="all",
                   choices=["all", *SUITES])
    p.add_argument("--app", default=None,
                   help="sanitize a single application of --suite")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable report")
    p.add_argument("--list-passes", action="store_true",
                   help="print the pass catalog and exit")
    p.add_argument("--disable", action="append", metavar="PASS",
                   help="disable a pass id (repeatable)")
    p.add_argument("--severity", action="append", metavar="PASS=LEVEL",
                   help="override a pass's severity (repeatable)")
    p.add_argument("--static", action="store_true",
                   help="skip the simulator replay (no dynamic "
                        "CONFIRMED/NOT-OBSERVED verdicts)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings too")
    p.add_argument("--hide-allowed", action="store_true",
                   help="omit waived findings from the text report")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_sanitize)

    p = sub.add_parser(
        "timeline",
        help="timeline analysis of an nsys-style SQLite trace: "
             "bubbles, iterations, hotspots, occupancy, diffs",
    )
    p.add_argument("database", help="nsys-exported .sqlite trace")
    p.add_argument("--gpu", type=int, default=None, metavar="ID",
                   help="restrict the analyses to one device id")
    p.add_argument("--stream", type=int, default=None, metavar="ID",
                   help="restrict the analyses to one stream id")
    p.add_argument("--iters", action="store_true",
                   help="print the per-iteration table (NVTX-detected)")
    p.add_argument("--diff", default=None, metavar="OTHER",
                   help="diff this trace (A) against OTHER (B) instead "
                        "of reporting")
    p.add_argument("--json", action="store_true",
                   help="emit the canonical machine-readable report "
                        "(bit-identical across runs)")
    p.add_argument("--top", type=int, default=10,
                   help="hotspot/diff rows to keep (default 10)")
    p.add_argument("--topdown", default=None, metavar="RESULTS",
                   help="join hotspot kernels to Top-Down results from "
                        "analyze --json / --json-kernels")
    p.add_argument("--min-gap-us", type=float, default=1.0,
                   help="ignore idle gaps shorter than this (default 1)")
    p.add_argument("--launch-threshold-us", type=float, default=10.0,
                   help="gaps at or below this classify as launch "
                        "latency (default 10)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a Chrome trace-event timeline of this "
                        "run to FILE (see docs/OBSERVABILITY.md)")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the metrics export to FILE as JSON")
    p.set_defaults(func=_cmd_timeline)

    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.obs.runtime import obs_context
    from repro.sim.engine import engine_context

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if hasattr(args, "jobs") and not getattr(args, "own_engine", False):
            # simulating sub-command: install observability (outermost,
            # so worker spills merge after the pool drains) and the
            # configured engine.  profile-self always records obs
            # in-memory; otherwise --trace/--metrics-out opt in.
            with obs_context(
                trace=args.trace, metrics_out=args.metrics_out,
                enabled=(True if args.command == "profile-self"
                         else None),
            ), engine_context(jobs=args.jobs, cache_dir=args.cache_dir,
                              no_cache=args.no_cache,
                              faults=args.inject_faults,
                              retries=args.retries,
                              deadline_s=args.deadline,
                              backend=args.backend) as engine:
                rc = args.func(args)
                if (args.timings or engine.parallel
                        or engine.cache is not None
                        or engine.health.degraded):
                    print(engine.summary(), file=sys.stderr)
            return rc
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # The stdout consumer (head, less, ...) went away mid-print.
        # Point stdout at devnull so the interpreter's exit-time flush
        # cannot traceback, and exit like a signalled filter would.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 128 + 13  # SIGPIPE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    sys.exit(main())
