"""Deterministic, seeded fault injection for the execution stack.

Real profiling runs fail in ugly ways: worker processes die, kernels
hang past any reasonable deadline, cache shards get truncated by a
crashed writer, profiler CSV exports arrive mangled, and transient
collection errors appear and vanish between replay passes.  This module
lets tests and CI *manufacture* every one of those failures on demand,
reproducibly: each potential fault site asks a pure function of
``(seed, site, key, attempt)`` whether to fire, so two runs with the
same plan observe bit-identical fault schedules — across processes,
pool sizes, and scheduling orders.

A plan is a comma-separated spec string, accepted both from the
``GPU_TOPDOWN_FAULTS`` environment variable and the ``--inject-faults``
CLI flag::

    seed=7,engine.worker@0.5,sim.hang,cache.entry@0.25,hang=0.2

* ``seed=N`` — decision seed (default 0);
* ``SITE@RATE`` — fire at ``SITE`` with probability ``RATE`` per
  (cell, attempt); a bare ``SITE`` means rate 1.0;
* ``hang=SECONDS`` — sleep duration of the ``sim.hang`` site.

Supported sites (each has one fixed failure mode):

========================  ====================================================
``engine.transient``      :class:`~repro.errors.TransientFaultError` before a
                          cell is dispatched (flaky pass; always retryable)
``engine.worker``         worker-process death: ``os._exit`` inside a pool
                          worker, :class:`~repro.errors.WorkerCrashError`
                          when running in-process
``sim.hang``              the simulated kernel sleeps ``hang=`` seconds
                          (cycle-budget overrun), tripping the engine's
                          per-cell deadline
``cache.write``           crash between the temp-file write and the atomic
                          rename of a result-cache shard
``cache.entry``           truncate a just-written cache shard (torn write
                          discovered by a later reader)
``profiler.metrics``      drop roughly half of a kernel's collected metric
                          values (partially-collected metric set)
``profiler.csv``          mangle lines of a profiler CSV export before
                          parsing
``service.submit``        :class:`~repro.errors.TransientFaultError` while
                          admitting a job submission (the HTTP layer answers
                          503 ``transient``; resubmission re-rolls)
``service.worker``        :class:`~repro.errors.WorkerCrashError` in a
                          service worker at job pickup (retried under the
                          job retry budget, then quarantined)
``store.evict``           crash mid-eviction in the result store: the victim
                          shard is already unlinked, the size index not yet
                          rewritten (rebuilt on the next open)
========================  ====================================================
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import (
    ResilienceError,
    TransientFaultError,
    WorkerCrashError,
)
from repro.sim.rng import stable_str_hash, uniform

#: every named injection site (see the module docstring table).
FAULT_SITES = (
    "engine.transient",
    "engine.worker",
    "sim.hang",
    "cache.write",
    "cache.entry",
    "profiler.metrics",
    "profiler.csv",
    "service.submit",
    "service.worker",
    "store.evict",
)


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, immutable fault schedule."""

    #: decision seed; same seed ⇒ same fault schedule everywhere.
    seed: int = 0
    #: per-site firing probability in [0, 1] (absent site ⇒ 0).
    rates: Mapping[str, float] = None  # type: ignore[assignment]
    #: sleep duration of the ``sim.hang`` site, seconds.
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.rates is None:
            object.__setattr__(self, "rates", {})

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``seed=N,SITE@RATE,...`` spec string."""
        seed = 0
        hang_s = 30.0
        rates: dict[str, float] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if part.startswith("seed="):
                try:
                    seed = int(part[5:])
                except ValueError:
                    raise ResilienceError(
                        f"fault spec: bad seed in {part!r}"
                    ) from None
                continue
            if part.startswith("hang="):
                try:
                    hang_s = float(part[5:])
                except ValueError:
                    raise ResilienceError(
                        f"fault spec: bad hang duration in {part!r}"
                    ) from None
                if hang_s < 0:
                    raise ResilienceError("fault spec: hang must be >= 0")
                continue
            site, sep, rate_text = part.partition("@")
            if site not in FAULT_SITES:
                raise ResilienceError(
                    f"fault spec: unknown site {site!r} "
                    f"(known: {', '.join(FAULT_SITES)})"
                )
            try:
                rate = float(rate_text) if sep else 1.0
            except ValueError:
                raise ResilienceError(
                    f"fault spec: bad rate in {part!r}"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ResilienceError(
                    f"fault spec: rate must be in [0, 1], got {rate}"
                )
            rates[site] = rate
        return cls(seed=seed, rates=rates, hang_s=hang_s)

    def spec_string(self) -> str:
        """Round-trippable spec (ships the plan to spawned workers)."""
        parts = [f"seed={self.seed}", f"hang={self.hang_s}"]
        parts += [f"{site}@{rate}" for site, rate in sorted(self.rates.items())]
        return ",".join(parts)

    @property
    def empty(self) -> bool:
        return not any(self.rates.values())


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named sites.

    Stateless by design: every decision is a pure function of
    ``(plan.seed, site, key, attempt)``, so decisions agree across
    worker processes and are reproducible run-to-run.  Retries pass an
    incremented ``attempt``, re-rolling the decision — a site at rate
    1.0 therefore fails every retry (and ends quarantined), while a
    fractional rate models a genuinely transient fault.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def decide(self, site: str, key: str, attempt: int = 0) -> bool:
        """Should ``site`` fire for ``key`` on this ``attempt``?"""
        rate = self.plan.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        u = uniform(
            self.plan.seed,
            stable_str_hash(site),
            stable_str_hash(key),
            attempt,
        )
        return u < rate

    # -- raising sites ----------------------------------------------------
    def fire_transient(self, key: str, attempt: int = 0) -> None:
        if self.decide("engine.transient", key, attempt):
            raise TransientFaultError(
                f"injected transient fault for {key!r} "
                f"(attempt {attempt})"
            )

    def fire_worker_crash(self, key: str, attempt: int = 0) -> None:
        """Kill the current pool worker (or raise when in-process)."""
        if not self.decide("engine.worker", key, attempt):
            return
        if _IN_POOL_WORKER:
            # a real worker death: the parent sees BrokenProcessPool
            # and must recover by re-dispatching on a fresh pool.
            os._exit(3)
        raise WorkerCrashError(
            f"injected worker crash for {key!r} (attempt {attempt})"
        )

    def fire_cache_write(self, key: str) -> None:
        if self.decide("cache.write", key):
            raise ResilienceError(
                f"injected crash during cache write of {key!r}"
            )

    def fire_service_submit(self, key: str, attempt: int = 0) -> None:
        """Transient admission failure (HTTP 503; resubmission re-rolls)."""
        if self.decide("service.submit", key, attempt):
            raise TransientFaultError(
                f"injected submission fault for job {key!r} "
                f"(attempt {attempt})"
            )

    def fire_service_worker(self, key: str, attempt: int = 0) -> None:
        """Service-worker death at job pickup (threads raise; no exit)."""
        if self.decide("service.worker", key, attempt):
            raise WorkerCrashError(
                f"injected service worker crash for job {key!r} "
                f"(attempt {attempt})"
            )

    def fire_store_evict(self, key: str) -> None:
        """Crash between a victim unlink and the size-index rewrite."""
        if self.decide("store.evict", key):
            raise ResilienceError(
                f"injected crash while evicting {key!r} from the store"
            )

    # -- corrupting sites -------------------------------------------------
    def maybe_hang(self, key: str, attempt: int = 0) -> None:
        if self.decide("sim.hang", key, attempt):
            time.sleep(self.plan.hang_s)

    def corrupt_entry(self, path, key: str) -> bool:
        """Truncate a just-written cache shard (torn write)."""
        if not self.decide("cache.entry", key):
            return False
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
        return True

    def corrupt_metrics(
        self, key: str, metrics: Mapping[str, float]
    ) -> dict[str, float]:
        """Drop a deterministic ~half of the collected metric values."""
        if not self.decide("profiler.metrics", key):
            return dict(metrics)
        return {
            name: value
            for name, value in metrics.items()
            if uniform(
                self.plan.seed,
                stable_str_hash("profiler.metrics/drop"),
                stable_str_hash(key),
                stable_str_hash(name),
            )
            >= 0.5
        }

    def corrupt_text(self, key: str, text: str) -> str:
        """Mangle a deterministic subset of a CSV export's lines."""
        if not self.decide("profiler.csv", key):
            return text
        lines = text.splitlines()
        out = []
        for i, line in enumerate(lines):
            u = uniform(
                self.plan.seed,
                stable_str_hash("profiler.csv/line"),
                stable_str_hash(key),
                i,
            )
            if i > 0 and u < 0.3:
                # truncate the row mid-field — parsers must skip it.
                out.append(line[: max(1, len(line) // 2)])
            elif i > 0 and u < 0.4:
                continue  # drop the row entirely
            else:
                out.append(line)
        return "\n".join(out) + ("\n" if text.endswith("\n") else "")


#: the no-op injector (empty plan); shared default.
NULL_INJECTOR = FaultInjector(FaultPlan())

#: name of the environment variable carrying a fault spec.
FAULTS_ENV = "GPU_TOPDOWN_FAULTS"

_ACTIVE: list[FaultInjector] = []
_ENV_CACHE: tuple[str | None, FaultInjector] | None = None
#: set in pool workers (via fork inheritance or the spawn initializer)
#: so ``engine.worker`` can genuinely kill the process.
_IN_POOL_WORKER = False


def active_injector() -> FaultInjector:
    """The injector in effect: innermost :func:`install_faults` block,
    else one parsed from ``GPU_TOPDOWN_FAULTS``, else the no-op."""
    if _ACTIVE:
        return _ACTIVE[-1]
    global _ENV_CACHE
    spec = os.environ.get(FAULTS_ENV)
    if _ENV_CACHE is None or _ENV_CACHE[0] != spec:
        injector = (
            FaultInjector(FaultPlan.parse(spec)) if spec else NULL_INJECTOR
        )
        _ENV_CACHE = (spec, injector)
    return _ENV_CACHE[1]


@contextmanager
def install_faults(spec: "str | FaultPlan | None") -> Iterator[FaultInjector]:
    """Install a fault plan for the duration of the block."""
    if spec is None:
        plan = FaultPlan()
    elif isinstance(spec, FaultPlan):
        plan = spec
    else:
        plan = FaultPlan.parse(spec)
    injector = FaultInjector(plan)
    _ACTIVE.append(injector)
    try:
        yield injector
    finally:
        _ACTIVE.remove(injector)


def worker_init(spec_string: str) -> None:
    """Pool-worker initializer: re-install the parent's plan.

    Needed for spawn-based pools (fork inherits ``_ACTIVE`` for free);
    also marks the process as a pool worker so ``engine.worker`` faults
    exit the process instead of raising.
    """
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True
    if spec_string:
        _ACTIVE.append(FaultInjector(FaultPlan.parse(spec_string)))


__all__ = [
    "FAULT_SITES",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "NULL_INJECTOR",
    "active_injector",
    "install_faults",
    "worker_init",
]
