"""Checkpoint/resume journal for long multi-cell runs.

``generate_all`` regenerates the whole artifact bundle — minutes of
simulation.  A :class:`RunJournal` records each completed cell (one
experiment stage and the files it wrote) in an append-only JSONL file
inside the output directory, flushed and fsynced per entry, so a run
killed at any instant can be relaunched with ``--resume`` and restart
from the first incomplete cell.

Safety properties:

* the journal header pins the run parameters (seed, invocation counts,
  schema); a ``--resume`` against different parameters starts over
  rather than mixing artifacts from two configurations;
* a cell is only trusted if its journal entry parsed cleanly *and*
  every file it claims to have written still exists — a torn final
  line (killed mid-append) or a deleted artifact simply re-runs the
  cell;
* the journal is deleted on successful completion, so a finished
  bundle contains exactly the artifact files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping

from repro.errors import ResilienceError

#: bump when the journal layout changes; old journals re-run everything.
JOURNAL_SCHEMA = "repro/run-journal@1"


class RunJournal:
    """Append-only journal of completed cells of one parameterized run."""

    def __init__(
        self,
        path: str | Path,
        params: Mapping[str, object],
        *,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.params = dict(params)
        #: cell name -> file names written by that cell.
        self.completed: dict[str, list[str]] = {}
        if resume:
            self._load()
        self._fh = None  # opened lazily on first record

    # -- loading ----------------------------------------------------------
    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return  # no journal: nothing to resume
        lines = text.splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return  # torn header: start over
        if (
            not isinstance(header, dict)
            or header.get("schema") != JOURNAL_SCHEMA
            or header.get("params") != self.params
        ):
            # different schema or run parameters: never mix artifacts.
            return
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail (killed mid-append): re-run from here
            if not isinstance(entry, dict) or "cell" not in entry:
                break
            files = entry.get("files", [])
            if not isinstance(files, list):
                break
            self.completed[str(entry["cell"])] = [str(f) for f in files]

    # -- queries ----------------------------------------------------------
    def done(self, cell: str, base_dir: Path | None = None) -> bool:
        """Is ``cell`` recorded complete, with all its files present?"""
        files = self.completed.get(cell)
        if files is None:
            return False
        root = base_dir if base_dir is not None else self.path.parent
        return all((root / name).exists() for name in files)

    def files_of(self, cell: str) -> list[str]:
        return list(self.completed.get(cell, []))

    # -- recording --------------------------------------------------------
    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.completed
            self._fh = open(self.path, "w" if fresh else "a")
            if fresh:
                self._write_line(
                    {"schema": JOURNAL_SCHEMA, "params": self.params}
                )
        return self._fh

    def _write_line(self, doc: dict) -> None:
        fh = self._fh
        fh.write(json.dumps(doc, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    def record(self, cell: str, files: list[str]) -> None:
        """Mark ``cell`` complete (durable before this returns)."""
        if cell in self.completed:
            raise ResilienceError(f"cell {cell!r} recorded twice")
        self._open()
        self._write_line({"cell": cell, "files": files})
        self.completed[cell] = list(files)

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def complete(self) -> None:
        """The run finished: drop the journal."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass


__all__ = ["JOURNAL_SCHEMA", "RunJournal"]
