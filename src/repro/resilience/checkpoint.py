"""Checkpoint/resume journal for long multi-cell runs.

``generate_all`` regenerates the whole artifact bundle — minutes of
simulation.  A :class:`RunJournal` records each completed cell (one
experiment stage and the files it wrote) in an append-only JSONL file
inside the output directory, flushed and fsynced per entry, so a run
killed at any instant can be relaunched with ``--resume`` and restart
from the first incomplete cell.

Safety properties:

* the journal header pins the run parameters (seed, invocation counts,
  schema); a ``--resume`` against different parameters starts over
  rather than mixing artifacts from two configurations;
* a cell is only trusted if its journal entry parsed cleanly *and*
  every file it claims to have written still exists — a torn final
  line (killed mid-append) or a deleted artifact simply re-runs the
  cell (the stale entry is dropped at load, so re-recording it is
  legal);
* opening a resumed journal for writing rewrites it from the
  validated in-memory state (temp file + atomic rename), so a torn
  tail can never corrupt records appended by a later resume;
* the journal is deleted on successful completion, so a finished
  bundle contains exactly the artifact files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping

from repro.errors import ResilienceError
from repro.fsutil import fsync_dir

#: bump when the journal layout changes; old journals re-run everything.
JOURNAL_SCHEMA = "repro/run-journal@1"


class RunJournal:
    """Append-only journal of completed cells of one parameterized run."""

    def __init__(
        self,
        path: str | Path,
        params: Mapping[str, object],
        *,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.params = dict(params)
        #: cell name -> file names written by that cell.
        self.completed: dict[str, list[str]] = {}
        #: cells recorded by *this* process (double-record guard; cells
        #: loaded from a previous run may legitimately be re-recorded).
        self._recorded: set[str] = set()
        if resume:
            self._load()
        self._fh = None  # opened lazily on first record

    # -- loading ----------------------------------------------------------
    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return  # no journal: nothing to resume
        lines = text.splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return  # torn header: start over
        if (
            not isinstance(header, dict)
            or header.get("schema") != JOURNAL_SCHEMA
            or header.get("params") != self.params
        ):
            # different schema or run parameters: never mix artifacts.
            return
        root = self.path.parent
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail (killed mid-append): re-run from here
            if not isinstance(entry, dict) or "cell" not in entry:
                break
            files = entry.get("files", [])
            if not isinstance(files, list):
                break
            cell = str(entry["cell"])
            names = [str(f) for f in files]
            if all((root / name).exists() for name in names):
                self.completed[cell] = names
            else:
                # an artifact was deleted since the entry was written:
                # drop the entry entirely so the cell re-runs *and*
                # record() accepts it again on this resume.
                self.completed.pop(cell, None)

    # -- queries ----------------------------------------------------------
    def done(self, cell: str, base_dir: Path | None = None) -> bool:
        """Is ``cell`` recorded complete, with all its files present?"""
        files = self.completed.get(cell)
        if files is None:
            return False
        root = base_dir if base_dir is not None else self.path.parent
        return all((root / name).exists() for name in files)

    def files_of(self, cell: str) -> list[str]:
        return list(self.completed.get(cell, []))

    # -- recording --------------------------------------------------------
    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Rewrite the journal from the validated in-memory state
            # (temp file + atomic rename): a torn tail left by a killed
            # writer, or an entry invalidated by a deleted artifact,
            # never survives into the file we append to — so the first
            # appended record always starts on a fresh line.
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "w") as fh:
                fh.write(json.dumps(
                    {"schema": JOURNAL_SCHEMA, "params": self.params},
                    sort_keys=True,
                ) + "\n")
                for cell, files in self.completed.items():
                    fh.write(json.dumps(
                        {"cell": cell, "files": files}, sort_keys=True
                    ) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            # the rename lives in the directory's metadata: fsync it so
            # the journal name survives power loss, not just a crash.
            fsync_dir(self.path.parent)
            self._fh = open(self.path, "a")
        return self._fh

    def _write_line(self, doc: dict) -> None:
        fh = self._fh
        fh.write(json.dumps(doc, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())

    def record(self, cell: str, files: list[str]) -> None:
        """Mark ``cell`` complete (durable before this returns).

        Re-recording a cell loaded from a previous run is legal (the
        new entry supersedes it — last wins on the next load); only a
        cell recorded twice by the *same* process is a caller bug.
        """
        if cell in self._recorded:
            raise ResilienceError(f"cell {cell!r} recorded twice")
        self._open()
        self._write_line({"cell": cell, "files": files})
        self.completed[cell] = list(files)
        self._recorded.add(cell)
        from repro.obs.runtime import active_obs

        active_obs().tracer.instant("journal.record", cat="resilience",
                                    cell=cell, files=len(files))

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def complete(self) -> None:
        """The run finished: drop the journal."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass


__all__ = ["JOURNAL_SCHEMA", "RunJournal"]
