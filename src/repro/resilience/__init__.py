"""Resilient-execution layer: fault injection, retry/deadline policy,
quarantine accounting, and checkpoint/resume journaling.

The paper's tool lives in a hostile environment — kernels are
re-executed across PMU passes, counters are multiplexed, and long
artifact regenerations get killed.  This package gives the execution
stack (:mod:`repro.sim.engine`, the profiler front-ends, the suite
runners) one shared vocabulary for surviving that:

* :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection at named sites (``GPU_TOPDOWN_FAULTS`` / ``--inject-faults``);
* :mod:`repro.resilience.policy` — :class:`RetryPolicy` with
  exponential backoff, deterministic jitter and per-cell deadlines;
* :mod:`repro.resilience.health` — :class:`RunHealth`
  attempt/retry/quarantine accounting;
* :mod:`repro.resilience.checkpoint` — :class:`RunJournal` for
  kill-and-``--resume`` of multi-minute runs.
"""

from repro.resilience.checkpoint import JOURNAL_SCHEMA, RunJournal
from repro.resilience.faults import (
    FAULT_SITES,
    FAULTS_ENV,
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    active_injector,
    install_faults,
    worker_init,
)
from repro.resilience.health import QuarantinedCell, RunHealth
from repro.resilience.policy import (
    RETRYABLE_ERRORS,
    RetryPolicy,
    is_retryable,
)

__all__ = [
    "FAULT_SITES",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "JOURNAL_SCHEMA",
    "NULL_INJECTOR",
    "QuarantinedCell",
    "RETRYABLE_ERRORS",
    "RetryPolicy",
    "RunHealth",
    "RunJournal",
    "active_injector",
    "install_faults",
    "is_retryable",
    "worker_init",
]
