"""Run-health accounting: what the resilient layer had to do.

A :class:`RunHealth` travels with the
:class:`~repro.sim.engine.ExecutionEngine` and counts every attempt,
retry (by failure class) and quarantine, plus non-fatal cache-write
failures.  The rendered summary appears in ``--timings`` output and in
the artifact bundle (``RUNHEALTH.txt``); its counters are deterministic
for identical inputs and fault seed, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QuarantinedCell:
    """One cell that exhausted its retry budget."""

    #: human-readable cell label (``kernel@device``).
    cell: str
    #: final failure message that triggered the quarantine.
    reason: str
    #: attempts spent on this cell before giving up.
    attempts: int


@dataclass
class RunHealth:
    """Attempt/retry/quarantine counters for one engine lifetime."""

    #: cell executions started (first tries and retries).
    attempts: int = 0
    #: retries by failure class name (e.g. ``TransientFaultError``).
    retries: dict[str, int] = field(default_factory=dict)
    #: quarantined cells in first-quarantined order, keyed by label.
    quarantined: dict[str, QuarantinedCell] = field(default_factory=dict)
    #: cache shard writes that failed (never fatal, but worth knowing).
    cache_write_failures: int = 0

    # -- recording --------------------------------------------------------
    def record_attempt(self) -> None:
        self.attempts += 1

    def record_retry(self, reason: str) -> None:
        self.retries[reason] = self.retries.get(reason, 0) + 1

    def record_quarantine(
        self, cell: str, reason: str, attempts: int
    ) -> None:
        self.quarantined.setdefault(
            cell, QuarantinedCell(cell=cell, reason=reason, attempts=attempts)
        )

    # -- queries ----------------------------------------------------------
    @property
    def retry_count(self) -> int:
        return sum(self.retries.values())

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)

    # -- rendering --------------------------------------------------------
    def render(self) -> str:
        """One-paragraph summary (deterministic ordering)."""
        lines = [
            f"health: {self.attempts} attempt(s) · "
            f"{self.retry_count} retr(y/ies) · "
            f"{len(self.quarantined)} quarantined cell(s)"
        ]
        for reason in sorted(self.retries):
            lines.append(f"  retried {self.retries[reason]}x: {reason}")
        for cell in self.quarantined.values():
            lines.append(
                f"  QUARANTINED {cell.cell} after {cell.attempts} "
                f"attempt(s): {cell.reason}"
            )
        if self.cache_write_failures:
            lines.append(
                f"  cache writes failed (non-fatal): "
                f"{self.cache_write_failures}"
            )
        return "\n".join(lines)

    def payload(self) -> dict:
        """Machine-readable summary (stable key order)."""
        return {
            "attempts": self.attempts,
            "retries": {k: self.retries[k] for k in sorted(self.retries)},
            "quarantined": [
                {
                    "cell": c.cell,
                    "reason": c.reason,
                    "attempts": c.attempts,
                }
                for c in self.quarantined.values()
            ],
            "cache_write_failures": self.cache_write_failures,
        }


__all__ = ["QuarantinedCell", "RunHealth"]
