"""Retry and deadline policy for simulation cells.

Profiling pipelines re-execute kernels many times (PMU replay passes),
so individual cell failures are common and usually transient.  The
policy here is the classic one — bounded attempts, exponential backoff
with jitter — with one twist: the jitter is *deterministic*, derived
from the cell key and attempt number, so a retried run produces the
same schedule (and therefore the same :class:`RunHealth` numbers) as
the previous one given identical inputs and fault seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    CellTimeoutError,
    ResilienceError,
    TransientFaultError,
    WorkerCrashError,
)
from repro.sim.rng import stable_str_hash, uniform

#: exception types a retry may fix (everything else fails fast).
RETRYABLE_ERRORS = (TransientFaultError, WorkerCrashError, CellTimeoutError)


def is_retryable(exc: BaseException) -> bool:
    """Whether the failure class is worth another attempt."""
    if isinstance(exc, RETRYABLE_ERRORS):
        return True
    # a dead pool is recoverable: the engine rebuilds it and retries.
    return type(exc).__name__ == "BrokenProcessPool"


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before quarantining a cell."""

    #: total attempts per cell (1 = no retries).
    max_attempts: int = 3
    #: backoff before retry ``n`` is ``base * 2**(n-1)``, capped.
    base_delay_s: float = 0.02
    max_delay_s: float = 1.0
    #: fraction of the delay randomized (deterministically) in
    #: ``[1 - jitter, 1]`` to avoid retry convoys.
    jitter: float = 0.5
    #: per-cell wall-clock deadline, seconds (``None`` = no deadline).
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ResilienceError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError("jitter must be in [0, 1]")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ResilienceError("deadline_s must be positive")

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` (>= 1)."""
        delay = min(self.max_delay_s, self.base_delay_s * 2 ** (attempt - 1))
        u = uniform(stable_str_hash(key), attempt)
        return delay * (1.0 - self.jitter * u)


__all__ = ["RETRYABLE_ERRORS", "RetryPolicy", "is_retryable"]
