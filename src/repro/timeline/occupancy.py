"""Per-stream and per-device timeline occupancy.

"Occupancy" here is *lane utilization* — the fraction of a device's
active span each stream (and the device as a whole) spent busy — not
the CUDA warp-residency occupancy of :mod:`repro.arch.occupancy`.
The device row uses the union of all its streams' activity, so
perfectly overlapped streams yield device occupancy 1.0 while each
stream individually reports its own share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.io.nsys_sqlite import TimelineTrace
from repro.timeline.bubbles import _merge_intervals


@dataclass(frozen=True)
class StreamOccupancy:
    """One (device, stream) lane — or a whole device (stream None)."""

    device_id: int
    #: ``None`` marks the device-union row.
    stream_id: int | None
    busy_ns: int
    #: the device's first→last activity span (shared by its lanes, so
    #: lane fractions are comparable).
    span_ns: int
    kernels: int
    memcpys: int

    @property
    def occupancy(self) -> float:
        return self.busy_ns / self.span_ns if self.span_ns else 0.0


def stream_occupancy(
    trace: TimelineTrace,
    *,
    device: int | None = None,
    stream: int | None = None,
) -> tuple[StreamOccupancy, ...]:
    """Occupancy rows: one per stream plus one union row per device."""
    devices = [device] if device is not None else list(trace.device_ids)
    rows: list[StreamOccupancy] = []
    for device_id in devices:
        device_slices = trace.slices(device_id)
        if not device_slices:
            continue
        span = (max(s.end_ns for s in device_slices)
                - min(s.start_ns for s in device_slices))
        streams = ([stream] if stream is not None
                   else list(trace.streams(device_id)))
        for stream_id in streams:
            slices = trace.slices(device_id, stream_id)
            busy = sum(hi - lo for lo, hi, _, _ in _merge_intervals(slices))
            rows.append(StreamOccupancy(
                device_id=device_id, stream_id=stream_id, busy_ns=busy,
                span_ns=span,
                kernels=sum(1 for s in slices if hasattr(s, "name")),
                memcpys=sum(1 for s in slices if hasattr(s, "kind")),
            ))
        union_busy = sum(
            hi - lo for lo, hi, _, _ in _merge_intervals(device_slices)
        )
        rows.append(StreamOccupancy(
            device_id=device_id, stream_id=None, busy_ns=union_busy,
            span_ns=span,
            kernels=sum(1 for s in device_slices if hasattr(s, "name")),
            memcpys=sum(1 for s in device_slices if hasattr(s, "kind")),
        ))
    return tuple(rows)


__all__ = ["StreamOccupancy", "stream_occupancy"]
