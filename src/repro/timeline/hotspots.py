"""Kernel hotspot ranking: which kernels own the device time.

Aggregates kernel executions by name and ranks by total duration —
the "single kernel dominating total time" question.  ``share`` is of
total *kernel* time (not wall span), so the ranking is meaningful even
on bubble-heavy traces; combine with the bubble report for the
utilization picture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.io.nsys_sqlite import TimelineTrace


@dataclass(frozen=True)
class Hotspot:
    """One kernel name's aggregate over the trace."""

    name: str
    count: int
    total_ns: int
    min_ns: int
    max_ns: int
    #: fraction of all kernel time in the same selection.
    share: float
    devices: tuple[int, ...]

    @property
    def avg_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0


def rank_hotspots(
    trace: TimelineTrace,
    *,
    device: int | None = None,
    stream: int | None = None,
    top: int | None = None,
) -> tuple[Hotspot, ...]:
    """Kernels ranked by total time (descending; name breaks ties)."""
    totals: dict[str, list] = {}
    grand_total = 0
    for k in trace.kernels:
        if device is not None and k.device_id != device:
            continue
        if stream is not None and k.stream_id != stream:
            continue
        agg = totals.setdefault(
            k.name, [0, 0, None, None, set()]
        )  # count, total, min, max, devices
        agg[0] += 1
        agg[1] += k.duration_ns
        agg[2] = (k.duration_ns if agg[2] is None
                  else min(agg[2], k.duration_ns))
        agg[3] = (k.duration_ns if agg[3] is None
                  else max(agg[3], k.duration_ns))
        agg[4].add(k.device_id)
        grand_total += k.duration_ns
    hotspots = [
        Hotspot(
            name=name, count=agg[0], total_ns=agg[1], min_ns=agg[2],
            max_ns=agg[3],
            share=(agg[1] / grand_total if grand_total else 0.0),
            devices=tuple(sorted(agg[4])),
        )
        for name, agg in sorted(totals.items())
    ]
    hotspots.sort(key=lambda h: (-h.total_ns, h.name))
    return tuple(hotspots[:top] if top is not None else hotspots)


__all__ = ["Hotspot", "rank_hotspots"]
