"""Joining timeline kernels to Top-Down counter results.

Timeline kernel names come from the driver (demangled C++ —
``void gemm_tile<float>(float const*, ...)``); Top-Down results carry
the plain kernel or application names the profiler emulations and the
``analyze --json`` / ``--json-kernels`` exports use.  Both are reduced
to a *fingerprint* — the bare function identifier, lowercased — and
matched on it, so a bubble report can say both "the GPU idled 18%
between iterations" **and** "the hot kernel inside them is
memory-latency bound".
"""

from __future__ import annotations

import json

from repro.core.nodes import LEVEL2, Node
from repro.core.result import TopDownResult
from repro.errors import ProfilerError
from repro.io.results_json import result_from_json


def kernel_fingerprint(name: str) -> str:
    """The bare, lowercased function identifier of a kernel name.

    Strips the parameter list, template arguments, leading qualifiers
    (``void``, ``__global__``) and namespaces::

        void ns::gemm_tile<float, 128>(float const*, float*)
        → "gemm_tile"
    """
    s = name.strip().split("(")[0]
    s = s.split("<")[0].strip()
    if s.split():
        s = s.split()[-1]
    s = s.rsplit("::", 1)[-1]
    return s.lower()


def load_topdown_results(path: str) -> tuple[TopDownResult, ...]:
    """Load one result doc or a JSON array of them (``analyze --json``
    and ``analyze --json-kernels`` both qualify)."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProfilerError(f"{path}: invalid results JSON: {exc}") from exc
    docs = doc if isinstance(doc, list) else [doc]
    return tuple(result_from_json(json.dumps(d)) for d in docs)


#: level-2 node → prose used in joined timeline reports.
_BOTTLENECK_LABEL = {
    Node.MEMORY: "memory-latency bound",
    Node.CORE: "compute-dependency bound",
    Node.FETCH: "fetch bound",
    Node.DECODE: "decode bound",
    Node.BRANCH: "branch-divergence bound",
    Node.REPLAY: "replay bound",
}


def dominant_bottleneck(result: TopDownResult) -> str:
    """One-line verdict from a Top-Down breakdown.

    Retiring above half of peak reads as healthy; otherwise the
    largest level-2 component names the bottleneck, with its share of
    peak IPC for scale.
    """
    if result.fraction(Node.RETIRE) >= 0.5:
        return (f"mostly retiring "
                f"({result.fraction(Node.RETIRE):.0%} of peak)")
    node = max(LEVEL2, key=lambda n: (result.ipc(n), n.value))
    return (f"{_BOTTLENECK_LABEL[node]} "
            f"({node.value} {result.fraction(node):.0%} of peak)")


def join_topdown(
    kernel_names: tuple[str, ...] | list[str],
    results: tuple[TopDownResult, ...],
) -> dict[str, str]:
    """Map timeline kernel *names* to Top-Down verdicts by fingerprint.

    Unmatched names are simply absent — the timeline report prints the
    verdict column only where the join found one.
    """
    by_fingerprint: dict[str, TopDownResult] = {}
    for result in results:
        by_fingerprint.setdefault(kernel_fingerprint(result.name), result)
    joined: dict[str, str] = {}
    for name in kernel_names:
        result = by_fingerprint.get(kernel_fingerprint(name))
        if result is not None:
            joined[name] = dominant_bottleneck(result)
    return joined


__all__ = [
    "dominant_bottleneck",
    "join_topdown",
    "kernel_fingerprint",
    "load_topdown_results",
]
