"""GPU idle-gap ("bubble") detection and classification.

A bubble is a span during which a device that still has work ahead of
it executes nothing — no kernel, no DMA on any stream.  Busy intervals
of all the device's streams are merged into a union; the gaps between
consecutive union intervals (within the device's first→last activity
span) are the bubbles.  Leading/trailing idle time is out of scope by
construction: it belongs to process startup/teardown, not to the
steady state the bubble metrics describe.

Classification (precedence order, semantics in docs/TIMELINE.md):

* ``launch`` — the gap is at most ``launch_threshold_us``: consistent
  with kernel-launch latency (driver + runtime submission cost).
* ``sync``  — the activity immediately before the gap was a
  device-to-host copy: the canonical ``cudaMemcpy`` +
  host-consumes-result synchronization pattern.
* ``host``  — anything longer that does not follow a DtoH copy: the
  host simply was not enqueuing work (data loading, Python overhead,
  blocked on another process...).

Everything is integer-nanosecond arithmetic over the loaded trace —
no clocks, no floats until reporting — so repeated runs are
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.io.nsys_sqlite import MemcpySlice, TimelineTrace
from repro.obs import active_obs

#: classification labels, in report order.
BUBBLE_KINDS = ("launch", "sync", "host")


@dataclass(frozen=True)
class Bubble:
    """One idle gap on one device."""

    device_id: int
    start_ns: int
    end_ns: int
    #: ``launch`` / ``sync`` / ``host`` (see module docstring).
    kind: str
    #: name of the activity ending at ``start_ns``.
    after: str
    #: name of the activity starting at ``end_ns``.
    before: str

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class BubbleStats:
    """Aggregate bubble accounting for one device selection."""

    count: int
    total_ns: int
    #: device busy span the bubbles were found in (first→last activity).
    span_ns: int
    by_kind_count: dict[str, int]
    by_kind_ns: dict[str, int]

    @property
    def idle_fraction(self) -> float:
        return self.total_ns / self.span_ns if self.span_ns else 0.0


def _slice_label(s) -> str:
    if isinstance(s, MemcpySlice):
        return f"memcpy {s.kind}"
    return s.name


def _merge_intervals(slices) -> list[tuple[int, int, object, object]]:
    """Union of busy intervals; keeps the first/last slice per interval."""
    merged: list[list] = []
    for s in sorted(slices, key=lambda s: (s.start_ns, s.end_ns)):
        if merged and s.start_ns <= merged[-1][1]:
            if s.end_ns > merged[-1][1]:
                merged[-1][1] = s.end_ns
                merged[-1][3] = s
        else:
            merged.append([s.start_ns, s.end_ns, s, s])
    return [tuple(m) for m in merged]


def find_bubbles(
    trace: TimelineTrace,
    *,
    device: int | None = None,
    stream: int | None = None,
    min_gap_us: float = 1.0,
    launch_threshold_us: float = 10.0,
) -> tuple[Bubble, ...]:
    """Detect idle gaps per device (optionally one device / stream).

    ``stream`` narrows the busy set to one stream — useful to see how
    a single stream's schedule looks, at the cost of counting other
    streams' covered time as idle (the per-device view is the honest
    utilization number).
    """
    min_gap_ns = int(min_gap_us * 1000)
    launch_ns = int(launch_threshold_us * 1000)
    devices = [device] if device is not None else list(trace.device_ids)
    bubbles: list[Bubble] = []
    for device_id in devices:
        merged = _merge_intervals(trace.slices(device_id, stream))
        for (_, prev_end, _, prev_last), (nxt_start, _, nxt_first, _) in zip(
            merged, merged[1:]
        ):
            gap = nxt_start - prev_end
            if gap < min_gap_ns:
                continue
            if gap <= launch_ns:
                kind = "launch"
            elif (isinstance(prev_last, MemcpySlice)
                  and prev_last.kind == "DtoH"):
                kind = "sync"
            else:
                kind = "host"
            bubbles.append(Bubble(
                device_id=device_id, start_ns=prev_end, end_ns=nxt_start,
                kind=kind, after=_slice_label(prev_last),
                before=_slice_label(nxt_first),
            ))
    bubbles.sort(key=lambda b: (b.start_ns, b.device_id))
    active_obs().metrics.inc("timeline.bubbles_found", len(bubbles))
    return tuple(bubbles)


def bubble_stats(
    bubbles: tuple[Bubble, ...],
    trace: TimelineTrace,
    *,
    device: int | None = None,
    stream: int | None = None,
) -> BubbleStats:
    """Aggregate ``bubbles`` against the matching device span."""
    devices = [device] if device is not None else list(trace.device_ids)
    span = 0
    for device_id in devices:
        slices = trace.slices(device_id, stream)
        if slices:
            span += (max(s.end_ns for s in slices)
                     - min(s.start_ns for s in slices))
    by_count = {kind: 0 for kind in BUBBLE_KINDS}
    by_ns = {kind: 0 for kind in BUBBLE_KINDS}
    for b in bubbles:
        by_count[b.kind] += 1
        by_ns[b.kind] += b.duration_ns
    return BubbleStats(
        count=len(bubbles),
        total_ns=sum(b.duration_ns for b in bubbles),
        span_ns=span,
        by_kind_count=by_count,
        by_kind_ns=by_ns,
    )


__all__ = ["BUBBLE_KINDS", "Bubble", "BubbleStats", "bubble_stats",
           "find_bubbles"]
