"""Run-to-run timeline diffing.

Answers "what changed between these two traces?" at three levels:
overall span and device busy time, per-kind bubble totals, and
per-kernel aggregates (matched by name fingerprint, so recompiles
that only perturb template arguments still pair up).  The shape
follows the draft diff engine of the nsys-ai ground material: pair,
subtract, rank by absolute delta, and call out kernels that exist on
only one side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.io.nsys_sqlite import TimelineTrace
from repro.timeline.bubbles import BUBBLE_KINDS, bubble_stats, find_bubbles
from repro.timeline.hotspots import rank_hotspots
from repro.timeline.join import kernel_fingerprint


@dataclass(frozen=True)
class KernelDelta:
    """One paired kernel's change from trace A to trace B."""

    name: str
    count_a: int
    count_b: int
    total_a_ns: int
    total_b_ns: int

    @property
    def delta_ns(self) -> int:
        return self.total_b_ns - self.total_a_ns

    @property
    def ratio(self) -> float:
        """B/A total time (``inf`` for kernels new in B)."""
        if self.total_a_ns == 0:
            return float("inf") if self.total_b_ns else 1.0
        return self.total_b_ns / self.total_a_ns


@dataclass(frozen=True)
class TimelineDiff:
    """Everything :func:`diff_traces` computed."""

    source_a: str
    source_b: str
    span_a_ns: int
    span_b_ns: int
    busy_a_ns: int
    busy_b_ns: int
    bubble_a_ns: dict[str, int]
    bubble_b_ns: dict[str, int]
    kernels: tuple[KernelDelta, ...]
    only_a: tuple[str, ...]
    only_b: tuple[str, ...]

    @property
    def span_delta_ns(self) -> int:
        return self.span_b_ns - self.span_a_ns


def _busy_ns(trace: TimelineTrace) -> int:
    from repro.timeline.occupancy import stream_occupancy

    return sum(row.busy_ns for row in stream_occupancy(trace)
               if row.stream_id is None)


def diff_traces(
    a: TimelineTrace,
    b: TimelineTrace,
    *,
    min_gap_us: float = 1.0,
    launch_threshold_us: float = 10.0,
) -> TimelineDiff:
    """Pair the two traces' kernels and bubbles and subtract."""
    agg_a = {kernel_fingerprint(h.name): h for h in rank_hotspots(a)}
    agg_b = {kernel_fingerprint(h.name): h for h in rank_hotspots(b)}
    deltas = []
    for fp in sorted(set(agg_a) & set(agg_b)):
        ha, hb = agg_a[fp], agg_b[fp]
        deltas.append(KernelDelta(
            name=ha.name, count_a=ha.count, count_b=hb.count,
            total_a_ns=ha.total_ns, total_b_ns=hb.total_ns,
        ))
    deltas.sort(key=lambda d: (-abs(d.delta_ns), d.name))
    stats_a = bubble_stats(
        find_bubbles(a, min_gap_us=min_gap_us,
                     launch_threshold_us=launch_threshold_us), a)
    stats_b = bubble_stats(
        find_bubbles(b, min_gap_us=min_gap_us,
                     launch_threshold_us=launch_threshold_us), b)
    return TimelineDiff(
        source_a=a.source, source_b=b.source,
        span_a_ns=a.span_ns, span_b_ns=b.span_ns,
        busy_a_ns=_busy_ns(a), busy_b_ns=_busy_ns(b),
        bubble_a_ns=stats_a.by_kind_ns, bubble_b_ns=stats_b.by_kind_ns,
        kernels=tuple(deltas),
        only_a=tuple(sorted(agg_a[fp].name
                            for fp in set(agg_a) - set(agg_b))),
        only_b=tuple(sorted(agg_b[fp].name
                            for fp in set(agg_b) - set(agg_a))),
    )


def diff_payload(diff: TimelineDiff, *, top: int = 10) -> dict:
    """Machine-readable diff (canonical field set, rounded floats)."""
    return {
        "schema": "repro/timeline-diff@1",
        "a": diff.source_a,
        "b": diff.source_b,
        "span_ns": {"a": diff.span_a_ns, "b": diff.span_b_ns,
                    "delta": diff.span_delta_ns},
        "busy_ns": {"a": diff.busy_a_ns, "b": diff.busy_b_ns,
                    "delta": diff.busy_b_ns - diff.busy_a_ns},
        "bubbles_ns": {
            kind: {"a": diff.bubble_a_ns[kind],
                   "b": diff.bubble_b_ns[kind],
                   "delta": diff.bubble_b_ns[kind] - diff.bubble_a_ns[kind]}
            for kind in BUBBLE_KINDS
        },
        "kernels": [
            {
                "name": d.name,
                "count": {"a": d.count_a, "b": d.count_b},
                "total_ns": {"a": d.total_a_ns, "b": d.total_b_ns,
                             "delta": d.delta_ns},
                "ratio": (round(d.ratio, 6)
                          if d.ratio != float("inf") else "inf"),
            }
            for d in diff.kernels[:top]
        ],
        "only_a": list(diff.only_a),
        "only_b": list(diff.only_b),
    }


def diff_report(diff: TimelineDiff, *, top: int = 10) -> str:
    """Human-readable diff table."""
    from repro.core.report import format_table
    from repro.timeline.report import _fmt_ns

    lines = [
        f"timeline diff: {diff.source_a} -> {diff.source_b}",
        f"span: {_fmt_ns(diff.span_a_ns)} -> {_fmt_ns(diff.span_b_ns)} "
        f"({diff.span_delta_ns:+d} ns)",
        f"device busy: {_fmt_ns(diff.busy_a_ns)} -> "
        f"{_fmt_ns(diff.busy_b_ns)} "
        f"({diff.busy_b_ns - diff.busy_a_ns:+d} ns)",
        "bubbles: " + ", ".join(
            f"{kind} {_fmt_ns(diff.bubble_a_ns[kind])} -> "
            f"{_fmt_ns(diff.bubble_b_ns[kind])}"
            for kind in BUBBLE_KINDS
        ),
        "",
    ]
    rows = [
        [d.name[:44], str(d.count_a), str(d.count_b),
         _fmt_ns(d.total_a_ns), _fmt_ns(d.total_b_ns),
         f"{d.delta_ns:+d}",
         ("inf" if d.ratio == float("inf") else f"{d.ratio:.2f}x")]
        for d in diff.kernels[:top]
    ]
    lines.append(format_table(
        ["Kernel", "#A", "#B", "Total A", "Total B", "Delta ns", "B/A"],
        rows,
    ))
    if diff.only_a:
        lines.append("only in A: " + ", ".join(diff.only_a))
    if diff.only_b:
        lines.append("only in B: " + ", ".join(diff.only_b))
    return "\n".join(lines)


__all__ = ["KernelDelta", "TimelineDiff", "diff_payload", "diff_report",
           "diff_traces"]
