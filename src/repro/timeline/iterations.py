"""NVTX-delimited iteration detection and variance statistics.

Training/solver loops annotated with per-iteration NVTX ranges
(``nvtx.range_push(f"iter {i}")`` and friends) leave a family of
ranges whose text differs only in a trailing index.  Detection strips
that index, groups ranges by the resulting label, and picks the most
numerous non-overlapping family (ties break toward the
lexicographically smallest label) — no configuration, mirroring the
``iters`` auto-detection the nsys-ai taxonomy describes.

Per iteration we report the duration, the GPU-busy fraction inside
the range (union over every device's activity), and the gap to the
next iteration; the aggregate adds mean/min/max, *population* standard
deviation and the coefficient of variation — the number that answers
"are some iterations slower than others?".  Pure integer/rational
arithmetic over the loaded trace: deterministic by construction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.io.nsys_sqlite import TimelineTrace

#: trailing iteration indices (and separators) stripped for grouping:
#: "iter 12", "step#3", "batch_007", "epoch-1/iter-2" → family labels.
_INDEX_SUFFIX = re.compile(r"[\s_\-#:/.]*\d+$")


@dataclass(frozen=True)
class IterationSpan:
    """One detected iteration."""

    index: int
    text: str
    start_ns: int
    end_ns: int
    #: union of device activity inside the range.
    busy_ns: int
    #: idle time between this range's end and the next one's start
    #: (0 for the last iteration, and for overlapping ranges).
    gap_to_next_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def busy_fraction(self) -> float:
        return self.busy_ns / self.duration_ns if self.duration_ns else 0.0


@dataclass(frozen=True)
class IterationReport:
    """The detected iteration family plus its variance statistics."""

    label: str
    iterations: tuple[IterationSpan, ...]
    mean_ns: float
    std_ns: float
    min_ns: int
    max_ns: int
    slowest_index: int
    #: total inter-iteration idle time.
    gap_total_ns: int

    @property
    def count(self) -> int:
        return len(self.iterations)

    @property
    def cv(self) -> float:
        """Coefficient of variation (std/mean): 0 = perfectly steady."""
        return self.std_ns / self.mean_ns if self.mean_ns else 0.0


def _busy_within(trace: TimelineTrace, start_ns: int, end_ns: int) -> int:
    """Union of all-device activity clipped to ``[start_ns, end_ns)``."""
    clipped = []
    for s in trace.slices():
        lo = max(s.start_ns, start_ns)
        hi = min(s.end_ns, end_ns)
        if lo < hi:
            clipped.append((lo, hi))
    clipped.sort()
    busy = 0
    cursor = start_ns
    for lo, hi in clipped:
        if hi <= cursor:
            continue
        busy += hi - max(lo, cursor)
        cursor = hi
    return busy


def detect_iterations(trace: TimelineTrace) -> IterationReport | None:
    """Auto-detect the iteration family, ``None`` when there is none.

    Needs the trace's NVTX capability: a trace without (or with empty)
    ``NVTX_EVENTS`` simply yields ``None`` — the documented degraded
    behaviour, not an error.
    """
    families: dict[str, list] = {}
    for r in trace.nvtx:
        label = _INDEX_SUFFIX.sub("", r.text).strip() or r.text
        families.setdefault(label, []).append(r)
    candidates = []
    for label in sorted(families):
        ranges = sorted(families[label],
                        key=lambda r: (r.start_ns, r.end_ns))
        if len(ranges) < 2:
            continue
        # iteration ranges tile the timeline; overlapping families
        # (nested scopes, per-layer annotations) are not iterations.
        if any(a.end_ns > b.start_ns for a, b in zip(ranges, ranges[1:])):
            continue
        coverage = sum(r.duration_ns for r in ranges)
        candidates.append((-len(ranges), -coverage, label, ranges))
    if not candidates:
        return None
    candidates.sort(key=lambda c: c[:3])
    _, _, label, ranges = candidates[0]
    spans = []
    for i, r in enumerate(ranges):
        gap = (ranges[i + 1].start_ns - r.end_ns
               if i + 1 < len(ranges) else 0)
        spans.append(IterationSpan(
            index=i, text=r.text, start_ns=r.start_ns, end_ns=r.end_ns,
            busy_ns=_busy_within(trace, r.start_ns, r.end_ns),
            gap_to_next_ns=max(gap, 0),
        ))
    durations = [s.duration_ns for s in spans]
    mean = sum(durations) / len(durations)
    variance = sum((d - mean) ** 2 for d in durations) / len(durations)
    slowest = max(range(len(durations)), key=lambda i: (durations[i], -i))
    return IterationReport(
        label=label,
        iterations=tuple(spans),
        mean_ns=mean,
        std_ns=variance ** 0.5,
        min_ns=min(durations),
        max_ns=max(durations),
        slowest_index=slowest,
        gap_total_ns=sum(s.gap_to_next_ns for s in spans),
    )


__all__ = ["IterationReport", "IterationSpan", "detect_iterations"]
