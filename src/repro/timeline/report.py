"""Timeline report rendering: text tables and canonical JSON.

``timeline_payload`` is the machine-readable superset (schema
``repro/timeline-report@1``): pure function of the loaded trace and
the explicit knobs, canonical formatting (sorted keys, fixed
separators, floats rounded to 6 places) — so repeated runs over the
same file emit **bit-identical** bytes, the contract
docs/TIMELINE.md states and CI re-checks on the committed fixture.
``timeline_report`` renders the human tables from the same inputs.
"""

from __future__ import annotations

import json

from repro.core.report import format_table
from repro.io.nsys_sqlite import TimelineTrace
from repro.obs import active_obs
from repro.timeline.bubbles import BUBBLE_KINDS, bubble_stats, find_bubbles
from repro.timeline.hotspots import rank_hotspots
from repro.timeline.iterations import detect_iterations
from repro.timeline.join import join_topdown
from repro.timeline.occupancy import stream_occupancy

REPORT_SCHEMA = "repro/timeline-report@1"


def _fmt_ns(ns: int | float) -> str:
    """Human duration: ns → us/ms/s with 3 significant decimals."""
    ns = float(ns)
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.0f} ns"


def _analyze(trace, device, stream, min_gap_us, launch_threshold_us, top):
    obs = active_obs()
    with obs.tracer.span("timeline.analyze", cat="timeline") as span:
        bubbles = find_bubbles(
            trace, device=device, stream=stream, min_gap_us=min_gap_us,
            launch_threshold_us=launch_threshold_us,
        )
        stats = bubble_stats(bubbles, trace, device=device, stream=stream)
        hotspots = rank_hotspots(trace, device=device, stream=stream,
                                 top=top)
        occupancy = stream_occupancy(trace, device=device, stream=stream)
        iterations = detect_iterations(trace) if trace.capabilities.nvtx \
            else None
        span.set(bubbles=len(bubbles), hotspots=len(hotspots))
    return bubbles, stats, hotspots, occupancy, iterations


def timeline_payload(
    trace: TimelineTrace,
    *,
    device: int | None = None,
    stream: int | None = None,
    min_gap_us: float = 1.0,
    launch_threshold_us: float = 10.0,
    top: int = 10,
    topdown=None,
) -> dict:
    """The machine-readable timeline report (see module docstring)."""
    bubbles, stats, hotspots, occupancy, iterations = _analyze(
        trace, device, stream, min_gap_us, launch_threshold_us, top
    )
    verdicts = (join_topdown([h.name for h in hotspots], topdown)
                if topdown else {})
    payload: dict = {
        "schema": REPORT_SCHEMA,
        "source": trace.source,
        "trace_schema": trace.schema,
        "capabilities": trace.capabilities.payload(),
        "filters": {"device": device, "stream": stream},
        "devices": [
            {
                "id": info.device_id,
                "name": info.name,
                "compute_capability": info.compute_capability,
            }
            for _, info in sorted(trace.devices.items())
        ],
        "span_ns": trace.span_ns,
        "counts": {
            "kernels": len(trace.kernels),
            "memcpys": len(trace.memcpys),
            "nvtx_ranges": len(trace.nvtx),
        },
        "bubbles": {
            "count": stats.count,
            "total_ns": stats.total_ns,
            "span_ns": stats.span_ns,
            "idle_fraction": round(stats.idle_fraction, 6),
            "by_kind": {
                kind: {"count": stats.by_kind_count[kind],
                       "total_ns": stats.by_kind_ns[kind]}
                for kind in BUBBLE_KINDS
            },
            "items": [
                {
                    "device": b.device_id,
                    "start_ns": b.start_ns,
                    "duration_ns": b.duration_ns,
                    "kind": b.kind,
                    "after": b.after,
                    "before": b.before,
                }
                for b in bubbles
            ],
        },
        "hotspots": [
            {
                "name": h.name,
                "count": h.count,
                "total_ns": h.total_ns,
                "avg_ns": round(h.avg_ns, 3),
                "min_ns": h.min_ns,
                "max_ns": h.max_ns,
                "share": round(h.share, 6),
                "devices": list(h.devices),
                **({"topdown": verdicts[h.name]}
                   if h.name in verdicts else {}),
            }
            for h in hotspots
        ],
        "occupancy": [
            {
                "device": row.device_id,
                "stream": row.stream_id,
                "busy_ns": row.busy_ns,
                "span_ns": row.span_ns,
                "occupancy": round(row.occupancy, 6),
            }
            for row in occupancy
        ],
        "iterations": None,
    }
    if iterations is not None:
        payload["iterations"] = {
            "label": iterations.label,
            "count": iterations.count,
            "mean_ns": round(iterations.mean_ns, 3),
            "std_ns": round(iterations.std_ns, 3),
            "cv": round(iterations.cv, 6),
            "min_ns": iterations.min_ns,
            "max_ns": iterations.max_ns,
            "slowest_index": iterations.slowest_index,
            "gap_total_ns": iterations.gap_total_ns,
            "items": [
                {
                    "index": s.index,
                    "text": s.text,
                    "start_ns": s.start_ns,
                    "duration_ns": s.duration_ns,
                    "busy_fraction": round(s.busy_fraction, 6),
                    "gap_to_next_ns": s.gap_to_next_ns,
                }
                for s in iterations.iterations
            ],
        }
    return payload


def payload_to_json(payload: dict) -> str:
    """Canonical JSON bytes for a payload (bit-identical re-runs)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ": "), indent=1) + "\n"


def timeline_report(
    trace: TimelineTrace,
    *,
    device: int | None = None,
    stream: int | None = None,
    min_gap_us: float = 1.0,
    launch_threshold_us: float = 10.0,
    top: int = 10,
    topdown=None,
    show_iterations: bool = False,
) -> str:
    """The human-readable timeline report."""
    bubbles, stats, hotspots, occupancy, iterations = _analyze(
        trace, device, stream, min_gap_us, launch_threshold_us, top
    )
    verdicts = (join_topdown([h.name for h in hotspots], topdown)
                if topdown else {})
    scope = "".join([
        f" device {device}" if device is not None else "",
        f" stream {stream}" if stream is not None else "",
    ])
    lines = [
        f"timeline: {trace.source} ({trace.schema}){scope}",
        ", ".join([
            f"devices: {len(trace.devices)}",
            f"kernels: {len(trace.kernels)}",
            f"memcpys: {len(trace.memcpys)}",
            f"nvtx ranges: {len(trace.nvtx)}",
            f"span: {_fmt_ns(trace.span_ns)}",
        ]),
    ]
    missing = trace.capabilities.missing()
    if missing:
        lines.append(
            f"partial export - missing: {', '.join(missing)} "
            f"(degraded analyses, see docs/TIMELINE.md)"
        )
    for _, info in sorted(trace.devices.items()):
        cc = f" (cc {info.compute_capability})" if info.compute_capability \
            else ""
        lines.append(f"  device {info.device_id}: {info.name}{cc}")
    lines += [
        "",
        f"bubbles: {stats.count} totalling {_fmt_ns(stats.total_ns)} "
        f"({stats.idle_fraction:.1%} of the device-busy span)",
        "  " + ", ".join(
            f"{kind}: {stats.by_kind_count[kind]} "
            f"({_fmt_ns(stats.by_kind_ns[kind])})"
            for kind in BUBBLE_KINDS
        ),
    ]
    worst = sorted(bubbles, key=lambda b: -b.duration_ns)[:3]
    for b in worst:
        lines.append(
            f"  worst: {_fmt_ns(b.duration_ns)} {b.kind} on device "
            f"{b.device_id} after {b.after[:40]}"
        )
    if hotspots:
        lines += ["", f"top {len(hotspots)} kernels by total time:"]
        rows = [
            [h.name[:44], str(h.count), _fmt_ns(h.total_ns),
             _fmt_ns(h.avg_ns), f"{h.share:.1%}",
             verdicts.get(h.name, "")]
            for h in hotspots
        ]
        header = ["Kernel", "Count", "Total", "Avg", "Share", "Top-Down"]
        if not verdicts:
            rows = [r[:-1] for r in rows]
            header = header[:-1]
        lines.append(format_table(header, rows))
    if occupancy:
        lines += ["", "per-stream occupancy:"]
        rows = [
            [str(row.device_id),
             ("all" if row.stream_id is None else str(row.stream_id)),
             _fmt_ns(row.busy_ns), _fmt_ns(row.span_ns),
             f"{row.occupancy:.1%}"]
            for row in occupancy
        ]
        lines.append(format_table(
            ["Device", "Stream", "Busy", "Span", "Occupancy"], rows
        ))
    if iterations is not None:
        lines += [
            "",
            f"iterations ('{iterations.label}'): {iterations.count}, "
            f"mean {_fmt_ns(iterations.mean_ns)} "
            f"+/- {_fmt_ns(iterations.std_ns)} (cv {iterations.cv:.3f}), "
            f"slowest #{iterations.slowest_index} "
            f"({_fmt_ns(iterations.max_ns)}), inter-iteration idle "
            f"{_fmt_ns(iterations.gap_total_ns)}",
        ]
        if show_iterations:
            rows = [
                [str(s.index), s.text[:24], _fmt_ns(s.duration_ns),
                 f"{s.busy_fraction:.1%}", _fmt_ns(s.gap_to_next_ns)]
                for s in iterations.iterations
            ]
            lines.append(format_table(
                ["Iter", "Range", "Duration", "GPU busy", "Gap after"],
                rows,
            ))
    elif show_iterations:
        lines += ["", "iterations: none detected "
                      "(no repeating NVTX range family)"]
    return "\n".join(lines)


__all__ = ["REPORT_SCHEMA", "payload_to_json", "timeline_payload",
           "timeline_report"]
